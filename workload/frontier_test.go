package workload

import (
	"context"
	"errors"
	"testing"

	"armada"
)

// TestRangeBucketsRepeatRegions: quantized samplers must collapse the
// continuous range draws onto few distinct regions, and every quantized
// range must contain the continuous one it was snapped from.
func TestRangeBucketsRepeatRegions(t *testing.T) {
	sc := small()
	sc.Keys = KeyDist{Kind: KeyZipf, ZipfS: 1.3}
	sc.RangeSize = SizeDist{MinFrac: 0.01, MaxFrac: 0.05}
	sc.RangeBuckets = 64
	sc = sc.withDefaults()
	smp := newSampler(&sc, 7)

	cont := sc
	cont.RangeBuckets = 0
	csmp := newSampler(&cont, 7) // same seed: same underlying draws

	distinct := make(map[armada.Range]int)
	for i := 0; i < 500; i++ {
		q := smp.ranges(false)[0]
		c := csmp.ranges(false)[0]
		if q.Low > c.Low || q.High < c.High {
			t.Fatalf("quantized range %+v does not contain the continuous draw %+v", q, c)
		}
		step := (sc.Attrs[0].High - sc.Attrs[0].Low) / 64
		if q.High-q.Low < step*0.999 {
			t.Fatalf("quantized range %+v narrower than one bucket", q)
		}
		distinct[q]++
	}
	if len(distinct) > 250 {
		t.Errorf("%d distinct regions out of 500 zipf draws; quantization is not collapsing repeats", len(distinct))
	}
	repeats := 0
	for _, n := range distinct {
		if n > 1 {
			repeats += n
		}
	}
	if repeats < 100 {
		t.Errorf("only %d of 500 draws repeat a region; the cache would never hit", repeats)
	}
}

// TestCancelledWalkNotSampled: a paged walk cut short by shutdown must be
// counted as cancelled, not recorded as a (partial) sample.
func TestCancelledWalkNotSampled(t *testing.T) {
	net, err := armada.NewNetwork(60, armada.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	sc := small()
	sc.Mix = Mix{RangePaged: 1}
	sc = sc.withDefaults()
	r, err := New(net, sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // shutdown before the walk starts
	coll := &collector{}
	smp := newSampler(&sc, 3)
	oc := &coll.ops[OpRangePaged]
	r.doPagedRange(ctx, smp, oc, coll, 0)
	if got := oc.cancelled.Load(); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if got := oc.count.Load(); got != 0 {
		t.Errorf("count = %d; a cancelled walk must not be recorded", got)
	}
	if n := oc.pages.Snapshot().N(); n != 0 {
		t.Errorf("pages sample has %d entries from a cancelled walk", n)
	}

	// Same for the no-session ablation path.
	r.sc.PagedNoSession = true
	r.doPagedRange(ctx, smp, oc, coll, 0)
	if got := oc.cancelled.Load(); got != 2 {
		t.Errorf("ablation cancelled = %d, want 2", got)
	}
}

// TestNewRejectsFrontierCacheMismatch: a scenario declaring a cache must
// run on a network built with one of the same capacity.
func TestNewRejectsFrontierCacheMismatch(t *testing.T) {
	plain, err := armada.NewNetwork(50, armada.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sc := small()
	sc.FrontierCache = 64
	if _, err := New(plain, sc); !errors.Is(err, ErrBadScenario) {
		t.Errorf("cache on cacheless network: err = %v, want ErrBadScenario", err)
	}

	cached, err := armada.NewNetwork(50, armada.WithSeed(3), armada.WithFrontierCache(32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cached, small()); !errors.Is(err, ErrBadScenario) {
		t.Errorf("cacheless scenario on cached network: err = %v, want ErrBadScenario", err)
	}
	sc.FrontierCache = 32
	if _, err := New(cached, sc); err != nil {
		t.Errorf("matching cache rejected: %v", err)
	}
}

// TestScanHeavyRunSavesDescents runs a small scan-heavy slice end to end:
// sessions must save descents on nearly every later page, the cache must
// hit on repeated regions, and the report must carry both.
func TestScanHeavyRunSavesDescents(t *testing.T) {
	sc, ok := Preset("scan-heavy")
	if !ok {
		t.Fatal("scan-heavy preset missing")
	}
	sc.Peers = 120
	sc.Preload = 800
	sc.Ops = 250
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	rp, ok := rep.Ops[OpRangePaged.String()]
	if !ok {
		t.Fatal("no range-paged ops in a scan-heavy run")
	}
	if rp.DescentsSaved == 0 {
		t.Error("sessions saved no descents")
	}
	if rep.FrontierCache == nil {
		t.Fatal("report missing the frontier_cache block")
	}
	if rep.FrontierCache.Hits == 0 || rep.FrontierHits == 0 {
		t.Errorf("no cache hits on quantized zipf scans: cache=%+v total_hits=%d",
			rep.FrontierCache, rep.FrontierHits)
	}
	if rep.DescentsSaved < rep.FrontierHits {
		t.Errorf("descents_saved %d < frontier_hits %d; hits are a subset of saves",
			rep.DescentsSaved, rep.FrontierHits)
	}
	// The ablation re-pays every descent: zero saves by construction.
	sc.PagedNoSession = true
	sc.FrontierCache = 0
	abl, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if op := abl.Ops[OpRangePaged.String()]; op.DescentsSaved != 0 || op.FrontierHits != 0 {
		t.Errorf("ablation saved descents: %+v", op)
	}
}
