package workload

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"armada"
)

func TestHotDriftMovesTheHotspot(t *testing.T) {
	sc := Scenario{
		Keys:     KeyDist{Kind: KeyHotspot, HotFraction: 0.1, HotWeight: 1},
		HotDrift: 200 * time.Millisecond,
	}
	s := newSampler(&sc, 1)
	h1 := s.hotLow()
	time.Sleep(40 * time.Millisecond)
	h2 := s.hotLow()
	if h2 <= h1 {
		t.Fatalf("hot interval did not advance: %.4f -> %.4f", h1, h2)
	}
	if h2 >= 1-sc.Keys.HotFraction {
		t.Fatalf("hot low %.4f past the sweep span %.4f", h2, 1-sc.Keys.HotFraction)
	}
	// All hot draws stay inside the current interval (sampled right after
	// hotLow, so the drift between the two calls is negligible).
	for i := 0; i < 200; i++ {
		lo := s.hotLow()
		f := s.frac()
		if f < lo-0.01 || f > lo+sc.Keys.HotFraction+0.01 {
			t.Fatalf("draw %.4f outside hot interval [%.4f, %.4f]", f, lo, lo+sc.Keys.HotFraction)
		}
	}
}

func TestHotDriftZeroPinsTheHotspot(t *testing.T) {
	sc := Scenario{Keys: KeyDist{Kind: KeyHotspot, HotFraction: 0.1, HotWeight: 1}}
	s := newSampler(&sc, 1)
	if got := s.hotLow(); got != 0 {
		t.Fatalf("hotLow = %.4f without drift, want pinned 0", got)
	}
}

func TestLoadControlScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Ops: 10, LoadControl: true, SplitThreshold: -1},
		{Ops: 10, SplitThreshold: 100}, // threshold without load control
		{Ops: 10, HotDrift: -time.Second, Keys: KeyDist{Kind: KeyHotspot, HotFraction: 0.1, HotWeight: 0.9}},
		{Ops: 10, HotDrift: time.Second}, // drift without hotspot keys
	}
	for i, sc := range bad {
		if err := sc.withDefaults().validate(); !errors.Is(err, ErrBadScenario) {
			t.Errorf("bad scenario %d: err = %v, want ErrBadScenario", i, err)
		}
	}
}

func TestNewRejectsLoadControlMismatch(t *testing.T) {
	plain, err := armada.NewNetwork(50, armada.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sc := small()
	sc.LoadControl = true
	if _, err := New(plain, sc); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("load-control scenario on a plain network: err = %v, want ErrBadScenario", err)
	}

	controlled, err := armada.NewNetwork(50, armada.WithSeed(3),
		armada.WithLoadControl(armada.LoadControlConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer controlled.Close()
	if _, err := New(controlled, small()); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("plain scenario on a load-controlled network: err = %v, want ErrBadScenario", err)
	}
}

// TestRunReportsLoadControl: a load-controlled run carries the skew, env
// and load-control blocks with the documented JSON keys; a plain run omits
// the load-control block but keeps skew and env.
func TestRunReportsLoadControl(t *testing.T) {
	sc := small()
	sc.LoadControl = true
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadControl == nil {
		t.Fatal("load-controlled run reported no load_control block")
	}
	if rep.DeliverySkew == nil || rep.DeliverySkew.MeanDeliveries <= 0 {
		t.Fatalf("delivery skew missing or empty: %+v", rep.DeliverySkew)
	}
	if rep.DeliverySkew.MaxOverMean < rep.DeliverySkew.P99OverMean || rep.DeliverySkew.P99OverMean < 0 {
		t.Fatalf("skew quantiles inconsistent: %+v", rep.DeliverySkew)
	}
	if len(rep.DeliverySkew.HotPeers) == 0 || rep.DeliverySkew.HotPeers[0].Share <= 0 {
		t.Fatalf("hot peers missing: %+v", rep.DeliverySkew.HotPeers)
	}
	if rep.Env == nil || rep.Env.GoMaxProcs <= 0 || rep.Env.NumCPU <= 0 || rep.Env.GoVersion == "" {
		t.Fatalf("env metadata missing: %+v", rep.Env)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"delivery_skew"`, `"max_over_mean"`, `"p99_over_mean"`, `"hot_peers"`,
		`"load_control"`, `"auto_splits"`, `"env"`, `"gomaxprocs"`, `"go_version"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON lacks %s", key)
		}
	}

	plain, err := Execute(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	if plain.LoadControl != nil {
		t.Error("plain run reported a load_control block")
	}
	if plain.DeliverySkew == nil || plain.Env == nil {
		t.Error("plain run lost the skew or env block")
	}
}

func TestDeliverySkewComputation(t *testing.T) {
	start := map[string]int64{"a": 10, "gone": 5}
	end := []armada.PeerLoad{
		{Peer: "a", Deliveries: 110}, // delta 100
		{Peer: "b", Deliveries: 0},
		{Peer: "c", Deliveries: 0},
	}
	rep := deliverySkew(start, end)
	if rep == nil {
		t.Fatal("nil skew report")
	}
	wantMean := 100.0 / 3
	if rep.MeanDeliveries != wantMean {
		t.Errorf("mean = %.4f, want %.4f", rep.MeanDeliveries, wantMean)
	}
	if rep.MaxOverMean != 3 {
		t.Errorf("max/mean = %.4f, want 3", rep.MaxOverMean)
	}
	if rep.P99OverMean != 3 { // 3 peers: p99 is the max
		t.Errorf("p99/mean = %.4f, want 3", rep.P99OverMean)
	}
	if len(rep.HotPeers) != 3 || rep.HotPeers[0].Peer != "a" || rep.HotPeers[0].Share != 1 {
		t.Errorf("hot peers = %+v", rep.HotPeers)
	}

	if got := deliverySkew(nil, nil); got != nil {
		t.Errorf("skew over no peers = %+v, want nil", got)
	}
	idle := deliverySkew(nil, []armada.PeerLoad{{Peer: "a"}, {Peer: "b"}})
	if idle == nil || idle.MaxOverMean != 0 || idle.HotPeers != nil {
		t.Errorf("idle skew = %+v, want mean-only report", idle)
	}
}
