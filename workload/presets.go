package workload

import (
	"time"

	"armada"
)

// presets are the named scenarios armada-load ships, in listing order.
// Each is self-contained: it carries its own network size and op budget so
// `armada-load -scenario <name>` completes without further flags.
var presets = []Scenario{
	{
		// Uniform read-mostly traffic on a stable network — the baseline
		// every other scenario is compared against.
		Name:    "steady",
		Peers:   500,
		Preload: 2000,
		Ops:     5000,
		Mix:     Mix{Publish: 10, Unpublish: 8, Lookup: 12, Range: 60, TopK: 5, MultiRange: 0, Flood: 0},
		Keys:    KeyDist{Kind: KeyUniform},
	},
	{
		// The steady mix at 10k peers — the CI scale smoke. Small op
		// budget: the point is the memory block (bytes_per_peer, build or
		// snapshot-load wall clock) and a clean sampled audit at a size
		// where the full audit is already slow, not fresh query statistics.
		Name:    "steady-10k",
		Peers:   10_000,
		Preload: 5000,
		Ops:     2000,
		Mix:     Mix{Publish: 10, Unpublish: 8, Lookup: 12, Range: 60, TopK: 5},
		Keys:    KeyDist{Kind: KeyUniform},
	},
	{
		// The steady mix at the paper-scale 100k peers. Run it with a
		// warm-start snapshot (-snapshot-in) to skip the cold build;
		// post-run verification should use -audit-sample, since the full
		// per-peer table check at this size costs minutes.
		Name:    "steady-100k",
		Peers:   100_000,
		Preload: 20_000,
		Ops:     2000,
		Mix:     Mix{Publish: 10, Unpublish: 8, Lookup: 12, Range: 60, TopK: 5},
		Keys:    KeyDist{Kind: KeyUniform},
	},
	{
		// Zipf-skewed keys and narrow ranges: most traffic hammers the few
		// peers owning the hot end of the namespace (the D3-Tree/ART
		// skewed-access scenario). A slice of the range traffic runs the
		// paginated variant — same query shape, walked in PageLimit-sized
		// pages — so the report shows what pagination costs and saves
		// (pages and matches-per-page quantiles) next to the materializing
		// baseline.
		Name:      "zipf-hot",
		Peers:     500,
		Preload:   3000,
		Ops:       5000,
		Mix:       Mix{Publish: 10, Unpublish: 5, Lookup: 10, Range: 67, RangePaged: 8},
		Keys:      KeyDist{Kind: KeyZipf, ZipfS: 1.2},
		RangeSize: SizeDist{MinFrac: 0.002, MaxFrac: 0.02},
		// 512-object pages over a mean hot result of ~1.7k objects give
		// 3-4 page walks; the paged slice is weighted so the walk's extra
		// descents keep total query pressure comparable to the original
		// preset (which ran Range at 75).
		PageLimit: 512,
	},
	{
		// Warm-key traffic the learned shortcut table exists for: heavily
		// Zipf-skewed lookups and narrow bucketed ranges revisit the same
		// few regions over and over, so after a brief learning phase most
		// queries route in one direct hop per destination instead of a
		// ~log N descent (shortcut.hit_rate near 1, hops mean ≤ 2). The
		// 512-entry table comfortably learns the whole 500-peer ownership
		// map. Rerun with -no-shortcut for the descent baseline — results
		// are byte-identical, only hops and messages move.
		Name:          "warm-keys",
		Peers:         500,
		Preload:       3000,
		Ops:           5000,
		Mix:           Mix{Publish: 5, Lookup: 45, Range: 45, RangePaged: 5},
		Keys:          KeyDist{Kind: KeyZipf, ZipfS: 1.3},
		RangeSize:     SizeDist{MinFrac: 0.001, MaxFrac: 0.01},
		RangeBuckets:  256,
		PageLimit:     256,
		ShortcutTable: 512,
	},
	{
		// Scan-dominated traffic over repeating hot ranges — the workload
		// query sessions and the frontier cache exist for. Range bounds
		// snap to a 64-bucket grid, so the zipf-hot scans repeat
		// byte-identical regions (dashboards, result pages); paged walks
		// run through sessions (descents_saved ≈ pages − 1 per walk), and
		// repeated regions seed even page 1 from the shared cache
		// (frontier_hits, frontier_cache.hit_rate). Rerun with
		// -paged-no-session -frontier-cache 0 for the per-page-descent
		// ablation (the cache alone would still seed per-page queries).
		Name:          "scan-heavy",
		Peers:         500,
		Preload:       4000,
		Ops:           4000,
		Mix:           Mix{Publish: 5, Lookup: 5, Range: 20, RangePaged: 70},
		Keys:          KeyDist{Kind: KeyZipf, ZipfS: 1.3},
		RangeSize:     SizeDist{MinFrac: 0.01, MaxFrac: 0.05},
		PageLimit:     256,
		RangeBuckets:  64,
		FrontierCache: 256,
	},
	{
		// A narrow hotspot that drifts across the key space during the run:
		// publishes and range scans chase the moving hot interval, piling
		// objects and deliveries onto whichever few peers own it at each
		// moment — the regime occupancy-based splitting cannot fix, and the
		// adaptive load controller exists for. Runs with load control on
		// (auto-split + migration); rerun with -load-control=false for the
		// uncontrolled baseline, where the hot owners' stores and scan
		// convoys grow unchecked. Duration-bounded because the drift is
		// wall-clock. 2-way replicated so controller-driven departures and
		// splits are also exercised against replica repair.
		Name:     "hot-drift",
		Peers:    400,
		Preload:  4000,
		Duration: 6 * time.Second,
		Replicas: 2,
		Mix:      Mix{Publish: 50, Unpublish: 5, Lookup: 5, Range: 40},
		Keys:     KeyDist{Kind: KeyHotspot, HotFraction: 0.02, HotWeight: 0.95},
		// Half a sweep per run: slow enough that publishes pile up on the
		// current hot owners (the uncontrolled failure mode), fast enough
		// that the controller has to chase the hotspot, not just fix a
		// static one.
		HotDrift:       12 * time.Second,
		RangeSize:      SizeDist{MinFrac: 0.002, MaxFrac: 0.01},
		LoadControl:    true,
		SplitThreshold: 150,
	},
	{
		// hot-drift with the controller's growth cap clamped low: auto-split
		// capacity exhausts in the first second or two, so the rest of the
		// run must chase the hotspot through ownership migration — the
		// preset that makes `migrations > 0` a hard assertion rather than a
		// lucky outcome. Identical traffic to hot-drift otherwise.
		Name:           "hot-drift-cap",
		Peers:          400,
		Preload:        4000,
		Duration:       6 * time.Second,
		Replicas:       2,
		Mix:            Mix{Publish: 50, Unpublish: 5, Lookup: 5, Range: 40},
		Keys:           KeyDist{Kind: KeyHotspot, HotFraction: 0.02, HotWeight: 0.95},
		HotDrift:       12 * time.Second,
		RangeSize:      SizeDist{MinFrac: 0.002, MaxFrac: 0.01},
		LoadControl:    true,
		SplitThreshold: 150,
		MaxGrowth:      4,
	},
	{
		// Sustained mixed traffic while the overlay churns hard, including
		// crash-stops — the regime the paper's stable-network delay bounds
		// say nothing about. Runs with 2-way replication so crashes lose
		// nothing (availability_misses ~0, re_replications > 0); rerun with
		// -replicas 1 for the unreplicated baseline, where crash losses
		// surface as lookup/unpublish misses.
		Name:     "churn-heavy",
		Peers:    400,
		Preload:  1500,
		Ops:      4000,
		Replicas: 2,
		Mix:      Mix{Publish: 15, Unpublish: 10, Lookup: 15, Range: 55, TopK: 5},
		Keys:     KeyDist{Kind: KeyUniform},
		// Rates are high because an in-process run of this op budget lasts
		// well under a second; they work out to roughly one churn event
		// per ~7 completed operations.
		Churn: Churn{JoinPerSec: 300, LeavePerSec: 220, FailPerSec: 80, MinPeers: 64},
	},
	{
		// Half the queries run the unpruned FRT flood ablation, measuring
		// what Armada's pruning buys under concurrent load. Open-loop
		// Poisson arrivals so the storm keeps its nominal rate.
		Name:    "flood-storm",
		Peers:   200,
		Preload: 1000,
		Ops:     1500,
		Mix:     Mix{Publish: 10, Lookup: 10, Range: 40, Flood: 40},
		Keys:    KeyDist{Kind: KeyHotspot, HotFraction: 0.2, HotWeight: 0.8},
		Arrival: Arrival{Workers: 8, RatePerSec: 1500},
	},
	{
		// Everything at once: two attributes, every op kind, skewed keys
		// and moderate churn — the CI smoke scenario.
		Name:    "mixed",
		Peers:   500,
		Preload: 2000,
		Ops:     3000,
		Attrs: []armada.AttributeSpace{
			{Low: 0, High: 1000},
			{Low: 0, High: 100},
		},
		Mix:   Mix{Publish: 12, Unpublish: 8, Lookup: 10, Range: 35, MultiRange: 20, TopK: 10, Flood: 5},
		Keys:  KeyDist{Kind: KeyZipf, ZipfS: 1.3},
		Churn: Churn{JoinPerSec: 80, LeavePerSec: 60, FailPerSec: 20, MinPeers: 64},
	},
}

// Presets returns the named scenarios in listing order (copies; callers
// may adjust them freely).
func Presets() []Scenario {
	out := make([]Scenario, len(presets))
	for i, p := range presets {
		out[i] = copyScenario(p)
	}
	return out
}

// Preset returns the named scenario, reporting whether the name is known.
func Preset(name string) (Scenario, bool) {
	for _, p := range presets {
		if p.Name == name {
			return copyScenario(p), true
		}
	}
	return Scenario{}, false
}

// copyScenario detaches the scenario's slice fields so callers mutating a
// returned preset cannot corrupt the package-level table.
func copyScenario(p Scenario) Scenario {
	p.Attrs = append([]armada.AttributeSpace(nil), p.Attrs...)
	return p
}
