// Package workload is a scenario-driven load generator for a live
// armada.Network: many concurrent workers issue a weighted mix of
// operations (publish, unpublish, lookup, range, multi-range, top-k,
// flood) with configurable key and range-size distributions, under an
// optional churn process that joins, gracefully removes and crashes peers
// while the traffic runs.
//
// A Scenario declares the workload; a Runner executes it for a duration or
// an operation count under a context.Context and produces a Report with
// per-op-kind throughput, error counts, wall-clock latency percentiles and
// the paper's hop-delay/message metrics, plus periodic interval snapshots.
// Reports marshal to JSON — the format the repo's BENCH_*.json entries
// use.
//
//	sc, _ := workload.Preset("churn-heavy")
//	rep, err := workload.Execute(ctx, sc)
//	json.NewEncoder(os.Stdout).Encode(rep)
//
// Named presets (steady, zipf-hot, churn-heavy, flood-storm, mixed) cover
// the scenario space the paper does not: skewed access, heavy churn and
// the unpruned-flood ablation under load. The armada-load command is the
// CLI front end.
package workload

import (
	"errors"
	"fmt"
	"time"

	"armada"
)

// OpKind identifies one operation type of the mix.
type OpKind int

// Operation kinds, in mix order.
const (
	OpPublish OpKind = iota
	OpUnpublish
	OpLookup
	OpRange
	OpMultiRange
	OpTopK
	OpFlood
	OpRangePaged
	numOps
)

// String names the kind; the names key the Report's per-op map.
func (k OpKind) String() string {
	switch k {
	case OpPublish:
		return "publish"
	case OpUnpublish:
		return "unpublish"
	case OpLookup:
		return "lookup"
	case OpRange:
		return "range"
	case OpMultiRange:
		return "multi-range"
	case OpTopK:
		return "top-k"
	case OpFlood:
		return "flood"
	case OpRangePaged:
		return "range-paged"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Mix holds the relative weight of each operation kind. Weights are
// arbitrary non-negative numbers; only their ratios matter. A zero weight
// disables the kind.
//
// Range constrains the first attribute and leaves the others unbounded;
// MultiRange constrains every attribute (on a single-attribute network the
// two coincide). RangePaged runs the same range shape as Range but walks
// the result in pages of Scenario.PageLimit objects via WithLimit and
// WithOffsetID, recording per-page metrics — one operation is the whole
// walk. Unpublish targets a previously published object; when none
// remains, the operation falls back to a publish so the mix stays
// sustainable.
type Mix struct {
	Publish    float64 `json:"publish,omitempty"`
	Unpublish  float64 `json:"unpublish,omitempty"`
	Lookup     float64 `json:"lookup,omitempty"`
	Range      float64 `json:"range,omitempty"`
	MultiRange float64 `json:"multi_range,omitempty"`
	TopK       float64 `json:"top_k,omitempty"`
	Flood      float64 `json:"flood,omitempty"`
	RangePaged float64 `json:"range_paged,omitempty"`
}

// weights returns the mix in OpKind order.
func (m Mix) weights() [numOps]float64 {
	return [numOps]float64{m.Publish, m.Unpublish, m.Lookup, m.Range, m.MultiRange, m.TopK, m.Flood, m.RangePaged}
}

func (m Mix) total() float64 {
	t := 0.0
	for _, w := range m.weights() {
		t += w
	}
	return t
}

// KeyDistKind selects how attribute values (and range-query centers) are
// drawn from an attribute space.
type KeyDistKind int

const (
	// KeyUniform draws values uniformly over the attribute space.
	KeyUniform KeyDistKind = iota
	// KeyZipf draws bucket ranks from a Zipf distribution, concentrating
	// traffic on the low end of the space.
	KeyZipf
	// KeyHotspot draws from a small hot sub-interval with high
	// probability and uniformly otherwise.
	KeyHotspot
)

// String names the distribution kind.
func (k KeyDistKind) String() string {
	switch k {
	case KeyUniform:
		return "uniform"
	case KeyZipf:
		return "zipf"
	case KeyHotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("KeyDistKind(%d)", int(k))
	}
}

// KeyDist configures the value distribution of published objects and
// query targets.
type KeyDist struct {
	Kind KeyDistKind `json:"kind"`
	// ZipfS is the Zipf exponent (> 1; default 1.2). KeyZipf only.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// HotFraction is the width of the hot interval as a fraction of the
	// space (default 0.1). KeyHotspot only.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// HotWeight is the probability of drawing from the hot interval
	// (default 0.9). KeyHotspot only.
	HotWeight float64 `json:"hot_weight,omitempty"`
}

// SizeDist draws a queried range's width as a fraction of the attribute
// space, uniformly in [MinFrac, MaxFrac].
type SizeDist struct {
	MinFrac float64 `json:"min_frac"`
	MaxFrac float64 `json:"max_frac"`
}

// Arrival selects the arrival model.
//
// With RatePerSec zero the load is closed-loop: Workers workers each issue
// operations back to back (optionally separated by Think). With RatePerSec
// positive the load is open-loop: operations arrive on an absolute Poisson
// schedule at that rate and queue (up to QueueCap) for up to Workers
// concurrent executors. An arrival finding the queue full is dropped and
// counted in the report — overload surfaces as queue wait and drops, never
// as a silent sag of the arrival rate. Under sustained overload a run
// stopped by Ops may therefore complete fewer than Ops operations.
type Arrival struct {
	Workers    int           `json:"workers"`
	RatePerSec float64       `json:"rate_per_sec,omitempty"`
	Think      time.Duration `json:"think,omitempty"`
	// QueueCap bounds the open-loop dispatch queue (default 4×Workers).
	QueueCap int `json:"queue_cap,omitempty"`
}

// Churn is a peer-dynamics process running concurrently with the traffic:
// joins, graceful leaves and crash-stops arrive as a merged Poisson
// process with the given per-second rates. Leaves and crashes are skipped
// while the network is at or below MinPeers, joins while at or above
// MaxPeers (0 = unbounded); skips are counted in the report.
type Churn struct {
	JoinPerSec  float64 `json:"join_per_sec,omitempty"`
	LeavePerSec float64 `json:"leave_per_sec,omitempty"`
	FailPerSec  float64 `json:"fail_per_sec,omitempty"`
	MinPeers    int     `json:"min_peers,omitempty"`
	MaxPeers    int     `json:"max_peers,omitempty"`
}

func (c Churn) totalRate() float64 { return c.JoinPerSec + c.LeavePerSec + c.FailPerSec }

// Enabled reports whether any churn rate is positive.
func (c Churn) Enabled() bool { return c.totalRate() > 0 }

// Scenario declares one workload: the network shape, the operation mix and
// its distributions, the arrival model, the churn process, and the stop
// condition (Ops and/or Duration — whichever is reached first ends the
// run; at least one must be set).
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Peers is the initial network size Execute builds (ignored by Run,
	// which receives a live network).
	Peers int `json:"peers"`
	// Seed makes runs reproducible op-for-op under closed-loop arrivals
	// (wall-clock metrics still vary).
	Seed int64 `json:"seed"`
	// Attrs are the attribute spaces; default one [0, 1000] space.
	Attrs []armada.AttributeSpace `json:"attrs,omitempty"`
	// Preload is the number of objects published before the measured run
	// starts (they also seed the unpublish pool).
	Preload int `json:"preload"`
	// Replicas is the network's replication degree (default 1, the
	// paper's unreplicated single-owner model). With 2 or more, objects
	// survive crash-stop churn and reads spread across replica groups.
	Replicas int `json:"replicas,omitempty"`
	// TopK is the K of top-k operations (default 10).
	TopK int `json:"top_k,omitempty"`
	// PageLimit is the page size of range-paged operations (default 256).
	PageLimit int `json:"page_limit,omitempty"`
	// PagedNoSession runs range-paged walks as independent per-page Do
	// queries instead of a query session — the ablation that measures
	// what session frontier reuse saves, the way flood measures what
	// pruning saves. Note that per-page Do queries still consult the
	// shared frontier cache when FrontierCache is set; for a full
	// per-page-descent baseline disable both (the CLI pairing is
	// `-paged-no-session -frontier-cache 0`).
	PagedNoSession bool `json:"paged_no_session,omitempty"`
	// FrontierCache, when positive, builds the network with an
	// issuer-side frontier cache of that capacity
	// (armada.WithFrontierCache): repeated range queries over covered hot
	// regions skip their descent, reported as frontier_hits and the
	// report's frontier_cache block. Default 0 — no cache.
	FrontierCache int `json:"frontier_cache,omitempty"`
	// RangeBuckets, when positive, snaps every range query's bounds
	// outward to a grid of that many buckets per attribute space. Hot
	// workloads then repeat byte-identical regions — the repeating-scan
	// access pattern (dashboards, result pages) the frontier cache
	// exists for — instead of the continuous never-repeating bounds the
	// samplers otherwise draw. Default 0 — continuous bounds.
	RangeBuckets int `json:"range_buckets,omitempty"`
	// ShortcutTable, when positive, builds the network with an issuer-side
	// learned shortcut routing table of that capacity
	// (armada.WithShortcutTable): lookups and single-attribute range
	// queries over regions the learned entries tile route in one direct
	// hop per destination instead of a ~log N descent, reported as
	// shortcut_hits and the report's shortcut block. Default 0 — no table.
	ShortcutTable int `json:"shortcut_table,omitempty"`
	// LoadControl builds the network with the adaptive load controller
	// (armada.WithLoadControl): hot regions auto-split under sustained
	// delivery load and, at the growth cap, ownership migrates from cold
	// peers toward hot regions. The run's actions land in the report's
	// load_control block. Default false.
	LoadControl bool `json:"load_control,omitempty"`
	// SplitThreshold overrides the controller's split threshold (sustained
	// deliveries/second on one region; 0 = the armada default). Requires
	// LoadControl.
	SplitThreshold float64 `json:"split_threshold,omitempty"`
	// MaxGrowth caps the peers the controller's auto-splits may add (0 =
	// the armada default, an eighth of the initial size). A low cap pushes
	// the controller into migration early — the hot-drift-cap preset uses
	// it to exercise ownership migration inside a short run. Requires
	// LoadControl.
	MaxGrowth int `json:"max_growth,omitempty"`
	// FlightRecorder, when positive, builds the network with a
	// query-lifecycle flight recorder of that event capacity
	// (armada.WithFlightRecorder); armada-load dumps it as Chrome
	// trace-event JSON via -trace-out. Default 0 — no recorder.
	FlightRecorder int `json:"flight_recorder,omitempty"`
	// SlowQueryLog, when positive, builds the network with the
	// query-diagnostics layer (armada.WithDiagnostics): a slow-query log
	// of that record capacity, per-query cause classification, the
	// report's tail_attribution and slo blocks, and armada-load's
	// /debug/armada introspection endpoints and -slow-out dump. Default
	// 0 — no diagnostics.
	SlowQueryLog int `json:"slow_query_log,omitempty"`
	// SlowThreshold fixes the slow-query threshold (0 = adaptive: an EWMA
	// of the observed p99 query duration). Requires SlowQueryLog.
	SlowThreshold time.Duration `json:"slow_threshold,omitempty"`
	// HotDrift, when positive, makes the KeyHotspot hot interval drift:
	// its low edge sweeps the whole key space once per HotDrift period
	// (wrapping), so publishes and queries chase a moving hotspot instead
	// of a pinned one. Requires Keys.Kind == KeyHotspot. Default 0 — the
	// hot interval stays at the low end of the space.
	HotDrift time.Duration `json:"hot_drift,omitempty"`

	Mix       Mix      `json:"mix"`
	Keys      KeyDist  `json:"keys"`
	RangeSize SizeDist `json:"range_size"`
	Arrival   Arrival  `json:"arrival"`
	Churn     Churn    `json:"churn"`

	// Ops stops the run after that many completed operations (0 = no op
	// limit).
	Ops int `json:"ops,omitempty"`
	// Duration stops the run after that much wall-clock time (0 = no time
	// limit).
	Duration time.Duration `json:"duration,omitempty"`
	// Interval is the snapshot period (default 1s).
	Interval time.Duration `json:"interval,omitempty"`
}

// ErrBadScenario tags scenario validation failures.
var ErrBadScenario = errors.New("workload: invalid scenario")

// withDefaults returns the scenario with zero values filled in.
func (s Scenario) withDefaults() Scenario {
	if s.Name == "" {
		s.Name = "custom"
	}
	if s.Peers == 0 {
		s.Peers = 500
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Attrs) == 0 {
		s.Attrs = []armada.AttributeSpace{{Low: 0, High: 1000}}
	}
	if s.TopK == 0 {
		s.TopK = 10
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.PageLimit == 0 {
		s.PageLimit = 256
	}
	if s.Mix.total() == 0 {
		s.Mix = Mix{Publish: 10, Unpublish: 5, Lookup: 10, Range: 70, TopK: 5}
	}
	if s.Keys.Kind == KeyZipf && s.Keys.ZipfS == 0 {
		s.Keys.ZipfS = 1.2
	}
	if s.Keys.Kind == KeyHotspot {
		if s.Keys.HotFraction == 0 {
			s.Keys.HotFraction = 0.1
		}
		if s.Keys.HotWeight == 0 {
			s.Keys.HotWeight = 0.9
		}
	}
	if s.RangeSize.MinFrac == 0 && s.RangeSize.MaxFrac == 0 {
		s.RangeSize = SizeDist{MinFrac: 0.01, MaxFrac: 0.1}
	}
	if s.Arrival.Workers == 0 {
		s.Arrival.Workers = 8
	}
	if s.Arrival.RatePerSec > 0 && s.Arrival.QueueCap == 0 {
		s.Arrival.QueueCap = 4 * s.Arrival.Workers
	}
	if s.Churn.Enabled() && s.Churn.MinPeers == 0 {
		s.Churn.MinPeers = 16
	}
	if s.Interval == 0 {
		s.Interval = time.Second
	}
	return s
}

// NetworkOptions returns the armada.NewNetwork options a defaults-filled
// scenario requires — seed, attribute spaces, replication degree and the
// frontier cache. Execute and the armada-load command both build their
// network from it, so a scenario can never run against a mismatched one.
func (s Scenario) NetworkOptions() []armada.Option {
	opts := []armada.Option{
		armada.WithSeed(s.Seed),
		armada.WithAttributes(s.Attrs...),
		armada.WithReplication(s.Replicas),
	}
	if s.FrontierCache > 0 {
		opts = append(opts, armada.WithFrontierCache(s.FrontierCache))
	}
	if s.ShortcutTable > 0 {
		opts = append(opts, armada.WithShortcutTable(s.ShortcutTable))
	}
	if s.LoadControl {
		opts = append(opts, armada.WithLoadControl(armada.LoadControlConfig{
			SplitThreshold: s.SplitThreshold,
			MaxGrowth:      s.MaxGrowth,
			Migrate:        true,
		}))
	}
	if s.FlightRecorder > 0 {
		opts = append(opts, armada.WithFlightRecorder(s.FlightRecorder))
	}
	if s.SlowQueryLog > 0 {
		opts = append(opts, armada.WithDiagnostics(armada.DiagnosticsConfig{
			SlowLogCapacity: s.SlowQueryLog,
			SlowThreshold:   s.SlowThreshold,
		}))
	}
	return opts
}

// Normalize returns the scenario with every zero field defaulted, and an
// ErrBadScenario error when the result is not executable — the same
// preparation New and Execute apply internally. Callers that build the
// network themselves use it to see the effective peer count, seed and
// attribute spaces.
func (s Scenario) Normalize() (Scenario, error) {
	s = s.withDefaults()
	return s, s.validate()
}

// validate checks a defaults-filled scenario.
func (s Scenario) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadScenario, fmt.Sprintf(format, args...))
	}
	if s.Peers < 3 {
		return bad("peers %d < 3", s.Peers)
	}
	for i, w := range s.Mix.weights() {
		if w < 0 {
			return bad("negative weight for %v", OpKind(i))
		}
	}
	if s.Mix.total() <= 0 {
		return bad("operation mix is empty")
	}
	if s.Ops <= 0 && s.Duration <= 0 {
		return bad("need a stop condition: Ops or Duration")
	}
	if s.Replicas < 1 || s.Replicas > 16 {
		return bad("replication degree %d outside [1, 16]", s.Replicas)
	}
	if s.Ops < 0 || s.Duration < 0 || s.Preload < 0 {
		return bad("negative Ops, Duration or Preload")
	}
	if s.Keys.Kind == KeyZipf && s.Keys.ZipfS <= 1 {
		return bad("Zipf exponent %v must exceed 1", s.Keys.ZipfS)
	}
	if s.Keys.Kind == KeyHotspot &&
		(s.Keys.HotFraction <= 0 || s.Keys.HotFraction > 1 ||
			s.Keys.HotWeight < 0 || s.Keys.HotWeight > 1) {
		return bad("hotspot fraction %v / weight %v out of range", s.Keys.HotFraction, s.Keys.HotWeight)
	}
	if s.RangeSize.MinFrac < 0 || s.RangeSize.MaxFrac > 1 || s.RangeSize.MinFrac > s.RangeSize.MaxFrac {
		return bad("range-size fractions [%v, %v] out of order", s.RangeSize.MinFrac, s.RangeSize.MaxFrac)
	}
	if s.Arrival.Workers < 1 {
		return bad("workers %d < 1", s.Arrival.Workers)
	}
	if s.Arrival.RatePerSec < 0 || s.Arrival.Think < 0 {
		return bad("negative arrival rate or think time")
	}
	if s.Arrival.QueueCap < 0 {
		return bad("negative arrival queue cap")
	}
	if s.PageLimit < 1 && s.Mix.RangePaged > 0 {
		return bad("range-paged weight set but page limit = %d", s.PageLimit)
	}
	if s.FrontierCache < 0 {
		return bad("negative frontier cache capacity %d", s.FrontierCache)
	}
	if s.RangeBuckets < 0 {
		return bad("negative range buckets %d", s.RangeBuckets)
	}
	if s.ShortcutTable < 0 {
		return bad("negative shortcut table capacity %d", s.ShortcutTable)
	}
	if s.SplitThreshold < 0 {
		return bad("negative split threshold %v", s.SplitThreshold)
	}
	if s.SplitThreshold > 0 && !s.LoadControl {
		return bad("split threshold %v set without load control", s.SplitThreshold)
	}
	if s.MaxGrowth < 0 {
		return bad("negative load-control growth cap %d", s.MaxGrowth)
	}
	if s.MaxGrowth > 0 && !s.LoadControl {
		return bad("growth cap %d set without load control", s.MaxGrowth)
	}
	if s.FlightRecorder < 0 {
		return bad("negative flight recorder capacity %d", s.FlightRecorder)
	}
	if s.SlowQueryLog < 0 {
		return bad("negative slow-query log capacity %d", s.SlowQueryLog)
	}
	if s.SlowThreshold < 0 {
		return bad("negative slow-query threshold %v", s.SlowThreshold)
	}
	if s.SlowThreshold > 0 && s.SlowQueryLog == 0 {
		return bad("slow threshold %v set without a slow-query log", s.SlowThreshold)
	}
	if s.HotDrift < 0 {
		return bad("negative hot drift %v", s.HotDrift)
	}
	if s.HotDrift > 0 && s.Keys.Kind != KeyHotspot {
		return bad("hot drift requires the hotspot key distribution, got %v", s.Keys.Kind)
	}
	if s.Churn.JoinPerSec < 0 || s.Churn.LeavePerSec < 0 || s.Churn.FailPerSec < 0 {
		return bad("negative churn rate")
	}
	if s.TopK < 1 && s.Mix.TopK > 0 {
		return bad("top-k weight set but K = %d", s.TopK)
	}
	for i, a := range s.Attrs {
		if !(a.Low < a.High) {
			return bad("attribute %d space [%v, %v]", i, a.Low, a.High)
		}
	}
	return nil
}
