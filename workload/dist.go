package workload

import (
	"math"
	"math/rand"
	"time"

	"armada"
)

// zipfBuckets discretizes an attribute space for Zipf rank sampling; rank
// r maps to the r-th bucket from the low end of the space.
const zipfBuckets = 1 << 14

// sampler holds one worker's private randomness and the scenario's
// distributions, so drawing never contends across workers.
type sampler struct {
	rng  *rand.Rand
	sc   *Scenario
	zipf *rand.Zipf
	cum  [numOps]float64 // cumulative mix weights
	// start anchors the drifting hotspot (Scenario.HotDrift): all workers'
	// samplers are created together at run start, so they agree on the hot
	// interval's current position to within sampler-construction time.
	start time.Time
}

func newSampler(sc *Scenario, seed int64) *sampler {
	rng := rand.New(rand.NewSource(seed))
	s := &sampler{rng: rng, sc: sc, start: time.Now()}
	if sc.Keys.Kind == KeyZipf {
		s.zipf = rand.NewZipf(rng, sc.Keys.ZipfS, 1, zipfBuckets-1)
	}
	total := 0.0
	for i, w := range sc.Mix.weights() {
		total += w
		s.cum[i] = total
	}
	return s
}

// nextOp draws one operation kind with probability proportional to its
// mix weight.
func (s *sampler) nextOp() OpKind {
	x := s.rng.Float64() * s.cum[numOps-1]
	for i, c := range s.cum {
		if x < c {
			return OpKind(i)
		}
	}
	return OpKind(numOps - 1)
}

// frac draws a position in [0, 1) according to the key distribution.
func (s *sampler) frac() float64 {
	switch s.sc.Keys.Kind {
	case KeyZipf:
		// Rank 0 is the hottest bucket; jitter uniformly within it.
		return (float64(s.zipf.Uint64()) + s.rng.Float64()) / zipfBuckets
	case KeyHotspot:
		if s.rng.Float64() < s.sc.Keys.HotWeight {
			return s.hotLow() + s.rng.Float64()*s.sc.Keys.HotFraction
		}
		return s.rng.Float64()
	default:
		return s.rng.Float64()
	}
}

// hotLow returns the hot interval's current low edge in [0, 1): pinned at
// 0 without drift, sweeping the whole space once per HotDrift period
// (wrapping) otherwise. The sweep spans 1 − HotFraction so the interval
// never clips at the high end — its width is constant throughout.
func (s *sampler) hotLow() float64 {
	d := s.sc.HotDrift
	if d <= 0 {
		return 0
	}
	turns := time.Since(s.start).Seconds() / d.Seconds()
	return (turns - math.Floor(turns)) * (1 - s.sc.Keys.HotFraction)
}

// value draws one attribute value.
func (s *sampler) value(space armada.AttributeSpace) float64 {
	return space.Low + s.frac()*(space.High-space.Low)
}

// values draws one value per configured attribute.
func (s *sampler) values() []float64 {
	vs := make([]float64, len(s.sc.Attrs))
	for i, a := range s.sc.Attrs {
		vs[i] = s.value(a)
	}
	return vs
}

// ranges draws a range query: every attribute gets an interval centered on
// a drawn key with width a RangeSize fraction of its space. With all
// false, only the first attribute is constrained (the paper's PIRA shape)
// and the remaining spaces are queried whole; with all true every
// attribute is constrained (MIRA).
func (s *sampler) ranges(all bool) []armada.Range {
	rs := make([]armada.Range, len(s.sc.Attrs))
	for i, a := range s.sc.Attrs {
		if i > 0 && !all {
			rs[i] = armada.Range{Low: a.Low, High: a.High}
			continue
		}
		width := (s.sc.RangeSize.MinFrac +
			s.rng.Float64()*(s.sc.RangeSize.MaxFrac-s.sc.RangeSize.MinFrac)) * (a.High - a.Low)
		center := s.value(a)
		lo, hi := center-width/2, center+width/2
		if lo < a.Low {
			lo = a.Low
		}
		if hi > a.High {
			hi = a.High
		}
		if b := s.sc.RangeBuckets; b > 0 {
			// Snap the bounds outward to a b-bucket grid: nearby draws
			// collapse onto byte-identical regions, so hot scans repeat
			// exactly (what frontier caching rewards) instead of merely
			// overlapping.
			step := (a.High - a.Low) / float64(b)
			lo = a.Low + math.Floor((lo-a.Low)/step)*step
			hi = a.Low + math.Ceil((hi-a.Low)/step)*step
			if hi <= lo {
				hi = lo + step
			}
			if hi > a.High {
				hi = a.High
			}
		}
		rs[i] = armada.Range{Low: lo, High: hi}
	}
	return rs
}
