package workload

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDelayBoundViolationsZero is the conformance property test: across
// scaled-down presets covering uniform, skewed and churning traffic, no
// query may ever reach the paper's 2·log₂N hop bound.
func TestDelayBoundViolationsZero(t *testing.T) {
	for _, name := range []string{"steady", "zipf-hot", "churn-heavy"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := Preset(name)
			if !ok {
				t.Fatalf("preset %q missing", name)
			}
			// Scale the preset down; the property must hold at any size.
			sc.Peers = 150
			sc.Preload = 600
			sc.Ops = 800
			rep, err := Execute(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if rep.DelayBoundViolations != 0 {
				t.Errorf("delay_bound_violations = %d, want 0", rep.DelayBoundViolations)
			}
			if rep.Metrics["query_delay_vs_bound_count"] == 0 {
				t.Error("conformance histogram never sampled")
			}
		})
	}
}

// TestReportCarriesMetrics: the report's full-run metrics block and the
// interval snapshots' deltas are populated and delta-consistent.
func TestReportCarriesMetrics(t *testing.T) {
	sc := small()
	sc.Interval = 20 * time.Millisecond
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"engine_messages_total", "engine_deliveries_total", "engine_descents_total"} {
		if rep.Metrics[name] <= 0 {
			t.Errorf("report metrics[%s] = %d, want > 0", name, rep.Metrics[name])
		}
	}
	if _, ok := rep.Metrics["delay_bound_violations"]; !ok {
		t.Error("report metrics lack delay_bound_violations")
	}
	// Interval deltas must sum to the full-run delta per counter.
	sums := map[string]int64{}
	var sampled int
	for _, snap := range rep.Intervals {
		for k, v := range snap.Metrics {
			sums[k] += v
		}
		if snap.LatencyMs.P99 > 0 {
			sampled++
		}
	}
	if sampled == 0 {
		t.Error("no interval carried latency quantiles")
	}
	for _, name := range []string{"engine_messages_total", "engine_descents_total"} {
		if sums[name] != rep.Metrics[name] {
			t.Errorf("interval deltas of %s sum to %d, full run says %d", name, sums[name], rep.Metrics[name])
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"metrics"`, `"delay_bound_violations"`, `"latency_ms"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON lacks %s", key)
		}
	}
}

// TestHotDriftCapMigrations: with the growth cap clamped, the controller
// must relieve the drifting hotspot through ownership migration.
func TestHotDriftCapMigrations(t *testing.T) {
	if testing.Short() {
		t.Skip("3s wall-clock run")
	}
	sc, ok := Preset("hot-drift-cap")
	if !ok {
		t.Fatal("preset hot-drift-cap missing")
	}
	sc.Duration = 3 * time.Second
	sc.MaxGrowth = 2
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadControl == nil {
		t.Fatal("no load_control block")
	}
	if rep.LoadControl.Migrations == 0 {
		t.Errorf("migrations = 0 under a growth cap of %d (auto_splits = %d)",
			sc.MaxGrowth, rep.LoadControl.AutoSplits)
	}
	if rep.DelayBoundViolations != 0 {
		t.Errorf("delay_bound_violations = %d under load control, want 0", rep.DelayBoundViolations)
	}
}

func TestObsScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Ops: 10, LoadControl: true, MaxGrowth: -1},
		{Ops: 10, MaxGrowth: 4}, // growth cap without load control
		{Ops: 10, FlightRecorder: -1},
	}
	for i, sc := range bad {
		if err := sc.withDefaults().validate(); !errors.Is(err, ErrBadScenario) {
			t.Errorf("bad scenario %d: err = %v, want ErrBadScenario", i, err)
		}
	}
	good := Scenario{Ops: 10, FlightRecorder: 1024}
	if err := good.withDefaults().validate(); err != nil {
		t.Errorf("flight-recorder scenario rejected: %v", err)
	}
}
