package workload

import (
	"armada"
	"armada/internal/stats"
)

// Quantiles summarizes one metric's distribution.
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func quantilesOf(s *stats.Sample) Quantiles {
	return Quantiles{
		Mean: s.Mean(),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

// OpReport summarizes one operation kind over the whole run.
type OpReport struct {
	// Count is the number of completed operations; Errors how many of
	// them failed. Misses counts availability misses — unpublishes and
	// lookups whose target object was already gone because crash churn
	// lost it (unreplicated networks only, in the absence of faults).
	// They are an expected outcome under churn, not a fault, so they are
	// kept strictly apart from Errors; replication (Scenario.Replicas ≥ 2)
	// is measured precisely by driving them to zero.
	Count  int `json:"count"`
	Errors int `json:"errors"`
	Misses int `json:"misses,omitempty"`
	// Cancelled counts operations cut short by run shutdown (context
	// cancellation mid-query or mid-walk). They are neither errors nor
	// samples — a partial walk recorded normally would skew the page and
	// match quantiles low — and are excluded from Count.
	Cancelled int `json:"cancelled,omitempty"`
	// DescentsSaved counts queries (pages, for range-paged) seeded from a
	// captured descent frontier instead of descending the issuer's
	// forward routing tree; FrontierHits is the subset seeded from the
	// network's shared frontier cache (WithFrontierCache) rather than the
	// walk's own session capture.
	FrontierHits  int `json:"frontier_hits,omitempty"`
	DescentsSaved int `json:"descents_saved,omitempty"`
	// ShortcutHits counts queries (pages, for range-paged) the learned
	// shortcut table routed in one direct hop per destination instead of a
	// descent (Scenario.ShortcutTable).
	ShortcutHits int `json:"shortcut_hits,omitempty"`
	// Throughput is Count over the run's wall-clock duration.
	Throughput float64 `json:"throughput_per_sec"`
	// LatencyMs is the wall-clock service latency in milliseconds.
	LatencyMs Quantiles `json:"latency_ms"`
	// HopDelay, Messages and DestPeers are the paper's per-query cost
	// metrics (query kinds only; zero for publish/unpublish).
	HopDelay  Quantiles `json:"hop_delay"`
	Messages  Quantiles `json:"messages"`
	DestPeers Quantiles `json:"dest_peers"`
	// Hops is the realized per-descent hop count — one sample per query,
	// and one per page for range-paged walks (where HopDelay records the
	// walk max instead). This is the metric the shortcut table moves: warm
	// keys drop from ~log N toward 1.
	Hops Quantiles `json:"hops"`
	// Matches is the result-set size distribution (query kinds only; for
	// range-paged operations, the total across the whole walk).
	Matches Quantiles `json:"matches"`
	// Pages, MatchesPerPage and MessagesPerPage describe range-paged
	// walks: how many pages one operation took, how many objects each
	// page carried and how many overlay messages reaching it cost (the
	// session win shows here — frontier-seeded pages beyond the first
	// cost one message per surviving destination instead of a descent).
	// Omitted (all zero) for every other kind.
	Pages           Quantiles `json:"pages,omitzero"`
	MatchesPerPage  Quantiles `json:"matches_per_page,omitzero"`
	MessagesPerPage Quantiles `json:"messages_per_page,omitzero"`
}

// FrontierCacheReport summarizes the shared frontier cache's activity
// during one run (present only when the scenario enables the cache).
type FrontierCacheReport struct {
	// Capacity is the configured entry bound; Entries the count at run
	// end.
	Capacity int `json:"capacity"`
	Entries  int `json:"entries"`
	// Hits and Misses count range-query lookups during the run; Stale is
	// the subset of misses that dropped an entry churn had invalidated.
	// HitRate is Hits/(Hits+Misses).
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Stale   int64   `json:"stale,omitempty"`
	HitRate float64 `json:"hit_rate"`
}

// ShortcutReport summarizes the learned shortcut routing table's activity
// during one run (present only when the scenario enables the table).
type ShortcutReport struct {
	// Capacity is the configured entry bound; Entries the count at run
	// end.
	Capacity int `json:"capacity"`
	Entries  int `json:"entries"`
	// Hits and Misses count route attempts during the run; Stale counts
	// learned entries dropped because churn moved the topology epoch past
	// them; Evicted counts LRU evictions. HitRate is Hits/(Hits+Misses).
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Stale   int64   `json:"stale,omitempty"`
	Evicted int64   `json:"evicted,omitempty"`
	HitRate float64 `json:"hit_rate"`
}

// MemoryReport records the network's steady-state memory footprint and the
// cost of bringing it up — the scale metrics the 100k-peer runs are judged
// by. Heap numbers are taken after a forced GC, before preload traffic, so
// they measure the data plane (peers, routing tables, indexes), not the
// workload's objects.
type MemoryReport struct {
	// HeapAllocBytes is the live heap after the network is built;
	// BytesPerPeer divides it by the network size.
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	BytesPerPeer   float64 `json:"bytes_per_peer"`
	// BuildMs is the wall-clock cost of constructing the network (zero when
	// the caller reused an existing one); SnapshotLoadMs the cost of
	// restoring it from a warm-start snapshot instead (zero on cold builds).
	BuildMs        float64 `json:"build_ms,omitempty"`
	SnapshotLoadMs float64 `json:"snapshot_load_ms,omitempty"`
}

// EnvReport records the execution environment a report was produced in.
// Latency budgets are only comparable within one environment; the compare
// gate (armada-load -compare) refuses to gate across a GOMAXPROCS
// mismatch and warns loudly on the rest.
type EnvReport struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// HotPeer is one entry of the delivery-skew hottest-peers list.
type HotPeer struct {
	Peer string `json:"peer"`
	// Deliveries is the peer's delivery count during the run; Share its
	// fraction of all deliveries.
	Deliveries int64   `json:"deliveries"`
	Share      float64 `json:"share"`
}

// SkewReport summarizes how evenly query deliveries spread across peers
// during one run — the balance metric load control is judged by. Max and
// p99 are per-peer delivery counts divided by the mean over all peers
// present at run end (1.0 = perfectly even).
type SkewReport struct {
	MeanDeliveries float64 `json:"mean_deliveries"`
	MaxOverMean    float64 `json:"max_over_mean"`
	P99OverMean    float64 `json:"p99_over_mean"`
	// HotPeers lists the highest-delivery peers, hottest first.
	HotPeers []HotPeer `json:"hot_peers,omitempty"`
}

// LoadControlReport counts the adaptive load controller's actions during
// one run (present only when the scenario enables load control).
type LoadControlReport struct {
	// AutoSplits counts hot regions split; Migrations ownership moves
	// (cold donor leaves + hot region splits); CascadeSplits the extra
	// invariant-restoring splits those actions needed; FailedActions the
	// attempts the network rejected.
	AutoSplits    int64 `json:"auto_splits"`
	Migrations    int64 `json:"migrations"`
	CascadeSplits int64 `json:"cascade_splits,omitempty"`
	FailedActions int64 `json:"failed_actions,omitempty"`
}

// ChurnReport counts the churn events of one run.
type ChurnReport struct {
	Joins  int `json:"joins"`
	Leaves int `json:"leaves"`
	Fails  int `json:"fails"`
	// Skipped counts events suppressed by the MinPeers/MaxPeers guards.
	Skipped int `json:"skipped,omitempty"`
	Errors  int `json:"errors,omitempty"`
}

// Snapshot is one periodic observation of the running workload. The final
// snapshot (at the run's end) is always present.
type Snapshot struct {
	// AtSec is the snapshot time relative to the run start.
	AtSec float64 `json:"at_sec"`
	// Ops and Errors are the completions in this interval; Throughput is
	// their rate over the interval.
	Ops        int     `json:"ops"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_per_sec"`
	// Peers is the network size at snapshot time.
	Peers int `json:"peers"`
	// LatencyMs summarizes the wall-clock latencies of the operations that
	// completed in this interval (all kinds pooled) — interval-local, not
	// run-cumulative, so a latency regression shows in the interval it
	// happens.
	LatencyMs Quantiles `json:"latency_ms,omitzero"`
	// Metrics holds this interval's growth of every network counter that
	// moved (armada.MetricValues deltas; unchanged counters are omitted).
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Report is the outcome of one workload run. It marshals to the JSON
// schema BENCH_*.json entries use.
type Report struct {
	Scenario   string `json:"scenario"`
	Seed       int64  `json:"seed"`
	Attributes int    `json:"attributes"`
	// Replicas is the network's replication degree (1 = unreplicated).
	Replicas   int `json:"replicas"`
	StartPeers int `json:"start_peers"`
	EndPeers   int `json:"end_peers"`
	// DurationSec is the measured wall-clock run time (excluding network
	// build and preload).
	DurationSec float64 `json:"duration_sec"`
	TotalOps    int     `json:"total_ops"`
	TotalErrors int     `json:"total_errors"`
	// TotalCancelled totals the per-op Cancelled counts: operations cut
	// short by run shutdown, excluded from TotalOps and every sample.
	TotalCancelled int `json:"total_cancelled,omitempty"`
	// Throughput is TotalOps / DurationSec across all kinds.
	Throughput float64 `json:"throughput_per_sec"`
	// Ops maps operation-kind name → summary; kinds with zero weight are
	// absent.
	Ops   map[string]OpReport `json:"ops"`
	Churn ChurnReport         `json:"churn"`
	// QueueWaitMs is the open-loop dispatch queue wait — the time between
	// an operation's Poisson arrival and a worker starting it — and
	// Dropped the number of arrivals shed because the bounded queue was
	// full. Both zero (and the former omitted) for closed-loop runs.
	QueueWaitMs Quantiles `json:"queue_wait_ms,omitzero"`
	Dropped     int       `json:"dropped,omitempty"`
	// AvailabilityMisses totals the per-op Misses: operations whose target
	// object crash churn had destroyed. Nonzero only without replication.
	AvailabilityMisses int `json:"availability_misses"`
	// ReReplications is how many objects churn repair copied between peers
	// to restore full replica groups during the run (replicated runs only).
	ReReplications int64 `json:"re_replications,omitempty"`
	// ReplicaReads counts query deliveries served by a non-primary
	// replica, and ReplicaReadSpread is the per-query distribution of the
	// fraction of deliveries a replica served (0 = all primary, 1 = all
	// spread). Both present only on replicated runs.
	ReplicaReads      int64     `json:"replica_reads,omitempty"`
	ReplicaReadSpread Quantiles `json:"replica_read_spread,omitzero"`
	// FrontierHits and DescentsSaved total the per-op counters: queries
	// seeded from a cached frontier (skipping even their first descent)
	// and queries seeded from any frontier, session captures included.
	FrontierHits  int `json:"frontier_hits,omitempty"`
	DescentsSaved int `json:"descents_saved,omitempty"`
	// ShortcutHits totals the per-op counters: queries the learned
	// shortcut table routed directly, skipping their descent entirely.
	ShortcutHits int `json:"shortcut_hits,omitempty"`
	// FrontierCache summarizes the shared cache's run activity; absent
	// when the scenario runs without one.
	FrontierCache *FrontierCacheReport `json:"frontier_cache,omitempty"`
	// Shortcut summarizes the learned shortcut table's run activity;
	// absent when the scenario runs without one.
	Shortcut *ShortcutReport `json:"shortcut,omitempty"`
	// DeliverySkew summarizes the per-peer delivery balance of the run.
	DeliverySkew *SkewReport `json:"delivery_skew,omitempty"`
	// LoadControl counts the load controller's actions during the run;
	// absent when the scenario runs without load control.
	LoadControl *LoadControlReport `json:"load_control,omitempty"`
	// Metrics is the full-run growth of every network counter
	// (armada.MetricValues at run end minus run start, all keys), the
	// machine-readable face of the run: engine message and delivery
	// totals, cache hits, controller actions, conformance histograms.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// DelayBoundViolations counts queries whose realized hop delay reached
	// the paper's 2·log₂N bound during the run. The theorem says zero;
	// always present so CI can assert exactly that.
	DelayBoundViolations int64 `json:"delay_bound_violations"`
	// TailAttribution breaks the run's >p99 queries down by classified
	// cause (fractions sum to 1); SLO is the delay-bound burn-rate
	// monitor's closing state. Both are absent when the scenario runs
	// without a slow-query log (Scenario.SlowQueryLog).
	TailAttribution *armada.TailAttribution `json:"tail_attribution,omitempty"`
	SLO             *armada.SLOStatus       `json:"slo,omitempty"`
	// Memory records the built network's heap footprint and build (or
	// snapshot-load) wall-clock cost.
	Memory *MemoryReport `json:"memory,omitempty"`
	// Env records the environment the report was produced in; -compare
	// gates on it.
	Env       *EnvReport `json:"env,omitempty"`
	Intervals []Snapshot `json:"intervals"`
}
