package workload

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"armada"
)

// small returns a quick closed-loop scenario for tests.
func small() Scenario {
	return Scenario{
		Name:    "test",
		Peers:   80,
		Seed:    11,
		Preload: 200,
		Ops:     300,
		Mix:     Mix{Publish: 10, Unpublish: 8, Lookup: 10, Range: 50, TopK: 5},
		Arrival: Arrival{Workers: 4},
	}
}

func TestPresetsValid(t *testing.T) {
	ps := Presets()
	if len(ps) != 11 {
		t.Fatalf("presets = %d, want 11", len(ps))
	}
	for _, p := range ps {
		sc := p.withDefaults()
		if err := sc.validate(); err != nil {
			t.Errorf("preset %q invalid: %v", p.Name, err)
		}
		if sc.Ops <= 0 && sc.Duration <= 0 {
			t.Errorf("preset %q has no stop condition", p.Name)
		}
	}
	if _, ok := Preset("churn-heavy"); !ok {
		t.Error("Preset(churn-heavy) not found")
	}
	// Returned presets are detached copies: mutating one must not corrupt
	// the package-level table.
	first, _ := Preset("mixed")
	first.Attrs[0].High = -1
	second, _ := Preset("mixed")
	if second.Attrs[0].High == -1 {
		t.Error("Preset returns aliased Attrs; mutation leaked into the preset table")
	}
	if _, ok := Preset("no-such"); ok {
		t.Error("Preset(no-such) found")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Peers: 2, Ops: 10},
		{Mix: Mix{Range: -1}, Ops: 10},
		{Ops: 0, Duration: 0},
		{Keys: KeyDist{Kind: KeyZipf, ZipfS: 0.5}, Ops: 10},
		{RangeSize: SizeDist{MinFrac: 0.5, MaxFrac: 0.1}, Ops: 10},
		{Churn: Churn{JoinPerSec: -1}, Ops: 10},
	}
	for i, sc := range bad {
		if err := sc.withDefaults().validate(); !errors.Is(err, ErrBadScenario) {
			t.Errorf("bad scenario %d: err = %v, want ErrBadScenario", i, err)
		}
	}
	if err := small().withDefaults().validate(); err != nil {
		t.Errorf("small scenario invalid: %v", err)
	}
}

func TestNewRejectsAttributeMismatch(t *testing.T) {
	net, err := armada.NewNetwork(50, armada.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sc := small()
	sc.Attrs = []armada.AttributeSpace{{Low: 0, High: 1}, {Low: 0, High: 1}}
	if _, err := New(net, sc); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("attribute mismatch: err = %v, want ErrBadScenario", err)
	}
}

func TestExecuteClosedLoop(t *testing.T) {
	rep, err := Execute(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != 300 {
		t.Errorf("total ops = %d, want 300", rep.TotalOps)
	}
	if rep.TotalErrors != 0 {
		t.Errorf("total errors = %d, want 0", rep.TotalErrors)
	}
	if rep.Throughput <= 0 || rep.DurationSec <= 0 {
		t.Errorf("throughput/duration = %v/%v", rep.Throughput, rep.DurationSec)
	}
	if rep.StartPeers != 80 || rep.EndPeers != 80 {
		t.Errorf("peers = %d → %d, want stable 80", rep.StartPeers, rep.EndPeers)
	}
	sum := 0
	for _, op := range rep.Ops {
		sum += op.Count
	}
	if sum != rep.TotalOps {
		t.Errorf("per-kind counts sum to %d, total %d", sum, rep.TotalOps)
	}
	rng, ok := rep.Ops["range"]
	if !ok {
		t.Fatal("no range ops recorded")
	}
	if rng.LatencyMs.P50 <= 0 || rng.LatencyMs.P99 < rng.LatencyMs.P50 {
		t.Errorf("range latency quantiles inconsistent: %+v", rng.LatencyMs)
	}
	if rng.HopDelay.Max <= 0 || rng.Messages.Mean <= 0 || rng.DestPeers.Mean <= 0 {
		t.Errorf("range hop metrics missing: %+v %+v %+v", rng.HopDelay, rng.Messages, rng.DestPeers)
	}
	if len(rep.Intervals) == 0 {
		t.Error("no interval snapshots")
	}
	last := rep.Intervals[len(rep.Intervals)-1]
	if last.Peers != 80 {
		t.Errorf("final snapshot peers = %d", last.Peers)
	}
	if rep.Memory == nil {
		t.Fatal("no memory block")
	}
	if rep.Memory.HeapAllocBytes == 0 || rep.Memory.BytesPerPeer <= 0 {
		t.Errorf("memory block not measured: %+v", rep.Memory)
	}
	if rep.Memory.BuildMs <= 0 {
		t.Errorf("Execute did not record build time: %+v", rep.Memory)
	}
}

func TestExecuteOpenLoop(t *testing.T) {
	sc := small()
	sc.Ops = 150
	sc.Arrival = Arrival{Workers: 4, RatePerSec: 20000}
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	// The dispatcher generates exactly Ops arrivals; under overload some
	// are shed on the bounded queue and counted, never silently lost.
	if got := rep.TotalOps + rep.Dropped; got != 150 {
		t.Errorf("completed %d + dropped %d = %d arrivals, want 150", rep.TotalOps, rep.Dropped, got)
	}
	if rep.TotalOps == 0 {
		t.Error("open-loop run completed no ops")
	}
	// Every admitted arrival contributes a queue-wait sample.
	if rep.QueueWaitMs.Max < 0 {
		t.Errorf("negative queue wait: %+v", rep.QueueWaitMs)
	}
}

func TestExecuteOpenLoopUnderCapacity(t *testing.T) {
	// At a rate the workers can easily absorb nothing may be dropped. The
	// queue cap is raised well past the op budget so a scheduler stall on
	// a loaded CI box cannot overflow the queue and flake the assertion.
	sc := small()
	sc.Ops = 50
	sc.Arrival = Arrival{Workers: 4, RatePerSec: 200, QueueCap: 64}
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != 50 || rep.Dropped != 0 {
		t.Errorf("under-capacity run: completed %d (want 50), dropped %d (want 0)", rep.TotalOps, rep.Dropped)
	}
}

func TestExecuteDurationStop(t *testing.T) {
	sc := small()
	sc.Ops = 0
	sc.Duration = 250 * time.Millisecond
	sc.Interval = 50 * time.Millisecond
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Error("duration-stopped run completed no ops")
	}
	if rep.DurationSec < 0.2 {
		t.Errorf("run lasted %vs, want ≈0.25s", rep.DurationSec)
	}
	if len(rep.Intervals) < 2 {
		t.Errorf("intervals = %d, want periodic snapshots plus final", len(rep.Intervals))
	}
}

func TestExecuteCancelled(t *testing.T) {
	sc := small()
	sc.Ops = 0
	sc.Duration = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := Execute(ctx, sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
}

func TestChurnRunKeepsInvariants(t *testing.T) {
	sc := small()
	sc.Name = "churn-test"
	sc.Peers = 120
	sc.Ops = 400
	// In-process ops finish in microseconds, so slow the workers a touch
	// and churn fast to guarantee events land inside the run window.
	sc.Arrival.Think = 500 * time.Microsecond
	sc.Churn = Churn{JoinPerSec: 1500, LeavePerSec: 1000, FailPerSec: 500, MinPeers: 48}
	net, err := armada.NewNetwork(sc.Peers, armada.WithSeed(sc.Seed))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(net, sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Errorf("query errors under churn = %d, want 0", rep.TotalErrors)
	}
	if rep.Churn.Errors != 0 {
		t.Errorf("churn errors = %d, want 0", rep.Churn.Errors)
	}
	if rep.Churn.Joins+rep.Churn.Leaves+rep.Churn.Fails == 0 {
		t.Error("churn process executed no events; raise rates")
	}
	if err := net.Audit(); err != nil {
		t.Errorf("audit after churn run: %v", err)
	}
	if rep.EndPeers != net.Size() {
		t.Errorf("report end peers %d != network size %d", rep.EndPeers, net.Size())
	}
}

func TestUnpublishFallbackSustainsMix(t *testing.T) {
	sc := Scenario{
		Name:    "delete-only",
		Peers:   60,
		Seed:    5,
		Preload: 20,
		Ops:     100,
		Mix:     Mix{Unpublish: 1},
		Arrival: Arrival{Workers: 2},
	}
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	un, pub := rep.Ops["unpublish"], rep.Ops["publish"]
	if un.Count == 0 || pub.Count == 0 {
		t.Fatalf("counts unpublish=%d publish=%d; fallback should record publishes", un.Count, pub.Count)
	}
	if un.Count+pub.Count != 100 {
		t.Errorf("counts sum to %d, want 100", un.Count+pub.Count)
	}
	if rep.TotalErrors != 0 {
		t.Errorf("errors = %d, want 0", rep.TotalErrors)
	}
}

func TestReportJSONSchema(t *testing.T) {
	sc := small()
	sc.Ops = 120
	rep, err := Execute(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "start_peers", "end_peers", "duration_sec",
		"total_ops", "throughput_per_sec", "ops", "churn", "intervals"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	ops, ok := m["ops"].(map[string]any)
	if !ok || len(ops) == 0 {
		t.Fatalf("ops section missing or empty: %v", m["ops"])
	}
	rngOp, ok := ops["range"].(map[string]any)
	if !ok {
		t.Fatal("ops.range missing")
	}
	for _, key := range []string{"count", "throughput_per_sec", "latency_ms", "hop_delay", "messages", "dest_peers"} {
		if _, ok := rngOp[key]; !ok {
			t.Errorf("ops.range missing %q", key)
		}
	}
	lat, ok := rngOp["latency_ms"].(map[string]any)
	if !ok {
		t.Fatal("latency_ms not an object")
	}
	for _, key := range []string{"mean", "p50", "p95", "p99", "max"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("latency_ms missing %q", key)
		}
	}
}

func TestKeyDistributions(t *testing.T) {
	for _, kind := range []KeyDistKind{KeyUniform, KeyZipf, KeyHotspot} {
		sc := small()
		sc.Keys = KeyDist{Kind: kind}
		sc = sc.withDefaults()
		smp := newSampler(&sc, 99)
		space := sc.Attrs[0]
		for i := 0; i < 2000; i++ {
			v := smp.value(space)
			if v < space.Low || v > space.High {
				t.Fatalf("%v draw %v outside [%v, %v]", kind, v, space.Low, space.High)
			}
		}
		for i := 0; i < 200; i++ {
			for _, r := range smp.ranges(true) {
				if r.Low > r.High {
					t.Fatalf("%v range [%v, %v] inverted", kind, r.Low, r.High)
				}
			}
		}
	}
	// Zipf must actually skew low.
	sc := small()
	sc.Keys = KeyDist{Kind: KeyZipf}
	sc = sc.withDefaults()
	smp := newSampler(&sc, 7)
	low := 0
	const draws = 4000
	for i := 0; i < draws; i++ {
		if smp.frac() < 0.1 {
			low++
		}
	}
	if float64(low)/draws < 0.5 {
		t.Errorf("zipf: only %d/%d draws in the low decile", low, draws)
	}
}
