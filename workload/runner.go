package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"armada"
	"armada/internal/stats"
)

// Runner executes one Scenario against a live network.
type Runner struct {
	net *armada.Network
	sc  Scenario

	// OnSnapshot, when non-nil, observes every interval snapshot as it is
	// taken (progress reporting). It is called from the snapshot
	// goroutine.
	OnSnapshot func(Snapshot)

	// BuildMs and SnapshotLoadMs, when set by the caller before Run, are
	// copied into the report's memory block: the wall-clock cost of
	// building the network cold or restoring it from a warm-start
	// snapshot. Execute fills BuildMs itself; armada-load fills whichever
	// path it took.
	BuildMs        float64
	SnapshotLoadMs float64
}

// New builds a Runner for the scenario (defaults filled, then validated)
// against the given network, which must be configured with as many
// attributes as the scenario declares and with the scenario's replication
// degree.
func New(net *armada.Network, sc Scenario) (*Runner, error) {
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if len(sc.Attrs) != net.Attributes() {
		return nil, fmt.Errorf("%w: scenario declares %d attributes, network has %d",
			ErrBadScenario, len(sc.Attrs), net.Attributes())
	}
	if sc.Replicas != net.Replicas() {
		return nil, fmt.Errorf("%w: scenario declares %d replicas, network has %d",
			ErrBadScenario, sc.Replicas, net.Replicas())
	}
	if cs, ok := net.FrontierCacheStats(); (sc.FrontierCache > 0) != ok ||
		(ok && cs.Capacity != sc.FrontierCache) {
		return nil, fmt.Errorf("%w: scenario declares a frontier cache of %d, network has %d",
			ErrBadScenario, sc.FrontierCache, cs.Capacity)
	}
	if ss, ok := net.ShortcutTableStats(); (sc.ShortcutTable > 0) != ok ||
		(ok && ss.Capacity != sc.ShortcutTable) {
		return nil, fmt.Errorf("%w: scenario declares a shortcut table of %d, network has %d",
			ErrBadScenario, sc.ShortcutTable, ss.Capacity)
	}
	if _, ok := net.LoadReport(); ok != sc.LoadControl {
		return nil, fmt.Errorf("%w: scenario load control %v, network load control %v",
			ErrBadScenario, sc.LoadControl, ok)
	}
	if ok := net.DiagnosticsEnabled(); ok != (sc.SlowQueryLog > 0) {
		return nil, fmt.Errorf("%w: scenario slow-query log %d, network diagnostics %v",
			ErrBadScenario, sc.SlowQueryLog, ok)
	}
	return &Runner{net: net, sc: sc}, nil
}

// Execute builds the scenario's network (sc.Peers peers, sc.Attrs spaces,
// sc.Seed, sc.Replicas), then runs the scenario on it — the one-call entry
// point the armada-load command uses.
func Execute(ctx context.Context, sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	buildStart := time.Now()
	net, err := armada.NewNetwork(sc.Peers, sc.NetworkOptions()...)
	if err != nil {
		return nil, err
	}
	buildMs := float64(time.Since(buildStart)) / float64(time.Millisecond)
	defer net.Close()
	r, err := New(net, sc)
	if err != nil {
		return nil, err
	}
	r.BuildMs = buildMs
	return r.Run(ctx)
}

// Run preloads the scenario's objects, then drives the workload until the
// stop condition (op count or duration) is reached, and returns the
// Report. Cancelling ctx aborts the run with ctx's error; the scenario's
// own Duration expiring is a normal completion.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc := &r.sc

	// Measure the data plane's settled footprint before preload pumps
	// workload objects into it: live heap after a forced collection, per
	// peer. This is the number the scale budget (CI) gates on.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mem := &MemoryReport{
		HeapAllocBytes: ms.HeapAlloc,
		BuildMs:        r.BuildMs,
		SnapshotLoadMs: r.SnapshotLoadMs,
	}
	if size := r.net.Size(); size > 0 {
		mem.BytesPerPeer = float64(ms.HeapAlloc) / float64(size)
	}

	pool := &keyPool{}
	if err := r.preload(pool); err != nil {
		return nil, fmt.Errorf("workload: preload: %w", err)
	}

	// runCtx stops the traffic; bgCtx keeps churn and snapshots running
	// until the workers have drained.
	runCtx := ctx
	if sc.Duration > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, sc.Duration)
		defer cancel()
	}
	bgCtx, stopBG := context.WithCancel(ctx)
	defer stopBG()

	startMetrics := r.net.MetricValues()
	coll := newCollector(r.sc.Replicas > 1, startMetrics)
	startPeers := r.net.Size()
	startReRepl := r.net.ReReplications()
	startCache, trackCache := r.net.FrontierCacheStats()
	startShort, trackShort := r.net.ShortcutTableStats()
	startLC, trackLC := r.net.LoadReport()
	startLoads := make(map[string]int64)
	for _, pl := range r.net.PeerLoads() {
		startLoads[pl.Peer] = pl.Deliveries
	}
	start := time.Now()

	var bg sync.WaitGroup
	if sc.Churn.Enabled() {
		bg.Add(1)
		go func() {
			defer bg.Done()
			r.churn(bgCtx, coll)
		}()
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		r.snapshots(bgCtx, start, coll)
	}()

	acquire := r.arrivals(runCtx, coll)
	var workers sync.WaitGroup
	for w := 0; w < sc.Arrival.Workers; w++ {
		workers.Add(1)
		go func(id int) {
			defer workers.Done()
			smp := newSampler(sc, sc.Seed+int64(id)*7919+1)
			for {
				wait, ok := acquire()
				if !ok {
					return
				}
				r.execOp(runCtx, smp, pool, coll, wait)
				if sc.Arrival.Think > 0 {
					sleepCtx(runCtx, sc.Arrival.Think)
				}
			}
		}(w)
	}
	workers.Wait()
	elapsed := time.Since(start)
	stopBG()
	bg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("workload: run aborted: %w", err)
	}
	coll.takeSnapshot(elapsed, r.net.Size(), r.net.MetricValues()) // final snapshot, always present
	rep := r.report(elapsed, startPeers, coll)
	rep.ReReplications = r.net.ReReplications() - startReRepl
	rep.Metrics = metricsDelta(startMetrics, r.net.MetricValues(), false)
	rep.DelayBoundViolations = rep.Metrics["delay_bound_violations"]
	if trackCache {
		// Report this run's slice of the cache counters (the network may
		// be reused across runs).
		end, _ := r.net.FrontierCacheStats()
		fc := &FrontierCacheReport{
			Capacity: end.Capacity,
			Entries:  end.Entries,
			Hits:     end.Hits - startCache.Hits,
			Misses:   end.Misses - startCache.Misses,
			Stale:    end.Stale - startCache.Stale,
		}
		if lookups := fc.Hits + fc.Misses; lookups > 0 {
			fc.HitRate = float64(fc.Hits) / float64(lookups)
		}
		rep.FrontierCache = fc
	}
	if trackShort {
		end, _ := r.net.ShortcutTableStats()
		st := &ShortcutReport{
			Capacity: end.Capacity,
			Entries:  end.Entries,
			Hits:     end.Hits - startShort.Hits,
			Misses:   end.Misses - startShort.Misses,
			Stale:    end.Stale - startShort.Stale,
			Evicted:  end.Evicted - startShort.Evicted,
		}
		if routes := st.Hits + st.Misses; routes > 0 {
			st.HitRate = float64(st.Hits) / float64(routes)
		}
		rep.Shortcut = st
	}
	rep.DeliverySkew = deliverySkew(startLoads, r.net.PeerLoads())
	if trackLC {
		end, _ := r.net.LoadReport()
		rep.LoadControl = &LoadControlReport{
			AutoSplits:    end.AutoSplits - startLC.AutoSplits,
			Migrations:    end.Migrations - startLC.Migrations,
			CascadeSplits: end.CascadeSplits - startLC.CascadeSplits,
			FailedActions: end.FailedActions - startLC.FailedActions,
		}
	}
	if ta, ok := r.net.TailAttributionReport(); ok {
		rep.TailAttribution = &ta
	}
	if slo, ok := r.net.SLOStatusReport(); ok {
		rep.SLO = &slo
	}
	rep.Memory = mem
	rep.Env = &EnvReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	return rep, nil
}

// skewTopN caps the delivery-skew hottest-peers list.
const skewTopN = 5

// deliverySkew computes the run's per-peer delivery balance: each peer
// present at run end contributes its delivery-count growth since run start
// (peers created mid-run contribute their whole count — their counters
// started at zero, or rode along a rename, either way their load belongs
// to the run's hot regions).
func deliverySkew(start map[string]int64, end []armada.PeerLoad) *SkewReport {
	if len(end) == 0 {
		return nil
	}
	deltas := make([]int64, 0, len(end))
	hot := make([]HotPeer, 0, len(end))
	var total int64
	for _, pl := range end {
		d := pl.Deliveries - start[pl.Peer]
		if d < 0 {
			d = 0
		}
		deltas = append(deltas, d)
		hot = append(hot, HotPeer{Peer: pl.Peer, Deliveries: d})
		total += d
	}
	rep := &SkewReport{MeanDeliveries: float64(total) / float64(len(deltas))}
	if total == 0 {
		return rep
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
	p99 := deltas[(99*(len(deltas)-1)+50)/100]
	rep.MaxOverMean = float64(deltas[len(deltas)-1]) / rep.MeanDeliveries
	rep.P99OverMean = float64(p99) / rep.MeanDeliveries
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Deliveries != hot[j].Deliveries {
			return hot[i].Deliveries > hot[j].Deliveries
		}
		return hot[i].Peer < hot[j].Peer
	})
	if len(hot) > skewTopN {
		hot = hot[:skewTopN]
	}
	for i := range hot {
		hot[i].Share = float64(hot[i].Deliveries) / float64(total)
	}
	rep.HotPeers = hot
	return rep
}

// arrivals returns the acquire function workers call before each op; it
// reports the admitted arrival's dispatch-queue wait (0 in closed loop)
// alongside whether to continue. Closed loop: succeed until the op budget
// or context runs out. Open loop: block until the Poisson dispatcher
// admits an arrival.
//
// The open-loop dispatcher keeps an absolute schedule: each arrival time is
// the previous one plus an exponential gap, independent of how long
// dispatch or service took, so the offered rate never sags under load.
// Arrivals queue in a bounded channel; one finding the queue full is shed
// and counted (collector.dropped), and every admitted arrival's queue wait
// is sampled (collector.queueWait) and handed to the op it admits, so the
// diagnostics layer can tell queued-up operations from slow ones —
// saturation is visible in the report instead of silently backlogging.
func (r *Runner) arrivals(ctx context.Context, coll *collector) func() (time.Duration, bool) {
	sc := &r.sc
	if sc.Arrival.RatePerSec <= 0 {
		var issued atomic.Int64
		return func() (time.Duration, bool) {
			if ctx.Err() != nil {
				return 0, false
			}
			return 0, sc.Ops <= 0 || issued.Add(1) <= int64(sc.Ops)
		}
	}
	ch := make(chan time.Time, sc.Arrival.QueueCap)
	go func() {
		defer close(ch)
		rng := rand.New(rand.NewSource(sc.Seed ^ 0x9e3779b9))
		mean := float64(time.Second) / sc.Arrival.RatePerSec
		timer := time.NewTimer(time.Hour)
		defer timer.Stop()
		next := time.Now()
		for n := 0; sc.Ops <= 0 || n < sc.Ops; n++ {
			next = next.Add(time.Duration(rng.ExpFloat64() * mean))
			if wait := time.Until(next); wait > 0 {
				timer.Reset(wait)
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
			} else if ctx.Err() != nil {
				return
			}
			select {
			case ch <- time.Now():
			default:
				coll.dropped.Add(1)
			}
		}
	}()
	return func() (time.Duration, bool) {
		select {
		case at, ok := <-ch:
			if !ok {
				return 0, false
			}
			wait := time.Since(at)
			coll.queueWait.Add(float64(wait) / float64(time.Millisecond))
			return wait, true
		case <-ctx.Done():
			// Drain nothing further; pending arrivals are dropped.
			return 0, false
		}
	}
}

// preload publishes the scenario's initial objects in one batch and seeds
// the unpublish pool with them.
func (r *Runner) preload(pool *keyPool) error {
	if r.sc.Preload == 0 {
		return nil
	}
	smp := newSampler(&r.sc, r.sc.Seed*31+7)
	pubs := make([]armada.Publication, r.sc.Preload)
	for i := range pubs {
		rec := pubRec{name: pool.nextName(), values: smp.values()}
		pubs[i] = armada.Publication{Name: rec.name, Values: rec.values}
		pool.add(rec)
	}
	return r.net.PublishBatch(pubs)
}

// execOp draws and executes one operation, recording its metrics. wait is
// the dispatch-queue wait the arrival paid before this op ran (0 in closed
// loop); queries carry it to the diagnostics layer.
func (r *Runner) execOp(ctx context.Context, smp *sampler, pool *keyPool, coll *collector, wait time.Duration) {
	switch kind := smp.nextOp(); kind {
	case OpPublish:
		r.doPublish(smp, pool, &coll.ops[OpPublish])
	case OpUnpublish:
		rec, ok := pool.take(smp.rng)
		if !ok {
			// Nothing left to delete: publish instead so the mix stays
			// sustainable (recorded as a publish).
			r.doPublish(smp, pool, &coll.ops[OpPublish])
			return
		}
		oc := &coll.ops[OpUnpublish]
		start := time.Now()
		err := r.net.Unpublish(rec.name, rec.values...)
		if errors.Is(err, armada.ErrNoSuchObject) {
			// The object died with a crashed peer — a miss, not a fault.
			oc.misses.Add(1)
			err = nil
		}
		oc.record(start, err)
	case OpLookup:
		// Look up a live object by its attribute values — the exact-match
		// query for something Publish actually stored. With an empty pool,
		// fall back to a name probe that exercises pure routing.
		rec, fromPool := pool.sample(smp.rng)
		var q armada.Query
		if fromPool {
			q = armada.NewValueLookup(rec.values)
		} else {
			q = armada.NewLookup(fmt.Sprintf("probe-%d", smp.rng.Int63()))
		}
		q.QueueWait = wait
		res := r.doQuery(ctx, q, &coll.ops[OpLookup], coll)
		// The looked-up object missing from its ObjectID's result while the
		// pool still considers it live means crash churn destroyed it — an
		// availability miss, kept apart from errors. (Re-checking the pool
		// filters the benign race of sampling a record that a concurrent
		// unpublish then removed.)
		if res != nil && fromPool && !containsObject(res.Objects, rec.name) && pool.hasName(rec.name) {
			coll.ops[OpLookup].misses.Add(1)
		}
	case OpRange:
		r.doQuery(ctx, armada.NewRange(smp.ranges(false), armada.WithQueueWait(wait)), &coll.ops[OpRange], coll)
	case OpMultiRange:
		r.doQuery(ctx, armada.NewRange(smp.ranges(true), armada.WithQueueWait(wait)), &coll.ops[OpMultiRange], coll)
	case OpTopK:
		r.doQuery(ctx, armada.NewRange(smp.ranges(false), armada.WithTopK(r.sc.TopK), armada.WithQueueWait(wait)), &coll.ops[OpTopK], coll)
	case OpFlood:
		r.doQuery(ctx, armada.NewRange(smp.ranges(false), armada.WithFlood(), armada.WithQueueWait(wait)), &coll.ops[OpFlood], coll)
	case OpRangePaged:
		r.doPagedRange(ctx, smp, &coll.ops[OpRangePaged], coll, wait)
	}
}

// doPagedRange walks one range query page by page until the cursor is
// exhausted — through a query session by default (page 1 descends and
// captures the frontier; later pages seed directly at the surviving
// destination peers), or as independent per-page Do queries under the
// Scenario.PagedNoSession ablation. The whole walk is one operation: its
// latency spans all pages, hop metrics accumulate across them (delay
// takes the max — pages could be issued concurrently), and per-page
// result sizes, destinations and message costs land in the per-page
// samples. A walk cut short by run shutdown is counted as a cancelled
// operation, not a sample — partial walks would skew the page and match
// quantiles low.
func (r *Runner) doPagedRange(ctx context.Context, smp *sampler, oc *opCollector, coll *collector, wait time.Duration) {
	ranges := smp.ranges(false)
	start := time.Now()

	// Only the walk's first page actually paid the dispatch-queue wait;
	// later pages run back to back, so the stamp stays on page one.
	var fetch func(offset string) (*armada.Result, error)
	if r.sc.PagedNoSession {
		first := true
		fetch = func(offset string) (*armada.Result, error) {
			opts := []armada.QueryOption{armada.WithLimit(r.sc.PageLimit)}
			if offset != "" {
				opts = append(opts, armada.WithOffsetID(offset))
			}
			if first {
				first = false
				opts = append(opts, armada.WithQueueWait(wait))
			}
			return r.net.Do(ctx, armada.NewRange(ranges, opts...))
		}
	} else {
		sess, err := r.net.OpenSession(armada.NewRange(ranges,
			armada.WithLimit(r.sc.PageLimit), armada.WithQueueWait(wait)))
		if err != nil {
			oc.record(start, err)
			return
		}
		defer sess.Close()
		fetch = func(string) (*armada.Result, error) { return sess.Next(ctx) }
	}

	var (
		offset                      string
		matches, delay, msgs        int
		deliveries, replicaServed   int
		frontierHits, descentsSaved int
		shortcutHits                int
		// flushed only when the whole walk succeeds
		pageSizes, pageDests, pageMs, pageHops []int
	)
	for {
		res, err := fetch(offset)
		if err != nil {
			if ctx.Err() != nil {
				// Run shutdown cut the walk short: a cancelled op, not an
				// error and not a (partial) sample.
				oc.cancelled.Add(1)
				return
			}
			oc.record(start, err)
			return
		}
		matches += len(res.Objects)
		msgs += res.Stats.Messages
		if res.Stats.Delay > delay {
			delay = res.Stats.Delay
		}
		deliveries += res.Stats.Deliveries
		replicaServed += res.Stats.ReplicaServed
		frontierHits += res.Stats.FrontierHits
		descentsSaved += res.Stats.DescentsSaved
		shortcutHits += res.Stats.ShortcutHits
		pageSizes = append(pageSizes, len(res.Objects))
		pageDests = append(pageDests, res.Stats.DestPeers) // per page: the fan-out each page pays
		pageMs = append(pageMs, res.Stats.Messages)        // per page: what reaching it cost
		pageHops = append(pageHops, res.Stats.Delay)       // per page: its realized descent depth
		if res.NextOffsetID == "" {
			break
		}
		offset = res.NextOffsetID
	}
	oc.record(start, nil)
	oc.delay.AddInt(delay)
	oc.msgs.AddInt(msgs)
	oc.matches.AddInt(matches)
	oc.pages.AddInt(len(pageSizes))
	for i := range pageSizes {
		oc.perPage.AddInt(pageSizes[i])
		oc.dest.AddInt(pageDests[i])
		oc.perPageMsgs.AddInt(pageMs[i])
		oc.hops.AddInt(pageHops[i])
	}
	oc.frontierHits.Add(int64(frontierHits))
	oc.descentsSaved.Add(int64(descentsSaved))
	oc.shortcutHits.Add(int64(shortcutHits))
	coll.noteReadSpread(deliveries, replicaServed)
}

func (r *Runner) doPublish(smp *sampler, pool *keyPool, oc *opCollector) {
	rec := pubRec{name: pool.nextName(), values: smp.values()}
	start := time.Now()
	err := r.net.Publish(rec.name, rec.values...)
	oc.record(start, err)
	if err == nil {
		pool.add(rec)
	}
}

// doQuery runs one query, records its metrics and returns the result (nil
// when the query failed or the run is shutting down).
func (r *Runner) doQuery(ctx context.Context, q armada.Query, oc *opCollector, coll *collector) *armada.Result {
	start := time.Now()
	res, err := r.net.Do(ctx, q)
	if err != nil && ctx.Err() != nil {
		oc.cancelled.Add(1) // shutdown races are not workload errors
		return nil
	}
	oc.record(start, err)
	if err != nil {
		return nil
	}
	oc.delay.AddInt(res.Stats.Delay)
	oc.hops.AddInt(res.Stats.Delay)
	oc.msgs.AddInt(res.Stats.Messages)
	oc.dest.AddInt(res.Stats.DestPeers)
	oc.matches.AddInt(len(res.Objects))
	oc.frontierHits.Add(int64(res.Stats.FrontierHits))
	oc.descentsSaved.Add(int64(res.Stats.DescentsSaved))
	oc.shortcutHits.Add(int64(res.Stats.ShortcutHits))
	coll.noteReadSpread(res.Stats.Deliveries, res.Stats.ReplicaServed)
	return res
}

// churn runs the merged Poisson join/leave/fail process until ctx ends.
// Like the open-loop dispatcher, it keeps an absolute schedule: event times
// are drawn independently of how long each event takes to execute, so when
// an event overruns its gap the following ones fire back to back instead
// of silently stretching the process — the realized rate tracks the
// nominal one up to what the network can absorb.
func (r *Runner) churn(ctx context.Context, coll *collector) {
	sc := &r.sc
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x51f15eed))
	total := sc.Churn.totalRate()
	mean := float64(time.Second) / total
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	next := time.Now()
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() * mean))
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			return
		}
		var err error
		switch x := rng.Float64() * total; {
		case x < sc.Churn.JoinPerSec:
			if sc.Churn.MaxPeers > 0 && r.net.Size() >= sc.Churn.MaxPeers {
				coll.churnSkips.Add(1)
				continue
			}
			if _, err = r.net.Join(); err == nil {
				coll.churnJoins.Add(1)
			}
		case x < sc.Churn.JoinPerSec+sc.Churn.LeavePerSec:
			if r.net.Size() <= sc.Churn.MinPeers {
				coll.churnSkips.Add(1)
				continue
			}
			if err = r.net.Leave(r.net.RandomPeer()); err == nil {
				coll.churnLeaves.Add(1)
			}
		default:
			if r.net.Size() <= sc.Churn.MinPeers {
				coll.churnSkips.Add(1)
				continue
			}
			if err = r.net.Fail(r.net.RandomPeer()); err == nil {
				coll.churnFails.Add(1)
			}
		}
		if err != nil {
			coll.churnErrs.Add(1)
		}
	}
}

// snapshots takes one Snapshot per scenario interval until ctx ends.
func (r *Runner) snapshots(ctx context.Context, start time.Time, coll *collector) {
	tick := time.NewTicker(r.sc.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		snap := coll.takeSnapshot(time.Since(start), r.net.Size(), r.net.MetricValues())
		if r.OnSnapshot != nil {
			r.OnSnapshot(snap)
		}
	}
}

// report assembles the final Report.
func (r *Runner) report(elapsed time.Duration, startPeers int, coll *collector) *Report {
	secs := elapsed.Seconds()
	rep := &Report{
		Scenario:    r.sc.Name,
		Seed:        r.sc.Seed,
		Attributes:  len(r.sc.Attrs),
		Replicas:    r.sc.Replicas,
		StartPeers:  startPeers,
		EndPeers:    r.net.Size(),
		DurationSec: secs,
		Ops:         make(map[string]OpReport, int(numOps)),
		Churn: ChurnReport{
			Joins:   int(coll.churnJoins.Load()),
			Leaves:  int(coll.churnLeaves.Load()),
			Fails:   int(coll.churnFails.Load()),
			Skipped: int(coll.churnSkips.Load()),
			Errors:  int(coll.churnErrs.Load()),
		},
		Intervals: coll.snapshots(),
	}
	if r.sc.Arrival.RatePerSec > 0 {
		rep.QueueWaitMs = quantilesOf(coll.queueWait.Snapshot())
		rep.Dropped = int(coll.dropped.Load())
	}
	if r.sc.Replicas > 1 {
		rep.ReplicaReads = coll.replicaReads.Load()
		rep.ReplicaReadSpread = quantilesOf(coll.replicaSpread.Snapshot())
	}
	for k := OpKind(0); k < numOps; k++ {
		oc := &coll.ops[k]
		count := int(oc.count.Load())
		cancelled := int(oc.cancelled.Load())
		if count == 0 && cancelled == 0 {
			continue
		}
		op := OpReport{
			Count:           count,
			Errors:          int(oc.errs.Load()),
			Misses:          int(oc.misses.Load()),
			Cancelled:       cancelled,
			FrontierHits:    int(oc.frontierHits.Load()),
			DescentsSaved:   int(oc.descentsSaved.Load()),
			ShortcutHits:    int(oc.shortcutHits.Load()),
			LatencyMs:       quantilesOf(oc.lat.Snapshot()),
			HopDelay:        quantilesOf(oc.delay.Snapshot()),
			Hops:            quantilesOf(oc.hops.Snapshot()),
			Messages:        quantilesOf(oc.msgs.Snapshot()),
			DestPeers:       quantilesOf(oc.dest.Snapshot()),
			Matches:         quantilesOf(oc.matches.Snapshot()),
			Pages:           quantilesOf(oc.pages.Snapshot()),
			MatchesPerPage:  quantilesOf(oc.perPage.Snapshot()),
			MessagesPerPage: quantilesOf(oc.perPageMsgs.Snapshot()),
		}
		if secs > 0 {
			op.Throughput = float64(count) / secs
		}
		rep.Ops[k.String()] = op
		rep.TotalOps += count
		rep.TotalErrors += op.Errors
		rep.TotalCancelled += cancelled
		rep.AvailabilityMisses += op.Misses
		rep.FrontierHits += op.FrontierHits
		rep.DescentsSaved += op.DescentsSaved
		rep.ShortcutHits += op.ShortcutHits
	}
	if secs > 0 {
		rep.Throughput = float64(rep.TotalOps) / secs
	}
	return rep
}

// opCollector gathers one operation kind's metrics from many workers.
type opCollector struct {
	count     atomic.Int64
	errs      atomic.Int64
	misses    atomic.Int64
	cancelled atomic.Int64 // ops cut short by run shutdown (no sample recorded)

	// Frontier reuse: queries seeded from a captured descent frontier
	// (descentsSaved) and the subset seeded from the shared cache
	// (frontierHits); shortcutHits counts queries the learned shortcut
	// table routed directly.
	frontierHits  atomic.Int64
	descentsSaved atomic.Int64
	shortcutHits  atomic.Int64

	// interval points at the run collector's shared interval-latency
	// sample; record feeds it alongside lat so snapshots can report
	// interval-local quantiles.
	interval *stats.SafeSample

	lat         stats.SafeSample // wall-clock service time, ms
	delay       stats.SafeSample // hop delay (query kinds; walk max for range-paged)
	hops        stats.SafeSample // per-descent hop count (query kinds; per page for range-paged)
	msgs        stats.SafeSample // overlay messages (query kinds)
	dest        stats.SafeSample // destination peers (query kinds; per page for range-paged)
	matches     stats.SafeSample // result-set size (query kinds; whole walk for range-paged)
	pages       stats.SafeSample // pages per walk (range-paged only)
	perPage     stats.SafeSample // matches per page (range-paged only)
	perPageMsgs stats.SafeSample // messages per page (range-paged only)
}

// record counts one completed operation; successful ones contribute their
// wall-clock latency.
func (oc *opCollector) record(start time.Time, err error) {
	oc.count.Add(1)
	if err != nil {
		oc.errs.Add(1)
		return
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	oc.lat.Add(ms)
	oc.interval.Add(ms)
}

// collector aggregates a whole run.
type collector struct {
	ops [numOps]opCollector

	// Open-loop saturation metrics: queue wait of admitted arrivals and
	// the number shed on a full queue.
	queueWait stats.SafeSample
	dropped   atomic.Int64

	// Replica read spreading: per query, the fraction of deliveries served
	// by a non-primary replica, plus the absolute count. Sampled only when
	// trackSpread is set (replicated runs) — unreplicated runs would pay a
	// lock and an O(ops) sample for all-zero data.
	trackSpread   bool
	replicaSpread stats.SafeSample
	replicaReads  atomic.Int64

	churnJoins  atomic.Int64
	churnLeaves atomic.Int64
	churnFails  atomic.Int64
	churnSkips  atomic.Int64
	churnErrs   atomic.Int64

	// intervalLat pools the wall-clock latencies of the current interval
	// across all op kinds; takeSnapshot drains it.
	intervalLat stats.SafeSample

	snapMu      sync.Mutex
	snaps       []Snapshot
	lastOps     int64
	lastErrs    int64
	lastAt      time.Duration
	lastMetrics map[string]int64
}

// newCollector builds a run collector; startMetrics is the network's
// counter snapshot at run start, the baseline of the first interval's
// metric deltas.
func newCollector(trackSpread bool, startMetrics map[string]int64) *collector {
	c := &collector{trackSpread: trackSpread, lastMetrics: startMetrics}
	for i := range c.ops {
		c.ops[i].interval = &c.intervalLat
	}
	return c
}

// metricsDelta returns end minus start per counter. With onlyChanged set,
// unmoved counters are dropped (interval snapshots stay compact); without
// it every end key is present (the report's full-run block).
func metricsDelta(start, end map[string]int64, onlyChanged bool) map[string]int64 {
	out := make(map[string]int64, len(end))
	for k, v := range end {
		d := v - start[k]
		if onlyChanged && d == 0 {
			continue
		}
		out[k] = d
	}
	return out
}

// noteReadSpread records one query's replica read spread: the fraction of
// its deliveries a non-primary replica served.
func (c *collector) noteReadSpread(deliveries, replicaServed int) {
	if !c.trackSpread || deliveries <= 0 {
		return
	}
	c.replicaReads.Add(int64(replicaServed))
	c.replicaSpread.Add(float64(replicaServed) / float64(deliveries))
}

func (c *collector) totals() (ops, errs int64) {
	for i := range c.ops {
		ops += c.ops[i].count.Load()
		errs += c.ops[i].errs.Load()
	}
	return ops, errs
}

// takeSnapshot records the interval since the previous snapshot. at is
// clamped to the previous snapshot's time so a final snapshot racing a
// periodic tick can never make the interval list go backwards.
func (c *collector) takeSnapshot(at time.Duration, peers int, metrics map[string]int64) Snapshot {
	ops, errs := c.totals()
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if at < c.lastAt {
		at = c.lastAt
	}
	snap := Snapshot{
		AtSec:     at.Seconds(),
		Ops:       int(ops - c.lastOps),
		Errors:    int(errs - c.lastErrs),
		Peers:     peers,
		LatencyMs: quantilesOf(c.intervalLat.Drain()),
		Metrics:   metricsDelta(c.lastMetrics, metrics, true),
	}
	if dt := (at - c.lastAt).Seconds(); dt > 0 {
		snap.Throughput = float64(snap.Ops) / dt
	}
	c.lastOps, c.lastErrs, c.lastAt, c.lastMetrics = ops, errs, at, metrics
	c.snaps = append(c.snaps, snap)
	return snap
}

func (c *collector) snapshots() []Snapshot {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return append([]Snapshot(nil), c.snaps...)
}

// pubRec is one live published object the pool can hand to unpublish and
// lookup operations.
type pubRec struct {
	name   string
	values []float64
}

// keyPool tracks the set of currently published objects across all
// workers. names indexes the live records so availability checks
// (hasName) need no scan.
type keyPool struct {
	seq   atomic.Int64
	mu    sync.Mutex
	recs  []pubRec
	names map[string]struct{}
}

// nextName mints a unique object name.
func (p *keyPool) nextName() string {
	return fmt.Sprintf("wl-%08d", p.seq.Add(1))
}

func (p *keyPool) add(rec pubRec) {
	p.mu.Lock()
	if p.names == nil {
		p.names = make(map[string]struct{})
	}
	p.recs = append(p.recs, rec)
	p.names[rec.name] = struct{}{}
	p.mu.Unlock()
}

// take removes and returns a uniformly random record.
func (p *keyPool) take(rng *rand.Rand) (pubRec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recs) == 0 {
		return pubRec{}, false
	}
	i := rng.Intn(len(p.recs))
	rec := p.recs[i]
	last := len(p.recs) - 1
	p.recs[i] = p.recs[last]
	p.recs = p.recs[:last]
	delete(p.names, rec.name)
	return rec, true
}

// sample returns a random live record without removing it.
func (p *keyPool) sample(rng *rand.Rand) (pubRec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recs) == 0 {
		return pubRec{}, false
	}
	return p.recs[rng.Intn(len(p.recs))], true
}

// hasName reports whether the named object is still in the live pool.
func (p *keyPool) hasName(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.names[name]
	return ok
}

// containsObject reports whether any of the objects carries the name.
func containsObject(objs []armada.Object, name string) bool {
	for _, o := range objs {
		if o.Name == name {
			return true
		}
	}
	return false
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
