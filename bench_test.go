// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark executes the corresponding experiment's workload and
// reports the paper's metrics (hops/query, msgs/query, destpeers/query) via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the evaluation
// series. The armada-bench command produces the full-resolution data.
package armada_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"armada"
	"armada/internal/can"
	"armada/internal/core"
	"armada/internal/dcfcan"
	"armada/internal/experiments"
	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
	"armada/internal/pht"
	"armada/internal/skipgraph"
)

const (
	benchK     = 32
	benchSpace = 1000.0
)

// benchFig5Net is the paper's Figure 5/6 network size.
const benchFig5Net = 2000

// buildPIRA builds a FISSIONE network with a single-attribute engine.
func buildPIRA(b *testing.B, peers int, seed int64) *core.Engine {
	b.Helper()
	net, err := fissione.BuildRandom(benchK, peers, seed)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := naming.NewSingleTree(benchK, 0, benchSpace)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(net, tree)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// buildDCF builds a CAN network with the DCF range-query scheme.
func buildDCF(b *testing.B, zones int, seed int64) *dcfcan.Scheme {
	b.Helper()
	net, err := can.BuildRandom(zones, seed)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dcfcan.New(net, 9, 0, benchSpace)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// reportPIRA runs b.N random queries of the given width and reports the
// figure metrics.
func reportPIRA(b *testing.B, eng *core.Engine, width float64, seed int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := eng.Network()
	var delay, msgs, dests int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * (benchSpace - width)
		res, err := eng.RangeQuery(context.Background(), net.RandomPeer(rng), []float64{lo}, []float64{lo + width})
		if err != nil {
			b.Fatal(err)
		}
		delay += res.Stats.Delay
		msgs += res.Stats.Messages
		dests += res.Stats.DestPeers
	}
	b.ReportMetric(float64(delay)/float64(b.N), "hops/query")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
	b.ReportMetric(float64(dests)/float64(b.N), "destpeers/query")
}

// reportDCF runs b.N random DCF-CAN queries of the given width.
func reportDCF(b *testing.B, s *dcfcan.Scheme, width float64, seed int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	var delay, msgs, dests int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * (benchSpace - width)
		res, err := s.RangeQuery(s.Network().RandomZone(rng), lo, lo+width)
		if err != nil {
			b.Fatal(err)
		}
		delay += res.Stats.Delay
		msgs += res.Stats.Messages
		dests += res.Stats.DestZones
	}
	b.ReportMetric(float64(delay)/float64(b.N), "hops/query")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
	b.ReportMetric(float64(dests)/float64(b.N), "destzones/query")
}

// BenchmarkFig5 regenerates Figure 5: query delay at different range sizes,
// N = 2000, for PIRA and DCF-CAN (read hops/query).
func BenchmarkFig5(b *testing.B) {
	sizes := []int{2, 10, 50, 100, 150, 200, 250, 300}
	b.Run("PIRA", func(b *testing.B) {
		eng := buildPIRA(b, benchFig5Net, 1)
		for _, size := range sizes {
			b.Run(fmt.Sprintf("range=%d", size), func(b *testing.B) {
				reportPIRA(b, eng, float64(size), int64(size))
			})
		}
	})
	b.Run("DCF-CAN", func(b *testing.B) {
		s := buildDCF(b, benchFig5Net, 2)
		for _, size := range sizes {
			b.Run(fmt.Sprintf("range=%d", size), func(b *testing.B) {
				reportDCF(b, s, float64(size), int64(size))
			})
		}
	})
}

// BenchmarkFig6 regenerates Figure 6: message cost at different range
// sizes, N = 2000 (read msgs/query and destpeers/query; MesgRatio and
// IncreRatio derive from them).
func BenchmarkFig6(b *testing.B) {
	sizes := []int{2, 50, 150, 300}
	eng := buildPIRA(b, benchFig5Net, 3)
	s := buildDCF(b, benchFig5Net, 4)
	for _, size := range sizes {
		b.Run(fmt.Sprintf("PIRA/range=%d", size), func(b *testing.B) {
			reportPIRA(b, eng, float64(size), int64(size)+10)
		})
		b.Run(fmt.Sprintf("DCF-CAN/range=%d", size), func(b *testing.B) {
			reportDCF(b, s, float64(size), int64(size)+10)
		})
	}
}

// BenchmarkFig7 regenerates Figure 7: query delay at different network
// sizes, range size 20 (read hops/query).
func BenchmarkFig7(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		b.Run(fmt.Sprintf("PIRA/N=%d", n), func(b *testing.B) {
			eng := buildPIRA(b, n, int64(n))
			reportPIRA(b, eng, 20, int64(n)+1)
		})
		b.Run(fmt.Sprintf("DCF-CAN/N=%d", n), func(b *testing.B) {
			s := buildDCF(b, n, int64(n))
			reportDCF(b, s, 20, int64(n)+1)
		})
	}
}

// BenchmarkFig8 regenerates Figure 8: message cost at different network
// sizes, range size 20 (read msgs/query and destpeers/query).
func BenchmarkFig8(b *testing.B) {
	for _, n := range []int{1000, 4000, 8000} {
		b.Run(fmt.Sprintf("PIRA/N=%d", n), func(b *testing.B) {
			eng := buildPIRA(b, n, int64(n)+5)
			reportPIRA(b, eng, 20, int64(n)+6)
		})
		b.Run(fmt.Sprintf("DCF-CAN/N=%d", n), func(b *testing.B) {
			s := buildDCF(b, n, int64(n)+5)
			reportDCF(b, s, 20, int64(n)+6)
		})
	}
}

// BenchmarkTable1 regenerates Table 1's measured column: average delay of
// the three implemented schemes at N = 2000, range size 50.
func BenchmarkTable1(b *testing.B) {
	const width = 50.0
	b.Run("Armada-PIRA", func(b *testing.B) {
		eng := buildPIRA(b, benchFig5Net, 21)
		reportPIRA(b, eng, width, 22)
	})
	b.Run("DCF-CAN", func(b *testing.B) {
		s := buildDCF(b, benchFig5Net, 23)
		reportDCF(b, s, width, 24)
	})
	b.Run("SkipGraph", func(b *testing.B) {
		g, err := skipgraph.Build(benchFig5Net, 0, benchSpace, 28)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(29))
		var delay, msgs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := rng.Float64() * (benchSpace - width)
			res, err := g.RangeQuery(g.RandomNode(rng), lo, lo+width)
			if err != nil {
				b.Fatal(err)
			}
			delay += res.Stats.Delay
			msgs += res.Stats.Messages
		}
		b.ReportMetric(float64(delay)/float64(b.N), "hops/query")
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
	})
	b.Run("PHT", func(b *testing.B) {
		net, err := fissione.BuildRandom(benchK, benchFig5Net, 25)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.New(net, nil)
		if err != nil {
			b.Fatal(err)
		}
		tree, err := pht.New(eng, 16, 8, 0, benchSpace, 26)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(27))
		for i := 0; i < 2000; i++ {
			tree.Insert(fmt.Sprintf("o%d", i), rng.Float64()*benchSpace)
		}
		var delay, msgs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := rng.Float64() * (benchSpace - width)
			res, err := tree.RangeQuery(lo, lo+width)
			if err != nil {
				b.Fatal(err)
			}
			delay += res.Stats.Delay
			msgs += res.Stats.Messages
		}
		b.ReportMetric(float64(delay)/float64(b.N), "hops/query")
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
	})
}

// BenchmarkDelayBound regenerates the Section 4.3.2 bound check: the
// reported max-hops/query must stay below 2·log₂N (≈ 21.9 for N = 2000).
func BenchmarkDelayBound(b *testing.B) {
	eng := buildPIRA(b, benchFig5Net, 31)
	rng := rand.New(rand.NewSource(32))
	net := eng.Network()
	maxDelay := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		width := []float64{2, 20, 200, 900}[i%4]
		lo := rng.Float64() * (benchSpace - width)
		res, err := eng.RangeQuery(context.Background(), net.RandomPeer(rng), []float64{lo}, []float64{lo + width})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Delay > maxDelay {
			maxDelay = res.Stats.Delay
		}
	}
	b.ReportMetric(float64(maxDelay), "max-hops")
}

// BenchmarkMIRA regenerates extension EX1: multi-attribute query cost at
// m = 2 attributes, N = 2000.
func BenchmarkMIRA(b *testing.B) {
	net, err := fissione.BuildRandom(benchK, benchFig5Net, 41)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := naming.NewTree(benchK,
		naming.Space{Low: 0, High: benchSpace}, naming.Space{Low: 0, High: benchSpace})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(net, tree)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var delay, msgs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := []float64{rng.Float64() * 800, rng.Float64() * 800}
		hi := []float64{lo[0] + 140, lo[1] + 140}
		res, err := eng.RangeQuery(context.Background(), net.RandomPeer(rng), lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		delay += res.Stats.Delay
		msgs += res.Stats.Messages
	}
	b.ReportMetric(float64(delay)/float64(b.N), "hops/query")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
}

// BenchmarkAblationPruning regenerates extension EX5: message cost of the
// pruned descent vs the unpruned FRT flood at N = 500.
func BenchmarkAblationPruning(b *testing.B) {
	eng := buildPIRA(b, 500, 51)
	net := eng.Network()
	run := func(b *testing.B, flood bool) {
		rng := rand.New(rand.NewSource(52))
		msgs := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := rng.Float64() * (benchSpace - 20)
			issuer := net.RandomPeer(rng)
			var m int
			if flood {
				res, err := eng.FloodQuery(context.Background(), issuer, []float64{lo}, []float64{lo + 20})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Stats.Messages
			} else {
				res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{lo + 20})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Stats.Messages
			}
			msgs += m
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
	}
	b.Run("pruned", func(b *testing.B) { run(b, false) })
	b.Run("flood", func(b *testing.B) { run(b, true) })
}

// BenchmarkLookup measures FISSIONE exact-match routing (degenerate PIRA).
func BenchmarkLookup(b *testing.B) {
	net, err := fissione.BuildRandom(benchK, benchFig5Net, 61)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	hops := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := kautz.Random(rng, benchK)
		res, err := eng.Lookup(context.Background(), net.RandomPeer(rng), oid)
		if err != nil {
			b.Fatal(err)
		}
		hops += res.Stats.Delay
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/lookup")
}

// BenchmarkJoin measures FISSIONE's join protocol including routing-table
// maintenance.
func BenchmarkJoin(b *testing.B) {
	net, err := fissione.BuildRandom(benchK, 1000, 71)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Join(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleHash measures the order-preserving naming primitive.
func BenchmarkSingleHash(b *testing.B) {
	tree, err := naming.NewSingleTree(benchK, 0, benchSpace)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Hash(rng.Float64() * benchSpace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPIQuery exercises the public facade end to end.
func BenchmarkPublicAPIQuery(b *testing.B) {
	net, err := armada.NewNetwork(1000, armada.WithSeed(91))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := net.Publish(fmt.Sprintf("o%d", i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(92))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 900
		if _, err := net.RangeQuery(lo, lo+50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentPoint measures one full experiment data point (the
// harness's unit of work) at reduced query count.
func BenchmarkExperimentPoint(b *testing.B) {
	cfg := experiments.Config{Queries: 50, Seed: 101, K: benchK, FixedNet: 500,
		RangeSizes: []int{50}, NetSizes: []int{500}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RangeSizeFigures(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Allocation profiles -------------------------------------------------
//
// The benchmarks below pin the per-operation allocation behaviour of the
// hot data-plane paths (run with `go test -bench=Alloc -benchmem`), plus
// the two network bring-up paths the 100k-peer runs depend on: batch
// construction and warm-start snapshot loading.

// buildAllocNet builds a public-API network preloaded with the given
// number of single-attribute objects.
func buildAllocNet(b *testing.B, peers, preload int) *armada.Network {
	b.Helper()
	net, err := armada.NewNetwork(peers, armada.WithSeed(111))
	if err != nil {
		b.Fatal(err)
	}
	pubs := make([]armada.Publication, preload)
	for i := range pubs {
		pubs[i] = armada.Publication{Name: fmt.Sprintf("o%d", i), Values: []float64{float64(i % 1000)}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkAllocPublish measures one publish: naming hash, owner descent,
// replica fan-out, store insert.
func BenchmarkAllocPublish(b *testing.B) {
	net := buildAllocNet(b, 1000, 0)
	defer net.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Publish(fmt.Sprintf("p%d", i), float64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocLookup measures one exact-match query end to end.
func BenchmarkAllocLookup(b *testing.B) {
	net := buildAllocNet(b, 1000, 2000)
	defer net.Close()
	rng := rand.New(rand.NewSource(112))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := armada.NewLookup(fmt.Sprintf("o%d", rng.Intn(2000)))
		if _, err := net.Do(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRange measures one materializing range query end to end.
func BenchmarkAllocRange(b *testing.B) {
	net := buildAllocNet(b, 1000, 2000)
	defer net.Close()
	rng := rand.New(rand.NewSource(113))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 950
		q := armada.NewRange([]armada.Range{{Low: lo, High: lo + 20}})
		if _, err := net.Do(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRangePaged measures one whole paginated walk through a
// query session (page 1 descends and captures the frontier; later pages
// seed directly).
func BenchmarkAllocRangePaged(b *testing.B) {
	net := buildAllocNet(b, 1000, 2000)
	defer net.Close()
	rng := rand.New(rand.NewSource(114))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 900
		sess, err := net.OpenSession(armada.NewRange([]armada.Range{{Low: lo, High: lo + 50}}, armada.WithLimit(32)))
		if err != nil {
			b.Fatal(err)
		}
		for {
			res, err := sess.Next(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.NextOffsetID == "" {
				break
			}
		}
		sess.Close()
	}
}

// BenchmarkBatchBuild10k measures the deterministic batch construction of
// a 10k-peer overlay — the cold-start path (bytes/op here is the
// transient build cost, not the resident footprint).
func BenchmarkBatchBuild10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fissione.BuildRandom(benchK, 10_000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad10k measures restoring the same 10k-peer overlay
// from a warm-start snapshot — the path that must beat the cold build by
// at least 5x.
func BenchmarkSnapshotLoad10k(b *testing.B) {
	net, err := fissione.BuildRandom(benchK, 10_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fissione.LoadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
