package armada

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// pagedNetwork builds a network with a deterministic object population
// dense enough that wide queries span many pages.
func pagedNetwork(t *testing.T, objects int) *Network {
	t.Helper()
	net, err := NewNetwork(300, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pubs := make([]Publication, objects)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%05d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestPaginationWalkEqualsFull pages through a large range and requires the
// concatenated pages to equal the unpaginated result exactly — same
// objects, same (ObjectID, Name) order, nothing skipped or repeated.
func TestPaginationWalkEqualsFull(t *testing.T) {
	net := pagedNetwork(t, 2500)
	ranges := []Range{{Low: 100, High: 900}}
	full, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}
	if full.NextOffsetID != "" {
		t.Fatalf("unpaginated query returned a cursor %q", full.NextOffsetID)
	}
	if len(full.Objects) < 1000 {
		t.Fatalf("population too sparse for the test: %d matches", len(full.Objects))
	}

	for _, limit := range []int{1, 7, 128, 1024, len(full.Objects) + 1} {
		var walked []Object
		offset := ""
		pages := 0
		for {
			opts := []QueryOption{WithLimit(limit)}
			if offset != "" {
				opts = append(opts, WithOffsetID(offset))
			}
			page, err := net.Do(context.Background(), NewRange(ranges, opts...))
			if err != nil {
				t.Fatalf("limit %d page %d: %v", limit, pages, err)
			}
			if len(page.Objects) == 0 && page.NextOffsetID != "" {
				t.Fatalf("limit %d: empty page with a continuation cursor", limit)
			}
			walked = append(walked, page.Objects...)
			pages++
			if pages > len(full.Objects)+2 {
				t.Fatalf("limit %d: walk does not terminate", limit)
			}
			if page.NextOffsetID == "" {
				break
			}
			offset = page.NextOffsetID
		}
		if !reflect.DeepEqual(walked, full.Objects) {
			t.Fatalf("limit %d: paged walk (%d objects over %d pages) diverged from the full result (%d objects)",
				limit, len(walked), pages, len(full.Objects))
		}
		if wantPages := (len(full.Objects) + limit - 1) / limit; pages > wantPages+1 {
			t.Errorf("limit %d: %d pages, want about %d", limit, pages, wantPages)
		}
	}
}

// TestPaginationFloodAgrees runs the same paged walk through the flood
// ablation, which must return identical pages at its higher message cost.
func TestPaginationFloodAgrees(t *testing.T) {
	net := pagedNetwork(t, 800)
	ranges := []Range{{Low: 200, High: 700}}
	full, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}
	var walked []Object
	offset := ""
	for {
		opts := []QueryOption{WithFlood(), WithLimit(100)}
		if offset != "" {
			opts = append(opts, WithOffsetID(offset))
		}
		page, err := net.Do(context.Background(), NewRange(ranges, opts...))
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page.Objects...)
		if page.NextOffsetID == "" {
			break
		}
		offset = page.NextOffsetID
	}
	if !reflect.DeepEqual(walked, full.Objects) {
		t.Fatalf("flood walk found %d objects, range query %d", len(walked), len(full.Objects))
	}
}

// TestPaginationTies publishes many objects under one ObjectID (identical
// values) and checks that a page never splits the ID: the page overshoots
// the limit instead, and the walk neither drops nor repeats anything.
func TestPaginationTies(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := net.Publish(fmt.Sprintf("dup-%02d", i), 500.0); err != nil { // one shared ObjectID
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if err := net.Publish(fmt.Sprintf("spread-%02d", i), 400.0+float64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	ranges := []Range{{Low: 390, High: 600}}
	full, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}
	var walked []Object
	offset := ""
	overshot := false
	for {
		opts := []QueryOption{WithLimit(7)}
		if offset != "" {
			opts = append(opts, WithOffsetID(offset))
		}
		page, err := net.Do(context.Background(), NewRange(ranges, opts...))
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Objects) > 7 {
			overshot = true
			for i := 7; i < len(page.Objects); i++ {
				if page.Objects[i].ID != page.Objects[6].ID {
					t.Fatalf("page overshot the limit with a fresh ObjectID %q", page.Objects[i].ID)
				}
			}
		}
		walked = append(walked, page.Objects...)
		if page.NextOffsetID == "" {
			break
		}
		offset = page.NextOffsetID
	}
	if !overshot {
		t.Error("no page overshot its limit; the 40-way tie should have forced one")
	}
	if !reflect.DeepEqual(walked, full.Objects) {
		t.Fatalf("tied walk diverged: %d objects vs %d", len(walked), len(full.Objects))
	}
}

// TestPaginationOptionErrors covers the validation surface.
func TestPaginationOptionErrors(t *testing.T) {
	net := pagedNetwork(t, 50)
	ctx := context.Background()
	cases := []struct {
		name string
		q    Query
	}{
		{"limit on lookup", NewLookup("obj-00001", WithLimit(5))},
		{"offset on lookup", NewLookup("obj-00001", WithOffsetID("0101010101"))},
		{"limit on top-k", NewRange([]Range{{0, 1000}}, WithTopK(3), WithLimit(5))},
		{"negative limit", NewRange([]Range{{0, 1000}}, WithLimit(-1))},
		{"malformed offset", NewRange([]Range{{0, 1000}}, WithLimit(5), WithOffsetID("zz"))},
	}
	for _, c := range cases {
		if _, err := net.Do(ctx, c.q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%s: err = %v, want ErrBadQuery", c.name, err)
		}
	}
}

// TestStreamLimit checks the streaming cap: the stream ends after exactly
// Limit objects when more exist.
func TestStreamLimit(t *testing.T) {
	net := pagedNetwork(t, 1200)
	q := NewRange([]Range{{Low: 0, High: 1000}}, WithLimit(25))
	n := 0
	for _, err := range net.Stream(context.Background(), q) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 25 {
			break
		}
	}
	if n != 25 {
		t.Fatalf("stream yielded %d objects, want exactly the limit 25", n)
	}
	// Without a limit the same query streams far more.
	n = 0
	for _, err := range net.Stream(context.Background(), NewRange([]Range{{Low: 0, High: 1000}})) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n <= 25 {
		t.Fatalf("unlimited stream yielded only %d objects", n)
	}
}
