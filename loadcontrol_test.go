package armada

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"armada/internal/kautz"
)

// stripPeers projects objects onto their ownership-independent fields:
// splits and migrations move objects between peers but must never change
// what a query returns or in what order.
func stripPeers(objs []Object) []Object {
	out := make([]Object, len(objs))
	for i, o := range objs {
		o.Peer = ""
		out[i] = o
	}
	return out
}

// ownerOf resolves the current owner of an ObjectID string.
func ownerOf(t *testing.T, net *Network, id string) string {
	t.Helper()
	owner, err := net.net.OwnerOf(kautz.Str(id))
	if err != nil {
		t.Fatalf("OwnerOf(%q): %v", id, err)
	}
	return string(owner)
}

// TestSplitRegionCascadeKeepsInvariant drives one spot of the namespace
// four splits deep. The targeted owner is soon no local length-minimum, so
// the invariant-restoring cascade must fire (extra > 0 across the runs),
// and after every split the audit and the query results must be exactly
// what they were — only the Peer fields may move.
func TestSplitRegionCascadeKeepsInvariant(t *testing.T) {
	net := pagedNetwork(t, 1500)
	ranges := []Range{{Low: 100, High: 900}}
	before, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Objects) < 500 {
		t.Fatalf("population too sparse: %d matches", len(before.Objects))
	}
	target := before.Objects[0].ID
	size := net.Size()
	splits, totalExtra, budgetStops := 0, 0, 0
	for i := 0; i < 4; i++ {
		// One deepening of the target region may exhaust the per-call
		// cascade budget; every cascade split it did perform is already
		// consistent, so retrying continues the work where it stopped.
		for attempt := 0; ; attempt++ {
			if attempt > 20 {
				t.Fatalf("deepening %d never completed within the retry budget", i+1)
			}
			owner := ownerOf(t, net, target)
			extra, err := net.splitRegion(owner)
			totalExtra += extra
			if err != nil {
				budgetStops++
				if err := net.Audit(); err != nil {
					t.Fatalf("budget-stopped split left the network inconsistent: %v", err)
				}
				continue
			}
			splits++
			break
		}
		if err := net.Audit(); err != nil {
			t.Fatalf("audit after deepening %d: %v", i+1, err)
		}
	}
	if totalExtra == 0 {
		t.Error("four stacked splits needed no cascade; the invariant cannot have been tested")
	}
	t.Logf("4 deepenings: %d cascade splits, %d budget-stopped attempts", totalExtra, budgetStops)
	if got, want := net.Size(), size+splits+totalExtra; got != want {
		t.Errorf("size = %d after %d splits with %d cascades, want %d", got, splits, totalExtra, want)
	}
	after, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripPeers(after.Objects), stripPeers(before.Objects)) {
		t.Fatalf("query results changed across splits: %d objects before, %d after",
			len(before.Objects), len(after.Objects))
	}
}

// TestMigrateOwnershipConstantSize runs ownership migrations on a
// 2-replicated network: each moves capacity from a donor to a hot region
// at constant size (modulo cascades), keeps the replica audit clean, and
// leaves query results untouched.
func TestMigrateOwnershipConstantSize(t *testing.T) {
	net, err := NewNetwork(200, WithSeed(7), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pubs := make([]Publication, 800)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%04d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	ranges := []Range{{Low: 0, High: 1000}}
	before, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		hot := ownerOf(t, net, before.Objects[i*37].ID)
		donor := net.RandomPeer()
		for donor == hot {
			donor = net.RandomPeer()
		}
		size := net.Size()
		extra, err := net.migrateOwnership(donor, hot)
		if err != nil {
			t.Fatalf("migration %d (%q -> %q): %v", i+1, donor, hot, err)
		}
		if got, want := net.Size(), size+extra; got != want {
			t.Errorf("migration %d: size %d -> %d with %d cascades, want %d (constant modulo cascades)",
				i+1, size, got, extra, want)
		}
		if err := net.Audit(); err != nil {
			t.Fatalf("audit after migration %d: %v", i+1, err)
		}
	}
	after, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripPeers(after.Objects), stripPeers(before.Objects)) {
		t.Fatalf("query results changed across migrations: %d objects before, %d after",
			len(before.Objects), len(after.Objects))
	}
}

func TestMigrateOwnershipValidation(t *testing.T) {
	net, err := NewNetwork(50, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	p := net.RandomPeer()
	if _, err := net.migrateOwnership(p, p); err == nil {
		t.Error("donor == hot accepted")
	}
	if _, err := net.migrateOwnership(p, "no-such-peer"); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("unknown hot peer: err = %v, want ErrNoSuchPeer", err)
	}
}

// hammer issues narrow range queries over the low end of the space until
// check says the controller acted (or the deadline passes).
func hammer(t *testing.T, net *Network, check func(LoadReport) bool) LoadReport {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		for i := 0; i < 50; i++ {
			if _, err := net.RangeQuery(0, 40); err != nil {
				t.Fatal(err)
			}
		}
		rep, ok := net.LoadReport()
		if !ok {
			t.Fatal("LoadReport not available on a load-controlled network")
		}
		if check(rep) {
			return rep
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never acted: %+v", rep)
		}
	}
}

// TestLoadControlAutoSplit is the end-to-end path: a network built with
// WithLoadControl under a hammered hot range must auto-split it, grow the
// network, and keep the audit clean throughout.
func TestLoadControlAutoSplit(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(3), WithLoadControl(LoadControlConfig{
		SampleInterval: 2 * time.Millisecond,
		HalfLife:       10 * time.Millisecond,
		SplitThreshold: 50,
		Cooldown:       5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	rng := rand.New(rand.NewSource(9))
	pubs := make([]Publication, 400)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%04d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}

	rep := hammer(t, net, func(r LoadReport) bool { return r.AutoSplits > 0 })
	if net.Size() <= 60 {
		t.Errorf("size = %d after %d auto-splits, never grew", net.Size(), rep.AutoSplits)
	}
	if rep.TrackedRegions == 0 || len(rep.Hottest) == 0 {
		t.Errorf("report tracks nothing: %+v", rep)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after auto-splits: %v", err)
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestLoadControlMigration caps growth at one split, so continued heat
// must flow through the migration path: a cold donor leaves and the hot
// region splits, at constant network size.
func TestLoadControlMigration(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(4), WithLoadControl(LoadControlConfig{
		SampleInterval: 2 * time.Millisecond,
		HalfLife:       10 * time.Millisecond,
		SplitThreshold: 50,
		Cooldown:       5 * time.Millisecond,
		MaxGrowth:      1,
		Migrate:        true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	rng := rand.New(rand.NewSource(2))
	pubs := make([]Publication, 400)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%04d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}

	rep := hammer(t, net, func(r LoadReport) bool { return r.Migrations > 0 })
	if rep.AutoSplits == 0 {
		t.Errorf("migration fired before the pre-cap split: %+v", rep)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after migration: %v", err)
	}
}

// TestSessionFallsBackAfterLoadControlActions is the exactness property
// under controller interference: a controller split and a migration in the
// middle of a paged session walk must each force the next page off its
// (now stale) frontier onto a fresh descent, and the concatenated pages
// from the cursor must equal a fresh unpaged walk — only Peer fields may
// differ.
func TestSessionFallsBackAfterLoadControlActions(t *testing.T) {
	net := pagedNetwork(t, 2000)
	ranges := []Range{{Low: 50, High: 950}}
	sess, err := net.OpenSession(NewRange(ranges, WithLimit(100)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	first, err := sess.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first.NextOffsetID == "" {
		t.Fatal("walk ended on page 1; population too sparse for the test")
	}
	cursor := first.NextOffsetID
	var rest []Object

	// Controller action 1: split the owner of an object inside the walked
	// region — the epoch bump must strand the session's captured frontier.
	if _, err := net.splitRegion(ownerOf(t, net, first.Objects[0].ID)); err != nil {
		t.Fatal(err)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after split: %v", err)
	}
	second, err := sess.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.DescentsSaved != 0 {
		t.Error("page after the split was frontier-seeded; its frontier should have been stale")
	}
	rest = append(rest, second.Objects...)

	// Controller action 2: migrate ownership toward another region of the
	// walk; same contract.
	if second.NextOffsetID == "" {
		t.Fatal("walk ended on page 2; population too sparse for the test")
	}
	hot := ownerOf(t, net, second.Objects[len(second.Objects)-1].ID)
	donor := net.RandomPeer()
	for donor == hot {
		donor = net.RandomPeer()
	}
	if _, err := net.migrateOwnership(donor, hot); err != nil {
		t.Fatal(err)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after migration: %v", err)
	}
	third, err := sess.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats.DescentsSaved != 0 {
		t.Error("page after the migration was frontier-seeded; its frontier should have been stale")
	}
	rest = append(rest, third.Objects...)

	walked, pages := sessionWalk(t, sess)
	rest = append(rest, walked...)
	for i, p := range pages {
		if p.Stats.DescentsSaved != 1 {
			t.Errorf("undisturbed page %d: DescentsSaved = %d, want 1 (re-captured frontier)", i+4, p.Stats.DescentsSaved)
		}
	}

	fresh, err := net.Do(context.Background(), NewRange(ranges, WithOffsetID(cursor)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripPeers(rest), stripPeers(fresh.Objects)) {
		t.Fatalf("session pages across controller actions (%d objects) diverged from a fresh walk from the same cursor (%d objects)",
			len(rest), len(fresh.Objects))
	}
}

// TestFrontierCacheInvalidatedByLoadControl: a cached frontier must not
// survive a controller split — the next repeat of the query re-descends
// and still returns the identical result.
func TestFrontierCacheInvalidatedByLoadControl(t *testing.T) {
	net, err := NewNetwork(300, WithSeed(11), WithFrontierCache(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pubs := make([]Publication, 1000)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%04d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	q := NewRange([]Range{{Low: 200, High: 800}})
	if _, err := net.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	warm, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.FrontierHits != 1 {
		t.Fatalf("repeat query missed the frontier cache: %+v", warm.Stats)
	}
	if _, err := net.splitRegion(ownerOf(t, net, warm.Objects[0].ID)); err != nil {
		t.Fatal(err)
	}
	after, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.FrontierHits != 0 {
		t.Error("query after the split hit a stale cached frontier")
	}
	if !reflect.DeepEqual(stripPeers(after.Objects), stripPeers(warm.Objects)) {
		t.Fatal("post-split result diverged from the pre-split result")
	}
}

func TestWithLoadControlValidation(t *testing.T) {
	bad := []LoadControlConfig{
		{SampleInterval: -time.Second},
		{HalfLife: -time.Second},
		{Cooldown: -time.Second},
		{SplitThreshold: -1},
		{MinRegionWidth: -1},
		{MaxGrowth: -1},
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(10, WithLoadControl(cfg)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLoadReportWithoutLoadControl(t *testing.T) {
	net, err := NewNetwork(20, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := net.LoadReport(); ok {
		t.Error("LoadReport ok on a network without load control")
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPeerLoadsCountDeliveries: the per-peer delivery counters PeerLoads
// exposes (on every network, load-controlled or not) move with query
// deliveries and are monotone.
func TestPeerLoadsCountDeliveries(t *testing.T) {
	net, err := NewNetwork(50, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := net.Publish(fmt.Sprintf("obj-%03d", i), float64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	total := func() int64 {
		var sum int64
		for _, pl := range net.PeerLoads() {
			sum += pl.Deliveries
		}
		return sum
	}
	before := total()
	for i := 0; i < 10; i++ {
		if _, err := net.RangeQuery(0, 500); err != nil {
			t.Fatal(err)
		}
	}
	after := total()
	if after <= before {
		t.Fatalf("delivery counters did not move: %d -> %d", before, after)
	}
}
