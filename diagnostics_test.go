package armada

import (
	"context"
	"testing"
	"time"
)

// TestDiagnosticsDisabledByDefault: a network built without
// WithDiagnostics reports nothing — nil log, not-ok reports — and queries
// run exactly as before.
func TestDiagnosticsDisabledByDefault(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if net.DiagnosticsEnabled() {
		t.Fatal("diagnostics enabled without WithDiagnostics")
	}
	if got := net.SlowQueries(); got != nil {
		t.Errorf("SlowQueries = %v on a plain network, want nil", got)
	}
	if _, ok := net.TailAttributionReport(); ok {
		t.Error("TailAttributionReport ok on a plain network")
	}
	if _, ok := net.SLOStatusReport(); ok {
		t.Error("SLOStatusReport ok on a plain network")
	}
	if _, ok := net.SlowThresholdMs(); ok {
		t.Error("SlowThresholdMs ok on a plain network")
	}
	if _, err := net.RangeQuery(100, 300); err != nil {
		t.Fatal(err)
	}
}

// TestDiagnosticsEndToEnd drives a diagnosed network with a threshold low
// enough that every query is slow: the log must fill with classified
// records, the attribution must cover the tail with non-unknown causes,
// and the SLO monitor must have counted every query with zero violations.
func TestDiagnosticsEndToEnd(t *testing.T) {
	net, err := NewNetwork(80, WithSeed(7),
		WithDiagnostics(DiagnosticsConfig{SlowLogCapacity: 32, SlowThreshold: time.Nanosecond}))
	if err != nil {
		t.Fatal(err)
	}
	if !net.DiagnosticsEnabled() {
		t.Fatal("diagnostics not enabled")
	}
	publishSpread(t, net, 200)
	ctx := context.Background()
	const queries = 50
	for i := 0; i < queries; i++ {
		lo := float64(i%40) * 20
		if _, err := net.Do(ctx, NewRange([]Range{{Low: lo, High: lo + 100}})); err != nil {
			t.Fatal(err)
		}
	}

	slow := net.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow queries logged at a 1ns threshold")
	}
	if len(slow) > 32 {
		t.Fatalf("log holds %d records, capacity is 32", len(slow))
	}
	for _, r := range slow {
		if r.Cause == "unknown" || r.Cause == "" {
			t.Errorf("qid %d unclassified: %+v", r.QID, r)
		}
		if r.Kind != "range" || r.DurationMs <= 0 || len(r.Stages) == 0 {
			t.Errorf("malformed record: %+v", r)
		}
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].QID <= slow[i-1].QID {
			t.Fatalf("log not oldest-first: qid %d after %d", slow[i].QID, slow[i-1].QID)
		}
	}

	thr, ok := net.SlowThresholdMs()
	if !ok || thr <= 0 {
		t.Errorf("threshold = %v, %v; want the fixed 1ns in force", thr, ok)
	}
	ta, ok := net.TailAttributionReport()
	if !ok || ta.Queries != queries {
		t.Fatalf("attribution = %+v, %v; want %d queries", ta, ok, queries)
	}
	if ta.TailQueries > 0 {
		sum := 0.0
		for cause, f := range ta.Causes {
			if cause == "unknown" {
				t.Errorf("unknown cause holds fraction %v", f)
			}
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("cause fractions sum to %v, want 1", sum)
		}
	}
	slo, ok := net.SLOStatusReport()
	if !ok || slo.Queries != queries || slo.Violations != 0 {
		t.Errorf("slo = %+v, %v; want %d queries, 0 violations", slo, ok, queries)
	}
}

// TestRegionHeatReport: the heat listing covers every peer, orders by
// deliveries on a controller-less network, and honors the topN cap.
func TestRegionHeatReport(t *testing.T) {
	net, err := NewNetwork(50, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	publishSpread(t, net, 100)
	for i := 0; i < 20; i++ {
		if _, err := net.RangeQuery(0, 500); err != nil {
			t.Fatal(err)
		}
	}
	heat := net.RegionHeatReport(0)
	if len(heat) != net.Size() {
		t.Fatalf("heat lists %d regions, network has %d peers", len(heat), net.Size())
	}
	var objects int
	var deliveries int64
	for i, h := range heat {
		if h.Width < 0 {
			t.Errorf("region %s has negative width %d", h.Peer, h.Width)
		}
		objects += h.Objects
		deliveries += h.Deliveries
		if i > 0 && h.Deliveries > heat[i-1].Deliveries {
			t.Fatalf("heat not hottest-first at %d: %d after %d", i, h.Deliveries, heat[i-1].Deliveries)
		}
	}
	if objects != 100 {
		t.Errorf("store sizes sum to %d, want the 100 published", objects)
	}
	if deliveries == 0 {
		t.Error("no deliveries recorded after 20 range queries")
	}
	if top := net.RegionHeatReport(5); len(top) != 5 {
		t.Errorf("topN=5 returned %d rows", len(top))
	}
	if net.Epoch() == 0 {
		t.Error("epoch is 0 on a built network")
	}
}
