package armada

import (
	"math"

	"armada/internal/core"
)

// Range is one attribute's queried interval [Low, High] (inclusive).
type Range struct {
	Low  float64
	High float64
}

// Object is a published object returned by a query.
type Object struct {
	// Name is the application-level object name.
	Name string
	// Values are the attribute values the object was published with (nil
	// for exact-match-only objects).
	Values []float64
	// ID is the object's Kautz-string ObjectID (empty on lookups, where the
	// queried ID is implied).
	ID string
	// Peer is the identifier of the peer storing the object.
	Peer string
}

// Stats are the cost metrics of one query, in the paper's units.
type Stats struct {
	// Delay is the hop count until the last destination peer received the
	// query. Armada guarantees Delay < 2·log₂N; the average is below log₂N.
	Delay int
	// Messages is the number of overlay messages produced by the query.
	Messages int
	// DestPeers is the number of distinct peers whose regions intersect the
	// query ("Destpeers").
	DestPeers int
	// Subregions is how many common-prefix subregions the query's Kautz
	// region was split into (1–3).
	Subregions int
	// Deliveries counts destination arrivals, including any duplicates; it
	// equals DestPeers when each destination is reached exactly once.
	Deliveries int
	// ReplicaServed counts deliveries served by a replica other than the
	// region's owner — always 0 without replication or under ReadPrimary.
	// On a descent each redirect is included in Messages (and can extend
	// Delay by one hop), so the paper's cost metrics stay honest under
	// read spreading; on a shortcut-routed query (ShortcutHits = 1) the
	// issuer addresses the serving replica directly, so the redirect
	// message is retired.
	ReplicaServed int
	// DescentsSaved is 1 when this query was seeded from a captured
	// descent frontier — a session's own or the shared frontier cache's —
	// instead of descending the issuer's forward routing tree. Messages
	// then counts one direct message per surviving destination (plus
	// replica redirects), Delay is the single fan-out hop, and Subregions
	// is 0. The accounting stays honest: the saving shows up as cheaper
	// Messages/Delay, never as uncounted work.
	DescentsSaved int
	// FrontierHits is 1 when the seeding frontier came from the network's
	// shared cache (WithFrontierCache) — the subset of DescentsSaved that
	// skipped even the first-page descent of its region.
	FrontierHits int
	// ShortcutHits is 1 when the query was routed by the learned shortcut
	// table (WithShortcutTable): the issuer addressed every destination —
	// the serving replica itself, under a read policy — directly, in one
	// hop, with no descent and no redirect messages. DescentsSaved is
	// also 1.
	ShortcutHits int
}

// MesgRatio is Messages/DestPeers, the paper's per-destination message
// cost (0 when no peer was reached).
func (s Stats) MesgRatio() float64 {
	if s.DestPeers == 0 {
		return 0
	}
	return float64(s.Messages) / float64(s.DestPeers)
}

// IncreRatio is (Messages − log₂ n)/(DestPeers − 1) for a network of n
// peers — the marginal message cost per destination beyond the first (0
// when fewer than two peers were reached).
func (s Stats) IncreRatio(networkSize int) float64 {
	if s.DestPeers <= 1 {
		return 0
	}
	return (float64(s.Messages) - math.Log2(float64(networkSize))) / float64(s.DestPeers-1)
}

// Result is the outcome of one executed Query, whatever its kind.
type Result struct {
	// Objects are the matching objects. Range queries sort them by
	// (ObjectID, Name); top-k queries sort them by descending first
	// attribute; lookups return the objects published under the looked-up
	// ObjectID.
	Objects []Object
	// Destinations are the distinct peers that received the query,
	// ascending (empty for top-k and lookup results).
	Destinations []string
	// Owner is the peer owning the looked-up ObjectID (lookups only).
	Owner string
	// NextOffsetID is the pagination cursor of a limited range or flood
	// query: when non-empty, more matches exist beyond this page; rerun the
	// same query with WithOffsetID(NextOffsetID) for the next one. Empty
	// when Objects completes the result set.
	NextOffsetID string
	// Stats carries the query's cost metrics.
	Stats Stats
}

// LookupResult is the outcome of an exact-match lookup.
type LookupResult struct {
	// Owner is the peer owning the looked-up ObjectID.
	Owner string
	// Objects are the objects published under the ObjectID.
	Objects []Object
	// Stats carries the routing cost.
	Stats Stats
}

func statsOf(s core.Stats) Stats {
	return Stats{
		Delay:         s.Delay,
		Messages:      s.Messages,
		DestPeers:     s.DestPeers,
		Subregions:    s.Subregions,
		Deliveries:    s.Deliveries,
		ReplicaServed: s.ReplicaServed,
		DescentsSaved: s.DescentsSaved,
		ShortcutHits:  s.ShortcutHits,
	}
}

// objectOf converts one engine match, copying the values: core.Match
// aliases the store's slices, and results handed to callers must never
// share memory with live peer stores.
func objectOf(m core.Match) Object {
	return Object{Name: m.Name, Values: copyValues(m.Values), ID: string(m.ObjectID), Peer: string(m.Peer)}
}

func copyValues(vs []float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	return append([]float64(nil), vs...)
}

// resultOf converts an engine result wholesale, reading the per-delivery
// runs directly (queries run with core.WithRunsOnly, so the engine never
// flattens). The values of all matches are copied into one shared backing
// array — one allocation instead of one per object. Together that leaves a
// hot-region result copied exactly once between delivery and caller.
func resultOf(r *core.RangeResult) *Result {
	out := &Result{Stats: statsOf(r.Stats), NextOffsetID: string(r.Next)}
	total, values := 0, 0
	for _, run := range r.Runs {
		total += len(run)
		for _, m := range run {
			values += len(m.Values)
		}
	}
	if total > 0 {
		buf := make([]float64, 0, values)
		out.Objects = make([]Object, 0, total)
		for _, run := range r.Runs {
			for _, m := range run {
				var vals []float64
				if len(m.Values) > 0 {
					off := len(buf)
					buf = append(buf, m.Values...)
					vals = buf[off:len(buf):len(buf)]
				}
				out.Objects = append(out.Objects, Object{Name: m.Name, Values: vals, ID: string(m.ObjectID), Peer: string(m.Peer)})
			}
		}
	}
	if len(r.Destinations) > 0 {
		out.Destinations = make([]string, len(r.Destinations))
		for i, d := range r.Destinations {
			out.Destinations[i] = string(d)
		}
	}
	return out
}
