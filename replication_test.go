package armada

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestReplicatedK1Identical verifies the migration contract: an explicit
// WithReplication(1) network behaves byte-for-byte like a default one.
func TestReplicatedK1Identical(t *testing.T) {
	a, err := NewNetwork(120, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(120, WithSeed(9), WithReplication(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name, v := fmt.Sprintf("o-%03d", i), float64(i*3%997)
		if err := a.Publish(name, v); err != nil {
			t.Fatal(err)
		}
		if err := b.Publish(name, v); err != nil {
			t.Fatal(err)
		}
	}
	q := NewRange([]Range{{Low: 100, High: 600}}, WithIssuer(a.PeerIDs()[0]))
	ra, err := a.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("WithReplication(1) result differs from the default network's")
	}
	if ra.Stats.ReplicaServed != 0 {
		t.Fatalf("unreplicated query reports %d replica-served deliveries", ra.Stats.ReplicaServed)
	}
}

// TestReadPoliciesExactAndSpread verifies that every read policy returns
// the same objects (pagination included) and that round-robin genuinely
// spreads deliveries onto replicas.
func TestReadPoliciesExactAndSpread(t *testing.T) {
	net, err := NewNetwork(150, WithSeed(11), WithReplication(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 600; i++ {
		if err := net.Publish(fmt.Sprintf("obj-%04d", i), rng.Float64()*1000); err != nil {
			t.Fatal(err)
		}
	}
	issuer := net.PeerIDs()[3]
	ranges := []Range{{Low: 50, High: 700}}

	names := func(res *Result) []string {
		out := make([]string, len(res.Objects))
		for i, o := range res.Objects {
			out[i] = o.ID + "/" + o.Name
		}
		return out
	}
	primary, err := net.Do(context.Background(), NewRange(ranges, WithIssuer(issuer), WithReadPolicy(ReadPrimary)))
	if err != nil {
		t.Fatal(err)
	}
	if primary.Stats.ReplicaServed != 0 {
		t.Fatalf("primary policy served %d deliveries from replicas", primary.Stats.ReplicaServed)
	}
	spread := 0
	for _, pol := range []ReadPolicy{ReadDefault, ReadRoundRobin, ReadLeastLoaded} {
		res, err := net.Do(context.Background(), NewRange(ranges, WithIssuer(issuer), WithReadPolicy(pol)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(names(res), names(primary)) {
			t.Fatalf("policy %v returned a different object set than primary", pol)
		}
		spread += res.Stats.ReplicaServed
		// Redirects are accounted as extra messages, never hidden.
		if res.Stats.Messages < primary.Stats.Messages ||
			res.Stats.Messages != primary.Stats.Messages+res.Stats.ReplicaServed {
			t.Fatalf("policy %v: messages %d, primary %d, replica-served %d — redirect accounting broken",
				pol, res.Stats.Messages, primary.Stats.Messages, res.Stats.ReplicaServed)
		}
		// Flood must agree with the pruned descent under every policy.
		fl, err := net.Do(context.Background(), NewRange(ranges, WithIssuer(issuer), WithReadPolicy(pol), WithFlood()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(names(fl), names(primary)) {
			t.Fatalf("policy %v: flood result diverged from pruned range", pol)
		}
	}
	if spread == 0 {
		t.Fatal("no delivery was ever served by a replica across round-robin and least-loaded queries")
	}

	// Paginated walks must concatenate to the full result under spreading.
	var walked []string
	q := NewRange(ranges, WithIssuer(issuer), WithLimit(37), WithReadPolicy(ReadRoundRobin))
	for {
		res, err := net.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, names(res)...)
		if res.NextOffsetID == "" {
			break
		}
		q.OffsetID = res.NextOffsetID
	}
	if !reflect.DeepEqual(walked, names(primary)) {
		t.Fatalf("paged walk under round-robin diverged: %d objects, want %d", len(walked), len(primary.Objects))
	}
}

// TestValueLookup covers the value-keyed exact-match query: it finds
// objects Publish stored (name lookups only see PublishExact objects).
func TestValueLookup(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish("alpha", 123.5); err != nil {
		t.Fatal(err)
	}
	res, err := net.Do(context.Background(), NewValueLookup([]float64{123.5}))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range res.Objects {
		if o.Name == "alpha" {
			found = true
		}
	}
	if !found {
		t.Fatalf("value lookup for 123.5 did not find alpha (objects: %v)", res.Objects)
	}
	if _, err := net.Do(context.Background(), NewValueLookup([]float64{1, 2})); err == nil {
		t.Fatal("value lookup with wrong arity accepted")
	}
	if _, err := net.Do(context.Background(), Query{Kind: KindLookup}); err == nil {
		t.Fatal("lookup with neither name nor values accepted")
	}
}

// TestReplicatedChurnStormNoMisses is the crash-stop durability test: on a
// 2-replicated network, concurrent publishers, value-lookups and
// unpublishers run against Join/Leave/Fail churn, and not a single
// unpublish may miss, not a single lookup may come back empty — replication
// must make crash loss unobservable. Run under -race in CI.
func TestReplicatedChurnStormNoMisses(t *testing.T) {
	net, err := NewNetwork(150, WithSeed(31), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}

	// The live pool: objects fully published and not yet claimed for
	// unpublishing, so no two operations ever race on one object.
	type rec struct {
		name string
		val  float64
	}
	var (
		poolMu sync.Mutex
		pool   []rec
	)
	put := func(r rec) { poolMu.Lock(); pool = append(pool, r); poolMu.Unlock() }
	take := func(rng *rand.Rand) (rec, bool) {
		poolMu.Lock()
		defer poolMu.Unlock()
		if len(pool) == 0 {
			return rec{}, false
		}
		i := rng.Intn(len(pool))
		r := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return r, true
	}
	peek := func(rng *rand.Rand) (rec, bool) {
		poolMu.Lock()
		defer poolMu.Unlock()
		if len(pool) == 0 {
			return rec{}, false
		}
		return pool[rng.Intn(len(pool))], true
	}

	seedRng := rand.New(rand.NewSource(32))
	for i := 0; i < 400; i++ {
		r := rec{name: fmt.Sprintf("seed-%04d", i), val: seedRng.Float64() * 1000}
		if err := net.Publish(r.name, r.val); err != nil {
			t.Fatal(err)
		}
		put(r)
	}

	var (
		churner   sync.WaitGroup
		workers   sync.WaitGroup
		churnDone atomic.Bool
		misses    atomic.Int64
		lookups   atomic.Int64
		seq       atomic.Int64
	)

	// Churner: joins, leaves and crashes; each event triggers synchronous
	// re-replication under the write lock.
	churner.Add(1)
	go func() {
		defer churner.Done()
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < 120; i++ {
			switch x := rng.Intn(4); {
			case x < 2 || net.Size() < 60:
				if _, err := net.Join(); err != nil {
					t.Errorf("join: %v", err)
					return
				}
			case x == 2:
				if err := net.Leave(net.RandomPeer()); err != nil &&
					!errors.Is(err, ErrNoSuchPeer) && !errors.Is(err, ErrTooSmall) {
					t.Errorf("leave: %v", err)
					return
				}
			default:
				if err := net.Fail(net.RandomPeer()); err != nil &&
					!errors.Is(err, ErrNoSuchPeer) && !errors.Is(err, ErrTooSmall) {
					t.Errorf("fail: %v", err)
					return
				}
			}
		}
	}()

	// Writers: publish new objects and unpublish pooled ones. Every
	// unpublish must find its object — a miss is a durability violation.
	for w := 0; w < 2; w++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed))
			for !churnDone.Load() {
				if rng.Intn(2) == 0 {
					r := rec{name: fmt.Sprintf("live-%d", seq.Add(1)), val: rng.Float64() * 1000}
					if err := net.Publish(r.name, r.val); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
					put(r)
				} else if r, ok := take(rng); ok {
					if err := net.Unpublish(r.name, r.val); err != nil {
						if errors.Is(err, ErrNoSuchObject) {
							misses.Add(1)
						} else {
							t.Errorf("unpublish: %v", err)
							return
						}
					}
				}
			}
		}(int64(40 + w))
	}

	// Readers: value-lookups of live objects under the default (round-robin)
	// policy; the object must be found whichever replica serves.
	for q := 0; q < 2; q++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed))
			for !churnDone.Load() {
				r, ok := peek(rng)
				if !ok {
					continue
				}
				res, err := net.Do(context.Background(), NewValueLookup([]float64{r.val}))
				if err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				found := false
				for _, o := range res.Objects {
					if o.Name == r.name {
						found = true
						break
					}
				}
				// The object may have been legitimately unpublished between
				// peek and lookup; only count a miss if it is still pooled.
				if !found {
					poolMu.Lock()
					stillLive := false
					for _, p := range pool {
						if p.name == r.name {
							stillLive = true
							break
						}
					}
					poolMu.Unlock()
					if stillLive {
						misses.Add(1)
					}
				}
				lookups.Add(1)
			}
		}(int64(50 + q))
	}

	churner.Wait()
	churnDone.Store(true)
	workers.Wait()

	if got := misses.Load(); got != 0 {
		t.Fatalf("%d availability misses on a 2-replicated network (want 0)", got)
	}
	if lookups.Load() == 0 {
		t.Error("no lookups completed during churn")
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after replicated churn storm: %v", err)
	}
}
