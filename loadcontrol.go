package armada

import (
	"fmt"
	"time"

	"armada/internal/kautz"
	"armada/internal/loadctl"
	"armada/internal/obs"
)

// LoadControlConfig tunes the adaptive load controller enabled by
// WithLoadControl. Zero values take the noted defaults.
type LoadControlConfig struct {
	// SampleInterval is how often the controller samples every peer's
	// delivery counter (default 100ms).
	SampleInterval time.Duration
	// HalfLife is the EWMA half-life of the per-region delivery rate
	// (default 500ms): how long a load change takes to show half its
	// magnitude. Longer half-lives demand more sustained heat before any
	// action fires.
	HalfLife time.Duration
	// SplitThreshold is the sustained per-region delivery rate
	// (deliveries/second) above which the controller intervenes (default
	// 1000).
	SplitThreshold float64
	// Cooldown separates consecutive control actions (default 300ms).
	Cooldown time.Duration
	// MinRegionWidth is the minimum number of free ObjectID symbols a
	// region must keep after splitting (default 4); narrower regions are
	// never split.
	MinRegionWidth int
	// MaxGrowth caps the number of peers auto-splits may add. Zero picks
	// an eighth of the initial network size (at least 8). At the cap,
	// relief continues through migration when Migrate is set.
	MaxGrowth int
	// Migrate enables ownership migration once MaxGrowth is exhausted: the
	// coldest sufficiently idle peer leaves and the hot region splits, so
	// ownership capacity follows the load at constant network size.
	Migrate bool
}

// WithLoadControl runs a background load controller on the network: it
// samples every peer's query-delivery counter, keeps per-region EWMA
// rates, auto-splits regions whose sustained rate crosses the threshold
// and — at the growth cap, when enabled — migrates ownership from the
// coldest peer toward the hot region. Every action is a regular topology
// mutation: it runs under the topology write lock, repairs replica groups
// and bumps the topology epoch, so cached frontiers and open sessions
// invalidate exactly as they do under churn.
//
// A network built with load control owns a background goroutine; call
// Close when done with the network to stop it.
func WithLoadControl(cfg LoadControlConfig) Option {
	return optionFunc(func(c *config) error {
		if cfg.SampleInterval < 0 || cfg.HalfLife < 0 || cfg.Cooldown < 0 {
			return fmt.Errorf("%w: negative load-control duration", errBadOption)
		}
		if cfg.SplitThreshold < 0 {
			return fmt.Errorf("%w: negative load-control split threshold %v", errBadOption, cfg.SplitThreshold)
		}
		if cfg.MinRegionWidth < 0 || cfg.MaxGrowth < 0 {
			return fmt.Errorf("%w: negative load-control width or growth bound", errBadOption)
		}
		c.loadControl = &cfg
		return nil
	})
}

// startLoadControl builds and starts the network's controller; called once
// from NewNetwork after the overlay is up.
func (n *Network) startLoadControl(cfg LoadControlConfig, peers int) {
	if cfg.MaxGrowth == 0 {
		cfg.MaxGrowth = max(8, peers/8)
	}
	n.lctl = loadctl.New(loadctl.Config{
		SampleInterval: cfg.SampleInterval,
		HalfLife:       cfg.HalfLife,
		SplitThreshold: cfg.SplitThreshold,
		Cooldown:       cfg.Cooldown,
		MinRegionWidth: cfg.MinRegionWidth,
		MaxGrowth:      cfg.MaxGrowth,
		Migrate:        cfg.Migrate,
	}, loadActuator{n})
	n.lctl.DescribeMetrics(n.obs.reg)
	n.lctl.Start()
}

// Close releases the network's background resources — today, the load
// controller's goroutine. It is idempotent and a no-op on networks built
// without WithLoadControl.
func (n *Network) Close() error {
	if n.lctl != nil {
		n.lctl.Stop()
	}
	return nil
}

// loadActuator adapts the Network to the controller: samples under the
// topology read lock, acts under the write lock.
type loadActuator struct{ n *Network }

func (a loadActuator) Sample() []loadctl.Sample {
	a.n.mu.RLock()
	defer a.n.mu.RUnlock()
	k := a.n.net.K()
	ids := a.n.net.PeerIDs()
	out := make([]loadctl.Sample, 0, len(ids))
	for _, id := range ids {
		p, ok := a.n.net.Peer(id)
		if !ok {
			continue
		}
		out = append(out, loadctl.Sample{
			ID:         string(id),
			Width:      k - len(id),
			Deliveries: p.Deliveries(),
		})
	}
	return out
}

func (a loadActuator) Split(id string) (int, error) { return a.n.splitRegion(id) }
func (a loadActuator) Migrate(donor, hot string) (int, error) {
	return a.n.migrateOwnership(donor, hot)
}

// splitRegion splits the identified peer's region under the topology write
// lock, returning how many extra peers invariant-restoring cascade splits
// created. The epoch bump happens inside the fissione split, so frontiers
// and sessions invalidate like they do for joins.
func (n *Network) splitRegion(id string) (extra int, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, _, extra, err = n.net.SplitRegion(kautz.Str(id))
	if err == nil {
		if n.obs.flight != nil {
			n.obs.flight.Record(obs.Event{Kind: obs.EvSplit, From: id, V1: int64(extra)})
		}
		if n.obs.diag != nil {
			n.obs.diag.NoteControlAction()
		}
	}
	return extra, wrapFissioneErr(err, id)
}

// migrateOwnership moves ownership capacity from the donor peer to the hot
// peer's region at constant network size: the donor leaves (its region
// merges into a neighbor), then the hot region — re-resolved through a
// representative ObjectID, since the departure may have renamed or widened
// the hot peer — is split. Both steps are ordinary topology mutations;
// each leaves the network fully consistent, so a split failing after a
// successful departure aborts the migration without corrupting anything.
func (n *Network) migrateOwnership(donor, hot string) (extra int, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if donor == hot {
		return 0, fmt.Errorf("armada: migration donor and hot region are both %q", donor)
	}
	hotID := kautz.Str(hot)
	if _, ok := n.net.Peer(hotID); !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchPeer, hot)
	}
	rep := kautz.MinExtend(hotID, n.net.K())
	if err := n.net.Leave(kautz.Str(donor)); err != nil {
		return 0, wrapFissioneErr(err, donor)
	}
	owner, err := n.net.OwnerOf(rep)
	if err != nil {
		return 0, err
	}
	_, _, extra, err = n.net.SplitRegion(owner)
	if err == nil {
		if n.obs.flight != nil {
			n.obs.flight.Record(obs.Event{Kind: obs.EvMigrate, From: donor, To: hot, V1: int64(extra)})
		}
		if n.obs.diag != nil {
			n.obs.diag.NoteControlAction()
		}
	}
	return extra, wrapFissioneErr(err, string(owner))
}

// RegionLoad is one region's EWMA delivery rate in a LoadReport.
type RegionLoad struct {
	// Peer identifies the region's owner.
	Peer string
	// Rate is the region's EWMA delivery rate in deliveries/second.
	Rate float64
}

// LoadReport is a snapshot of the load controller's state: its action
// counters and the hottest regions it currently tracks.
type LoadReport struct {
	// AutoSplits counts hot regions split; Migrations counts ownership
	// moves (a cold donor leaving + the hot region splitting).
	// CascadeSplits totals the extra invariant-restoring splits those
	// actions needed, and FailedActions the attempts that errored (e.g.
	// the network at minimum size refusing a departure).
	AutoSplits    int64
	Migrations    int64
	CascadeSplits int64
	FailedActions int64
	// Hottest lists the highest-rate regions, hottest first (capped);
	// TrackedRegions is how many regions the accountant follows.
	Hottest        []RegionLoad
	TrackedRegions int
}

// LoadReport snapshots the load controller's counters and hottest regions;
// ok is false when the network was built without WithLoadControl.
func (n *Network) LoadReport() (_ LoadReport, ok bool) {
	if n.lctl == nil {
		return LoadReport{}, false
	}
	r := n.lctl.Report()
	rep := LoadReport{
		AutoSplits:     r.Counters.AutoSplits,
		Migrations:     r.Counters.Migrations,
		CascadeSplits:  r.Counters.CascadeSplits,
		FailedActions:  r.Counters.FailedActions,
		TrackedRegions: r.Tracked,
	}
	rep.Hottest = make([]RegionLoad, len(r.Hottest))
	for i, h := range r.Hottest {
		rep.Hottest[i] = RegionLoad{Peer: h.ID, Rate: h.Rate}
	}
	return rep, true
}

// PeerLoad is one peer's cumulative delivery count (see PeerLoads).
type PeerLoad struct {
	// Peer is the peer's identifier; Deliveries how many query deliveries
	// have addressed it as region owner since it was created (counters
	// survive renames: a peer renamed by a split keeps its count).
	Peer       string
	Deliveries int64
}

// PeerLoads returns every peer's cumulative query-delivery counter in
// identifier order. It is available on every network — no WithLoadControl
// needed — and is what the workload package computes delivery skew from.
func (n *Network) PeerLoads() []PeerLoad {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := n.net.PeerIDs()
	out := make([]PeerLoad, 0, len(ids))
	for _, id := range ids {
		p, ok := n.net.Peer(id)
		if !ok {
			continue
		}
		out = append(out, PeerLoad{Peer: string(id), Deliveries: p.Deliveries()})
	}
	return out
}
