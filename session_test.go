package armada

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// sessionWalk drains a session, returning the concatenated pages and the
// per-page results.
func sessionWalk(t *testing.T, sess *Session) ([]Object, []*Result) {
	t.Helper()
	var (
		objs  []Object
		pages []*Result
	)
	for sess.More() {
		res, err := sess.Next(context.Background())
		if err != nil {
			t.Fatalf("page %d: %v", len(pages), err)
		}
		objs = append(objs, res.Objects...)
		pages = append(pages, res)
		if len(pages) > 10000 {
			t.Fatal("session walk does not terminate")
		}
	}
	return objs, pages
}

// TestSessionWalkEqualsFresh requires a session walk to return exactly the
// unpaged result, with every page beyond the first seeded from the
// captured frontier (descents saved) at a strictly lower message cost.
func TestSessionWalkEqualsFresh(t *testing.T) {
	net := pagedNetwork(t, 2500)
	ranges := []Range{{Low: 100, High: 900}}
	full, err := net.Do(context.Background(), NewRange(ranges))
	if err != nil {
		t.Fatal(err)
	}

	sess, err := net.OpenSession(NewRange(ranges, WithLimit(128)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	walked, pages := sessionWalk(t, sess)
	if !reflect.DeepEqual(walked, full.Objects) {
		t.Fatalf("session walk (%d objects over %d pages) diverged from the full result (%d objects)",
			len(walked), len(pages), len(full.Objects))
	}
	if len(pages) < 3 {
		t.Fatalf("population too sparse: only %d pages", len(pages))
	}
	if pages[0].Stats.DescentsSaved != 0 {
		t.Errorf("page 1 claims a saved descent on a cacheless network")
	}
	for i, p := range pages[1:] {
		if p.Stats.DescentsSaved != 1 {
			t.Errorf("page %d: DescentsSaved = %d, want 1", i+2, p.Stats.DescentsSaved)
		}
		if p.Stats.Messages >= pages[0].Stats.Messages {
			t.Errorf("page %d: %d messages, not below page 1's %d",
				i+2, p.Stats.Messages, pages[0].Stats.Messages)
		}
	}
	st := sess.Stats()
	if st.Pages != len(pages) || st.Objects != len(walked) {
		t.Errorf("session stats %+v disagree with %d pages / %d objects", st, len(pages), len(walked))
	}
	if st.DescentsSaved != len(pages)-1 {
		t.Errorf("DescentsSaved = %d, want %d (every page beyond the first)", st.DescentsSaved, len(pages)-1)
	}
	if st.FrontierHits != 0 {
		t.Errorf("FrontierHits = %d without a frontier cache", st.FrontierHits)
	}
}

// TestSessionFallbackAfterChurn forces churn mid-walk: the next page must
// fall back to a full descent (the frontier's epoch is stale), re-capture,
// and the remaining pages must still equal a fresh walk from the same
// cursor — byte for byte.
func TestSessionFallbackAfterChurn(t *testing.T) {
	net := pagedNetwork(t, 2000)
	ranges := []Range{{Low: 50, High: 950}}
	sess, err := net.OpenSession(NewRange(ranges, WithLimit(100)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	first, err := sess.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first.NextOffsetID == "" {
		t.Fatal("walk ended on page 1; population too sparse for the test")
	}
	cursor := first.NextOffsetID

	// Invalidate the frontier: a join and a graceful leave (no crash, so
	// the object population is preserved exactly).
	if _, err := net.Join(); err != nil {
		t.Fatal(err)
	}
	if err := net.Leave(net.RandomPeer()); err != nil {
		t.Fatal(err)
	}

	rest, pages := sessionWalk(t, sess)
	if pages[0].Stats.DescentsSaved != 0 {
		t.Error("the page after churn was frontier-seeded; its frontier should have been stale")
	}
	for i, p := range pages[1:] {
		if p.Stats.DescentsSaved != 1 {
			t.Errorf("post-churn page %d: DescentsSaved = %d, want 1 (re-captured frontier)", i+2, p.Stats.DescentsSaved)
		}
	}

	fresh, err := net.Do(context.Background(), NewRange(ranges, WithOffsetID(cursor)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rest, fresh.Objects) {
		t.Fatalf("post-churn session pages (%d objects) diverged from a fresh walk from the same cursor (%d objects)",
			len(rest), len(fresh.Objects))
	}
}

// TestPagedWalkInterleavedMutations is the cursor-stability property test:
// a paged walk — plain Do pages and session pages alike — interleaved with
// publishes and unpublishes between pages never duplicates any object and
// never skips a survivor (an object present before the walk and untouched
// throughout it).
func TestPagedWalkInterleavedMutations(t *testing.T) {
	for _, mode := range []string{"do", "session"} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				testInterleavedWalk(t, mode, seed)
			})
		}
	}
}

func testInterleavedWalk(t *testing.T, mode string, seed int64) {
	net, err := NewNetwork(200, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 977))
	type rec struct {
		name  string
		value float64
	}
	var live []rec
	pubs := make([]Publication, 900)
	for i := range pubs {
		r := rec{name: fmt.Sprintf("base-%04d", i), value: rng.Float64() * 1000}
		pubs[i] = Publication{Name: r.name, Values: []float64{r.value}}
		live = append(live, r)
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	survivors := make(map[string]bool, len(live))
	for _, r := range live {
		survivors[r.name] = true
	}

	ranges := []Range{{Low: 0, High: 1000}}
	var sess *Session
	if mode == "session" {
		if sess, err = net.OpenSession(NewRange(ranges, WithLimit(64))); err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
	}

	seen := make(map[string]int)
	offset := ""
	for page := 0; ; page++ {
		var res *Result
		if sess != nil {
			if !sess.More() {
				break
			}
			res, err = sess.Next(context.Background())
		} else {
			opts := []QueryOption{WithLimit(64)}
			if offset != "" {
				opts = append(opts, WithOffsetID(offset))
			}
			res, err = net.Do(context.Background(), NewRange(ranges, opts...))
		}
		if err != nil {
			t.Fatalf("page %d: %v", page, err)
		}
		for _, o := range res.Objects {
			seen[o.Name]++
		}
		if res.NextOffsetID == "" && sess == nil {
			break
		}
		offset = res.NextOffsetID

		// Mutate between pages: one fresh publish, one unpublish of a
		// random still-live base object (which stops being a survivor).
		mid := rec{name: fmt.Sprintf("mid-%d-%04d", seed, page), value: rng.Float64() * 1000}
		if err := net.Publish(mid.name, mid.value); err != nil {
			t.Fatal(err)
		}
		if len(live) > 0 {
			i := rng.Intn(len(live))
			r := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := net.Unpublish(r.name, r.value); err != nil {
				t.Fatalf("unpublish %q: %v", r.name, err)
			}
			delete(survivors, r.name)
		}
		if page > 5000 {
			t.Fatal("walk does not terminate")
		}
	}

	for name, n := range seen {
		if n > 1 {
			t.Errorf("object %q returned %d times; a paged walk must never duplicate", name, n)
		}
	}
	for name := range survivors {
		if seen[name] == 0 {
			t.Errorf("survivor %q skipped by the walk", name)
		}
	}
}

// TestFrontierCacheHitOnRepeat checks the shared cache end to end: a
// repeated range query seeds from the cached frontier (hit, saved
// descent, identical objects, cheaper messages), churn invalidates the
// entry (fallback, no hit, still correct), and the re-captured frontier
// serves hits again.
func TestFrontierCacheHitOnRepeat(t *testing.T) {
	net, err := NewNetwork(300, WithSeed(7), WithFrontierCache(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pubs := make([]Publication, 1500)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%05d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	q := NewRange([]Range{{Low: 300, High: 420}})

	first, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.FrontierHits != 0 || first.Stats.DescentsSaved != 0 {
		t.Fatalf("first query hit a cold cache: %+v", first.Stats)
	}

	second, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.FrontierHits != 1 || second.Stats.DescentsSaved != 1 {
		t.Fatalf("repeat missed the cache: %+v", second.Stats)
	}
	if !reflect.DeepEqual(second.Objects, first.Objects) {
		t.Fatal("cache-seeded query returned different objects")
	}
	if second.Stats.Messages >= first.Stats.Messages {
		t.Errorf("cache-seeded query cost %d messages, descent cost %d", second.Stats.Messages, first.Stats.Messages)
	}

	if _, err := net.Join(); err != nil {
		t.Fatal(err)
	}
	third, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats.FrontierHits != 0 || third.Stats.DescentsSaved != 0 {
		t.Fatalf("post-churn query used a stale frontier: %+v", third.Stats)
	}
	if !reflect.DeepEqual(third.Objects, first.Objects) {
		t.Fatal("post-churn fallback returned different objects")
	}

	fourth, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Stats.FrontierHits != 1 {
		t.Fatalf("re-captured frontier not served: %+v", fourth.Stats)
	}

	cs, ok := net.FrontierCacheStats()
	if !ok {
		t.Fatal("FrontierCacheStats not available on a cached network")
	}
	if cs.Hits != 2 || cs.Stale != 1 || cs.Capacity != 16 {
		t.Errorf("cache stats = %+v, want 2 hits, 1 stale, capacity 16", cs)
	}
}

// TestSessionPageOneCacheHit: a session on a cached network whose region
// was already descended seeds even its first page from the cache.
func TestSessionPageOneCacheHit(t *testing.T) {
	net, err := NewNetwork(250, WithSeed(9), WithFrontierCache(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	pubs := make([]Publication, 1200)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%05d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	ranges := []Range{{Low: 200, High: 800}}
	full, err := net.Do(context.Background(), NewRange(ranges)) // warms the cache
	if err != nil {
		t.Fatal(err)
	}

	sess, err := net.OpenSession(NewRange(ranges, WithLimit(128)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	walked, pages := sessionWalk(t, sess)
	if !reflect.DeepEqual(walked, full.Objects) {
		t.Fatal("cached session walk diverged from the unpaged result")
	}
	if pages[0].Stats.FrontierHits != 1 {
		t.Errorf("page 1 missed the warmed cache: %+v", pages[0].Stats)
	}
	st := sess.Stats()
	if st.DescentsSaved != len(pages) {
		t.Errorf("DescentsSaved = %d, want %d (every page, page 1 included)", st.DescentsSaved, len(pages))
	}
}

// TestFrontierCacheMIRABoundsGuard: on a multi-attribute network the
// descent's box predicate prunes destinations outside the query box, so a
// cached frontier must not seed a query whose box is wider than its
// capture's — even when the Kautz regions cover. The wider query must
// descend in full and find everything.
func TestFrontierCacheMIRABoundsGuard(t *testing.T) {
	net, err := NewNetwork(300, WithSeed(13), WithFrontierCache(16),
		WithAttributes(AttributeSpace{Low: 0, High: 1000}, AttributeSpace{Low: 0, High: 100}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	pubs := make([]Publication, 2000)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%05d", i),
			Values: []float64{rng.Float64() * 1000, rng.Float64() * 100}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}

	// Narrow second attribute first: its capture enters the cache.
	narrow := []Range{{Low: 200, High: 700}, {Low: 40, High: 45}}
	if _, err := net.Do(context.Background(), NewRange(narrow)); err != nil {
		t.Fatal(err)
	}
	// Same first attribute, wider second: whatever the regions share, the
	// narrow capture must not serve it.
	wide := []Range{{Low: 200, High: 700}, {Low: 0, High: 100}}
	res, err := net.Do(context.Background(), NewRange(wide))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FrontierHits != 0 {
		t.Fatal("a narrow-box capture seeded a wider multi-attribute query")
	}
	want := 0
	for _, p := range pubs {
		if p.Values[0] >= 200 && p.Values[0] <= 700 {
			want++
		}
	}
	if len(res.Objects) != want {
		t.Fatalf("wide query found %d objects, brute force %d", len(res.Objects), want)
	}

	// The converse reuse is sound and must still work: narrow inside wide.
	again, err := net.Do(context.Background(), NewRange(narrow))
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.DescentsSaved != 1 {
		t.Error("a covering wide capture did not seed the narrower query")
	}
}

// TestOpenSessionValidation covers the session API's error surface.
func TestOpenSessionValidation(t *testing.T) {
	net := pagedNetwork(t, 60)
	cases := []struct {
		name string
		q    Query
	}{
		{"lookup", NewLookup("obj-00001", WithLimit(5))},
		{"top-k", NewRange([]Range{{0, 1000}}, WithTopK(3), WithLimit(5))},
		{"flood", NewRange([]Range{{0, 1000}}, WithFlood(), WithLimit(5))},
		{"no limit", NewRange([]Range{{0, 1000}})},
		{"negative limit", NewRange([]Range{{0, 1000}}, WithLimit(-2))},
	}
	for _, c := range cases {
		if _, err := net.OpenSession(c.q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%s: err = %v, want ErrBadQuery", c.name, err)
		}
	}
	if _, err := net.OpenSession(NewRange([]Range{{0, 1000}},
		WithLimit(5), WithIssuer("no-such-peer"))); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("nonexistent issuer: err = %v, want ErrNoSuchPeer", err)
	}

	sess, err := net.OpenSession(NewRange([]Range{{0, 1000}}), WithLimit(1000))
	if err != nil {
		t.Fatalf("options passed to OpenSession not applied: %v", err)
	}
	sessionWalk(t, sess)
	if sess.More() {
		t.Error("More() true after the final page")
	}
	if _, err := sess.Next(context.Background()); !errors.Is(err, ErrSessionDone) {
		t.Errorf("Next after the final page: err = %v, want ErrSessionDone", err)
	}
	sess.Close()
	sess.Close() // idempotent
	if _, err := sess.Next(context.Background()); !errors.Is(err, ErrSessionDone) {
		t.Errorf("Next after Close: err = %v, want ErrSessionDone", err)
	}
}

// TestStreamReusesFrontierCache: streamed range queries participate in the
// shared frontier cache on both sides — a stream's descent captures a
// frontier for later queries, and a stream over an already-descended
// region seeds from the cached frontier instead of walking the FRT again.
func TestStreamReusesFrontierCache(t *testing.T) {
	net, err := NewNetwork(250, WithSeed(11), WithFrontierCache(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	pubs := make([]Publication, 1000)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("obj-%05d", i), Values: []float64{rng.Float64() * 1000}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	q := NewRange([]Range{{Low: 300, High: 700}})

	stream := func() map[string]Object {
		t.Helper()
		got := make(map[string]Object)
		for o, err := range net.Stream(context.Background(), q) {
			if err != nil {
				t.Fatal(err)
			}
			got[o.ID] = o
		}
		return got
	}

	// A cold stream descends and must capture its frontier into the cache.
	first := stream()
	seeded, err := net.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.FrontierHits != 1 || seeded.Stats.DescentsSaved != 1 {
		t.Fatalf("Do after a stream descended fresh: %+v — stream did not capture", seeded.Stats)
	}
	if len(first) != len(seeded.Objects) {
		t.Fatalf("stream yielded %d objects, Do %d", len(first), len(seeded.Objects))
	}
	for _, o := range seeded.Objects {
		if _, ok := first[o.ID]; !ok {
			t.Fatalf("stream missed %q", o.Name)
		}
	}

	// A warm stream must seed from the cache rather than descend again.
	before, _ := net.FrontierCacheStats()
	second := stream()
	after, ok := net.FrontierCacheStats()
	if !ok {
		t.Fatal("FrontierCacheStats not available on a cached network")
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("warm stream did not hit the frontier cache: %+v -> %+v", before, after)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatal("cache-seeded stream returned different objects")
	}
}
