package armada

import (
	"errors"
	"io"
	"math"
	"runtime"
	"sync/atomic"

	"armada/internal/core"
	"armada/internal/diag"
	"armada/internal/kautz"
	"armada/internal/obs"
)

// ErrNoRecorder is returned by WriteFlightTrace on a network built without
// WithFlightRecorder.
var ErrNoRecorder = errors.New("armada: network built without WithFlightRecorder")

// netObs bundles the network's observability state: the metrics registry
// every component registers into, the optional flight recorder, and the
// delay-bound conformance instruments.
type netObs struct {
	reg *obs.Registry
	// flight is the query-lifecycle flight recorder; nil without
	// WithFlightRecorder (queries then skip all event construction).
	flight *obs.Recorder
	// diag is the query-diagnostics monitor; nil without WithDiagnostics
	// (queries then skip all per-query collection).
	diag *diag.Monitor
	// delayRatio observes each query's realized Delay divided by the
	// instantaneous 2·log₂N bound; delayViol counts queries at or above
	// the bound (the paper's theorem says every one stays strictly below).
	delayRatio *obs.Histogram
	delayViol  obs.Counter
	// qseq issues flight-recorder query IDs.
	qseq atomic.Uint64
}

// initObs builds the network's registry, registers every component's
// instruments on it and, when configured, attaches the flight recorder.
// Called once from NewNetwork, after the engine and caches exist and
// before any traffic.
func (n *Network) initObs(cfg config) {
	o := &n.obs
	o.reg = obs.NewRegistry()
	n.eng.Metrics().Describe(o.reg)
	n.net.DescribeMetrics(o.reg)
	if n.fcache != nil {
		n.fcache.DescribeMetrics(o.reg)
	}
	if n.stable != nil {
		n.stable.DescribeMetrics(o.reg)
	}
	o.delayRatio = obs.NewHistogram(0.25, 0.5, 0.75, 0.9, 1, 1.25, 1.5, 2)
	o.reg.MustRegister("query_delay_vs_bound", o.delayRatio)
	o.reg.MustRegister("delay_bound_violations", &o.delayViol)
	o.reg.MustRegister("peers", obs.GaugeFunc(func() int64 { return int64(n.Size()) }))
	o.reg.MustRegister("heap_alloc_bytes", obs.GaugeFunc(func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	}))
	o.reg.MustRegister("heap_bytes_per_peer", obs.GaugeFunc(func() int64 {
		size := n.Size()
		if size == 0 {
			return 0
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc) / int64(size)
	}))
	if cfg.diagnostics != nil {
		o.diag = diag.NewMonitor(diag.Config{
			LogCapacity: cfg.diagnostics.SlowLogCapacity,
			Threshold:   cfg.diagnostics.SlowThreshold,
			Objective:   cfg.diagnostics.Objective,
		})
		o.diag.DescribeMetrics(o.reg)
	}
	if cfg.flightRecorder > 0 {
		o.flight = obs.NewRecorder(cfg.flightRecorder)
		o.reg.MustRegister("flight_recorder_events_total", o.flight.TotalCounter())
		// Repairs run under the topology write lock; Record is a short
		// mutex-guarded ring append, safe there.
		n.net.SetRepairHook(func(owner kautz.Str, copied int) {
			o.flight.Record(obs.Event{Kind: obs.EvRepair, From: string(owner), V1: int64(copied)})
		})
	}
}

// noteQuery samples one finished query against the paper's delay bound —
// fewer than 2·log₂N overlay hops for the instantaneous network size N —
// and returns the bound it judged against (0 when the network is too small
// to have one). The caller holds the read lock, so Size is exact for this
// query.
func (n *Network) noteQuery(s Stats) float64 {
	size := n.net.Size()
	if size < 2 {
		return 0
	}
	bound := 2 * math.Log2(float64(size))
	n.obs.delayRatio.Observe(float64(s.Delay) / bound)
	if float64(s.Delay) >= bound {
		n.obs.delayViol.Inc()
	}
	return bound
}

// stageOf maps an engine hop kind to its diagnostics stage.
func stageOf(kind core.HopKind) diag.Stage {
	switch kind {
	case core.HopDeliver:
		return diag.StageDeliver
	case core.HopRedirect:
		return diag.StageRedirect
	case core.HopSeed:
		return diag.StageSeed
	case core.HopShortcut:
		return diag.StageShortcut
	default:
		return diag.StageForward
	}
}

// traceFunc builds the engine hop observer for one query: the public hop
// sink (WithTrace), the flight recorder, the diagnostics collector, or any
// combination. With only a sink, hop events stay on the cheap path — no
// recorder event or stage attribution is constructed. When none of the
// three is present the caller installs no observer at all, so
// counting-only queries pay zero tracing overhead (cost counters fold from
// Stats the engine computes anyway).
func (n *Network) traceFunc(sink func(Hop), qid uint64, dq *diag.Query) core.TraceFunc {
	rec := n.obs.flight
	if rec == nil && dq == nil {
		return func(_ core.HopKind, from, to kautz.Str, depth, remaining int) {
			sink(Hop{From: string(from), To: string(to), Depth: depth, Remaining: remaining})
		}
	}
	return func(kind core.HopKind, from, to kautz.Str, depth, remaining int) {
		if dq != nil {
			dq.Note(stageOf(kind), depth)
		}
		if rec != nil {
			var ev obs.EventKind
			switch kind {
			case core.HopForward:
				ev = obs.EvDescentStep
			case core.HopDeliver:
				ev = obs.EvDeliver
			case core.HopRedirect:
				ev = obs.EvReplicaRedirect
			case core.HopSeed:
				ev = obs.EvFrontierSeed
			case core.HopShortcut:
				ev = obs.EvShortcutSeed
			}
			rec.Record(obs.Event{Kind: ev, QID: qid, From: string(from), To: string(to), Depth: depth, Remaining: remaining})
		}
		if sink != nil {
			sink(Hop{From: string(from), To: string(to), Depth: depth, Remaining: remaining})
		}
	}
}

// MetricValues returns a snapshot of every monotonic metric the network
// maintains — counters plus histogram observation and cumulative bucket
// counts, keyed by metric name. Gauges are excluded, so the difference of
// two snapshots is a meaningful interval delta (the workload runner
// reports exactly that).
func (n *Network) MetricValues() map[string]int64 { return n.obs.reg.CounterValues() }

// WriteMetrics writes every registered metric — gauges included — in the
// Prometheus text exposition format. armada-load serves it at
// -metrics-addr /metrics.
func (n *Network) WriteMetrics(w io.Writer) error { return n.obs.reg.WritePrometheus(w) }

// FlightRecorderEnabled reports whether the network was built with
// WithFlightRecorder.
func (n *Network) FlightRecorderEnabled() bool { return n.obs.flight != nil }

// WriteFlightTrace writes the flight recorder's retained events as Chrome
// trace-event JSON (loadable in chrome://tracing or Perfetto). It returns
// ErrNoRecorder on a network built without WithFlightRecorder.
func (n *Network) WriteFlightTrace(w io.Writer) error {
	if n.obs.flight == nil {
		return ErrNoRecorder
	}
	return n.obs.flight.WriteChromeTrace(w)
}
