package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"armada/workload"
)

// runJSON executes the CLI and decodes its JSON report.
func runJSON(t *testing.T, args ...string) map[string]any {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	var m map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	return m
}

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"steady", "zipf-hot", "scan-heavy", "hot-drift", "churn-heavy", "flood-storm", "mixed"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing preset %q:\n%s", name, stdout.String())
		}
	}
}

func TestPresetSmall(t *testing.T) {
	m := runJSON(t, "-scenario", "steady", "-peers", "60", "-ops", "200", "-preload", "150", "-seed", "3")
	if got := m["total_ops"].(float64); got != 200 {
		t.Errorf("total_ops = %v, want 200", got)
	}
	ops := m["ops"].(map[string]any)
	rng, ok := ops["range"].(map[string]any)
	if !ok {
		t.Fatalf("ops.range missing: %v", ops)
	}
	lat := rng["latency_ms"].(map[string]any)
	for _, k := range []string{"p50", "p95", "p99", "max"} {
		if _, ok := lat[k]; !ok {
			t.Errorf("latency_ms missing %q", k)
		}
	}
	if _, ok := rng["hop_delay"]; !ok {
		t.Error("ops.range missing hop_delay")
	}
}

func TestChurnHeavySmall(t *testing.T) {
	m := runJSON(t, "-scenario", "churn-heavy", "-peers", "100", "-ops", "300",
		"-preload", "200", "-churn", "join=800,leave=600,fail=300", "-min-peers", "48",
		"-think", "300us")
	if got := m["total_errors"].(float64); got != 0 {
		t.Errorf("total_errors = %v, want 0", got)
	}
	churn := m["churn"].(map[string]any)
	events := churn["joins"].(float64) + churn["leaves"].(float64) + churn["fails"].(float64)
	if events == 0 {
		t.Errorf("no churn events executed: %v", churn)
	}
	if len(m["intervals"].([]any)) == 0 {
		t.Error("no interval snapshots")
	}
}

func TestCustomMixFlags(t *testing.T) {
	m := runJSON(t, "-scenario", "steady", "-peers", "60", "-ops", "150", "-preload", "80",
		"-mix", "range=50,flood=20,lookup=10,publish=10,unpublish=10",
		"-keys", "hotspot", "-hot-frac", "0.2", "-hot-weight", "0.8",
		"-range-frac", "0.005:0.05", "-attrs", "2", "-workers", "3")
	if got := m["attributes"].(float64); got != 2 {
		t.Errorf("attributes = %v, want 2", got)
	}
	ops := m["ops"].(map[string]any)
	if _, ok := ops["flood"]; !ok {
		t.Errorf("flood ops missing from custom mix: %v", ops)
	}
}

func TestOpenLoopFlag(t *testing.T) {
	m := runJSON(t, "-scenario", "steady", "-peers", "60", "-ops", "100", "-preload", "50",
		"-rate", "20000")
	// At 20000/s the dispatcher overloads the workers; completed plus
	// dropped arrivals must account for every one of the 100 generated.
	total := m["total_ops"].(float64)
	dropped := 0.0
	if d, ok := m["dropped"]; ok {
		dropped = d.(float64)
	}
	if total+dropped != 100 {
		t.Errorf("total_ops %v + dropped %v = %v arrivals, want 100", total, dropped, total+dropped)
	}
	if total == 0 {
		t.Error("open-loop run completed no ops")
	}
	if _, ok := m["queue_wait_ms"]; !ok {
		t.Error("open-loop report missing queue_wait_ms")
	}
}

func TestFlagBuiltCustomScenario(t *testing.T) {
	m := runJSON(t, "-peers", "60", "-ops", "120", "-preload", "60",
		"-mix", "range=70,publish=15,unpublish=15")
	if got := m["scenario"].(string); got != "custom" {
		t.Errorf("scenario = %q, want custom (no preset base)", got)
	}
	if got := m["attributes"].(float64); got != 1 {
		t.Errorf("attributes = %v, want the workload default 1", got)
	}
	if got := m["total_ops"].(float64); got != 120 {
		t.Errorf("total_ops = %v, want 120", got)
	}
}

func TestScanHeavySmall(t *testing.T) {
	m := runJSON(t, "-scenario", "scan-heavy", "-peers", "100", "-ops", "250", "-preload", "500")
	ops := m["ops"].(map[string]any)
	rp, ok := ops["range-paged"].(map[string]any)
	if !ok {
		t.Fatalf("ops.range-paged missing: %v", ops)
	}
	if saved, _ := rp["descents_saved"].(float64); saved == 0 {
		t.Error("scan-heavy sessions saved no descents")
	}
	fc, ok := m["frontier_cache"].(map[string]any)
	if !ok {
		t.Fatalf("report missing frontier_cache: %v", m)
	}
	if hits, _ := fc["hits"].(float64); hits == 0 {
		t.Error("scan-heavy run produced no cache hits")
	}
	// The ablation flag turns the savings off without touching anything
	// else of the scenario.
	m = runJSON(t, "-scenario", "scan-heavy", "-peers", "100", "-ops", "250", "-preload", "500",
		"-paged-no-session", "-frontier-cache", "0")
	rp = m["ops"].(map[string]any)["range-paged"].(map[string]any)
	if saved, _ := rp["descents_saved"].(float64); saved != 0 {
		t.Errorf("ablation run saved %v descents, want 0", saved)
	}
	if _, ok := m["frontier_cache"]; ok {
		t.Error("-frontier-cache 0 still reported a cache block")
	}
}

func TestParseErrorNotMasked(t *testing.T) {
	// A later flag parsing cleanly must not swallow an earlier flag's
	// parse error (Visit iterates flags in lexical order).
	var stdout, stderr bytes.Buffer
	args := []string{"-mix", "bogus", "-range-frac", "0.01:0.1", "-peers", "20", "-ops", "50"}
	if err := run(context.Background(), args, &stdout, &stderr); err == nil {
		t.Errorf("run(%v) succeeded; the -mix parse error was masked", args)
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scenario", "no-such"},
		{"-mix", "bogus=1"},
		{"-mix", "range"},
		{"-keys", "gaussian"},
		{"-range-frac", "0.5"},
		{"-churn", "melt=1"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestHotDriftSmall(t *testing.T) {
	m := runJSON(t, "-scenario", "hot-drift", "-peers", "100", "-duration", "300ms",
		"-preload", "200", "-hot-drift", "500ms")
	lc, ok := m["load_control"].(map[string]any)
	if !ok {
		t.Fatalf("report missing load_control block: %v", m)
	}
	if _, ok := lc["auto_splits"]; !ok {
		t.Errorf("load_control missing auto_splits: %v", lc)
	}
	if _, ok := m["delivery_skew"].(map[string]any); !ok {
		t.Error("report missing delivery_skew block")
	}
	if _, ok := m["env"].(map[string]any); !ok {
		t.Error("report missing env block")
	}
	// -load-control=false overrides the preset: controller off, block gone,
	// and the preset's split threshold dropped with it.
	m = runJSON(t, "-scenario", "hot-drift", "-peers", "100", "-duration", "300ms",
		"-preload", "200", "-load-control=false")
	if _, ok := m["load_control"]; ok {
		t.Error("-load-control=false still reported a load_control block")
	}
}

func TestTraceOutAndMetrics(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	m := runJSON(t, "-scenario", "steady", "-peers", "60", "-ops", "200", "-preload", "150",
		"-seed", "3", "-trace-out", path)
	// -trace-out implies a flight recorder; the dump must be valid Chrome
	// trace-event JSON with at least one query span.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace dump missing: %v", err)
	}
	var dump struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("trace dump is not Chrome trace JSON: %v", err)
	}
	var spans, hops int
	for _, te := range dump.TraceEvents {
		if te.Ph == "b" {
			spans++
		}
		if te.Cat == "hop" {
			hops++
		}
	}
	if spans == 0 || hops == 0 {
		t.Errorf("trace dump has %d query spans and %d hops, want both > 0", spans, hops)
	}
	// The report carries the metrics block and the conformance counter.
	metrics, ok := m["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("report missing metrics block: %v", m)
	}
	if v, _ := metrics["engine_messages_total"].(float64); v <= 0 {
		t.Errorf("metrics.engine_messages_total = %v, want > 0", v)
	}
	if v, ok := m["delay_bound_violations"].(float64); !ok || v != 0 {
		t.Errorf("delay_bound_violations = %v (present %v), want 0", v, ok)
	}
}

func TestMaxGrowthFlag(t *testing.T) {
	m := runJSON(t, "-scenario", "hot-drift-cap", "-peers", "100", "-duration", "300ms",
		"-preload", "200", "-max-growth", "2")
	if _, ok := m["load_control"].(map[string]any); !ok {
		t.Fatalf("report missing load_control block: %v", m)
	}
}

func TestCompareEnvGate(t *testing.T) {
	mkRep := func(env *workload.EnvReport) *workload.Report {
		return &workload.Report{Env: env, Ops: map[string]workload.OpReport{}}
	}
	env := func(procs int, version string) *workload.EnvReport {
		return &workload.EnvReport{GoMaxProcs: procs, NumCPU: 1, GoVersion: version}
	}
	var buf bytes.Buffer

	// Same GOMAXPROCS: passes.
	if err := compareReports(&buf, mkRep(env(1, "go1.24.0")), mkRep(env(1, "go1.24.0")), 0.25); err != nil {
		t.Fatalf("matching envs rejected: %v", err)
	}

	// GOMAXPROCS mismatch: hard failure naming the knob.
	err := compareReports(&buf, mkRep(env(2, "go1.24.0")), mkRep(env(1, "go1.24.0")), 0.25)
	if err == nil || !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Fatalf("GOMAXPROCS mismatch: err = %v, want a hard env error", err)
	}

	// Baseline without env metadata: loud warning, gate proceeds.
	buf.Reset()
	if err := compareReports(&buf, mkRep(env(1, "go1.24.0")), mkRep(nil), 0.25); err != nil {
		t.Fatalf("nil baseline env rejected: %v", err)
	}
	if !strings.Contains(buf.String(), "WARNING") {
		t.Errorf("no warning for a baseline without env metadata:\n%s", buf.String())
	}

	// Run report without env metadata: the binary always stamps it, so a
	// bare report is unverifiable — hard failure.
	if err := compareReports(&buf, mkRep(nil), mkRep(env(1, "go1.24.0")), 0.25); err == nil {
		t.Error("run report without env metadata accepted")
	}

	// Go version drift: warning only.
	buf.Reset()
	if err := compareReports(&buf, mkRep(env(1, "go1.25.0")), mkRep(env(1, "go1.24.0")), 0.25); err != nil {
		t.Fatalf("version drift rejected: %v", err)
	}
	if !strings.Contains(buf.String(), "Go version") {
		t.Errorf("no warning for Go version drift:\n%s", buf.String())
	}
}
