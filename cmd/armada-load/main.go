// Command armada-load drives a live Armada network with concurrent mixed
// traffic — optionally under churn — and emits a JSON report with per-op
// throughput, latency percentiles and the paper's hop-delay/message
// metrics (the BENCH_*.json format).
//
// Usage:
//
//	armada-load -scenario mixed                       # a named preset
//	armada-load -scenario mixed -ops 2000 -peers 500  # preset, resized
//	armada-load -list                                 # show the presets
//	armada-load -scenario steady -duration 5s -v -out report.json
//
// Without -scenario the run is a custom scenario built entirely from the
// flags (workload defaults otherwise):
//
//	armada-load -mix "range=70,publish=15,unpublish=15" -keys zipf \
//	    -churn "join=40,leave=30,fail=10" -peers 300 -ops 4000
//
// Flags given explicitly override the chosen preset's fields.
//
// With -compare the run's per-op p99 wall-clock latency is checked against
// a committed baseline report and the command exits non-zero on a
// regression beyond -compare-max-regress — the CI regression gate:
//
//	armada-load -scenario mixed -ops 2000 -peers 500 -compare BENCH_baseline.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the default mux
	"os"
	"os/signal"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"armada"
	"armada/workload"
)

// liveNet is the network the current run drives; the -metrics-addr handlers
// read it so scrapes keep working across worst-of reruns (503 between
// networks).
var liveNet atomic.Pointer[armada.Network]

// expvarOnce guards the expvar registration: run() executes once per
// process normally but repeatedly under tests, and expvar.Publish panics on
// duplicates.
var expvarOnce sync.Once

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "armada-load:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("armada-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario  = fs.String("scenario", "", "preset scenario name (see -list); empty builds a custom scenario from the flags")
		list      = fs.Bool("list", false, "list preset scenarios and exit")
		peers     = fs.Int("peers", 0, "initial network size")
		ops       = fs.Int("ops", 0, "stop after this many operations")
		duration  = fs.Duration("duration", 0, "stop after this wall-clock time")
		workers   = fs.Int("workers", 0, "concurrent workers (closed loop) / executors (open loop)")
		rate      = fs.Float64("rate", 0, "open-loop Poisson arrival rate, ops/sec (0 = closed loop)")
		think     = fs.Duration("think", 0, "closed-loop think time between a worker's ops")
		seed      = fs.Int64("seed", 0, "random seed")
		attrs     = fs.Int("attrs", 0, "number of [0,1000] attributes (overrides the preset's spaces)")
		replicas  = fs.Int("replicas", 0, "replication degree: each object lives on this many peers (1 = unreplicated)")
		preload   = fs.Int("preload", -1, "objects published before the measured run")
		topk      = fs.Int("topk", 0, "K for top-k operations")
		mix       = fs.String("mix", "", `op mix weights, e.g. "range=70,publish=10,lookup=10,unpublish=5,multi-range=0,top-k=5,flood=0,range-paged=0"`)
		keys      = fs.String("keys", "", "key distribution: uniform|zipf|hotspot")
		zipfS     = fs.Float64("zipf-s", 0, "Zipf exponent (> 1)")
		hotFrac   = fs.Float64("hot-frac", 0, "hotspot: hot interval width as a fraction of the space")
		hotWt     = fs.Float64("hot-weight", 0, "hotspot: probability of drawing from the hot interval")
		rangeFr   = fs.String("range-frac", "", `range width as fraction of the space, "min:max" (e.g. "0.01:0.1")`)
		churn     = fs.String("churn", "", `churn rates/sec, e.g. "join=40,leave=30,fail=10"`)
		minPeers  = fs.Int("min-peers", 0, "churn floor: skip leaves/fails at or below this size")
		maxPeers  = fs.Int("max-peers", 0, "churn ceiling: skip joins at or above this size")
		interval  = fs.Duration("interval", 0, "snapshot period")
		pageLim   = fs.Int("page-limit", 0, "page size for range-paged operations")
		noSess    = fs.Bool("paged-no-session", false, "run range-paged walks as independent per-page queries instead of a session (the descent-reuse ablation)")
		fcache    = fs.Int("frontier-cache", 0, "issuer-side frontier cache capacity; repeated range queries over covered regions skip their descent (0 = no cache)")
		rangeBk   = fs.Int("range-buckets", 0, "snap range-query bounds to a grid of this many buckets per attribute space so hot scans repeat exactly (0 = continuous bounds)")
		shortTab  = fs.Int("shortcut-table", 0, "issuer-side learned shortcut routing table capacity; warm lookups and single-attribute ranges route in one direct hop per destination (0 = no table)")
		noShort   = fs.Bool("no-shortcut", false, "drop the scenario's shortcut table — the descent-baseline ablation (results are byte-identical, only hops and messages move)")
		loadCtl   = fs.Bool("load-control", false, "run the adaptive load controller: auto-split regions under sustained delivery load and migrate ownership toward hot regions")
		splitThr  = fs.Float64("split-threshold", 0, "load control: sustained deliveries/sec on one region that triggers a split (0 = armada default)")
		maxGrow   = fs.Int("max-growth", 0, "load control: cap on peers auto-splits may add (0 = armada default); at the cap relief continues through migration")
		hotDrift  = fs.Duration("hot-drift", 0, "hotspot keys: sweep the hot interval across the key space once per this period (0 = pinned hotspot)")
		queueCap  = fs.Int("queue-cap", 0, "open-loop dispatch queue bound (default 4×workers); full queue drops arrivals")
		gogc      = fs.Int("gogc", 600, "GOGC percent for the run (load generators allocate fast against a small live heap); 0 leaves the runtime default, and an explicit GOGC env var always wins")
		compare   = fs.String("compare", "", "baseline report JSON (BENCH_baseline.json); exit non-zero on p99 latency regression")
		maxRegr   = fs.Float64("compare-max-regress", 0.25, "allowed relative p99 latency growth over the -compare baseline")
		worstOf   = fs.Int("worst-of", 1, "run the scenario this many times and report each op kind's worst run — how BENCH_baseline.json budgets are made (see make rebaseline)")
		out       = fs.String("out", "", "write the JSON report to this file (default stdout)")
		verbose   = fs.Bool("v", false, "print interval snapshots to stderr while running")
		flightRec = fs.Int("flight-recorder", 0, "attach a query-lifecycle flight recorder retaining this many events (0 = none; implied by -trace-out)")
		traceOut  = fs.String("trace-out", "", "write the flight recorder's events as Chrome trace-event JSON to this file after the run (implies -flight-recorder 65536 when unset)")
		slowLog   = fs.Int("slow-log", 0, "attach the query-diagnostics layer retaining this many slow-query records (0 = none; implied by -slow-out); enables tail_attribution and slo report blocks and the /debug/armada endpoints")
		slowThr   = fs.Duration("slow-threshold", 0, "fixed slow-query threshold; 0 adapts to an EWMA of the observed p99 latency")
		slowOut   = fs.String("slow-out", "", "write the slow-query log, tail attribution and SLO state as JSON to this file after the run (implies -slow-log 256 when unset)")
		metricsAd = fs.String("metrics-addr", "", "serve live metrics over HTTP on this address: Prometheus text at /metrics, expvar at /debug/vars")
		pprofAd   = fs.String("pprof-addr", "", "serve net/http/pprof on this address (/debug/pprof/)")
		snapOut   = fs.String("snapshot-out", "", "after building the network, save its topology snapshot to this file (see -snapshot-in)")
		snapIn    = fs.String("snapshot-in", "", "warm-start: restore the network from this snapshot file instead of building it (scenario options still apply; the snapshot fixes size, seed and topology)")
		snapVer   = fs.Bool("snapshot-verify", false, "with -snapshot-in: also build the same network cold and verify the loaded one matches it (topology fingerprint and spot-check query identity)")
		auditSmp  = fs.Int("audit-sample", 0, "post-run audit: structurally check only ~this many evenly-spaced peers instead of all (0 = full audit; the namespace cover is always checked in full)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printPresets(stdout)
		return nil
	}

	// An allocation-heavy benchmark over a small live heap spends a third
	// of its CPU in GC at the default GOGC; run with a larger target unless
	// the operator chose one (env beats flag, -gogc 0 opts out entirely).
	if *gogc > 0 && os.Getenv("GOGC") == "" {
		debug.SetGCPercent(*gogc)
	}

	// With no -scenario the base is a neutral custom scenario (workload
	// defaults, 3000 ops) shaped entirely by the flags; a named preset is
	// the base otherwise, with explicit flags overriding its fields.
	sc := workload.Scenario{Name: "custom", Ops: 3000}
	if *scenario != "" {
		var ok bool
		if sc, ok = workload.Preset(*scenario); !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", *scenario)
		}
	}

	var parseErr error
	keep := func(err error) {
		parseErr = errors.Join(parseErr, err)
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "peers":
			sc.Peers = *peers
		case "ops":
			sc.Ops = *ops
		case "duration":
			// The run stops at whichever of -ops / -duration is reached
			// first; pass -ops 0 for a purely time-bounded run.
			sc.Duration = *duration
		case "workers":
			sc.Arrival.Workers = *workers
		case "rate":
			sc.Arrival.RatePerSec = *rate
		case "think":
			sc.Arrival.Think = *think
		case "seed":
			sc.Seed = *seed
		case "attrs":
			sc.Attrs = make([]armada.AttributeSpace, *attrs)
			for i := range sc.Attrs {
				sc.Attrs[i] = armada.AttributeSpace{Low: 0, High: 1000}
			}
		case "replicas":
			// Explicit 0/negative must not silently fall back to the
			// workload default (withDefaults rewrites 0 before validation).
			if *replicas < 1 {
				keep(fmt.Errorf("-replicas %d: must be at least 1", *replicas))
			}
			sc.Replicas = *replicas
		case "preload":
			sc.Preload = *preload
		case "topk":
			sc.TopK = *topk
		case "mix":
			m, err := parseMix(*mix)
			keep(err)
			sc.Mix = m
		case "keys":
			switch *keys {
			case "uniform":
				sc.Keys = workload.KeyDist{Kind: workload.KeyUniform}
			case "zipf":
				sc.Keys = workload.KeyDist{Kind: workload.KeyZipf, ZipfS: sc.Keys.ZipfS}
			case "hotspot":
				sc.Keys = workload.KeyDist{Kind: workload.KeyHotspot,
					HotFraction: sc.Keys.HotFraction, HotWeight: sc.Keys.HotWeight}
			default:
				keep(fmt.Errorf("unknown key distribution %q", *keys))
			}
		case "zipf-s":
			sc.Keys.ZipfS = *zipfS
		case "hot-frac":
			sc.Keys.HotFraction = *hotFrac
		case "hot-weight":
			sc.Keys.HotWeight = *hotWt
		case "range-frac":
			rs, err := parseRangeFrac(*rangeFr)
			keep(err)
			sc.RangeSize = rs
		case "churn":
			c, err := parseChurn(*churn, sc.Churn)
			keep(err)
			sc.Churn = c
		case "min-peers":
			sc.Churn.MinPeers = *minPeers
		case "max-peers":
			sc.Churn.MaxPeers = *maxPeers
		case "interval":
			sc.Interval = *interval
		case "page-limit":
			// Explicit 0/negative must not silently fall back to the
			// workload default (withDefaults rewrites 0 before validation).
			if *pageLim < 1 {
				keep(fmt.Errorf("-page-limit %d: must be at least 1", *pageLim))
			}
			sc.PageLimit = *pageLim
		case "queue-cap":
			sc.Arrival.QueueCap = *queueCap
		case "paged-no-session":
			sc.PagedNoSession = *noSess
		case "frontier-cache":
			if *fcache < 0 {
				keep(fmt.Errorf("-frontier-cache %d: must be at least 0", *fcache))
			}
			sc.FrontierCache = *fcache
		case "range-buckets":
			if *rangeBk < 0 {
				keep(fmt.Errorf("-range-buckets %d: must be at least 0", *rangeBk))
			}
			sc.RangeBuckets = *rangeBk
		case "shortcut-table":
			if *shortTab < 0 {
				keep(fmt.Errorf("-shortcut-table %d: must be at least 0", *shortTab))
			}
			sc.ShortcutTable = *shortTab
		case "load-control":
			sc.LoadControl = *loadCtl
			if !*loadCtl {
				// Turning the controller off also drops a preset's
				// threshold override, which is meaningless without it.
				sc.SplitThreshold = 0
			}
		case "split-threshold":
			sc.SplitThreshold = *splitThr
		case "max-growth":
			sc.MaxGrowth = *maxGrow
		case "hot-drift":
			sc.HotDrift = *hotDrift
		case "flight-recorder":
			if *flightRec < 0 {
				keep(fmt.Errorf("-flight-recorder %d: must be at least 0", *flightRec))
			}
			sc.FlightRecorder = *flightRec
		case "slow-log":
			if *slowLog < 0 {
				keep(fmt.Errorf("-slow-log %d: must be at least 0", *slowLog))
			}
			sc.SlowQueryLog = *slowLog
		case "slow-threshold":
			if *slowThr < 0 {
				keep(fmt.Errorf("-slow-threshold %v: must be at least 0", *slowThr))
			}
			sc.SlowThreshold = *slowThr
		}
	})
	if parseErr != nil {
		return parseErr
	}
	if *noShort {
		// Applied after the flag sweep so the ablation always wins, whatever
		// the flag order.
		sc.ShortcutTable = 0
	}
	if *traceOut != "" && sc.FlightRecorder == 0 {
		sc.FlightRecorder = 1 << 16
	}
	if *slowOut != "" && sc.SlowQueryLog == 0 {
		sc.SlowQueryLog = 256
	}

	sc, err := sc.Normalize()
	if err != nil {
		return err
	}
	if err := startHTTP(*metricsAd, *pprofAd, stderr); err != nil {
		return err
	}
	if *worstOf < 1 {
		return fmt.Errorf("-worst-of %d: must be at least 1", *worstOf)
	}
	if *auditSmp < 0 {
		return fmt.Errorf("-audit-sample %d: must be at least 0", *auditSmp)
	}
	if *snapVer && *snapIn == "" {
		return fmt.Errorf("-snapshot-verify requires -snapshot-in")
	}

	runOnce := func() (*workload.Report, error) {
		var (
			net             *armada.Network
			err             error
			buildMs, loadMs float64
		)
		if *snapIn != "" {
			fmt.Fprintf(stderr, "armada-load: scenario %q — warm-starting from snapshot %s (replicas %d, frontier cache %d, shortcut table %d), preloading %d objects\n",
				sc.Name, *snapIn, sc.Replicas, sc.FrontierCache, sc.ShortcutTable, sc.Preload)
			start := time.Now()
			net, err = loadSnapshotFile(*snapIn, sc.NetworkOptions()...)
			loadMs = float64(time.Since(start)) / float64(time.Millisecond)
		} else {
			fmt.Fprintf(stderr, "armada-load: scenario %q — building %d peers (replicas %d, frontier cache %d, shortcut table %d), preloading %d objects\n",
				sc.Name, sc.Peers, sc.Replicas, sc.FrontierCache, sc.ShortcutTable, sc.Preload)
			start := time.Now()
			net, err = armada.NewNetwork(sc.Peers, sc.NetworkOptions()...)
			buildMs = float64(time.Since(start)) / float64(time.Millisecond)
		}
		if err != nil {
			return nil, err
		}
		defer net.Close()
		if *snapOut != "" {
			if err := saveSnapshotFile(net, *snapOut); err != nil {
				return nil, fmt.Errorf("snapshot save: %w", err)
			}
			fmt.Fprintf(stderr, "armada-load: wrote topology snapshot to %s\n", *snapOut)
		}
		if *snapVer {
			start := time.Now()
			if err := verifyWarmStart(ctx, net, sc); err != nil {
				return nil, fmt.Errorf("snapshot verify: %w", err)
			}
			fmt.Fprintf(stderr, "armada-load: warm-start verified against a cold build in %.0fms (load took %.0fms)\n",
				float64(time.Since(start))/float64(time.Millisecond), loadMs)
		}
		liveNet.Store(net)
		defer liveNet.Store(nil)
		if *traceOut != "" {
			// Deferred so the dump survives run errors and audit failures —
			// the flight recorder is most valuable exactly then.
			defer func() {
				if err := writeTrace(net, *traceOut); err != nil {
					fmt.Fprintln(stderr, "armada-load: trace dump:", err)
				} else {
					fmt.Fprintf(stderr, "armada-load: wrote flight trace to %s\n", *traceOut)
				}
			}()
		}
		if *slowOut != "" {
			// Deferred for the same reason: the slow-query log matters most
			// on the runs that end badly.
			defer func() {
				if err := writeSlowLog(net, *slowOut); err != nil {
					fmt.Fprintln(stderr, "armada-load: slow-query dump:", err)
				} else {
					fmt.Fprintf(stderr, "armada-load: wrote slow-query log to %s\n", *slowOut)
				}
			}()
		}
		runner, err := workload.New(net, sc)
		if err != nil {
			return nil, err
		}
		runner.BuildMs = buildMs
		runner.SnapshotLoadMs = loadMs
		if *verbose {
			runner.OnSnapshot = func(s workload.Snapshot) {
				fmt.Fprintf(stderr, "  t=%6.2fs  ops=%-6d errs=%-3d peers=%-5d %8.0f op/s\n",
					s.AtSec, s.Ops, s.Errors, s.Peers, s.Throughput)
			}
		}
		rep, err := runner.Run(ctx)
		if err != nil {
			return nil, err
		}
		// Whatever the run did to the overlay — churn storms included —
		// every structural invariant must still hold (including replica-set
		// consistency on replicated networks). At scale, -audit-sample
		// checks a deterministic subset of peers instead of every one.
		if err := net.AuditSampled(*auditSmp); err != nil {
			return nil, fmt.Errorf("post-run audit: %w", err)
		}
		return rep, nil
	}

	rep, err := runOnce()
	if err != nil {
		return err
	}
	for i := 1; i < *worstOf; i++ {
		next, err := runOnce()
		if err != nil {
			return err
		}
		mergeWorst(rep, next)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "armada-load: %d ops in %.2fs (%.0f op/s), %d errors, peers %d → %d\n",
		rep.TotalOps, rep.DurationSec, rep.Throughput, rep.TotalErrors, rep.StartPeers, rep.EndPeers)

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			return fmt.Errorf("-compare: %w", err)
		}
		return compareReports(stderr, rep, base, *maxRegr)
	}
	return nil
}

// startHTTP starts the optional observability endpoints: metricsAddr
// serves the live network's Prometheus text at /metrics and expvar at
// /debug/vars; pprofAddr serves the default mux's /debug/pprof/ handlers.
// Both outlive individual worst-of runs — scrapes between networks get 503.
func startHTTP(metricsAddr, pprofAddr string, stderr io.Writer) error {
	serve := func(addr string, h http.Handler, what string) {
		go func() {
			if err := http.ListenAndServe(addr, h); err != nil {
				fmt.Fprintf(stderr, "armada-load: %s server: %v\n", what, err)
			}
		}()
	}
	if metricsAddr != "" {
		expvarOnce.Do(func() {
			expvar.Publish("armada", expvar.Func(func() any {
				if n := liveNet.Load(); n != nil {
					return n.MetricValues()
				}
				return nil
			}))
		})
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			n := liveNet.Load()
			if n == nil {
				http.Error(w, "no live network", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := n.WriteMetrics(w); err != nil {
				fmt.Fprintf(stderr, "armada-load: metrics write: %v\n", err)
			}
		})
		mux.Handle("/debug/vars", expvar.Handler())
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				fmt.Fprintf(stderr, "armada-load: debug endpoint write: %v\n", err)
			}
		}
		// live guards a debug handler: 503 between worst-of networks, like
		// /metrics.
		live := func(h func(http.ResponseWriter, *http.Request, *armada.Network)) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) {
				n := liveNet.Load()
				if n == nil {
					http.Error(w, "no live network", http.StatusServiceUnavailable)
					return
				}
				h(w, r, n)
			}
		}
		mux.HandleFunc("/debug/armada/slow", live(func(w http.ResponseWriter, _ *http.Request, n *armada.Network) {
			d, ok := snapSlow(n)
			if !ok {
				http.Error(w, "diagnostics disabled (run with -slow-log)", http.StatusNotFound)
				return
			}
			writeJSON(w, d)
		}))
		mux.HandleFunc("/debug/armada/regions", live(func(w http.ResponseWriter, r *http.Request, n *armada.Network) {
			topN := 0
			if s := r.URL.Query().Get("top"); s != "" {
				if v, err := strconv.Atoi(s); err == nil && v > 0 {
					topN = v
				}
			}
			writeJSON(w, struct {
				Peers   int                 `json:"peers"`
				Epoch   uint64              `json:"epoch"`
				Regions []armada.RegionHeat `json:"regions"`
			}{n.Size(), n.Epoch(), n.RegionHeatReport(topN)})
		}))
		mux.HandleFunc("/debug/armada/routing", live(func(w http.ResponseWriter, _ *http.Request, n *armada.Network) {
			hitRate := func(hits, misses int64) float64 {
				if total := hits + misses; total > 0 {
					return float64(hits) / float64(total)
				}
				return 0
			}
			var resp struct {
				Peers         int                        `json:"peers"`
				Epoch         uint64                     `json:"epoch"`
				FrontierCache *armada.FrontierCacheStats `json:"frontier_cache,omitempty"`
				FrontierHit   float64                    `json:"frontier_hit_rate"`
				Shortcut      *armada.ShortcutTableStats `json:"shortcut_table,omitempty"`
				ShortcutHit   float64                    `json:"shortcut_hit_rate"`
			}
			resp.Peers, resp.Epoch = n.Size(), n.Epoch()
			if cs, ok := n.FrontierCacheStats(); ok {
				resp.FrontierCache = &cs
				resp.FrontierHit = hitRate(cs.Hits, cs.Misses)
			}
			if ss, ok := n.ShortcutTableStats(); ok {
				resp.Shortcut = &ss
				resp.ShortcutHit = hitRate(ss.Hits, ss.Misses)
			}
			writeJSON(w, resp)
		}))
		serve(metricsAddr, mux, "metrics")
	}
	if pprofAddr != "" {
		serve(pprofAddr, nil, "pprof") // net/http/pprof registered on the default mux
	}
	return nil
}

// saveSnapshotFile writes the network's topology snapshot to path.
func saveSnapshotFile(net *armada.Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := net.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadSnapshotFile restores a network from the snapshot at path, applying
// the scenario's network options on top.
func loadSnapshotFile(path string, opts ...armada.Option) (*armada.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return armada.LoadSnapshot(f, opts...)
}

// verifyWarmStart builds the scenario's network cold and checks the
// warm-started one against it: identical topology fingerprint, and
// byte-identical routing behaviour on a handful of spot-check lookups
// (same issuers, same probe keys — owner, served peer and full cost stats
// must match).
func verifyWarmStart(ctx context.Context, warm *armada.Network, sc workload.Scenario) error {
	cold, err := armada.NewNetwork(sc.Peers, sc.NetworkOptions()...)
	if err != nil {
		return fmt.Errorf("cold build: %w", err)
	}
	defer cold.Close()
	if w, c := warm.TopologyFingerprint(), cold.TopologyFingerprint(); w != c {
		return fmt.Errorf("topology fingerprint mismatch: warm %016x, cold %016x", w, c)
	}
	ids := cold.PeerIDs()
	for i := 0; i < 8; i++ {
		issuer := ids[i*len(ids)/8]
		q := armada.NewLookup(fmt.Sprintf("verify-probe-%d", i), armada.WithIssuer(issuer))
		rw, err1 := warm.Do(ctx, q)
		rc, err2 := cold.Do(ctx, q)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("spot-check query %d: warm %v, cold %v", i, err1, err2)
		}
		if rw.Stats != rc.Stats {
			return fmt.Errorf("spot-check query %d: stats diverge: warm %+v, cold %+v", i, rw.Stats, rc.Stats)
		}
	}
	return nil
}

// writeTrace dumps the network's flight recorder as Chrome trace-event
// JSON.
func writeTrace(net *armada.Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := net.WriteFlightTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// slowDump is the -slow-out file shape — the same payload
// /debug/armada/slow serves live.
type slowDump struct {
	// ThresholdMs is the slow-query threshold in force when the dump was
	// taken (the adaptive EWMA of the p99, or the fixed -slow-threshold).
	ThresholdMs float64 `json:"threshold_ms"`
	// SlowQueries holds the log's retained records, oldest first.
	SlowQueries []armada.SlowQuery `json:"slow_queries"`
	// TailAttribution breaks the run's >p99 queries down by cause; SLO is
	// the delay-bound burn-rate monitor's state.
	TailAttribution armada.TailAttribution `json:"tail_attribution"`
	SLO             armada.SLOStatus       `json:"slo"`
}

// snapSlow gathers the diagnostics layer's state; ok is false when the
// network runs without it.
func snapSlow(net *armada.Network) (slowDump, bool) {
	if !net.DiagnosticsEnabled() {
		return slowDump{}, false
	}
	d := slowDump{SlowQueries: net.SlowQueries()}
	if d.SlowQueries == nil {
		d.SlowQueries = []armada.SlowQuery{} // JSON [] over null
	}
	d.ThresholdMs, _ = net.SlowThresholdMs()
	d.TailAttribution, _ = net.TailAttributionReport()
	d.SLO, _ = net.SLOStatusReport()
	return d, true
}

// writeSlowLog dumps the diagnostics layer's slow-query log, tail
// attribution and SLO state as JSON.
func writeSlowLog(net *armada.Network, path string) error {
	d, ok := snapSlow(net)
	if !ok {
		return fmt.Errorf("network runs without diagnostics")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeWorst folds run next into the accumulated report acc, keeping for
// each op kind whichever run showed the worse (higher) p99 wall-clock
// latency — the per-op budget a `-worst-of N` baseline commits. Each kept
// OpReport also budgets the worst error *rate* seen across runs (the
// compare gate reads per-op Errors/Count, so a flaky run must not hide
// behind a fast one). Other run-level scalars keep the first run's values.
func mergeWorst(acc, next *workload.Report) {
	errRate := func(o workload.OpReport) float64 {
		if o.Count == 0 {
			return 0
		}
		return float64(o.Errors) / float64(o.Count)
	}
	for name, op := range next.Ops {
		base, ok := acc.Ops[name]
		if !ok {
			acc.Ops[name] = op
			continue
		}
		worst, rate := base, max(errRate(base), errRate(op))
		if op.LatencyMs.P99 > base.LatencyMs.P99 {
			worst = op
		}
		if r := errRate(worst); rate > r {
			worst.Errors = int(math.Ceil(rate * float64(worst.Count)))
		}
		acc.Ops[name] = worst
	}
	if next.TotalErrors > acc.TotalErrors {
		acc.TotalErrors = next.TotalErrors
	}
	if next.AvailabilityMisses > acc.AvailabilityMisses {
		acc.AvailabilityMisses = next.AvailabilityMisses
	}
}

// compareAbsFloorMs ignores p99 movements smaller than this many
// milliseconds: sub-millisecond quantiles jitter by whole multiples of
// themselves across machines and runs, and a regression gate that fires on
// them is noise, not signal.
const compareAbsFloorMs = 5.0

// compareMinCount skips op kinds with fewer completions than this — their
// p99 is a handful of samples.
const compareMinCount = 50

// loadReport reads one workload report from a JSON file.
func loadReport(path string) (*workload.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep workload.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareErrRateSlack is how much an op's error rate may exceed the
// baseline's before the gate fails. Latency quantiles only cover
// successful ops, so without this check a change that turns queries into
// fast errors would sail through with a "better" p99.
const compareErrRateSlack = 0.02

// compareReports checks the run's per-op p99 wall-clock latency and error
// rate against the baseline, printing a table, and fails when any op kind
// regressed by more than maxRegress (relative) and the absolute floor. A
// p99 excursion alone is not enough: the op's p95 must have moved past the
// same relative bar too, because with a few hundred samples the p99 is one
// unlucky scheduler stall while a genuine regression (an O(store) scan, a
// lock convoy) drags the whole tail.
func compareReports(w io.Writer, rep, base *workload.Report, maxRegress float64) error {
	if err := checkEnv(w, rep, base); err != nil {
		return err
	}
	errRate := func(o workload.OpReport) float64 {
		if o.Count == 0 {
			return 0
		}
		return float64(o.Errors) / float64(o.Count)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "OP\tBASE p99 ms\tRUN p99 ms\tCHANGE\tRUN p95\tBASE hops\tRUN hops\tERR%%\tVERDICT\n")
	var regressed []string
	for _, name := range opNamesInOrder(rep, base) {
		b, inBase := base.Ops[name]
		r, inRun := rep.Ops[name]
		if !inBase || !inRun || b.Count < compareMinCount || r.Count < compareMinCount {
			continue
		}
		bp, rp := b.LatencyMs.P99, r.LatencyMs.P99
		change := 0.0
		if bp > 0 {
			change = (rp - bp) / bp
		}
		verdict := "ok"
		p99Bad := rp > bp*(1+maxRegress) && rp-bp > compareAbsFloorMs
		p95Bad := r.LatencyMs.P95 > b.LatencyMs.P95*(1+maxRegress) &&
			r.LatencyMs.P95-b.LatencyMs.P95 > compareAbsFloorMs/2
		errBad := errRate(r) > errRate(b)+compareErrRateSlack
		switch {
		case errBad:
			verdict = "REGRESSED (error rate)"
			regressed = append(regressed, name)
		case p99Bad && p95Bad:
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		case p99Bad:
			verdict = "p99 outlier (p95 ok)"
		}
		// Mean realized hops ride along informationally — routing-state
		// changes (frontier cache, shortcut table) show up here without
		// gating, since hops are deterministic while latency is noisy.
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.0f%%\t%.3f\t%.2f\t%.2f\t%.1f\t%s\n",
			name, bp, rp, change*100, r.LatencyMs.P95, b.Hops.Mean, r.Hops.Mean, errRate(r)*100, verdict)
	}
	tw.Flush()
	if len(regressed) > 0 {
		return fmt.Errorf("latency or error-rate regression (> %.0f%% p99 with > %.0fms floor, p95-confirmed; or error rate up > %.0f points) on: %s",
			maxRegress*100, compareAbsFloorMs, compareErrRateSlack*100, strings.Join(regressed, ", "))
	}
	fmt.Fprintln(w, "armada-load: no p99 or error-rate regression against baseline")
	return nil
}

// checkEnv gates the comparison on the environments the two reports were
// produced in. Latency budgets are meaningless across a GOMAXPROCS
// mismatch (the 1-CPU and 2-CPU baselines differ by integer factors), so
// that one is a hard error; CPU-count and Go-version drift merely widen
// the noise, so they warn loudly and let the gate proceed.
func checkEnv(w io.Writer, rep, base *workload.Report) error {
	if base.Env == nil {
		fmt.Fprintln(w, "armada-load: WARNING: baseline has no env metadata — regenerate it with `make rebaseline` to gate environment drift")
		return nil
	}
	if rep.Env == nil {
		// Reports this binary produces always carry Env; reaching here
		// means the run report was hand-edited or produced by an older
		// binary, which the gate cannot vouch for.
		return fmt.Errorf("run report has no env metadata; re-run with this binary")
	}
	if rep.Env.GoMaxProcs != base.Env.GoMaxProcs {
		return fmt.Errorf("env mismatch: run GOMAXPROCS=%d vs baseline GOMAXPROCS=%d — latency budgets do not transfer; rerun with GOMAXPROCS=%d or regenerate the baseline (make rebaseline / rebaseline-2cpu)",
			rep.Env.GoMaxProcs, base.Env.GoMaxProcs, base.Env.GoMaxProcs)
	}
	if rep.Env.NumCPU != base.Env.NumCPU {
		fmt.Fprintf(w, "armada-load: WARNING: host CPU count changed (run %d vs baseline %d); expect extra noise in the comparison\n",
			rep.Env.NumCPU, base.Env.NumCPU)
	}
	if rep.Env.GoVersion != base.Env.GoVersion {
		fmt.Fprintf(w, "armada-load: WARNING: Go version changed (run %s vs baseline %s); consider regenerating the baseline\n",
			rep.Env.GoVersion, base.Env.GoVersion)
	}
	return nil
}

// opNamesInOrder returns the union of op kinds of both reports in a stable
// order (the workload's kind order, then anything unknown alphabetically).
func opNamesInOrder(a, b *workload.Report) []string {
	known := []string{"publish", "unpublish", "lookup", "range", "multi-range", "top-k", "flood", "range-paged"}
	seen := map[string]bool{}
	var out []string
	for _, n := range known {
		if _, ok := a.Ops[n]; !ok {
			if _, ok := b.Ops[n]; !ok {
				continue
			}
		}
		seen[n] = true
		out = append(out, n)
	}
	var extra []string
	for n := range a.Ops {
		if !seen[n] {
			extra = append(extra, n)
			seen[n] = true
		}
	}
	for n := range b.Ops {
		if !seen[n] {
			extra = append(extra, n)
			seen[n] = true
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// parseMix parses "range=70,publish=10,..." into a Mix.
func parseMix(s string) (workload.Mix, error) {
	var m workload.Mix
	fields := map[string]*float64{
		"publish": &m.Publish, "unpublish": &m.Unpublish, "lookup": &m.Lookup,
		"range": &m.Range, "multi-range": &m.MultiRange, "top-k": &m.TopK, "flood": &m.Flood,
		"range-paged": &m.RangePaged,
	}
	if err := parseWeights(s, fields); err != nil {
		return workload.Mix{}, fmt.Errorf("-mix: %w", err)
	}
	return m, nil
}

// parseChurn parses "join=40,leave=30,fail=10" into a Churn, keeping the
// base's peer guards.
func parseChurn(s string, base workload.Churn) (workload.Churn, error) {
	c := workload.Churn{MinPeers: base.MinPeers, MaxPeers: base.MaxPeers}
	fields := map[string]*float64{
		"join": &c.JoinPerSec, "leave": &c.LeavePerSec, "fail": &c.FailPerSec,
	}
	if err := parseWeights(s, fields); err != nil {
		return workload.Churn{}, fmt.Errorf("-churn: %w", err)
	}
	return c, nil
}

func parseWeights(s string, fields map[string]*float64) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("%q is not key=value", part)
		}
		dst, ok := fields[strings.TrimSpace(key)]
		if !ok {
			return fmt.Errorf("unknown key %q", key)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("%q: %w", part, err)
		}
		*dst = w
	}
	return nil
}

// parseRangeFrac parses "min:max" into a SizeDist.
func parseRangeFrac(s string) (workload.SizeDist, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return workload.SizeDist{}, fmt.Errorf("-range-frac: %q is not min:max", s)
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(lo), 64)
	if err != nil {
		return workload.SizeDist{}, fmt.Errorf("-range-frac: %w", err)
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(hi), 64)
	if err != nil {
		return workload.SizeDist{}, fmt.Errorf("-range-frac: %w", err)
	}
	return workload.SizeDist{MinFrac: min, MaxFrac: max}, nil
}

// printPresets renders the preset table.
func printPresets(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tPEERS\tREPL\tOPS\tATTRS\tKEYS\tCHURN/s (join/leave/fail)\tMIX")
	for _, p := range workload.Presets() {
		attrs := len(p.Attrs)
		if attrs == 0 {
			attrs = 1
		}
		repl := p.Replicas
		if repl == 0 {
			repl = 1
		}
		churn := "-"
		if p.Churn.Enabled() {
			churn = fmt.Sprintf("%g/%g/%g", p.Churn.JoinPerSec, p.Churn.LeavePerSec, p.Churn.FailPerSec)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\t%s\t%s\n",
			p.Name, p.Peers, repl, p.Ops, attrs, p.Keys.Kind, churn, mixString(p.Mix))
	}
	tw.Flush()
}

func mixString(m workload.Mix) string {
	parts := []string{}
	add := func(name string, w float64) {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", name, w))
		}
	}
	add("publish", m.Publish)
	add("unpublish", m.Unpublish)
	add("lookup", m.Lookup)
	add("range", m.Range)
	add("multi-range", m.MultiRange)
	add("top-k", m.TopK)
	add("flood", m.Flood)
	add("range-paged", m.RangePaged)
	return strings.Join(parts, ",")
}
