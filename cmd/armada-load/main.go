// Command armada-load drives a live Armada network with concurrent mixed
// traffic — optionally under churn — and emits a JSON report with per-op
// throughput, latency percentiles and the paper's hop-delay/message
// metrics (the BENCH_*.json format).
//
// Usage:
//
//	armada-load -scenario mixed                       # a named preset
//	armada-load -scenario mixed -ops 2000 -peers 500  # preset, resized
//	armada-load -list                                 # show the presets
//	armada-load -scenario steady -duration 5s -v -out report.json
//
// Without -scenario the run is a custom scenario built entirely from the
// flags (workload defaults otherwise):
//
//	armada-load -mix "range=70,publish=15,unpublish=15" -keys zipf \
//	    -churn "join=40,leave=30,fail=10" -peers 300 -ops 4000
//
// Flags given explicitly override the chosen preset's fields.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"

	"armada"
	"armada/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "armada-load:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("armada-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "", "preset scenario name (see -list); empty builds a custom scenario from the flags")
		list     = fs.Bool("list", false, "list preset scenarios and exit")
		peers    = fs.Int("peers", 0, "initial network size")
		ops      = fs.Int("ops", 0, "stop after this many operations")
		duration = fs.Duration("duration", 0, "stop after this wall-clock time")
		workers  = fs.Int("workers", 0, "concurrent workers (closed loop) / executors (open loop)")
		rate     = fs.Float64("rate", 0, "open-loop Poisson arrival rate, ops/sec (0 = closed loop)")
		think    = fs.Duration("think", 0, "closed-loop think time between a worker's ops")
		seed     = fs.Int64("seed", 0, "random seed")
		attrs    = fs.Int("attrs", 0, "number of [0,1000] attributes (overrides the preset's spaces)")
		preload  = fs.Int("preload", -1, "objects published before the measured run")
		topk     = fs.Int("topk", 0, "K for top-k operations")
		mix      = fs.String("mix", "", `op mix weights, e.g. "range=70,publish=10,lookup=10,unpublish=5,multi-range=0,top-k=5,flood=0"`)
		keys     = fs.String("keys", "", "key distribution: uniform|zipf|hotspot")
		zipfS    = fs.Float64("zipf-s", 0, "Zipf exponent (> 1)")
		hotFrac  = fs.Float64("hot-frac", 0, "hotspot: hot interval width as a fraction of the space")
		hotWt    = fs.Float64("hot-weight", 0, "hotspot: probability of drawing from the hot interval")
		rangeFr  = fs.String("range-frac", "", `range width as fraction of the space, "min:max" (e.g. "0.01:0.1")`)
		churn    = fs.String("churn", "", `churn rates/sec, e.g. "join=40,leave=30,fail=10"`)
		minPeers = fs.Int("min-peers", 0, "churn floor: skip leaves/fails at or below this size")
		maxPeers = fs.Int("max-peers", 0, "churn ceiling: skip joins at or above this size")
		interval = fs.Duration("interval", 0, "snapshot period")
		out      = fs.String("out", "", "write the JSON report to this file (default stdout)")
		verbose  = fs.Bool("v", false, "print interval snapshots to stderr while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printPresets(stdout)
		return nil
	}

	// With no -scenario the base is a neutral custom scenario (workload
	// defaults, 3000 ops) shaped entirely by the flags; a named preset is
	// the base otherwise, with explicit flags overriding its fields.
	sc := workload.Scenario{Name: "custom", Ops: 3000}
	if *scenario != "" {
		var ok bool
		if sc, ok = workload.Preset(*scenario); !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", *scenario)
		}
	}

	var parseErr error
	keep := func(err error) {
		parseErr = errors.Join(parseErr, err)
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "peers":
			sc.Peers = *peers
		case "ops":
			sc.Ops = *ops
		case "duration":
			// The run stops at whichever of -ops / -duration is reached
			// first; pass -ops 0 for a purely time-bounded run.
			sc.Duration = *duration
		case "workers":
			sc.Arrival.Workers = *workers
		case "rate":
			sc.Arrival.RatePerSec = *rate
		case "think":
			sc.Arrival.Think = *think
		case "seed":
			sc.Seed = *seed
		case "attrs":
			sc.Attrs = make([]armada.AttributeSpace, *attrs)
			for i := range sc.Attrs {
				sc.Attrs[i] = armada.AttributeSpace{Low: 0, High: 1000}
			}
		case "preload":
			sc.Preload = *preload
		case "topk":
			sc.TopK = *topk
		case "mix":
			m, err := parseMix(*mix)
			keep(err)
			sc.Mix = m
		case "keys":
			switch *keys {
			case "uniform":
				sc.Keys = workload.KeyDist{Kind: workload.KeyUniform}
			case "zipf":
				sc.Keys = workload.KeyDist{Kind: workload.KeyZipf, ZipfS: sc.Keys.ZipfS}
			case "hotspot":
				sc.Keys = workload.KeyDist{Kind: workload.KeyHotspot,
					HotFraction: sc.Keys.HotFraction, HotWeight: sc.Keys.HotWeight}
			default:
				keep(fmt.Errorf("unknown key distribution %q", *keys))
			}
		case "zipf-s":
			sc.Keys.ZipfS = *zipfS
		case "hot-frac":
			sc.Keys.HotFraction = *hotFrac
		case "hot-weight":
			sc.Keys.HotWeight = *hotWt
		case "range-frac":
			rs, err := parseRangeFrac(*rangeFr)
			keep(err)
			sc.RangeSize = rs
		case "churn":
			c, err := parseChurn(*churn, sc.Churn)
			keep(err)
			sc.Churn = c
		case "min-peers":
			sc.Churn.MinPeers = *minPeers
		case "max-peers":
			sc.Churn.MaxPeers = *maxPeers
		case "interval":
			sc.Interval = *interval
		}
	})
	if parseErr != nil {
		return parseErr
	}

	sc, err := sc.Normalize()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "armada-load: scenario %q — building %d peers, preloading %d objects\n",
		sc.Name, sc.Peers, sc.Preload)
	net, err := armada.NewNetwork(sc.Peers,
		armada.WithSeed(sc.Seed), armada.WithAttributes(sc.Attrs...))
	if err != nil {
		return err
	}
	runner, err := workload.New(net, sc)
	if err != nil {
		return err
	}
	if *verbose {
		runner.OnSnapshot = func(s workload.Snapshot) {
			fmt.Fprintf(stderr, "  t=%6.2fs  ops=%-6d errs=%-3d peers=%-5d %8.0f op/s\n",
				s.AtSec, s.Ops, s.Errors, s.Peers, s.Throughput)
		}
	}

	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "armada-load: %d ops in %.2fs (%.0f op/s), %d errors, peers %d → %d\n",
		rep.TotalOps, rep.DurationSec, rep.Throughput, rep.TotalErrors, rep.StartPeers, rep.EndPeers)
	return nil
}

// parseMix parses "range=70,publish=10,..." into a Mix.
func parseMix(s string) (workload.Mix, error) {
	var m workload.Mix
	fields := map[string]*float64{
		"publish": &m.Publish, "unpublish": &m.Unpublish, "lookup": &m.Lookup,
		"range": &m.Range, "multi-range": &m.MultiRange, "top-k": &m.TopK, "flood": &m.Flood,
	}
	if err := parseWeights(s, fields); err != nil {
		return workload.Mix{}, fmt.Errorf("-mix: %w", err)
	}
	return m, nil
}

// parseChurn parses "join=40,leave=30,fail=10" into a Churn, keeping the
// base's peer guards.
func parseChurn(s string, base workload.Churn) (workload.Churn, error) {
	c := workload.Churn{MinPeers: base.MinPeers, MaxPeers: base.MaxPeers}
	fields := map[string]*float64{
		"join": &c.JoinPerSec, "leave": &c.LeavePerSec, "fail": &c.FailPerSec,
	}
	if err := parseWeights(s, fields); err != nil {
		return workload.Churn{}, fmt.Errorf("-churn: %w", err)
	}
	return c, nil
}

func parseWeights(s string, fields map[string]*float64) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("%q is not key=value", part)
		}
		dst, ok := fields[strings.TrimSpace(key)]
		if !ok {
			return fmt.Errorf("unknown key %q", key)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("%q: %w", part, err)
		}
		*dst = w
	}
	return nil
}

// parseRangeFrac parses "min:max" into a SizeDist.
func parseRangeFrac(s string) (workload.SizeDist, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return workload.SizeDist{}, fmt.Errorf("-range-frac: %q is not min:max", s)
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(lo), 64)
	if err != nil {
		return workload.SizeDist{}, fmt.Errorf("-range-frac: %w", err)
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(hi), 64)
	if err != nil {
		return workload.SizeDist{}, fmt.Errorf("-range-frac: %w", err)
	}
	return workload.SizeDist{MinFrac: min, MaxFrac: max}, nil
}

// printPresets renders the preset table.
func printPresets(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tPEERS\tOPS\tATTRS\tKEYS\tCHURN/s (join/leave/fail)\tMIX")
	for _, p := range workload.Presets() {
		attrs := len(p.Attrs)
		if attrs == 0 {
			attrs = 1
		}
		churn := "-"
		if p.Churn.Enabled() {
			churn = fmt.Sprintf("%g/%g/%g", p.Churn.JoinPerSec, p.Churn.LeavePerSec, p.Churn.FailPerSec)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%v\t%s\t%s\n",
			p.Name, p.Peers, p.Ops, attrs, p.Keys.Kind, churn, mixString(p.Mix))
	}
	tw.Flush()
}

func mixString(m workload.Mix) string {
	parts := []string{}
	add := func(name string, w float64) {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", name, w))
		}
	}
	add("publish", m.Publish)
	add("unpublish", m.Unpublish)
	add("lookup", m.Lookup)
	add("range", m.Range)
	add("multi-range", m.MultiRange)
	add("top-k", m.TopK)
	add("flood", m.Flood)
	return strings.Join(parts, ",")
}
