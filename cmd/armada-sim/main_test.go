package main

import (
	"context"
	"testing"
)

func TestRunSmallNetwork(t *testing.T) {
	err := run(context.Background(), []string{
		"-peers", "60", "-objects", "40", "-seed", "5",
		"-lo", "100", "-hi", "300", "-topk", "2", "-churn", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiAttribute(t *testing.T) {
	err := run(context.Background(), []string{
		"-peers", "50", "-objects", "30", "-multi",
		"-lo", "1", "-hi", "4", "-lo2", "50", "-hi2", "200",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunStreaming(t *testing.T) {
	err := run(context.Background(), []string{
		"-peers", "50", "-objects", "40", "-stream", "-lo", "0", "-hi", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// -async -stream runs the trace hook concurrently; the derived counters
// must be race-free (run under -race in CI).
func TestRunAsyncStreaming(t *testing.T) {
	err := run(context.Background(), []string{
		"-peers", "80", "-objects", "60", "-async", "-stream", "-lo", "0", "-hi", "800",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
