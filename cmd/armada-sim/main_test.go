package main

import "testing"

func TestRunSmallNetwork(t *testing.T) {
	err := run([]string{
		"-peers", "60", "-objects", "40", "-seed", "5",
		"-lo", "100", "-hi", "300", "-topk", "2", "-churn", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiAttribute(t *testing.T) {
	err := run([]string{
		"-peers", "50", "-objects", "30", "-multi",
		"-lo", "1", "-hi", "4", "-lo2", "50", "-hi2", "200",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
