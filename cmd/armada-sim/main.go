// Command armada-sim builds an Armada/FISSIONE network, publishes a
// synthetic workload, and walks through one range query — printing the
// topology, the query's cost metrics and the per-peer results. It is the
// quickest way to see the delay-bounded search at work.
//
// Usage:
//
//	armada-sim -peers 2000 -objects 5000 -lo 70 -hi 80
//	armada-sim -peers 500 -multi -lo 1 -hi 4 -lo2 50 -hi2 200
//	armada-sim -peers 1000 -churn 200
//	armada-sim -peers 1000 -stream
//
// Queries run through the unified Do/Stream API; Ctrl-C cancels an
// in-flight query through its context.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sync"

	"armada"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "armada-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("armada-sim", flag.ContinueOnError)
	var (
		peers   = fs.Int("peers", 1000, "network size")
		objects = fs.Int("objects", 2000, "objects to publish")
		seed    = fs.Int64("seed", 7, "random seed")
		lo      = fs.Float64("lo", 70, "query low bound (attribute 0)")
		hi      = fs.Float64("hi", 80, "query high bound (attribute 0)")
		multi   = fs.Bool("multi", false, "use two attributes (MIRA)")
		lo2     = fs.Float64("lo2", 50, "query low bound (attribute 1, with -multi)")
		hi2     = fs.Float64("hi2", 200, "query high bound (attribute 1, with -multi)")
		churn   = fs.Int("churn", 0, "random joins/leaves to apply before querying")
		topk    = fs.Int("topk", 0, "also run a top-k query for the given k")
		async   = fs.Bool("async", false, "execute queries on one goroutine per peer")
		stream  = fs.Bool("stream", false, "print matches as destination peers deliver them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []armada.Option{armada.WithSeed(*seed)}
	spaces := []armada.AttributeSpace{{Low: 0, High: 1000}}
	if *multi {
		spaces = []armada.AttributeSpace{{Low: 0, High: 16}, {Low: 0, High: 500}}
	}
	opts = append(opts, armada.WithAttributes(spaces...))
	if *async {
		opts = append(opts, armada.WithAsyncQueries())
	}

	fmt.Printf("building FISSIONE network: %d peers...\n", *peers)
	net, err := armada.NewNetwork(*peers, opts...)
	if err != nil {
		return err
	}
	topo := net.Topology()
	logN := math.Log2(float64(topo.Peers))
	fmt.Printf("topology: peers=%d avg-degree=%.2f id-length min/avg/max = %d/%.2f/%d (logN=%.2f, 2logN=%.2f)\n",
		topo.Peers, topo.AvgDegree, topo.MinIDLength, topo.AvgIDLength, topo.MaxIDLength, logN, 2*logN)

	rng := rand.New(rand.NewSource(*seed + 100))
	fmt.Printf("publishing %d objects...\n", *objects)
	pubs := make([]armada.Publication, *objects)
	for i := range pubs {
		vals := make([]float64, len(spaces))
		for j, s := range spaces {
			vals[j] = s.Low + rng.Float64()*(s.High-s.Low)
		}
		pubs[i] = armada.Publication{Name: fmt.Sprintf("obj-%05d", i), Values: vals}
	}
	if err := net.PublishBatch(pubs); err != nil {
		return err
	}

	if *churn > 0 {
		fmt.Printf("applying %d churn events...\n", *churn)
		for i := 0; i < *churn; i++ {
			if rng.Intn(2) == 0 {
				if _, err := net.Join(); err != nil {
					return err
				}
			} else {
				ids := net.PeerIDs()
				if err := net.Leave(ids[rng.Intn(len(ids))]); err != nil {
					return err
				}
			}
		}
		if err := net.Audit(); err != nil {
			return fmt.Errorf("post-churn audit: %w", err)
		}
		fmt.Printf("post-churn: %d peers, all invariants hold\n", net.Size())
	}

	ranges := []armada.Range{{Low: *lo, High: *hi}}
	if *multi {
		ranges = append(ranges, armada.Range{Low: *lo2, High: *hi2})
	}
	issuer := net.RandomPeer()
	fmt.Printf("\nrange query %v issued by peer %s\n", ranges, issuer)

	if *stream {
		// Stream the query once, deriving the cost metrics from its own
		// trace: a forward at depth d is processed at d+1, so the delay is
		// the deepest forward plus one.
		var (
			hopMu                       sync.Mutex // an -async network runs the trace hook concurrently
			forwards, deliveries, delay int
		)
		q := armada.NewRange(ranges, armada.WithIssuer(issuer),
			armada.WithTrace(func(h armada.Hop) {
				hopMu.Lock()
				defer hopMu.Unlock()
				if h.From == h.To && h.Remaining == 0 {
					deliveries++
					return
				}
				forwards++
				if h.Depth+1 > delay {
					delay = h.Depth + 1
				}
			}))
		fmt.Println("  streaming matches as delivered:")
		n := 0
		for o, err := range net.Stream(ctx, q) {
			if err != nil {
				return err
			}
			n++
			if n <= 10 {
				fmt.Printf("    %-12s values=%v on peer %s\n", o.Name, o.Values, o.Peer)
			}
		}
		if n > 10 {
			fmt.Printf("    ... and %d more\n", n-10)
		}
		fmt.Printf("  matches    = %d objects streamed\n", n)
		fmt.Printf("  delay      = %d hops (bound 2logN = %.1f)\n", delay, 2*logN)
		fmt.Printf("  messages   = %d to %d destination peers\n", forwards, deliveries)
	} else {
		res, err := net.Do(ctx, armada.NewRange(ranges, armada.WithIssuer(issuer)))
		if err != nil {
			return err
		}
		fmt.Printf("  delay      = %d hops (bound 2logN = %.1f)\n", res.Stats.Delay, 2*logN)
		fmt.Printf("  messages   = %d\n", res.Stats.Messages)
		fmt.Printf("  destpeers  = %d across %d subregion(s)\n", res.Stats.DestPeers, res.Stats.Subregions)
		fmt.Printf("  mesgratio  = %.2f, increratio = %.2f\n",
			res.Stats.MesgRatio(), res.Stats.IncreRatio(net.Size()))
		fmt.Printf("  matches    = %d objects\n", len(res.Objects))
		for i, o := range res.Objects {
			if i == 10 {
				fmt.Printf("    ... and %d more\n", len(res.Objects)-10)
				break
			}
			fmt.Printf("    %-12s values=%v on peer %s\n", o.Name, o.Values, o.Peer)
		}
	}

	if *topk > 0 {
		tres, err := net.Do(ctx, armada.NewRange(ranges, armada.WithTopK(*topk)))
		if err != nil {
			return err
		}
		fmt.Printf("\ntop-%d by attribute 0 (delay %d hops, %d messages):\n",
			*topk, tres.Stats.Delay, tres.Stats.Messages)
		for _, o := range tres.Objects {
			fmt.Printf("    %-12s values=%v\n", o.Name, o.Values)
		}
	}
	return nil
}
