package main

import (
	"strings"
	"testing"

	"armada/internal/experiments"
)

func sampleFigure() experiments.Figure {
	return experiments.Figure{
		ID: "figX", Title: "Sample", XLabel: "N", YLabel: "hops",
		X: []float64{1, 2, 4},
		Series: []experiments.Series{
			{Name: "a", Y: []float64{1, 2, 3}},
			{Name: "b", Y: []float64{3, 2, 1}},
		},
	}
}

func TestAsciiPlotRendersAllSeries(t *testing.T) {
	out := asciiPlot(sampleFigure(), 40, 10)
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	fig := experiments.Figure{
		ID: "flat", Title: "Flat", XLabel: "x",
		X:      []float64{5},
		Series: []experiments.Series{{Name: "z", Y: []float64{0}}},
	}
	out := asciiPlot(fig, 20, 5)
	if out == "" {
		t.Fatal("degenerate figure produced no plot")
	}
}

func TestPrintFigureFormats(t *testing.T) {
	if err := printFigure(sampleFigure(), "csv"); err != nil {
		t.Fatalf("csv: %v", err)
	}
	if err := printFigure(sampleFigure(), "table"); err != nil {
		t.Fatalf("table: %v", err)
	}
	if err := printFigure(sampleFigure(), "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope", "-queries", "5"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickTable1(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-queries", "10", "-quick", "-format", "csv"}); err != nil {
		t.Fatalf("quick table1: %v", err)
	}
}
