// Command armada-bench regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	armada-bench -exp fig5                 # one experiment
//	armada-bench -exp all -queries 1000    # the full evaluation
//	armada-bench -exp fig7 -format csv     # machine-readable series
//	armada-bench -exp fig5 -plot           # ASCII rendering of the figure
//
// Experiments: fig5, fig6, fig7, fig8 (paper figures), table1 (paper
// table), bounds (Section 4.3.2 delay-bound claims), mira (extension EX1),
// ablation (extension EX5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"armada/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "armada-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("armada-bench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id: fig5|fig6|fig7|fig8|table1|bounds|mira|ablation|all")
		queries = fs.Int("queries", 1000, "queries per data point")
		seed    = fs.Int64("seed", 42, "random seed")
		format  = fs.String("format", "table", "output format: table|csv")
		plot    = fs.Bool("plot", false, "also render figures as ASCII plots")
		quick   = fs.Bool("quick", false, "reduced sweep sizes for a fast pass")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Queries: *queries, Seed: *seed}
	if *quick {
		cfg.Queries = min(*queries, 100)
		cfg.NetSizes = []int{1000, 2000, 4000}
		cfg.FixedNet = 1000
	}

	figs, tabs, err := experiments.Run(*exp, cfg)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		if err := printFigure(fig, *format); err != nil {
			return err
		}
		if *plot {
			fmt.Println(asciiPlot(fig, 64, 16))
		}
	}
	for _, tab := range tabs {
		printTable(tab, *format)
	}
	return nil
}

func printFigure(fig experiments.Figure, format string) error {
	switch format {
	case "csv":
		cols := make([]string, 0, len(fig.Series)+1)
		cols = append(cols, fig.XLabel)
		for _, s := range fig.Series {
			cols = append(cols, s.Name)
		}
		fmt.Printf("# %s: %s\n", fig.ID, fig.Title)
		fmt.Println(strings.Join(cols, ","))
		for i, x := range fig.X {
			row := []string{fmt.Sprintf("%g", x)}
			for _, s := range fig.Series {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			}
			fmt.Println(strings.Join(row, ","))
		}
	case "table":
		fmt.Printf("\n== %s: %s ==\n", fig.ID, fig.Title)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		header := fig.XLabel
		for _, s := range fig.Series {
			header += "\t" + s.Name
		}
		fmt.Fprintln(w, header)
		for i, x := range fig.X {
			row := fmt.Sprintf("%g", x)
			for _, s := range fig.Series {
				row += fmt.Sprintf("\t%.2f", s.Y[i])
			}
			fmt.Fprintln(w, row)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

func printTable(tab *experiments.Table, format string) {
	if format == "csv" {
		fmt.Printf("# %s: %s\n", tab.ID, tab.Title)
		fmt.Println(strings.Join(tab.Header, ","))
		for _, row := range tab.Rows {
			fmt.Println(strings.Join(row, ","))
		}
		return
	}
	fmt.Printf("\n== %s: %s ==\n", tab.ID, tab.Title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(tab.Header, "\t"))
	for _, row := range tab.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
}

// asciiPlot renders a figure's series on a character grid: series i is
// drawn with the i-th marker.
func asciiPlot(fig experiments.Figure, width, height int) string {
	markers := []byte{'*', 'o', '.', '+', 'x', '#'}
	maxY := 0.0
	for _, s := range fig.Series {
		for _, v := range s.Y {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	minX, maxX := fig.X[0], fig.X[len(fig.X)-1]
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range fig.Series {
		m := markers[si%len(markers)]
		for i, x := range fig.X {
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int(s.Y[i]/maxY*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: 0..%.1f %s)\n", fig.Title, maxY, fig.YLabel)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   %-10g%*s\n", minX, width-10, fmt.Sprintf("%g", maxX))
	legend := make([]string, 0, len(fig.Series))
	for si, s := range fig.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	b.WriteString("   " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
