package armada

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestNewNetworkDefaults(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 100 {
		t.Fatalf("size = %d", net.Size())
	}
	if net.Attributes() != 1 {
		t.Fatalf("attributes = %d", net.Attributes())
	}
	if err := net.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(2); err == nil {
		t.Error("2-peer network accepted")
	}
	if _, err := NewNetwork(10, WithK(1)); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewNetwork(10, WithAttributes()); err == nil {
		t.Error("empty attributes accepted")
	}
	if _, err := NewNetwork(10, WithAttributes(AttributeSpace{Low: 5, High: 5})); err == nil {
		t.Error("empty attribute space accepted")
	}
}

func TestPublishAndRangeQuery(t *testing.T) {
	net, err := NewNetwork(200, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{
		"alice": 83.5, "bob": 72, "carol": 91, "dave": 65.5, "eve": 78,
	}
	for name, s := range scores {
		if err := net.Publish(name, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.RangeQuery(70, 80)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"bob": true, "eve": true}
	if len(res.Objects) != len(want) {
		t.Fatalf("matches = %v", res.Objects)
	}
	for _, o := range res.Objects {
		if !want[o.Name] {
			t.Fatalf("unexpected match %q", o.Name)
		}
		if o.Peer == "" || o.ID == "" {
			t.Fatalf("match missing provenance: %+v", o)
		}
	}
	logN := math.Log2(float64(net.Size()))
	if float64(res.Stats.Delay) >= 2*logN {
		t.Fatalf("delay %d breaks the 2logN bound %.1f", res.Stats.Delay, 2*logN)
	}
}

func TestPublishArity(t *testing.T) {
	net, err := NewNetwork(20, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish("x", 1, 2); !errors.Is(err, ErrBadArity) {
		t.Errorf("wrong arity error = %v", err)
	}
	if _, err := net.RangeQuery(5, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := net.MultiRangeQuery(Range{0, 1}, Range{0, 1}); !errors.Is(err, ErrBadArity) {
		t.Error("extra range accepted")
	}
}

func TestMultiAttributeQuery(t *testing.T) {
	net, err := NewNetwork(150, WithSeed(9), WithAttributes(
		AttributeSpace{Low: 0, High: 16},  // memory GB
		AttributeSpace{Low: 0, High: 500}, // disk GB
	))
	if err != nil {
		t.Fatal(err)
	}
	type host struct {
		mem, disk float64
	}
	hosts := map[string]host{
		"h1": {1, 40}, "h2": {2, 100}, "h3": {4, 200}, "h4": {8, 400}, "h5": {3, 60},
	}
	for name, h := range hosts {
		if err := net.Publish(name, h.mem, h.disk); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's example: 1GB ≤ memory ≤ 4GB and 50GB ≤ disk ≤ 200GB.
	res, err := net.MultiRangeQuery(Range{1, 4}, Range{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"h2": true, "h3": true, "h5": true}
	if len(res.Objects) != len(want) {
		t.Fatalf("matches = %v", res.Objects)
	}
	for _, o := range res.Objects {
		if !want[o.Name] {
			t.Fatalf("unexpected match %q", o.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	net, err := NewNetwork(80, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PublishExact("the-file.txt"); err != nil {
		t.Fatal(err)
	}
	res, err := net.Lookup("the-file.txt")
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner == "" {
		t.Fatal("lookup returned no owner")
	}
	found := false
	for _, o := range res.Objects {
		if o.Name == "the-file.txt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lookup objects = %v", res.Objects)
	}
	// Lookup of an unpublished name still resolves an owner, with no
	// objects.
	res2, err := net.Lookup("missing")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Owner == "" || len(res2.Objects) != 0 {
		t.Fatalf("missing lookup = %+v", res2)
	}
}

func TestRangeQueryFromSpecificIssuer(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	issuer := net.PeerIDs()[0]
	res, err := net.RangeQueryFrom(issuer, Range{0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DestPeers != net.Size() {
		t.Fatalf("full query hit %d/%d peers", res.Stats.DestPeers, net.Size())
	}
	if _, err := net.RangeQueryFrom("21021", Range{0, 1}); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("unknown issuer error = %v", err)
	}
}

func TestTopK(t *testing.T) {
	net, err := NewNetwork(120, WithSeed(15))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	values := make([]float64, 200)
	for i := range values {
		values[i] = rng.Float64() * 1000
		if err := net.Publish(objName(i), values[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.TopK(5, Range{0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 5 {
		t.Fatalf("top-5 returned %d objects", len(res.Objects))
	}
	for i := 1; i < len(res.Objects); i++ {
		if res.Objects[i].Values[0] > res.Objects[i-1].Values[0] {
			t.Fatal("top-k not descending")
		}
	}
}

func TestJoinLeave(t *testing.T) {
	net, err := NewNetwork(50, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Join()
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 51 {
		t.Fatalf("size after join = %d", net.Size())
	}
	if err := net.Leave(id); err != nil {
		t.Fatal(err)
	}
	if net.Size() != 50 {
		t.Fatalf("size after leave = %d", net.Size())
	}
	if err := net.Leave("not-a-peer"); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("leave unknown peer error = %v", err)
	}
	if err := net.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesSurviveChurn(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := net.Publish(objName(i), float64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(20))
	for step := 0; step < 60; step++ {
		if rng.Intn(2) == 0 {
			if _, err := net.Join(); err != nil {
				t.Fatal(err)
			}
		} else {
			ids := net.PeerIDs()
			if err := net.Leave(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		if step%10 != 0 {
			continue
		}
		res, err := net.RangeQuery(100, 500)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < 100; i++ {
			if v := float64(i * 10); v >= 100 && v <= 500 {
				want++
			}
		}
		if len(res.Objects) != want {
			t.Fatalf("step %d: %d matches, want %d", step, len(res.Objects), want)
		}
	}
	if err := net.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedBuildTopology(t *testing.T) {
	net, err := NewNetwork(128, WithSeed(21), WithBalancedBuild())
	if err != nil {
		t.Fatal(err)
	}
	topo := net.Topology()
	if topo.MaxIDLength-topo.MinIDLength > 1 {
		t.Fatalf("balanced build spread %d..%d", topo.MinIDLength, topo.MaxIDLength)
	}
	if topo.Peers != 128 {
		t.Fatalf("topology peers = %d", topo.Peers)
	}
	if topo.AvgDegree < 3 || topo.AvgDegree > 5 {
		t.Errorf("avg degree = %.2f, want ≈ 4", topo.AvgDegree)
	}
}

func TestAsyncQueriesMatchSync(t *testing.T) {
	build := func(opts ...Option) *Network {
		all := append([]Option{WithSeed(23)}, opts...)
		net, err := NewNetwork(150, all...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			if err := net.Publish(objName(i), float64(i)*6.5); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	syncNet, asyncNet := build(), build(WithAsyncQueries())
	issuer := syncNet.PeerIDs()[7]
	a, err := syncNet.RangeQueryFrom(issuer, Range{100, 600})
	if err != nil {
		t.Fatal(err)
	}
	b, err := asyncNet.RangeQueryFrom(issuer, Range{100, 600})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Objects) != len(b.Objects) {
		t.Fatalf("objects differ: %d vs %d", len(a.Objects), len(b.Objects))
	}
}

// Concurrent queries against a stable network are safe and correct.
func TestConcurrentQueries(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := net.Publish(objName(i), float64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := net.RangeQuery(float64(g*50), float64(g*50+200))
				if err != nil {
					errs <- err
					return
				}
				if res.Stats.DestPeers == 0 {
					errs <- errors.New("query reached no peers")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{Messages: 30, DestPeers: 10}
	if s.MesgRatio() != 3 {
		t.Errorf("MesgRatio = %v", s.MesgRatio())
	}
	if got := s.IncreRatio(1024); math.Abs(got-20.0/9) > 1e-12 {
		t.Errorf("IncreRatio = %v", got)
	}
	if (Stats{}).MesgRatio() != 0 || (Stats{DestPeers: 1}).IncreRatio(8) != 0 {
		t.Error("degenerate ratios should be 0")
	}
}

func objName(i int) string {
	return "obj" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i%10))
}
