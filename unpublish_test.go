package armada

import (
	"context"
	"errors"
	"testing"
)

func TestUnpublishRemovesObject(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := net.Publish(objName(i), float64(i*20)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Do(context.Background(), NewRange([]Range{{Low: 0, High: 1000}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 50 {
		t.Fatalf("published %d objects, query found %d", 50, len(res.Objects))
	}

	if err := net.Unpublish(objName(10), 200); err != nil {
		t.Fatalf("unpublish: %v", err)
	}
	res, err = net.Do(context.Background(), NewRange([]Range{{Low: 0, High: 1000}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 49 {
		t.Fatalf("after unpublish query found %d, want 49", len(res.Objects))
	}
	for _, o := range res.Objects {
		if o.Name == objName(10) {
			t.Fatalf("unpublished object %q still returned", o.Name)
		}
	}
}

func TestUnpublishErrors(t *testing.T) {
	net, err := NewNetwork(30, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish("x", 100); err != nil {
		t.Fatal(err)
	}
	// Absent name at an owned position.
	if err := net.Unpublish("y", 100); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unpublish absent name: %v, want ErrNoSuchObject", err)
	}
	// Same name, different values (distinct object identity).
	if err := net.Unpublish("x", 900); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unpublish wrong values: %v, want ErrNoSuchObject", err)
	}
	// Arity mismatch.
	if err := net.Unpublish("x", 1, 2); !errors.Is(err, ErrBadArity) {
		t.Fatalf("unpublish bad arity: %v, want ErrBadArity", err)
	}
	// Double unpublish.
	if err := net.Unpublish("x", 100); err != nil {
		t.Fatal(err)
	}
	if err := net.Unpublish("x", 100); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("double unpublish: %v, want ErrNoSuchObject", err)
	}
}

func TestUnpublishDuplicatesOneAtATime(t *testing.T) {
	net, err := NewNetwork(30, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish("dup", 500); err != nil {
		t.Fatal(err)
	}
	if err := net.Publish("dup", 500); err != nil {
		t.Fatal(err)
	}
	if err := net.Unpublish("dup", 500); err != nil {
		t.Fatal(err)
	}
	res, err := net.Do(context.Background(), NewRange([]Range{{Low: 0, High: 1000}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 1 {
		t.Fatalf("after removing one duplicate, query found %d, want 1", len(res.Objects))
	}
	if err := net.Unpublish("dup", 500); err != nil {
		t.Fatal(err)
	}
	if err := net.Unpublish("dup", 500); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("third unpublish: %v, want ErrNoSuchObject", err)
	}
}

func TestUnpublishExact(t *testing.T) {
	net, err := NewNetwork(30, WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PublishExact("doc"); err != nil {
		t.Fatal(err)
	}
	lr, err := net.Do(context.Background(), NewLookup("doc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Objects) != 1 {
		t.Fatalf("lookup found %d objects, want 1", len(lr.Objects))
	}
	if err := net.UnpublishExact("doc"); err != nil {
		t.Fatal(err)
	}
	lr, err = net.Do(context.Background(), NewLookup("doc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Objects) != 0 {
		t.Fatalf("lookup after unpublish found %d objects, want 0", len(lr.Objects))
	}
	if err := net.UnpublishExact("doc"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unpublish absent exact: %v, want ErrNoSuchObject", err)
	}
}
