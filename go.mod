module armada

go 1.24
