package armada_test

import (
	"fmt"
	"log"

	"armada"
)

// A single-attribute network answering the paper's "70 ≤ score ≤ 80" query.
func ExampleNetwork_RangeQuery() {
	net, err := armada.NewNetwork(64,
		armada.WithSeed(7),
		armada.WithAttributes(armada.AttributeSpace{Low: 0, High: 100}),
	)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"alice", "bob", "carol", "dave"}
	scores := []float64{83.5, 72.0, 91.2, 78.3}
	for i, name := range names {
		if err := net.Publish(name, scores[i]); err != nil {
			log.Fatal(err)
		}
	}

	res, err := net.RangeQueryFrom(net.PeerIDs()[0], armada.Range{Low: 70, High: 80})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range res.Objects {
		fmt.Println(o.Name, o.Values[0])
	}
	// Output:
	// bob 72
	// dave 78.3
}

// A two-attribute network answering the paper's grid-resource query with
// MIRA.
func ExampleNetwork_MultiRangeQuery() {
	net, err := armada.NewNetwork(64,
		armada.WithSeed(9),
		armada.WithAttributes(
			armada.AttributeSpace{Low: 0, High: 16},  // memory GB
			armada.AttributeSpace{Low: 0, High: 500}, // disk GB
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	hosts := []struct {
		name      string
		mem, disk float64
	}{
		{"h1", 1, 40}, {"h2", 2, 100}, {"h3", 4, 200}, {"h4", 8, 400},
	}
	for _, h := range hosts {
		if err := net.Publish(h.name, h.mem, h.disk); err != nil {
			log.Fatal(err)
		}
	}

	// 1GB ≤ memory ≤ 4GB and 50GB ≤ disk ≤ 200GB.
	res, err := net.MultiRangeQuery(
		armada.Range{Low: 1, High: 4},
		armada.Range{Low: 50, High: 200},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range res.Objects {
		fmt.Println(o.Name)
	}
	// Output:
	// h2
	// h3
}

// Exact-match lookup through the same DHT.
func ExampleNetwork_Lookup() {
	net, err := armada.NewNetwork(64, armada.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	if err := net.PublishExact("report.pdf"); err != nil {
		log.Fatal(err)
	}
	res, err := net.LookupFrom(net.PeerIDs()[0], "report.pdf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Objects[0].Name)
	// Output:
	// report.pdf
}
