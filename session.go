package armada

import (
	"context"
	"errors"
	"fmt"

	"armada/internal/core"
	"armada/internal/diag"
	"armada/internal/kautz"
	"armada/internal/obs"
	"armada/internal/session"
)

// ErrSessionDone is returned by Session.Next once the walk has delivered
// its final page (or the session was closed).
var ErrSessionDone = errors.New("armada: session exhausted")

// Session is a query session: one paged range walk that reuses routing
// state across its pages. The first page descends the issuer's forward
// routing tree normally and captures the descent frontier — the
// destination peers and the subregion delivered to each; every later page
// is seeded directly at the frontier peers still ahead of the cursor, one
// message per surviving destination instead of a fresh ~log N descent
// (Stats.DescentsSaved counts the skips). On a network built with
// WithFrontierCache, page one may itself be seeded from a frontier a
// previous query over a covering region captured (Stats.FrontierHits).
//
// Sessions are correct under churn, not merely fast: a frontier carries
// the topology epoch it was captured at, and any Join, Leave or Fail bumps
// the epoch, so the next page falls back to a full descent and re-captures
// — identical results, just without the saving. Pages are exact keyset
// pages: the concatenated pages of a session equal a fresh unpaged walk of
// the same query, whatever mix of seeded and fallback pages produced them.
//
// A Session is not safe for concurrent use; run concurrent walks in
// separate sessions.
type Session struct {
	net      *Network
	q        Query // base query; OffsetID is overwritten per page
	frontier *core.Frontier
	offset   string
	done     bool
	stats    SessionStats
}

// SessionStats accumulates one session's walk costs across its pages.
type SessionStats struct {
	// Pages counts completed Next calls; Objects the matches they
	// returned; Messages the overlay messages they cost.
	Pages    int
	Objects  int
	Messages int
	// DescentsSaved counts pages that skipped their descent — seeded from
	// a frontier or routed by the shortcut table; FrontierHits is the
	// subset whose frontier came from the network's shared cache rather
	// than this session's own capture, ShortcutHits the subset the
	// learned shortcut table routed (WithShortcutTable).
	DescentsSaved int
	FrontierHits  int
	ShortcutHits  int
}

// OpenSession opens a query session for a paged range walk. q must be a
// range query (not flood or top-k) with WithLimit set — the page size; a
// WithOffsetID cursor, when present, is the walk's starting point. An
// empty issuer is pinned to a random peer at open so every page starts
// from the same place. No query runs until Next.
func (n *Network) OpenSession(q Query, opts ...QueryOption) (*Session, error) {
	for _, o := range opts {
		o(&q)
	}
	if k := q.kind(); k != KindRange {
		return nil, fmt.Errorf("%w: sessions walk range queries, not %v", ErrBadQuery, k)
	}
	if q.Limit < 1 {
		return nil, fmt.Errorf("%w: a session pages its walk and needs WithLimit ≥ 1, got %d", ErrBadQuery, q.Limit)
	}
	if q.Issuer == "" {
		q.Issuer = n.RandomPeer()
	} else if !n.hasPeer(q.Issuer) {
		// A bad issuer fails loudly here, exactly as Do would; Next's
		// re-pin is reserved for issuers that churn out mid-session.
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, q.Issuer)
	}
	return &Session{net: n, q: q, offset: q.OffsetID}, nil
}

// hasPeer reports whether the identified peer currently exists.
func (n *Network) hasPeer(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.net.Peer(kautz.Str(id))
	return ok
}

// More reports whether another page remains. It is true until a Next call
// returns the walk's final page (or Close is called).
func (s *Session) More() bool { return !s.done }

// Next executes the walk's next page and returns it; the page's Stats
// carry DescentsSaved/FrontierHits when it was frontier-seeded. The page
// whose Result.NextOffsetID is empty is the last; Next afterwards returns
// ErrSessionDone. A failed page (error) does not advance the cursor and
// may be retried.
func (s *Session) Next(ctx context.Context) (*Result, error) {
	if s.done {
		return nil, ErrSessionDone
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.net
	n.mu.RLock()
	defer n.mu.RUnlock()
	if _, ok := n.net.Peer(kautz.Str(s.q.Issuer)); !ok {
		// The pinned issuer churned out of the network; re-pin. Frontier
		// entries are absolute peer addresses, so reuse is unaffected.
		s.q.Issuer = n.randomPeerLocked()
	}
	q := s.q
	q.OffsetID = s.offset
	fr := &frontierExec{seed: s.frontier, wantCapture: true}
	res, err := n.do(ctx, q, q.Issuer, nil, fr)
	if err != nil {
		return nil, err
	}
	// Only the first page paid the caller's dispatch-queue wait; later
	// pages run back to back, so the stamp must not repeat.
	s.q.QueueWait = 0
	if fr.used != nil {
		s.frontier = fr.used
	}
	s.stats.Pages++
	s.stats.Objects += len(res.Objects)
	s.stats.Messages += res.Stats.Messages
	s.stats.DescentsSaved += res.Stats.DescentsSaved
	s.stats.FrontierHits += res.Stats.FrontierHits
	s.stats.ShortcutHits += res.Stats.ShortcutHits
	if res.NextOffsetID == "" {
		s.done = true
	} else {
		s.offset = res.NextOffsetID
	}
	return res, nil
}

// Stats returns the session's accumulated walk costs.
func (s *Session) Stats() SessionStats { return s.stats }

// Close ends the session and releases its captured frontier; further Next
// calls return ErrSessionDone. Closing is optional — a session holds
// frontier memory, never network resources — and idempotent.
func (s *Session) Close() {
	s.done = true
	s.frontier = nil
}

// frontierExec threads frontier reuse through one range execution in
// Network.do: seed is the caller-held candidate tried first (a session's
// own frontier), then the network's shared cache; a full descent captures
// a replacement. The out fields report what happened.
type frontierExec struct {
	seed *core.Frontier // candidate frontier; may be nil or stale
	// wantCapture requests a capture even mid-walk (cursored): sessions
	// adopt mid-walk captures for their remaining pages, while a plain
	// cursored Do could neither reuse nor cache one — capturing there
	// would be pure waste.
	wantCapture bool
	// qid tags the execution's flight-recorder events (0 without a
	// recorder); Network.exec stamps it, along with dq — the query's
	// diagnostics collector (nil without WithDiagnostics), which
	// runFrontierRange marks when a stale frontier forces a descent or a
	// shortcut route was on offer.
	qid uint64
	dq  *diag.Query

	used      *core.Frontier // the frontier that seeded, or the fresh capture
	fromCache bool           // used came from the shared cache
	saved     bool           // the query skipped its descent
}

// runFrontierRange executes one range query with frontier reuse: it
// resolves the candidate frontier (fr.seed, then the shared cache),
// requests capture on full descents, updates the cache, and stamps
// Stats.FrontierHits on the out result. opts are the engine options
// assembled so far; the caller holds the read lock.
func (n *Network) runFrontierRange(ctx context.Context, issuer string, lo, hi []float64, offsetID string, fr *frontierExec, opts []core.QueryOption) (*core.RangeResult, error) {
	prep, clipped, remains, err := n.eng.RangeRegion(lo, hi, kautz.Str(offsetID))
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	opts = append(opts, core.WithPrepared(prep))
	var (
		key  string
		cand *core.Frontier
	)
	if remains {
		key = session.Key(prep.Region)
		epoch := n.net.Epoch()
		if cand = fr.seed; cand != nil &&
			(cand.Epoch != epoch || !cand.Covers(clipped) || !cand.CoversBounds(lo, hi)) {
			if cand.Epoch != epoch && fr.dq != nil {
				fr.dq.MarkStaleFrontier()
			}
			cand = nil
		}
		if cand == nil && n.fcache != nil {
			f, ok, stale := n.fcache.Lookup(key, clipped, lo, hi, epoch)
			if stale && fr.dq != nil {
				fr.dq.MarkStaleFrontier()
			}
			if ok {
				cand, fr.fromCache = f, true
			}
		}
		if cand != nil {
			opts = append(opts, core.WithFrontier(cand))
		} else {
			// No frontier covers this query; offer the learned shortcut
			// table before resigning to a descent. Single-attribute only:
			// a MIRA descent prunes destinations with the box subspace
			// predicate, which a region tiling cannot express.
			if n.stable != nil && n.tree.Attrs() == 1 {
				if fr.dq != nil {
					fr.dq.MarkShortcutEligible()
				}
				if route, ok := n.shortcutRoute(clipped); ok {
					opts = append(opts, core.WithShortcutRoute(route))
				}
			}
			if offsetID == "" || fr.wantCapture {
				// A seeded query never captures; only request (and pay
				// for) capture when a descent may run AND someone can use
				// the result — the cache (cursor-free queries) or a
				// session.
				opts = append(opts, core.WithCaptureFrontier())
			}
		}
	}
	res, err := n.eng.RangeQuery(ctx, kautz.Str(issuer), lo, hi, opts...)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	if res.Stats.DescentsSaved > 0 {
		fr.used, fr.saved = cand, true
	} else {
		fr.used, fr.fromCache = res.Frontier, false
		if res.Frontier != nil && n.obs.flight != nil {
			n.obs.flight.Record(obs.Event{Kind: obs.EvFrontierCapture, QID: fr.qid,
				V1: int64(len(res.Frontier.Entries))})
		}
		// Only cursor-free captures enter the cache: they cover the whole
		// query region, so later queries over it (or anything inside it)
		// can seed from them. A mid-walk capture covers only the region
		// past its cursor — valuable to its session, useless to share.
		if n.fcache != nil && res.Frontier != nil && offsetID == "" {
			n.fcache.Insert(key, res.Frontier)
		}
	}
	return res, nil
}
