package armada

import (
	"sort"

	"armada/internal/diag"
)

// The diagnostics layer's record types are defined in internal/diag and
// re-exported here by alias: the JSON shapes served by armada-load's
// /debug/armada endpoints, dumped by -slow-out, and embedded in the
// workload report are one and the same.
type (
	// SlowQuery is one slow-query log record: identity, timing, the
	// classified cause and the per-stage critical-path breakdown.
	SlowQuery = diag.Record
	// StageTiming is one stage's share of a SlowQuery's breakdown.
	StageTiming = diag.StageMs
	// TailAttribution reports, for the queries slower than the run's p99,
	// the fraction attributed to each cause.
	TailAttribution = diag.Attribution
	// SLOStatus is the burn-rate monitor's state over the delay bound:
	// fast- and slow-window burn rates plus cumulative totals.
	SLOStatus = diag.SLOReport
)

// DiagnosticsEnabled reports whether the network was built
// WithDiagnostics.
func (n *Network) DiagnosticsEnabled() bool { return n.obs.diag != nil }

// SlowQueries returns the slow-query log's retained records, oldest first.
// It returns nil on a network built without WithDiagnostics.
func (n *Network) SlowQueries() []SlowQuery {
	if n.obs.diag == nil {
		return nil
	}
	return n.obs.diag.SlowQueries()
}

// TailAttributionReport returns the run's tail-latency attribution; ok is
// false on a network built without WithDiagnostics.
func (n *Network) TailAttributionReport() (TailAttribution, bool) {
	if n.obs.diag == nil {
		return TailAttribution{}, false
	}
	return n.obs.diag.TailAttribution(), true
}

// SLOStatusReport returns the delay-bound SLO burn-rate monitor's state;
// ok is false on a network built without WithDiagnostics.
func (n *Network) SLOStatusReport() (SLOStatus, bool) {
	if n.obs.diag == nil {
		return SLOStatus{}, false
	}
	return n.obs.diag.SLOReport(), true
}

// SlowThresholdMs returns the slow-query threshold currently in force in
// milliseconds — the fixed configured value, or the adaptive EWMA of the
// observed p99 (0 until its first batch). ok is false without
// WithDiagnostics.
func (n *Network) SlowThresholdMs() (float64, bool) {
	if n.obs.diag == nil {
		return 0, false
	}
	return n.obs.diag.ThresholdMs(), true
}

// Epoch returns the live topology epoch — bumped by every join, leave,
// failure, split and migration; frontier and shortcut state captured at an
// older epoch is invalid.
func (n *Network) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.Epoch()
}

// RegionHeat is one region's row in the live heat listing: its owner, its
// size, its store, its cumulative deliveries and — when the adaptive load
// controller runs — its EWMA delivery rate.
type RegionHeat struct {
	// Peer identifies the region's owner; Width is the region's size
	// exponent (free ObjectID symbols: the region spans on the order of
	// 2^Width ObjectIDs).
	Peer  string `json:"peer"`
	Width int    `json:"width"`
	// Objects is the peer's current store size (replicated copies
	// included); Deliveries its cumulative query deliveries.
	Objects    int   `json:"objects"`
	Deliveries int64 `json:"deliveries"`
	// RatePerSec is the region's EWMA delivery rate from the load
	// controller; 0 when the network runs without WithLoadControl.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
}

// RegionHeatReport lists every region's live heat, hottest first — by
// controller EWMA rate when load control runs, by cumulative deliveries
// otherwise. topN > 0 caps the listing.
func (n *Network) RegionHeatReport(topN int) []RegionHeat {
	rates := map[string]float64{}
	if n.lctl != nil {
		for _, r := range n.lctl.Rates() {
			rates[r.ID] = r.Rate
		}
	}
	n.mu.RLock()
	k := n.net.K()
	ids := n.net.PeerIDs()
	out := make([]RegionHeat, 0, len(ids))
	for _, id := range ids {
		p, ok := n.net.Peer(id)
		if !ok {
			continue
		}
		out = append(out, RegionHeat{
			Peer:       string(id),
			Width:      k - len(id),
			Objects:    p.ObjectCount(),
			Deliveries: p.Deliveries(),
			RatePerSec: rates[string(id)],
		})
	}
	n.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].RatePerSec != out[j].RatePerSec {
			return out[i].RatePerSec > out[j].RatePerSec
		}
		if out[i].Deliveries != out[j].Deliveries {
			return out[i].Deliveries > out[j].Deliveries
		}
		return out[i].Peer < out[j].Peer
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}
