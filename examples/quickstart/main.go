// Quickstart: build a small Armada network, publish objects by attribute
// value, and run delay-bounded range queries through the unified Do API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"armada"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A 256-peer FISSIONE network; objects carry one attribute in [0, 100].
	net, err := armada.NewNetwork(256,
		armada.WithSeed(2006),
		armada.WithAttributes(armada.AttributeSpace{Low: 0, High: 100}),
	)
	if err != nil {
		return err
	}

	// Publish exam scores in one batch. Armada's order-preserving naming
	// places close scores on the same or neighboring peers.
	students := []armada.Publication{
		{Name: "alice", Values: []float64{83.5}}, {Name: "bob", Values: []float64{72.0}},
		{Name: "carol", Values: []float64{91.2}}, {Name: "dave", Values: []float64{65.5}},
		{Name: "eve", Values: []float64{78.3}}, {Name: "frank", Values: []float64{70.0}},
		{Name: "grace", Values: []float64{80.0}}, {Name: "heidi", Values: []float64{55.1}},
	}
	if err := net.PublishBatch(students); err != nil {
		return err
	}

	// The paper's motivating query: 70 ≤ score ≤ 80, as one Query value
	// executed through the single Do entry point.
	res, err := net.Do(ctx, armada.NewRange([]armada.Range{{Low: 70, High: 80}}))
	if err != nil {
		return err
	}

	fmt.Println("students with 70 <= score <= 80:")
	for _, o := range res.Objects {
		fmt.Printf("  %-6s score=%.1f  (stored on peer %s)\n", o.Name, o.Values[0], o.Peer)
	}

	logN := math.Log2(float64(net.Size()))
	fmt.Printf("\nquery cost: %d hops (guaranteed < 2*logN = %.1f), %d messages, %d destination peers\n",
		res.Stats.Delay, 2*logN, res.Stats.Messages, res.Stats.DestPeers)

	// The same query, streamed: matches arrive as destination peers
	// deliver them, before the sorted result is assembled.
	fmt.Println("\nstreaming the same query:")
	for o, err := range net.Stream(ctx, armada.NewRange([]armada.Range{{Low: 70, High: 80}})) {
		if err != nil {
			return err
		}
		fmt.Printf("  delivered %s (%.1f)\n", o.Name, o.Values[0])
	}

	// Exact-match lookup through the same DHT.
	if err := net.PublishExact("syllabus.pdf"); err != nil {
		return err
	}
	lr, err := net.Do(ctx, armada.NewLookup("syllabus.pdf"))
	if err != nil {
		return err
	}
	fmt.Printf("exact-match lookup of %q: owner %s in %d hops\n",
		"syllabus.pdf", lr.Owner, lr.Stats.Delay)
	return nil
}
