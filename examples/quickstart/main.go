// Quickstart: build a small Armada network, publish objects by attribute
// value, and run delay-bounded range queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"armada"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 256-peer FISSIONE network; objects carry one attribute in [0, 100].
	net, err := armada.NewNetwork(256,
		armada.WithSeed(2006),
		armada.WithAttributes(armada.AttributeSpace{Low: 0, High: 100}),
	)
	if err != nil {
		return err
	}

	// Publish exam scores. Armada's order-preserving naming places close
	// scores on the same or neighboring peers.
	students := map[string]float64{
		"alice": 83.5, "bob": 72.0, "carol": 91.2, "dave": 65.5,
		"eve": 78.3, "frank": 70.0, "grace": 80.0, "heidi": 55.1,
	}
	for name, score := range students {
		if err := net.Publish(name, score); err != nil {
			return err
		}
	}

	// The paper's motivating query: 70 ≤ score ≤ 80.
	res, err := net.RangeQuery(70, 80)
	if err != nil {
		return err
	}

	fmt.Println("students with 70 <= score <= 80:")
	for _, o := range res.Objects {
		fmt.Printf("  %-6s score=%.1f  (stored on peer %s)\n", o.Name, o.Values[0], o.Peer)
	}

	logN := math.Log2(float64(net.Size()))
	fmt.Printf("\nquery cost: %d hops (guaranteed < 2*logN = %.1f), %d messages, %d destination peers\n",
		res.Stats.Delay, 2*logN, res.Stats.Messages, res.Stats.DestPeers)

	// Exact-match lookup through the same DHT.
	if err := net.PublishExact("syllabus.pdf"); err != nil {
		return err
	}
	lr, err := net.Lookup("syllabus.pdf")
	if err != nil {
		return err
	}
	fmt.Printf("exact-match lookup of %q: owner %s in %d hops\n",
		"syllabus.pdf", lr.Owner, lr.Stats.Delay)
	return nil
}
