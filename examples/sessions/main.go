// Sessions: walk a large range result page by page through a query
// session, reusing the captured descent frontier so every page beyond the
// first skips the route-to-region descent — then repeat the walk and watch
// the shared frontier cache serve even page 1.
//
//	go run ./examples/sessions
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"armada"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A 400-peer network with an issuer-side frontier cache: range
	// queries capture their pruned-descent frontier, and later queries
	// over covered regions seed directly at the destination peers.
	net, err := armada.NewNetwork(400,
		armada.WithSeed(2006),
		armada.WithFrontierCache(64),
	)
	if err != nil {
		return err
	}

	// A dense population, so a hot range spans several pages.
	rng := rand.New(rand.NewSource(42))
	pubs := make([]armada.Publication, 6000)
	for i := range pubs {
		pubs[i] = armada.Publication{
			Name:   fmt.Sprintf("reading-%05d", i),
			Values: []float64{rng.Float64() * 1000},
		}
	}
	if err := net.PublishBatch(pubs); err != nil {
		return err
	}

	// Walk the hot range twice. The first walk descends once (page 1) and
	// seeds every later page from its own captured frontier; the second
	// walk finds that frontier in the shared cache and descends not at all.
	ranges := []armada.Range{{Low: 100, High: 400}}
	for walk := 1; walk <= 2; walk++ {
		sess, err := net.OpenSession(armada.NewRange(ranges), armada.WithLimit(512))
		if err != nil {
			return err
		}
		fmt.Printf("walk %d:\n", walk)
		for page := 1; sess.More(); page++ {
			res, err := sess.Next(ctx)
			if err != nil {
				return err
			}
			how := "full descent"
			switch {
			case res.Stats.FrontierHits > 0:
				how = "seeded from the shared cache"
			case res.Stats.DescentsSaved > 0:
				how = "seeded from the session frontier"
			}
			fmt.Printf("  page %d: %4d objects, %3d messages, delay %d (%s)\n",
				page, len(res.Objects), res.Stats.Messages, res.Stats.Delay, how)
		}
		st := sess.Stats()
		fmt.Printf("  total: %d objects over %d pages, %d messages — %d descents saved, %d cache hits\n",
			st.Objects, st.Pages, st.Messages, st.DescentsSaved, st.FrontierHits)
		sess.Close()
	}

	if cs, ok := net.FrontierCacheStats(); ok {
		fmt.Printf("frontier cache: %d/%d entries, %d hits / %d misses (%d stale)\n",
			cs.Entries, cs.Capacity, cs.Hits, cs.Misses, cs.Stale)
	}
	return nil
}
