// Churn: peers join and leave while queries keep running. The example
// verifies that FISSIONE's structural invariants (prefix-free cover,
// neighborhood invariant, routing-table duality) hold after every batch of
// churn and that range queries remain exact throughout.
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"armada"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := armada.NewNetwork(300, armada.WithSeed(31))
	if err != nil {
		return err
	}

	// A fixed reference data set so query results are checkable at any
	// moment, ingested through the batch path.
	const objects = 500
	pubs := make([]armada.Publication, objects)
	for i := range pubs {
		pubs[i] = armada.Publication{Name: fmt.Sprintf("obj-%04d", i), Values: []float64{float64(i * 2)}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		return err
	}
	expect := func(lo, hi float64) int {
		count := 0
		for i := 0; i < objects; i++ {
			if v := float64(i * 2); v >= lo && v <= hi {
				count++
			}
		}
		return count
	}

	rng := rand.New(rand.NewSource(32))
	const rounds = 10
	const eventsPerRound = 40
	fmt.Printf("%-6s %-7s %-22s %-12s %-10s\n", "round", "peers", "id-length min/avg/max", "query delay", "matches")
	for round := 1; round <= rounds; round++ {
		for e := 0; e < eventsPerRound; e++ {
			if rng.Intn(2) == 0 {
				if _, err := net.Join(); err != nil {
					return err
				}
			} else {
				ids := net.PeerIDs()
				if err := net.Leave(ids[rng.Intn(len(ids))]); err != nil {
					return err
				}
			}
		}

		// Structural invariants must hold after every round.
		if err := net.Audit(); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}

		// And queries must stay exact and delay-bounded.
		lo := rng.Float64() * 800
		hi := lo + 100
		res, err := net.Do(context.Background(), armada.NewRange([]armada.Range{{Low: lo, High: hi}}))
		if err != nil {
			return err
		}
		if len(res.Objects) != expect(lo, hi) {
			return fmt.Errorf("round %d: query [%0.f,%0.f] found %d, want %d",
				round, lo, hi, len(res.Objects), expect(lo, hi))
		}
		topo := net.Topology()
		bound := 2 * math.Log2(float64(topo.Peers))
		if float64(res.Stats.Delay) >= bound {
			return fmt.Errorf("round %d: delay %d breaks bound %.1f", round, res.Stats.Delay, bound)
		}
		fmt.Printf("%-6d %-7d %d/%.1f/%-14d %3d hops     %d\n",
			round, topo.Peers, topo.MinIDLength, topo.AvgIDLength, topo.MaxIDLength,
			res.Stats.Delay, len(res.Objects))
	}
	fmt.Println("\nall rounds: invariants held, results exact, delays bounded")
	return nil
}
