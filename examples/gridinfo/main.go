// Gridinfo: a grid information service answering multi-attribute range
// queries with MIRA — the paper's motivating example "1GB ≤ Memory ≤ 4GB
// and 50GB ≤ disk ≤ 200GB" — through the unified Do API.
//
//	go run ./examples/gridinfo
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"armada"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 2000 peers index grid hosts along two attributes: memory (GB) and
	// disk (GB).
	net, err := armada.NewNetwork(2000,
		armada.WithSeed(11),
		armada.WithAttributes(
			armada.AttributeSpace{Low: 0, High: 64},   // memory GB
			armada.AttributeSpace{Low: 0, High: 2000}, // disk GB
		),
	)
	if err != nil {
		return err
	}

	// Register a synthetic fleet of hosts through the batch ingest path.
	rng := rand.New(rand.NewSource(12))
	memChoices := []float64{0.5, 1, 2, 4, 8, 16, 32, 64}
	const hosts = 3000
	matching := 0
	fleet := make([]armada.Publication, hosts)
	for i := range fleet {
		mem := memChoices[rng.Intn(len(memChoices))]
		disk := float64(rng.Intn(2000)) + 1
		if mem >= 1 && mem <= 4 && disk >= 50 && disk <= 200 {
			matching++
		}
		fleet[i] = armada.Publication{Name: fmt.Sprintf("host-%04d", i), Values: []float64{mem, disk}}
	}
	if err := net.PublishBatch(fleet); err != nil {
		return err
	}

	// The paper's query, as one request value.
	q := armada.NewRange([]armada.Range{
		{Low: 1, High: 4},    // 1GB ≤ memory ≤ 4GB
		{Low: 50, High: 200}, // 50GB ≤ disk ≤ 200GB
	})
	res, err := net.Do(ctx, q)
	if err != nil {
		return err
	}

	fmt.Printf("grid query: 1 <= mem <= 4 GB and 50 <= disk <= 200 GB\n")
	fmt.Printf("  found %d/%d hosts (expected %d)\n", len(res.Objects), hosts, matching)
	for i, o := range res.Objects {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(res.Objects)-8)
			break
		}
		fmt.Printf("  %-10s mem=%4.1fGB disk=%6.1fGB  on peer %s\n",
			o.Name, o.Values[0], o.Values[1], o.Peer)
	}
	if len(res.Objects) != matching {
		return fmt.Errorf("MIRA returned %d hosts, want %d", len(res.Objects), matching)
	}

	logN := math.Log2(float64(net.Size()))
	fmt.Printf("\nMIRA cost: %d hops (bound 2*logN = %.1f), %d messages, %d destination peers\n",
		res.Stats.Delay, 2*logN, res.Stats.Messages, res.Stats.DestPeers)

	// Top-k variant: the same ranges, retargeted with one option — the 3
	// best-provisioned matching hosts by memory.
	top, err := net.Do(ctx, armada.NewRange([]armada.Range{
		{Low: 1, High: 4},
		{Low: 50, High: 200},
	}, armada.WithTopK(3)))
	if err != nil {
		return err
	}
	fmt.Println("top-3 matching hosts by memory:")
	for _, o := range top.Objects {
		fmt.Printf("  %-10s mem=%4.1fGB disk=%6.1fGB\n", o.Name, o.Values[0], o.Values[1])
	}
	return nil
}
