// P2pdb: a P2P data-management workload comparing Armada's PIRA against the
// DCF-CAN baseline on the same data and queries — a miniature of the
// paper's evaluation.
//
//	go run ./examples/p2pdb
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"armada"
	"armada/internal/can"
	"armada/internal/dcfcan"
)

const (
	peers   = 2000
	records = 4000
	queries = 200
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(99))
	scores := make([]float64, records)
	for i := range scores {
		scores[i] = rng.Float64() * 1000
	}

	// Armada over FISSIONE; records ingest through the batch path.
	anet, err := armada.NewNetwork(peers, armada.WithSeed(100))
	if err != nil {
		return err
	}
	pubs := make([]armada.Publication, len(scores))
	for i, s := range scores {
		pubs[i] = armada.Publication{Name: fmt.Sprintf("rec-%05d", i), Values: []float64{s}}
	}
	if err := anet.PublishBatch(pubs); err != nil {
		return err
	}

	// DCF-CAN baseline on an equal-size CAN.
	cnet, err := can.BuildRandom(peers, 101)
	if err != nil {
		return err
	}
	dcf, err := dcfcan.New(cnet, 9, 0, 1000)
	if err != nil {
		return err
	}
	for i, s := range scores {
		if _, err := dcf.Publish(fmt.Sprintf("rec-%05d", i), s); err != nil {
			return err
		}
	}

	// Identical query workload on both systems.
	var (
		aDelay, aMsgs, aMax int
		dDelay, dMsgs, dMax int
	)
	qrng := rand.New(rand.NewSource(102))
	for q := 0; q < queries; q++ {
		width := 10 + qrng.Float64()*190
		lo := qrng.Float64() * (1000 - width)

		ares, err := anet.Do(context.Background(), armada.NewRange([]armada.Range{{Low: lo, High: lo + width}}))
		if err != nil {
			return err
		}
		dres, err := dcf.RangeQuery(cnet.RandomZone(qrng), lo, lo+width)
		if err != nil {
			return err
		}
		if len(ares.Objects) != len(dres.Matches) {
			return fmt.Errorf("result sets diverge: armada %d vs dcf-can %d",
				len(ares.Objects), len(dres.Matches))
		}
		aDelay += ares.Stats.Delay
		aMsgs += ares.Stats.Messages
		dDelay += dres.Stats.Delay
		dMsgs += dres.Stats.Messages
		if ares.Stats.Delay > aMax {
			aMax = ares.Stats.Delay
		}
		if dres.Stats.Delay > dMax {
			dMax = dres.Stats.Delay
		}
	}

	logN := math.Log2(peers)
	fmt.Printf("%d queries over %d records on %d peers (logN = %.1f, 2logN = %.1f)\n\n",
		queries, records, peers, logN, 2*logN)
	fmt.Printf("%-10s %12s %12s %12s\n", "scheme", "avg delay", "max delay", "avg msgs")
	fmt.Printf("%-10s %12.2f %12d %12.1f\n", "Armada",
		float64(aDelay)/queries, aMax, float64(aMsgs)/queries)
	fmt.Printf("%-10s %12.2f %12d %12.1f\n", "DCF-CAN",
		float64(dDelay)/queries, dMax, float64(dMsgs)/queries)
	fmt.Printf("\nboth schemes returned identical result sets on every query\n")
	fmt.Printf("Armada's max delay %d stayed below the 2logN bound %.1f; DCF-CAN's did not (%d)\n",
		aMax, 2*logN, dMax)
	return nil
}
