package armada

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentPublishQueryChurn exercises the two-tier locking scheme
// under -race: publishers and unpublishers run under the topology read
// lock (serialized per peer by the store locks) while queries — plain,
// paginated and streaming — read concurrently and churners take the write
// lock. Afterwards every invariant must hold and the surviving data must
// be exactly queryable.
func TestConcurrentPublishQueryChurn(t *testing.T) {
	net, err := NewNetwork(120, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Four publishers ingest disjoint name spaces in the [0, 500) band;
	// each records what it successfully published so it can unpublish half
	// of it again. Crash churn may lose objects, making unpublish misses
	// (ErrNoSuchObject) expected.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; !stop.Load(); i++ {
				name := fmt.Sprintf("w%d-%05d", w, i)
				v := rng.Float64() * 500
				if err := net.Publish(name, v); err != nil {
					t.Errorf("publish %s: %v", name, err)
					return
				}
				if i%2 == 0 {
					if err := net.Unpublish(name, v); err != nil && !errors.Is(err, ErrNoSuchObject) {
						t.Errorf("unpublish %s: %v", name, err)
						return
					}
				}
			}
		}(w)
	}

	// Two query workers: one paging, one mixing full queries and streams.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2000))
		for !stop.Load() {
			lo := rng.Float64() * 400
			offset := ""
			for {
				opts := []QueryOption{WithLimit(64)}
				if offset != "" {
					opts = append(opts, WithOffsetID(offset))
				}
				res, err := net.Do(context.Background(), NewRange([]Range{{Low: lo, High: lo + 100}}, opts...))
				if err != nil {
					t.Errorf("paged query: %v", err)
					return
				}
				if res.NextOffsetID == "" {
					break
				}
				offset = res.NextOffsetID
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3000))
		for !stop.Load() {
			lo := rng.Float64() * 400
			q := NewRange([]Range{{Low: lo, High: lo + 80}})
			if rng.Intn(2) == 0 {
				if _, err := net.Do(context.Background(), q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				continue
			}
			for _, err := range net.Stream(context.Background(), NewRange([]Range{{Low: lo, High: lo + 80}}, WithLimit(32))) {
				if err != nil {
					t.Errorf("stream: %v", err)
					return
				}
			}
		}
	}()

	// One churner mutating the topology throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(4000))
		for i := 0; i < 80; i++ {
			switch x := rng.Intn(4); {
			case x < 2 || net.Size() < 40:
				if _, err := net.Join(); err != nil {
					t.Errorf("join: %v", err)
					return
				}
			case x == 2:
				if err := net.Leave(net.RandomPeer()); err != nil &&
					!errors.Is(err, ErrNoSuchPeer) && !errors.Is(err, ErrTooSmall) {
					t.Errorf("leave: %v", err)
					return
				}
			default:
				if err := net.Fail(net.RandomPeer()); err != nil &&
					!errors.Is(err, ErrNoSuchPeer) && !errors.Is(err, ErrTooSmall) {
					t.Errorf("fail: %v", err)
					return
				}
			}
		}
		stop.Store(true)
	}()

	wg.Wait()
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after storm: %v", err)
	}

	// Exactness after the storm: a fresh batch in an untouched band, read
	// back both whole and paged.
	pubs := make([]Publication, 80)
	for i := range pubs {
		pubs[i] = Publication{Name: fmt.Sprintf("fresh-%02d", i), Values: []float64{600 + float64(i)}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	full, err := net.Do(context.Background(), NewRange([]Range{{Low: 599.5, High: 679.5}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Objects) != 80 {
		t.Fatalf("exactness query found %d objects, want 80", len(full.Objects))
	}
	var paged int
	offset := ""
	for {
		opts := []QueryOption{WithLimit(9)}
		if offset != "" {
			opts = append(opts, WithOffsetID(offset))
		}
		res, err := net.Do(context.Background(), NewRange([]Range{{Low: 599.5, High: 679.5}}, opts...))
		if err != nil {
			t.Fatal(err)
		}
		paged += len(res.Objects)
		if res.NextOffsetID == "" {
			break
		}
		offset = res.NextOffsetID
	}
	if paged != 80 {
		t.Fatalf("paged exactness walk found %d objects, want 80", paged)
	}
}
