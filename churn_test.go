package armada

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentChurnWithQueries interleaves Join, Leave and Fail with Do
// and Stream on one live network (run under -race in CI). Throughout the
// storm no query may error; afterwards every structural invariant must
// hold and queries must be exact again.
func TestConcurrentChurnWithQueries(t *testing.T) {
	net, err := NewNetwork(150, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	// Initial data set; crash-stops may lose some of it, so exactness is
	// only asserted on a fresh set after the churn stops.
	for i := 0; i < 300; i++ {
		if err := net.Publish(fmt.Sprintf("pre-%03d", i), float64(i*2)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		churners   sync.WaitGroup
		queriers   sync.WaitGroup
		ready      sync.WaitGroup // start barrier: one op per querier first
		churnDone  atomic.Bool
		queryCount atomic.Int64
		streamObjs atomic.Int64
	)
	ready.Add(4) // 3 Do-queriers + 1 streamer

	// Two churners: joins balance leaves and crashes so the network size
	// drifts, not collapses. They hold at the barrier until every query
	// goroutine has completed one operation, so churn genuinely overlaps
	// queries even under GOMAXPROCS=1 scheduling.
	for c := 0; c < 2; c++ {
		churners.Add(1)
		go func(seed int64) {
			defer churners.Done()
			ready.Wait()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				switch x := rng.Intn(4); {
				case x < 2 || net.Size() < 40:
					if _, err := net.Join(); err != nil {
						t.Errorf("join: %v", err)
						return
					}
				case x == 2:
					// The two churners may race on one victim; a peer
					// already gone is a benign outcome of real churn.
					if err := net.Leave(net.RandomPeer()); err != nil &&
						!errors.Is(err, ErrNoSuchPeer) && !errors.Is(err, ErrTooSmall) {
						t.Errorf("leave: %v", err)
						return
					}
				default:
					if err := net.Fail(net.RandomPeer()); err != nil &&
						!errors.Is(err, ErrNoSuchPeer) && !errors.Is(err, ErrTooSmall) {
						t.Errorf("fail: %v", err)
						return
					}
				}
			}
		}(int64(100 + c))
	}

	// Three Do-query goroutines running until the churners finish.
	for q := 0; q < 3; q++ {
		queriers.Add(1)
		go func(seed int64) {
			defer queriers.Done()
			rng := rand.New(rand.NewSource(seed))
			for first := true; first || !churnDone.Load(); first = false {
				lo := rng.Float64() * 900
				q := NewRange([]Range{{Low: lo, High: lo + 80}})
				if rng.Intn(4) == 0 {
					q = NewLookup(fmt.Sprintf("pre-%03d", rng.Intn(300)))
				}
				if _, err := net.Do(context.Background(), q); err != nil {
					t.Errorf("query during churn: %v", err)
					if first {
						ready.Done()
					}
					return
				}
				queryCount.Add(1)
				if first {
					ready.Done()
				}
			}
		}(int64(200 + q))
	}

	// One Stream goroutine, sometimes breaking early to exercise
	// cancellation against concurrent mutation.
	queriers.Add(1)
	go func() {
		defer queriers.Done()
		rng := rand.New(rand.NewSource(300))
		for first := true; first || !churnDone.Load(); first = false {
			// lo stays under 450 so the window always covers some of the
			// initial values (0..598) — the first, pre-churn iteration is
			// then guaranteed to stream at least one object.
			lo := rng.Float64() * 450
			limit := 1 + rng.Intn(40)
			n := 0
			for o, err := range net.Stream(context.Background(), NewRange([]Range{{Low: lo, High: lo + 150}})) {
				if err != nil {
					t.Errorf("stream during churn: %v", err)
					if first {
						ready.Done()
					}
					return
				}
				_ = o
				streamObjs.Add(1)
				if n++; n >= limit {
					break
				}
			}
			if first {
				ready.Done()
			}
		}
	}()

	churners.Wait()
	churnDone.Store(true)
	queriers.Wait()

	if qc := queryCount.Load(); qc == 0 {
		t.Error("no queries completed during churn")
	}
	if streamObjs.Load() == 0 {
		t.Error("no objects streamed during churn")
	}

	// Stabilized: every invariant must hold.
	if err := net.Audit(); err != nil {
		t.Fatalf("audit after churn: %v", err)
	}

	// And queries must be exact again: a fresh set in a value band the
	// initial data never used ([601, 1000] holds no pre- objects with odd
	// values... use a sub-band above 600 with fractional values).
	for i := 0; i < 50; i++ {
		if err := net.Publish(fmt.Sprintf("post-%02d", i), 700.0+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Do(context.Background(), NewRange([]Range{{Low: 699.5, High: 749.5}}))
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, o := range res.Objects {
		if len(o.Name) >= 5 && o.Name[:5] == "post-" {
			fresh++
		}
	}
	if fresh != 50 || len(res.Objects) != 50 {
		t.Fatalf("after stabilization query returned %d objects, %d fresh; want exactly the 50 fresh ones",
			len(res.Objects), fresh)
	}
	// Streamed delivery must agree with Do.
	streamed := 0
	for o, err := range net.Stream(context.Background(), NewRange([]Range{{Low: 699.5, High: 749.5}})) {
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Name) >= 5 && o.Name[:5] == "post-" {
			streamed++
		}
	}
	if streamed != fresh {
		t.Fatalf("stream found %d fresh objects, Do found %d", streamed, fresh)
	}
}
