# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: test race build vet smoke rebaseline

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI load-smoke invocation, gated against the committed budget.
smoke:
	$(GO) run ./cmd/armada-load -scenario mixed -ops 2000 -peers 500 -v -compare BENCH_baseline.json

# Regenerate the committed compare-gate budget as the per-op worst of three
# runs of the CI invocation. Run after any change that legitimately moves
# the mixed scenario's latency profile (and commit the result), so the
# regression gate is re-budgeted in one command.
rebaseline:
	$(GO) run ./cmd/armada-load -scenario mixed -ops 2000 -peers 500 -worst-of 3 -out BENCH_baseline.json
	@echo "BENCH_baseline.json regenerated (worst-of-3); review and commit it"
