# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: test race build vet smoke rebaseline rebaseline-2cpu

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI load-smoke invocation, gated against the committed budget. Pinned
# to GOMAXPROCS=1 to match the baseline's env stamp (the compare gate
# refuses to gate across a GOMAXPROCS mismatch).
smoke:
	GOMAXPROCS=1 $(GO) run ./cmd/armada-load -scenario mixed -ops 2000 -peers 500 -v -compare BENCH_baseline.json

# Regenerate the committed compare-gate budget as the per-op worst of three
# runs of the CI invocation. Run after any change that legitimately moves
# the mixed scenario's latency profile (and commit the result), so the
# regression gate is re-budgeted in one command. GOMAXPROCS is pinned so
# the baseline's env stamp matches the 1-CPU CI leg that gates against it.
rebaseline:
	GOMAXPROCS=1 $(GO) run ./cmd/armada-load -scenario mixed -ops 2000 -peers 500 -worst-of 3 -out BENCH_baseline.json
	@echo "BENCH_baseline.json regenerated (worst-of-3); review and commit it"

# Same, for the GOMAXPROCS=2 load-smoke leg: its tails are stabler than
# the pinned 1-CPU leg's, so it carries its own tighter budget.
rebaseline-2cpu:
	GOMAXPROCS=2 $(GO) run ./cmd/armada-load -scenario mixed -ops 2000 -peers 500 -worst-of 3 -out BENCH_baseline_2cpu.json
	@echo "BENCH_baseline_2cpu.json regenerated (worst-of-3 at GOMAXPROCS=2); review and commit it"
