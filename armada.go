// Package armada is a delay-bounded range-query system for DHT-based
// peer-to-peer networks, reproducing "Delay-Bounded Range Queries in
// DHT-based Peer-to-Peer Systems" (Li, Cao, Lu, Chan, Wang, Su, Leong,
// Chan — ICDCS 2006).
//
// Armada layers order-preserving object naming and pruned search over
// FISSIONE, a constant-degree DHT built on the Kautz graph K(2,k). Any
// range query — over one attribute (PIRA) or several (MIRA) — reaches every
// matching peer within 2·log₂N hops in an N-peer network, under log₂N on
// average, regardless of the size of the query or of the attribute space.
//
// The package simulates the whole system in process: a Network is a full
// FISSIONE overlay whose peers own namespace regions, keep local routing
// tables, and exchange messages hop by hop (optionally on one goroutine per
// peer). Query results carry the paper's cost metrics — hop delay, message
// count and destination-peer count.
//
//	net, err := armada.NewNetwork(2000)
//	...
//	err = net.Publish("alice", 83.5)
//	res, err := net.RangeQuery(70, 80)
//	fmt.Println(res.Stats.Delay, res.Stats.Messages, len(res.Objects))
package armada

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"armada/internal/core"
	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
)

// Errors returned by Network operations.
var (
	ErrBadArity   = errors.New("armada: value count must match the configured attributes")
	ErrNoSuchPeer = errors.New("armada: no such peer")
	ErrTooSmall   = errors.New("armada: network cannot shrink below 3 peers")
)

// Network is a simulated FISSIONE overlay with Armada query processing.
//
// Mutating operations (Join, Leave, Publish) and queries are safe for
// concurrent use; mutations take a write lock, queries a read lock.
type Network struct {
	mu   sync.RWMutex
	net  *fissione.Network
	tree *naming.Tree
	eng  *core.Engine
	rng  *rand.Rand
}

// NewNetwork builds a network of the given number of peers (at least 3).
func NewNetwork(peers int, opts ...Option) (*Network, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if peers < 3 {
		return nil, fmt.Errorf("%w: requested %d", ErrTooSmall, peers)
	}
	var net *fissione.Network
	if cfg.balanced {
		net, err = fissione.BuildBalanced(cfg.k, peers, cfg.seed)
	} else {
		net, err = fissione.BuildRandom(cfg.k, peers, cfg.seed)
	}
	if err != nil {
		return nil, fmt.Errorf("armada: build network: %w", err)
	}
	spaces := make([]naming.Space, len(cfg.attrs))
	for i, a := range cfg.attrs {
		spaces[i] = naming.Space{Low: a.Low, High: a.High}
	}
	tree, err := naming.NewTree(cfg.k, spaces...)
	if err != nil {
		return nil, fmt.Errorf("armada: naming tree: %w", err)
	}
	eng, err := core.New(net, tree)
	if err != nil {
		return nil, err
	}
	if cfg.async {
		eng.SetMode(core.Async)
	}
	return &Network{
		net:  net,
		tree: tree,
		eng:  eng,
		rng:  rand.New(rand.NewSource(cfg.seed + 1)),
	}, nil
}

// Size returns the number of peers.
func (n *Network) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.Size()
}

// Attributes returns the number of configured attributes.
func (n *Network) Attributes() int { return n.tree.Attrs() }

// PeerIDs returns every peer identifier (a Kautz string) in ascending
// order.
func (n *Network) PeerIDs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := n.net.PeerIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// RandomPeer returns a uniformly random peer identifier.
func (n *Network) RandomPeer() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return string(n.net.RandomPeer(n.rng))
}

// Join adds one peer via FISSIONE's join protocol and returns its
// identifier.
func (n *Network) Join() (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, err := n.net.Join()
	return string(id), err
}

// Leave removes the identified peer gracefully, handing its region and
// objects to the remaining peers.
func (n *Network) Leave(peerID string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return wrapFissioneErr(n.net.Leave(kautz.Str(peerID)), peerID)
}

// Fail simulates a crash-stop of the identified peer: its stored objects
// are lost (Armada does not replicate data), and the survivors'
// self-stabilization restores the namespace cover and all invariants before
// Fail returns.
func (n *Network) Fail(peerID string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return wrapFissioneErr(n.net.FailAbrupt(kautz.Str(peerID)), peerID)
}

func wrapFissioneErr(err error, peerID string) error {
	switch {
	case errors.Is(err, fissione.ErrNoSuchPeer):
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, peerID)
	case errors.Is(err, fissione.ErrTooSmall):
		return ErrTooSmall
	}
	return err
}

// Publish stores an object named name with the given attribute values (one
// per configured attribute). The object is placed on the peer owning its
// order-preserving ObjectID and becomes discoverable by range queries.
func (n *Network) Publish(name string, values ...float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(values) != n.tree.Attrs() {
		return fmt.Errorf("%w: got %d values, want %d", ErrBadArity, len(values), n.tree.Attrs())
	}
	oid, err := n.tree.Hash(values...)
	if err != nil {
		return fmt.Errorf("armada: publish %q: %w", name, err)
	}
	_, err = n.net.PublishAt(oid, fissione.Object{Name: name, Values: append([]float64(nil), values...)})
	return err
}

// PublishExact stores a value-less object under Kautz_hash(name) for
// exact-match lookup only.
func (n *Network) PublishExact(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	oid := kautz.Hash(name, n.net.K())
	_, err := n.net.PublishAt(oid, fissione.Object{Name: name})
	return err
}

// Lookup routes an exact-match query for name from a random peer and
// returns the owning peer, any objects published under the name's
// ObjectID, and the routing cost.
func (n *Network) Lookup(name string) (*LookupResult, error) {
	return n.LookupFrom(n.RandomPeer(), name)
}

// LookupFrom is Lookup issued by a specific peer.
func (n *Network) LookupFrom(issuer, name string) (*LookupResult, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	oid := kautz.Hash(name, n.net.K())
	res, err := n.eng.Lookup(kautz.Str(issuer), oid)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	out := &LookupResult{Owner: string(res.Owner), Stats: statsOf(res.Stats)}
	for _, o := range res.Objects {
		out.Objects = append(out.Objects, Object{Name: o.Name, Values: o.Values, Peer: string(res.Owner)})
	}
	return out, nil
}

// RangeQuery executes a single-attribute range query [low, high] from a
// random issuer. The network must be configured with exactly one attribute.
func (n *Network) RangeQuery(low, high float64) (*Result, error) {
	return n.RangeQueryFrom(n.RandomPeer(), Range{Low: low, High: high})
}

// MultiRangeQuery executes a multi-attribute range query from a random
// issuer, one Range per configured attribute.
func (n *Network) MultiRangeQuery(ranges ...Range) (*Result, error) {
	return n.RangeQueryFrom(n.RandomPeer(), ranges...)
}

// RangeQueryFrom executes a range query issued by a specific peer, one
// Range per configured attribute. Single-attribute queries run PIRA;
// multi-attribute queries run MIRA.
func (n *Network) RangeQueryFrom(issuer string, ranges ...Range) (*Result, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	lo, hi, err := n.bounds(ranges)
	if err != nil {
		return nil, err
	}
	res, err := n.eng.RangeQuery(kautz.Str(issuer), lo, hi)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	return resultOf(res), nil
}

// Hop is one observed overlay message of a traced query.
type Hop struct {
	// From is the peer that processed the message; To is the forward's
	// target. A delivery (the query reaching a destination peer) has
	// To == From and Remaining == 0.
	From, To string
	// Depth is the hop count from the issuer; Remaining is the number of
	// hops left to the destination level of the forward routing tree.
	Depth, Remaining int
}

// TraceQuery executes a range query like RangeQueryFrom while recording
// every overlay message, returning the result together with the hops in
// processing order. It is intended for inspection and debugging.
func (n *Network) TraceQuery(issuer string, ranges ...Range) (*Result, []Hop, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lo, hi, err := n.bounds(ranges)
	if err != nil {
		return nil, nil, err
	}
	var (
		hopMu sync.Mutex // the engine may run the trace hook concurrently in async mode
		hops  []Hop
	)
	n.eng.SetTrace(func(from, to kautz.Str, depth, remaining int) {
		hopMu.Lock()
		defer hopMu.Unlock()
		hops = append(hops, Hop{From: string(from), To: string(to), Depth: depth, Remaining: remaining})
	})
	defer n.eng.SetTrace(nil)
	res, err := n.eng.RangeQuery(kautz.Str(issuer), lo, hi)
	if err != nil {
		return nil, nil, wrapCoreErr(err)
	}
	return resultOf(res), hops, nil
}

// TopK returns up to k objects with the largest first-attribute values
// within the ranges, from a random issuer — the paper's future-work query
// type, built on the same bounded-delay descent.
func (n *Network) TopK(k int, ranges ...Range) (*Result, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	lo, hi, err := n.bounds(ranges)
	if err != nil {
		return nil, err
	}
	issuer := n.net.RandomPeer(nil)
	res, err := n.eng.TopK(issuer, lo, hi, k)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	out := &Result{Stats: statsOf(res.Stats)}
	for _, m := range res.Matches {
		out.Objects = append(out.Objects, Object{
			Name: m.Name, Values: m.Values, ID: string(m.ObjectID), Peer: string(m.Peer),
		})
	}
	return out, nil
}

// bounds converts ranges to per-attribute bound slices.
func (n *Network) bounds(ranges []Range) (lo, hi []float64, err error) {
	if len(ranges) != n.tree.Attrs() {
		return nil, nil, fmt.Errorf("%w: got %d ranges, want %d", ErrBadArity, len(ranges), n.tree.Attrs())
	}
	lo = make([]float64, len(ranges))
	hi = make([]float64, len(ranges))
	for i, r := range ranges {
		if r.Low > r.High {
			return nil, nil, fmt.Errorf("armada: range %d: low %v above high %v", i, r.Low, r.High)
		}
		lo[i], hi[i] = r.Low, r.High
	}
	return lo, hi, nil
}

// Topology summarizes the overlay's structure.
type Topology struct {
	Peers        int
	AvgDegree    float64
	AvgOutDegree float64
	MinIDLength  int
	MaxIDLength  int
	AvgIDLength  float64
}

// Topology returns structural statistics of the overlay.
func (n *Network) Topology() Topology {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l := n.net.IDLengths()
	return Topology{
		Peers:        n.net.Size(),
		AvgDegree:    n.net.AvgDegree(),
		AvgOutDegree: n.net.AvgOutDegree(),
		MinIDLength:  l.Min,
		MaxIDLength:  l.Max,
		AvgIDLength:  l.Avg,
	}
}

// Audit verifies every structural invariant of the overlay: the prefix-free
// namespace cover, the neighborhood invariant and routing-table
// consistency.
func (n *Network) Audit() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.Audit()
}

// wrapCoreErr maps engine errors onto the package's exported errors.
func wrapCoreErr(err error) error {
	if errors.Is(err, core.ErrNoSuchPeer) {
		return fmt.Errorf("%w: %v", ErrNoSuchPeer, err)
	}
	return err
}
