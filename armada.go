// Package armada is a delay-bounded range-query system for DHT-based
// peer-to-peer networks, reproducing "Delay-Bounded Range Queries in
// DHT-based Peer-to-Peer Systems" (Li, Cao, Lu, Chan, Wang, Su, Leong,
// Chan — ICDCS 2006).
//
// Armada layers order-preserving object naming and pruned search over
// FISSIONE, a constant-degree DHT built on the Kautz graph K(2,k). Any
// range query — over one attribute (PIRA) or several (MIRA) — reaches every
// matching peer within 2·log₂N hops in an N-peer network, under log₂N on
// average, regardless of the size of the query or of the attribute space.
//
// The package simulates the whole system in process: a Network is a full
// FISSIONE overlay whose peers own namespace regions, keep local routing
// tables, and exchange messages hop by hop (optionally on one goroutine per
// peer). Query results carry the paper's cost metrics — hop delay, message
// count and destination-peer count.
//
// Every query is one Query value executed through a single entry point,
// Do, which accepts a context for cancellation:
//
//	net, err := armada.NewNetwork(2000)
//	...
//	err = net.Publish("alice", 83.5)
//	res, err := net.Do(ctx, armada.NewRange([]armada.Range{{Low: 70, High: 80}}))
//	fmt.Println(res.Stats.Delay, res.Stats.Messages, len(res.Objects))
//
// Per-query options select the issuer (WithIssuer), observe every overlay
// hop (WithTrace), or retarget the algorithm (WithTopK, WithFlood). Stream
// delivers matching objects as destination peers report them, and
// PublishBatch ingests many objects under one lock acquisition. The legacy
// per-kind methods (Lookup, RangeQuery, MultiRangeQuery, TraceQuery, TopK)
// remain as thin deprecated wrappers over Do.
package armada

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"sync"

	"armada/internal/core"
	"armada/internal/diag"
	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/loadctl"
	"armada/internal/naming"
	"armada/internal/obs"
	"armada/internal/session"
	"armada/internal/shortcut"
)

// Errors returned by Network operations.
var (
	ErrBadArity     = errors.New("armada: value count must match the configured attributes")
	ErrBadQuery     = errors.New("armada: invalid query")
	ErrNoSuchPeer   = errors.New("armada: no such peer")
	ErrNoSuchObject = errors.New("armada: no such object")
	ErrTooSmall     = errors.New("armada: network cannot shrink below 3 peers")
)

// Network is a simulated FISSIONE overlay with Armada query processing.
//
// All operations are safe for concurrent use under a two-tier locking
// scheme. The topology lock (mu) is held exclusively only by topology
// changes — Join, Leave and Fail — and shared by everything else: queries,
// publishes and unpublishes all run under the read lock and therefore
// concurrently with one another. Store mutations serialize per peer on the
// owning peer's own lock inside the fissione layer, so publishes to
// different peers never contend and a publish never blocks a query except
// on the one peer it writes. The query engine itself is stateless — every
// query carries its own configuration — so any number of queries, traced
// or not, may run concurrently.
type Network struct {
	// mu is the topology lock: writers are Join/Leave/Fail only; queries,
	// publishes and unpublishes are readers (per-peer store locks order
	// their access to each peer's objects).
	mu   sync.RWMutex
	net  *fissione.Network
	tree *naming.Tree
	eng  *core.Engine
	mode core.Mode
	// fcache is the shared issuer-side frontier cache (nil without
	// WithFrontierCache): range queries capture their descent frontiers
	// into it and seed from covering entries, skipping the descent.
	fcache *session.Cache
	// stable is the learned shortcut routing table (nil without
	// WithShortcutTable): every descent's deliveries are learned into it,
	// and lookups and single-attribute range queries whose regions its
	// fresh entries tile route in one direct hop per destination.
	stable *shortcut.Table
	// lctl is the background load controller (nil without
	// WithLoadControl); Close stops it.
	lctl *loadctl.Controller
	// obs holds the metrics registry, the optional flight recorder and the
	// delay-bound conformance instruments; initObs wires it in NewNetwork.
	obs netObs

	// rng drives default issuer selection; it has its own mutex so peer
	// sampling never serializes behind mutations or other samplers.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewNetwork builds a network of the given number of peers (at least 3).
func NewNetwork(peers int, opts ...Option) (*Network, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if peers < 3 {
		return nil, fmt.Errorf("%w: requested %d", ErrTooSmall, peers)
	}
	var net *fissione.Network
	if cfg.balanced {
		net, err = fissione.BuildBalanced(cfg.k, peers, cfg.seed)
	} else {
		net, err = fissione.BuildRandom(cfg.k, peers, cfg.seed)
	}
	if err != nil {
		return nil, fmt.Errorf("armada: build network: %w", err)
	}
	return assemble(net, cfg)
}

// Size returns the number of peers.
func (n *Network) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.Size()
}

// Replicas returns the network's replication degree (1 = single-owner, no
// replication).
func (n *Network) Replicas() int { return n.net.Replicas() }

// ReReplications returns the total number of objects copied between peers
// to restore replica sets after churn (always 0 without replication). The
// workload package reports its growth per run.
func (n *Network) ReReplications() int64 { return n.net.ReReplications() }

// Attributes returns the number of configured attributes.
func (n *Network) Attributes() int { return n.tree.Attrs() }

// PeerIDs returns every peer identifier (a Kautz string) in ascending
// order.
func (n *Network) PeerIDs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := n.net.PeerIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// RandomPeer returns a uniformly random peer identifier. Sampling is a
// read-only operation: it shares the read lock with queries and serializes
// only on the sampler's own source.
func (n *Network) RandomPeer() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.randomPeerLocked()
}

// randomPeerLocked samples a peer; the caller holds at least the read lock.
func (n *Network) randomPeerLocked() string {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return string(n.net.RandomPeer(n.rng))
}

// Join adds one peer via FISSIONE's join protocol and returns its
// identifier.
func (n *Network) Join() (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, err := n.net.Join()
	return string(id), err
}

// Leave removes the identified peer gracefully, handing its region and
// objects to the remaining peers.
func (n *Network) Leave(peerID string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return wrapFissioneErr(n.net.Leave(kautz.Str(peerID)), peerID)
}

// Fail simulates a crash-stop of the identified peer. Without replication
// its stored objects are lost; with WithReplication(k ≥ 2) they are
// restored from surviving replicas during self-stabilization, which also
// re-establishes the namespace cover and all invariants before Fail
// returns.
func (n *Network) Fail(peerID string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return wrapFissioneErr(n.net.FailAbrupt(kautz.Str(peerID)), peerID)
}

func wrapFissioneErr(err error, peerID string) error {
	switch {
	case errors.Is(err, fissione.ErrNoSuchPeer):
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, peerID)
	case errors.Is(err, fissione.ErrTooSmall):
		return ErrTooSmall
	}
	return err
}

// Publish stores an object named name with the given attribute values (one
// per configured attribute). The object is placed on the peer owning its
// order-preserving ObjectID and becomes discoverable by range queries.
// Publishes hold only the topology read lock plus the owning peer's store
// lock, so they run concurrently with queries and with each other.
func (n *Network) Publish(name string, values ...float64) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.publishLocked(name, values)
}

// Publication is one named object for PublishBatch, with one value per
// configured attribute.
type Publication struct {
	Name   string
	Values []float64
}

// PublishBatch stores many objects under a single topology-lock
// acquisition — the bulk-ingest path. Publication i failing aborts the
// batch with an error naming i; objects before it remain published.
//
// A batch is not atomic with respect to readers: publishes land peer by
// peer — and, on a replicated network, replica by replica within each
// group — so a concurrent query may observe part of a still-running batch
// (pre-refactor, the batch held the write lock and appeared all at once).
// Callers needing all-or-nothing visibility must add their own barrier.
func (n *Network) PublishBatch(pubs []Publication) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for i, p := range pubs {
		if err := n.publishLocked(p.Name, p.Values); err != nil {
			return fmt.Errorf("armada: batch publication %d: %w", i, err)
		}
	}
	return nil
}

// publishLocked places one object; the caller holds at least the topology
// read lock (the owning peer's store lock orders the write itself).
func (n *Network) publishLocked(name string, values []float64) error {
	if len(values) != n.tree.Attrs() {
		return fmt.Errorf("%w: got %d values, want %d", ErrBadArity, len(values), n.tree.Attrs())
	}
	oid, err := n.tree.Hash(values...)
	if err != nil {
		return fmt.Errorf("armada: publish %q: %w", name, err)
	}
	_, err = n.net.PublishAt(oid, fissione.Object{Name: name, Values: append([]float64(nil), values...)})
	return err
}

// Unpublish removes one object previously stored by Publish under the same
// name and attribute values, making sustained write/delete workloads
// possible without unbounded growth. It returns ErrNoSuchObject when no
// such object is stored. Duplicate publications are removed one at a time.
func (n *Network) Unpublish(name string, values ...float64) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(values) != n.tree.Attrs() {
		return fmt.Errorf("%w: got %d values, want %d", ErrBadArity, len(values), n.tree.Attrs())
	}
	oid, err := n.tree.Hash(values...)
	if err != nil {
		return fmt.Errorf("armada: unpublish %q: %w", name, err)
	}
	return n.wrapUnpublishErr(n.unpublishAt(oid, fissione.Object{Name: name, Values: values}), name)
}

// UnpublishExact removes one value-less object previously stored by
// PublishExact under name. It returns ErrNoSuchObject when absent.
func (n *Network) UnpublishExact(name string) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	oid := kautz.Hash(name, n.net.K())
	return n.wrapUnpublishErr(n.unpublishAt(oid, fissione.Object{Name: name}), name)
}

// unpublishAt removes one matching object; the caller holds at least the
// topology read lock.
func (n *Network) unpublishAt(oid kautz.Str, obj fissione.Object) error {
	_, err := n.net.UnpublishAt(oid, obj)
	return err
}

// wrapUnpublishErr maps fissione removal errors onto the package's errors.
func (n *Network) wrapUnpublishErr(err error, name string) error {
	if errors.Is(err, fissione.ErrNoSuchObject) {
		return fmt.Errorf("%w: %q", ErrNoSuchObject, name)
	}
	return err
}

// PublishExact stores a value-less object under Kautz_hash(name) for
// exact-match lookup only.
func (n *Network) PublishExact(name string) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	oid := kautz.Hash(name, n.net.K())
	_, err := n.net.PublishAt(oid, fissione.Object{Name: name})
	return err
}

// Do executes one query and returns its full result. It is the single
// entry point behind every query kind:
//
//	res, err := net.Do(ctx, armada.NewRange([]armada.Range{{Low: 70, High: 80}}))
//	res, err := net.Do(ctx, armada.NewLookup("report.pdf"))
//	res, err := net.Do(ctx, armada.NewRange(ranges, armada.WithTopK(5)))
//
// Queries run under the network's read lock and may run concurrently with
// each other. Cancelling ctx aborts the query mid-descent; Do then returns
// an error wrapping ctx's error. A nil ctx never cancels.
func (n *Network) Do(ctx context.Context, q Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	issuer := q.Issuer
	if issuer == "" {
		issuer = n.randomPeerLocked()
	}
	return n.do(ctx, q, issuer, nil, nil)
}

// Stream executes one query and yields matching objects as destination
// peers deliver them, before the final result is assembled — the streaming
// variant of Do:
//
//	for obj, err := range net.Stream(ctx, q) {
//		if err != nil { ... }
//		use(obj)
//	}
//
// Objects arrive in delivery order, not the sorted order Do returns.
// Breaking out of the loop cancels the query. A terminal error, if any, is
// yielded as the final pair. Top-k queries cannot stream (their result set
// is only known once the descent finishes); use Do.
//
// With WithLimit(n) the stream ends after n objects. Because delivery
// order is not ObjectID order, those are the first n delivered — not
// necessarily the n smallest ObjectIDs — so exact keyset pagination
// (NextOffsetID continuation) requires Do; a streamed limit is a cap, not
// a page.
//
// The descent never waits on the consumer: delivered objects buffer until
// yielded, and the read lock is released as soon as the descent finishes,
// however slowly the loop body runs. Publishing from inside the loop is
// safe and does not block (publishes share the topology read lock);
// topology changes (Join, Leave, Fail) block until the descent finishes.
func (n *Network) Stream(ctx context.Context, q Query) iter.Seq2[Object, error] {
	return func(yield func(Object, error) bool) {
		if q.kind() == KindTopK {
			yield(Object{}, fmt.Errorf("%w: top-k queries cannot stream; use Do", ErrBadQuery))
			return
		}
		if ctx == nil {
			ctx = context.Background()
		}
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()

		// Unbounded buffer between the descent and the consumer, so the
		// engine never blocks on the loop body while holding the read lock.
		var (
			bufMu sync.Mutex
			buf   []Object
		)
		notify := make(chan struct{}, 1)
		done := make(chan error, 1)
		go func() {
			n.mu.RLock()
			defer n.mu.RUnlock()
			issuer := q.Issuer
			if issuer == "" {
				issuer = n.randomPeerLocked()
			}
			_, err := n.do(sctx, q, issuer, func(o Object) {
				bufMu.Lock()
				buf = append(buf, o)
				bufMu.Unlock()
				select {
				case notify <- struct{}{}:
				default:
				}
			}, nil)
			done <- err
		}()

		var (
			finished bool
			queryErr error
			yielded  int
		)
		for {
			bufMu.Lock()
			batch := buf
			buf = nil
			bufMu.Unlock()
			for _, o := range batch {
				if !yield(o, nil) {
					cancel()
					if !finished {
						<-done // the query goroutine sends exactly once
					}
					return
				}
				if yielded++; q.Limit > 0 && yielded >= q.Limit {
					// The limit is reached: end the stream like a consumer
					// break, cancelling whatever remains of the descent.
					cancel()
					if !finished {
						<-done
					}
					return
				}
			}
			if finished {
				if queryErr != nil {
					yield(Object{}, queryErr)
				}
				return
			}
			select {
			case <-notify:
			case queryErr = <-done:
				// One final drain: every OnMatch call happens before the
				// query returns, so the buffer is complete now.
				finished = true
			}
		}
	}
}

// do dispatches one query on the engine: the observability wrapper around
// exec. It samples the finished query against the delay bound and, with a
// flight recorder attached, brackets the execution in query start/end
// events (page cuts included). The caller holds the read lock; onMatch,
// when non-nil, streams each matching object at delivery time. fr, when
// non-nil, threads frontier reuse through a range query (see frontierExec);
// on a network with a frontier cache, plain non-streaming range queries
// get one automatically.
func (n *Network) do(ctx context.Context, q Query, issuer string, onMatch func(Object), fr *frontierExec) (*Result, error) {
	rec, dm := n.obs.flight, n.obs.diag
	var qid uint64
	if rec != nil || dm != nil {
		qid = n.obs.qseq.Add(1)
	}
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.EvQueryStart, QID: qid, From: issuer, Note: q.kind().String()})
	}
	var dq *diag.Query
	if dm != nil {
		dq = dm.Begin(qid, q.kind().String(), issuer, q.QueueWait)
	}
	res, err := n.exec(ctx, q, issuer, onMatch, fr, qid, dq)
	if err != nil {
		if dq != nil {
			dm.Finish(dq, diag.Outcome{Err: true})
		}
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.EvQueryEnd, QID: qid, Note: err.Error()})
		}
		return nil, err
	}
	bound := n.noteQuery(res.Stats)
	if dq != nil {
		dm.Finish(dq, diag.Outcome{
			Delay:         res.Stats.Delay,
			Bound:         bound,
			Messages:      res.Stats.Messages,
			DestPeers:     res.Stats.DestPeers,
			Deliveries:    res.Stats.Deliveries,
			ReplicaServed: res.Stats.ReplicaServed,
			ShortcutHits:  res.Stats.ShortcutHits,
			FrontierHits:  res.Stats.FrontierHits,
			DescentsSaved: res.Stats.DescentsSaved,
		})
	}
	if rec != nil {
		if res.NextOffsetID != "" {
			rec.Record(obs.Event{Kind: obs.EvPageCut, QID: qid, Note: res.NextOffsetID})
		}
		rec.Record(obs.Event{Kind: obs.EvQueryEnd, QID: qid,
			V1: int64(res.Stats.Delay), V2: int64(res.Stats.Messages)})
	}
	return res, nil
}

// exec runs one query on the engine. qid tags the query's flight-recorder
// events; it is 0 (and ignored) without a recorder or diagnostics. dq,
// when non-nil, is the query's diagnostics collector: the trace stream
// feeds its stage breakdown and the classifier flags are set here, at the
// decision points they describe.
func (n *Network) exec(ctx context.Context, q Query, issuer string, onMatch func(Object), fr *frontierExec, qid uint64, dq *diag.Query) (*Result, error) {
	kind := q.kind()
	opts := make([]core.QueryOption, 0, 6)
	if n.mode == core.Async {
		opts = append(opts, core.WithMode(core.Async))
	}
	pol, err := n.readPolicy(q.ReadPolicy)
	if err != nil {
		return nil, err
	}
	if pol != core.ReadPrimary {
		opts = append(opts, core.WithReadPolicy(pol))
	}
	if fr != nil {
		fr.qid = qid
		fr.dq = dq
	}
	if q.Trace != nil || n.obs.flight != nil || dq != nil {
		opts = append(opts, core.WithTrace(n.traceFunc(q.Trace, qid, dq)))
	}
	if dq != nil {
		opts = append(opts, core.WithScanTrace(func(_ kautz.Str, depth, matched int) {
			dq.NoteScan(depth, matched)
		}))
	}
	if onMatch != nil {
		opts = append(opts, core.WithOnMatch(func(m core.Match) {
			onMatch(objectOf(m))
		}))
	}
	if q.Limit != 0 || q.OffsetID != "" {
		if kind != KindRange && kind != KindFlood {
			return nil, fmt.Errorf("%w: pagination (WithLimit/WithOffsetID) applies to range and flood queries, not %v", ErrBadQuery, kind)
		}
		if q.Limit < 0 {
			return nil, fmt.Errorf("%w: limit %d must be positive", ErrBadQuery, q.Limit)
		}
		if q.OffsetID != "" {
			oid := kautz.Str(q.OffsetID)
			if len(oid) != n.net.K() || !kautz.Valid(oid) {
				return nil, fmt.Errorf("%w: offset %q is not an ObjectID of this network (Kautz string of length %d)", ErrBadQuery, q.OffsetID, n.net.K())
			}
			opts = append(opts, core.WithAfter(oid))
		}
		if q.Limit > 0 {
			opts = append(opts, core.WithLimit(q.Limit))
		}
	}

	switch kind {
	case KindLookup:
		var oid kautz.Str
		switch {
		case q.Name != "":
			oid = kautz.Hash(q.Name, n.net.K())
		case len(q.Values) > 0:
			if len(q.Values) != n.tree.Attrs() {
				return nil, fmt.Errorf("%w: got %d lookup values, want %d", ErrBadArity, len(q.Values), n.tree.Attrs())
			}
			var err error
			if oid, err = n.tree.Hash(q.Values...); err != nil {
				return nil, fmt.Errorf("armada: value lookup: %w", err)
			}
		default:
			return nil, fmt.Errorf("%w: lookup needs a name or attribute values", ErrBadQuery)
		}
		if n.stable != nil {
			if dq != nil {
				dq.MarkShortcutEligible()
			}
			// Lookups are the degenerate region ⟨oid, oid⟩ — always a
			// single learned owner on a hit.
			if route, ok := n.shortcutRoute(kautz.Region{Low: oid, High: oid}); ok {
				opts = append(opts, core.WithShortcutRoute(route))
			}
		}
		res, err := n.eng.Lookup(ctx, kautz.Str(issuer), oid, opts...)
		if err != nil {
			return nil, wrapCoreErr(err)
		}
		if n.stable != nil && res.Stats.ShortcutHits == 0 && res.Owner != "" {
			n.learnShortcuts([]kautz.Str{res.Owner})
		}
		out := &Result{Owner: string(res.Owner), Stats: statsOf(res.Stats)}
		for _, o := range res.Objects {
			out.Objects = append(out.Objects, Object{
				// Peer names the replica that served the delivery (== Owner
				// unless a read policy redirected it).
				Name: o.Name, Values: copyValues(o.Values), ID: string(oid), Peer: string(res.Served),
			})
		}
		return out, nil

	case KindRange, KindFlood:
		lo, hi, err := n.bounds(q.Ranges)
		if err != nil {
			return nil, err
		}
		// resultOf reads the sorted runs directly; skipping the engine-side
		// flatten saves one full copy of what may be a huge result set.
		opts = append(opts, core.WithRunsOnly())
		if kind == KindFlood {
			res, err := n.eng.FloodQuery(ctx, kautz.Str(issuer), lo, hi, opts...)
			if err != nil {
				return nil, wrapCoreErr(err)
			}
			return resultOf(res), nil
		}
		// Range queries — streaming included — on a network with any
		// issuer-side routing state (frontier cache or shortcut table) run
		// through runFrontierRange, which consults both: a repeated hot
		// range skips its descent, and a region the learned shortcut
		// entries tile routes in one hop per destination.
		if fr == nil && (n.fcache != nil || n.stable != nil) {
			fr = &frontierExec{qid: qid}
		}
		if fr == nil {
			res, err := n.eng.RangeQuery(ctx, kautz.Str(issuer), lo, hi, opts...)
			if err != nil {
				return nil, wrapCoreErr(err)
			}
			return resultOf(res), nil
		}
		res, err := n.runFrontierRange(ctx, issuer, lo, hi, q.OffsetID, fr, opts)
		if err != nil {
			return nil, err
		}
		if n.stable != nil && res.Stats.ShortcutHits == 0 && len(res.Destinations) > 0 {
			// Learn this descent's (or frontier fan-out's) delivery owners;
			// a shortcut-served query already found its entries fresh.
			n.learnShortcuts(res.Destinations)
		}
		out := resultOf(res)
		if fr.saved && fr.fromCache {
			out.Stats.FrontierHits = 1
		}
		return out, nil

	case KindTopK:
		if q.K < 1 {
			return nil, fmt.Errorf("%w: top-k needs K ≥ 1, got %d", ErrBadQuery, q.K)
		}
		lo, hi, err := n.bounds(q.Ranges)
		if err != nil {
			return nil, err
		}
		res, err := n.eng.TopK(ctx, kautz.Str(issuer), lo, hi, q.K, opts...)
		if err != nil {
			return nil, wrapCoreErr(err)
		}
		out := &Result{Stats: statsOf(res.Stats)}
		for _, m := range res.Matches {
			out.Objects = append(out.Objects, objectOf(m))
		}
		return out, nil

	default:
		return nil, fmt.Errorf("%w: unknown kind %v", ErrBadQuery, kind)
	}
}

// Lookup routes an exact-match query for name from a random peer and
// returns the owning peer, any objects published under the name's
// ObjectID, and the routing cost.
//
// Deprecated: use Do with NewLookup.
func (n *Network) Lookup(name string) (*LookupResult, error) {
	return n.LookupFrom(n.RandomPeer(), name)
}

// LookupFrom is Lookup issued by a specific peer.
//
// Deprecated: use Do with NewLookup and WithIssuer.
func (n *Network) LookupFrom(issuer, name string) (*LookupResult, error) {
	res, err := n.Do(context.Background(), NewLookup(name, WithIssuer(issuer)))
	if err != nil {
		return nil, err
	}
	return &LookupResult{Owner: res.Owner, Objects: res.Objects, Stats: res.Stats}, nil
}

// RangeQuery executes a single-attribute range query [low, high] from a
// random issuer. The network must be configured with exactly one attribute.
//
// Deprecated: use Do with NewRange.
func (n *Network) RangeQuery(low, high float64) (*Result, error) {
	return n.Do(context.Background(), NewRange([]Range{{Low: low, High: high}}))
}

// MultiRangeQuery executes a multi-attribute range query from a random
// issuer, one Range per configured attribute.
//
// Deprecated: use Do with NewRange.
func (n *Network) MultiRangeQuery(ranges ...Range) (*Result, error) {
	return n.Do(context.Background(), NewRange(ranges))
}

// RangeQueryFrom executes a range query issued by a specific peer, one
// Range per configured attribute. Single-attribute queries run PIRA;
// multi-attribute queries run MIRA.
//
// Deprecated: use Do with NewRange and WithIssuer.
func (n *Network) RangeQueryFrom(issuer string, ranges ...Range) (*Result, error) {
	return n.Do(context.Background(), NewRange(ranges, WithIssuer(issuer)))
}

// TraceQuery executes a range query like RangeQueryFrom while recording
// every overlay message, returning the result together with the hops in
// processing order. It runs under the read lock like every other query, so
// traced and untraced queries may execute concurrently.
//
// Deprecated: use Do with NewRange and WithTrace.
func (n *Network) TraceQuery(issuer string, ranges ...Range) (*Result, []Hop, error) {
	var (
		hopMu sync.Mutex // an async network may run the trace hook concurrently
		hops  []Hop
	)
	res, err := n.Do(context.Background(), NewRange(ranges,
		WithIssuer(issuer),
		WithTrace(func(h Hop) {
			hopMu.Lock()
			defer hopMu.Unlock()
			hops = append(hops, h)
		}),
	))
	if err != nil {
		return nil, nil, err
	}
	return res, hops, nil
}

// TopK returns up to k objects with the largest first-attribute values
// within the ranges, from a random issuer — the paper's future-work query
// type, built on the same bounded-delay descent.
//
// Deprecated: use Do with NewRange and WithTopK.
func (n *Network) TopK(k int, ranges ...Range) (*Result, error) {
	return n.Do(context.Background(), NewRange(ranges, WithTopK(k)))
}

// bounds converts ranges to per-attribute bound slices.
func (n *Network) bounds(ranges []Range) (lo, hi []float64, err error) {
	if len(ranges) != n.tree.Attrs() {
		return nil, nil, fmt.Errorf("%w: got %d ranges, want %d", ErrBadArity, len(ranges), n.tree.Attrs())
	}
	lo = make([]float64, len(ranges))
	hi = make([]float64, len(ranges))
	for i, r := range ranges {
		if r.Low > r.High {
			return nil, nil, fmt.Errorf("armada: range %d: low %v above high %v", i, r.Low, r.High)
		}
		lo[i], hi[i] = r.Low, r.High
	}
	return lo, hi, nil
}

// Topology summarizes the overlay's structure.
type Topology struct {
	Peers        int
	AvgDegree    float64
	AvgOutDegree float64
	MinIDLength  int
	MaxIDLength  int
	AvgIDLength  float64
}

// Topology returns structural statistics of the overlay.
func (n *Network) Topology() Topology {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l := n.net.IDLengths()
	return Topology{
		Peers:        n.net.Size(),
		AvgDegree:    n.net.AvgDegree(),
		AvgOutDegree: n.net.AvgOutDegree(),
		MinIDLength:  l.Min,
		MaxIDLength:  l.Max,
		AvgIDLength:  l.Avg,
	}
}

// FrontierCacheStats is a snapshot of the shared frontier cache's counters
// (see WithFrontierCache).
type FrontierCacheStats struct {
	// Hits and Misses count cache lookups by range queries; Stale is the
	// subset of misses that evicted an entry invalidated by churn (the
	// topology epoch moved past it).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Stale  int64 `json:"stale"`
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// FrontierCacheStats reports the shared frontier cache's counters; ok is
// false when the network was built without WithFrontierCache.
func (n *Network) FrontierCacheStats() (_ FrontierCacheStats, ok bool) {
	if n.fcache == nil {
		return FrontierCacheStats{}, false
	}
	s := n.fcache.Stats()
	return FrontierCacheStats{
		Hits:     s.Hits,
		Misses:   s.Misses,
		Stale:    s.Stale,
		Entries:  s.Entries,
		Capacity: s.Capacity,
	}, true
}

// ShortcutTableStats is a snapshot of the learned shortcut routing
// table's counters (see WithShortcutTable).
type ShortcutTableStats struct {
	// Hits and Misses count route resolutions by lookups and range
	// queries; Stale is how many entries were dropped on sight after a
	// topology epoch change; Evicted how many the capacity bound pushed
	// out.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Stale   int64 `json:"stale"`
	Evicted int64 `json:"evicted"`
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// ShortcutTableStats reports the learned shortcut routing table's
// counters; ok is false when the network was built without
// WithShortcutTable.
func (n *Network) ShortcutTableStats() (_ ShortcutTableStats, ok bool) {
	if n.stable == nil {
		return ShortcutTableStats{}, false
	}
	s := n.stable.Stats()
	return ShortcutTableStats{
		Hits:     s.Hits,
		Misses:   s.Misses,
		Stale:    s.Stale,
		Evicted:  s.Evicted,
		Entries:  s.Entries,
		Capacity: s.Capacity,
	}, true
}

// shortcutRoute resolves a query region against the shortcut table at the
// live topology epoch. The caller holds the read lock (so the epoch
// cannot move under the route) and has checked n.stable != nil.
func (n *Network) shortcutRoute(region kautz.Region) (core.ShortcutRoute, bool) {
	entries, ok := n.stable.Route(region, n.net.Epoch())
	if !ok {
		return core.ShortcutRoute{}, false
	}
	targets := make([]core.ShortcutTarget, len(entries))
	for i, en := range entries {
		targets[i] = core.ShortcutTarget{Owner: en.Owner, Group: en.Group}
	}
	return core.ShortcutRoute{Targets: targets}, true
}

// learnShortcuts records the region owners a query delivered to into the
// shortcut table, with their replica groups when the network replicates.
// The caller holds the read lock, so every owner still exists and the
// epoch recorded is the one the query ran at.
func (n *Network) learnShortcuts(owners []kautz.Str) {
	epoch := n.net.Epoch()
	replicated := n.net.Replicas() > 1
	var buf [16]*fissione.Peer
	for _, owner := range owners {
		var group []kautz.Str
		if replicated {
			peers := n.net.AppendGroupPeers(buf[:0], owner)
			group = make([]kautz.Str, len(peers))
			for i, p := range peers {
				group[i] = p.ID()
			}
		}
		n.stable.Learn(owner, group, epoch)
	}
}

// Audit verifies every structural invariant of the overlay: the prefix-free
// namespace cover, the neighborhood invariant and routing-table
// consistency.
func (n *Network) Audit() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.Audit()
}

// AuditSampled verifies the overlay's structural invariants on a
// deterministic evenly-spaced sample of roughly the given number of peers
// — the namespace cover is still checked in full — so post-run
// verification stays feasible at 100k peers. A sample of zero or at least
// the network size runs the full Audit.
func (n *Network) AuditSampled(sample int) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.AuditSampled(sample)
}

// readPolicy resolves a query's read policy against the network's
// replication configuration; ReadDefault becomes round-robin on a
// replicated network and primary otherwise.
func (n *Network) readPolicy(p ReadPolicy) (core.ReadPolicy, error) {
	switch p {
	case ReadDefault:
		if n.net.Replicas() > 1 {
			return core.ReadRoundRobin, nil
		}
		return core.ReadPrimary, nil
	case ReadPrimary:
		return core.ReadPrimary, nil
	case ReadRoundRobin:
		return core.ReadRoundRobin, nil
	case ReadLeastLoaded:
		return core.ReadLeastLoaded, nil
	default:
		return core.ReadPrimary, fmt.Errorf("%w: unknown read policy %v", ErrBadQuery, p)
	}
}

// wrapCoreErr maps engine errors onto the package's exported errors.
func wrapCoreErr(err error) error {
	if errors.Is(err, core.ErrNoSuchPeer) {
		return fmt.Errorf("%w: %v", ErrNoSuchPeer, err)
	}
	return err
}
