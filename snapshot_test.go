package armada

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestSnapshotWarmStartIdentity pins the warm-start path to the cold
// build: a network loaded from a snapshot with the same options must have
// the same topology fingerprint and answer identically-issued queries with
// byte-identical results.
func TestSnapshotWarmStartIdentity(t *testing.T) {
	for _, replicas := range []int{1, 2} {
		opts := []Option{WithSeed(5), WithReplication(replicas)}
		cold, err := NewNetwork(400, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer cold.Close()

		var buf bytes.Buffer
		if err := cold.SaveSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		warm, err := LoadSnapshot(&buf, opts...)
		if err != nil {
			t.Fatalf("replicas=%d: load: %v", replicas, err)
		}
		defer warm.Close()

		if got, want := warm.TopologyFingerprint(), cold.TopologyFingerprint(); got != want {
			t.Fatalf("replicas=%d: fingerprint %x != %x", replicas, got, want)
		}
		if got, want := warm.Size(), cold.Size(); got != want {
			t.Fatalf("replicas=%d: size %d != %d", replicas, got, want)
		}
		if err := warm.Audit(); err != nil {
			t.Fatalf("replicas=%d: loaded audit: %v", replicas, err)
		}

		// Same publishes on both, then the same queries from the same
		// issuers: results must match byte for byte, cost metrics included.
		for _, net := range []*Network{cold, warm} {
			for i := 0; i < 200; i++ {
				if err := net.Publish(fmt.Sprintf("obj-%03d", i), float64(i%100)*10); err != nil {
					t.Fatal(err)
				}
			}
		}
		issuer := cold.PeerIDs()[7]
		if warm.PeerIDs()[7] != issuer {
			t.Fatalf("replicas=%d: issuer order diverged", replicas)
		}
		queries := []Query{
			NewLookup("obj-042", WithIssuer(issuer)),
			NewRange([]Range{{Low: 100, High: 300}}, WithIssuer(issuer)),
			NewRange([]Range{{Low: 0, High: 999}}, WithIssuer(issuer)),
		}
		for qi, q := range queries {
			rc, err1 := cold.Do(context.Background(), q)
			rw, err2 := warm.Do(context.Background(), q)
			if err1 != nil || err2 != nil {
				t.Fatalf("replicas=%d query %d: %v / %v", replicas, qi, err1, err2)
			}
			if !reflect.DeepEqual(rc.Objects, rw.Objects) {
				t.Errorf("replicas=%d query %d: objects diverge (%d vs %d)",
					replicas, qi, len(rc.Objects), len(rw.Objects))
			}
			if rc.Stats != rw.Stats {
				t.Errorf("replicas=%d query %d: stats diverge: %+v != %+v", replicas, qi, rc.Stats, rw.Stats)
			}
		}

		// Churn continuity: the same join/leave sequence applies cleanly on
		// both and keeps them identical.
		for i := 0; i < 10; i++ {
			if _, err := cold.Join(); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Join(); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := warm.TopologyFingerprint(), cold.TopologyFingerprint(); got != want {
			t.Errorf("replicas=%d: fingerprint diverged after churn: %x != %x", replicas, got, want)
		}
	}
}

// TestLoadSnapshotAppliesOptions checks option handling on the warm path:
// replication may be raised at load, and caches come up as requested.
func TestLoadSnapshotAppliesOptions(t *testing.T) {
	cold, err := NewNetwork(100, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	var buf bytes.Buffer
	if err := cold.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	warm, err := LoadSnapshot(&buf, WithSeed(2), WithReplication(2), WithFrontierCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if got := warm.Replicas(); got != 2 {
		t.Errorf("replicas %d != 2", got)
	}
	if _, ok := warm.FrontierCacheStats(); !ok {
		t.Error("frontier cache not enabled")
	}
	if err := warm.Audit(); err != nil {
		t.Error(err)
	}
}

// TestLoadSnapshotRejectsGarbage checks the armada wrapper surfaces decode
// failures.
func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage loaded without error")
	}
}
