package kautz

import "fmt"

// Region is the Kautz region ⟨Low, High⟩ of Definition 1: the set of Kautz
// strings s of length len(Low) with Low ≼ s ≼ High. Low and High must have
// equal length and Low ≼ High.
type Region struct {
	Low  Str
	High Str
}

// NewRegion validates low and high and returns the region ⟨low, high⟩.
func NewRegion(low, high Str) (Region, error) {
	if !Valid(low) || !Valid(high) {
		return Region{}, fmt.Errorf("%w: region ⟨%s, %s⟩", ErrInvalid, low, high)
	}
	if len(low) != len(high) {
		return Region{}, fmt.Errorf("%w: region bounds %q/%q differ in length", ErrBadLen, low, high)
	}
	if low > high {
		return Region{}, fmt.Errorf("%w: region low %q above high %q", ErrInvalid, low, high)
	}
	return Region{Low: low, High: high}, nil
}

// K returns the string length of the region's elements.
func (r Region) K() int { return len(r.Low) }

// Contains reports whether s (of the region's length) lies in ⟨Low, High⟩.
func (r Region) Contains(s Str) bool {
	return len(s) == len(r.Low) && r.Low <= s && s <= r.High
}

// Size returns the number of Kautz strings in the region.
func (r Region) Size() uint64 {
	return Rank(r.High) - Rank(r.Low) + 1
}

// ContainsPrefix reports whether the region contains at least one string
// with prefix p. This is the PIRA forwarding predicate: a child of the
// forward routing tree is searched iff its eventual prefix can still reach a
// target. Prefixes longer than the region's K are compared by truncation
// (they denote a single point of the region's length).
func (r Region) ContainsPrefix(p Str) bool {
	k := r.K()
	if len(p) >= k {
		q := p[:k]
		return r.Low <= q && q <= r.High
	}
	return MaxExtend(p, k) >= r.Low && MinExtend(p, k) <= r.High
}

// CommonPrefix returns ComT, the longest common prefix of the region's
// bounds. Every string in the region starts with ComT.
func (r Region) CommonPrefix() Str { return CommonPrefix(r.Low, r.High) }

// SplitByFirstSymbol partitions the region into at most three subregions,
// each of whose elements share their first symbol (and therefore a common
// prefix of length ≥ 1). PIRA requires this so that each subregion's
// destination peers sit at a single level of the forward routing tree. A
// region whose bounds already share their first symbol is returned verbatim.
func (r Region) SplitByFirstSymbol() []Region {
	if r.Low[0] == r.High[0] {
		return []Region{r}
	}
	k := r.K()
	var parts []Region
	for c := r.Low[0]; c <= r.High[0]; c++ {
		sub := Region{Low: MinExtend(Str(c), k), High: MaxExtend(Str(c), k)}
		if c == r.Low[0] {
			sub.Low = r.Low
		}
		if c == r.High[0] {
			sub.High = r.High
		}
		parts = append(parts, sub)
	}
	return parts
}

// Intersect returns the intersection of r and o and whether it is nonempty.
// Both regions must have the same K.
func (r Region) Intersect(o Region) (Region, bool) {
	low, high := r.Low, r.High
	if o.Low > low {
		low = o.Low
	}
	if o.High < high {
		high = o.High
	}
	if low > high {
		return Region{}, false
	}
	return Region{Low: low, High: high}, true
}

// Strings materializes the region's elements in ascending order. Intended
// for tests and small regions.
func (r Region) Strings() []Str {
	out := make([]Str, 0, r.Size())
	for s := r.Low; ; {
		out = append(out, s)
		if s == r.High {
			break
		}
		next, ok := Succ(s)
		if !ok {
			break
		}
		s = next
	}
	return out
}

func (r Region) String() string {
	return fmt.Sprintf("⟨%s, %s⟩", r.Low, r.High)
}
