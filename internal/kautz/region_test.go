package kautz

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRegionValidation(t *testing.T) {
	if _, err := NewRegion("010", "021"); err != nil {
		t.Fatalf("valid region rejected: %v", err)
	}
	if _, err := NewRegion("021", "010"); err == nil {
		t.Error("inverted region accepted")
	}
	if _, err := NewRegion("01", "021"); err == nil {
		t.Error("length-mismatched region accepted")
	}
	if _, err := NewRegion("011", "021"); err == nil {
		t.Error("invalid bound accepted")
	}
}

// Definition 1 example from the paper: ⟨010, 021⟩ = {010, 012, 020, 021}.
func TestRegionPaperExample(t *testing.T) {
	r, err := NewRegion("010", "021")
	if err != nil {
		t.Fatal(err)
	}
	got := r.Strings()
	want := []Str{"010", "012", "020", "021"}
	if len(got) != len(want) {
		t.Fatalf("region %v = %v, want %v", r, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("region %v = %v, want %v", r, got, want)
		}
	}
	if r.Size() != 4 {
		t.Fatalf("Size = %d, want 4", r.Size())
	}
}

// Section 4.1 example: the range of [0.1, 0.24] under Single_hash on [0,1]
// with k=4 is ⟨0120, 0202⟩ containing leaves P, R, W, S (four strings).
func TestRegionSecondPaperExample(t *testing.T) {
	r, err := NewRegion("0120", "0202")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4 {
		t.Fatalf("⟨0120,0202⟩ size = %d, want 4", r.Size())
	}
	want := []Str{"0120", "0121", "0201", "0202"}
	for i, s := range r.Strings() {
		if s != want[i] {
			t.Fatalf("⟨0120,0202⟩ = %v, want %v", r.Strings(), want)
		}
	}
}

func TestContains(t *testing.T) {
	r := Region{Low: "0120", High: "0202"}
	for _, s := range []Str{"0120", "0121", "0201", "0202"} {
		if !r.Contains(s) {
			t.Errorf("%v should contain %q", r, s)
		}
	}
	for _, s := range []Str{"0102", "0210", "012", "01201"} {
		if r.Contains(s) {
			t.Errorf("%v should not contain %q", r, s)
		}
	}
}

func TestContainsPrefixExhaustive(t *testing.T) {
	const k = 6
	all := Enumerate(k)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		i, j := rng.Intn(len(all)), rng.Intn(len(all))
		if i > j {
			i, j = j, i
		}
		r := Region{Low: all[i], High: all[j]}
		prefixes := []Str{"", "0", "1", "2", "01", "20", "210", "0121", "21021", all[rng.Intn(len(all))]}
		for _, p := range prefixes {
			want := false
			for _, s := range all[i : j+1] {
				if s.HasPrefix(p) {
					want = true
					break
				}
			}
			if got := r.ContainsPrefix(p); got != want {
				t.Fatalf("region %v ContainsPrefix(%q) = %v, want %v", r, p, got, want)
			}
		}
	}
}

func TestContainsPrefixLongerThanK(t *testing.T) {
	r := Region{Low: "010", High: "021"}
	if !r.ContainsPrefix("0121") { // truncates to 012 ∈ region
		t.Error("long prefix truncating into region should match")
	}
	if r.ContainsPrefix("2101") {
		t.Error("long prefix truncating outside region should not match")
	}
}

func TestSplitByFirstSymbol(t *testing.T) {
	tests := []struct {
		low, high string
		wantParts int
	}{
		{"010", "021", 1},
		{"012", "121", 2},
		{"010", "212", 3},
		{"102", "201", 2},
	}
	for _, tt := range tests {
		r := Region{Low: Str(tt.low), High: Str(tt.high)}
		parts := r.SplitByFirstSymbol()
		if len(parts) != tt.wantParts {
			t.Errorf("%v split into %d parts, want %d", r, len(parts), tt.wantParts)
			continue
		}
		// Parts must partition the region: equal total size, common first
		// symbols, contiguous coverage.
		var total uint64
		for pi, p := range parts {
			if p.Low[0] != p.High[0] {
				t.Errorf("%v part %v lacks common first symbol", r, p)
			}
			if p.Low > p.High {
				t.Errorf("%v part %v inverted", r, p)
			}
			total += p.Size()
			if pi > 0 {
				prevHigh := parts[pi-1].High
				succ, ok := Succ(prevHigh)
				if !ok || succ != p.Low {
					t.Errorf("%v parts not contiguous: %q then %q", r, prevHigh, p.Low)
				}
			}
		}
		if total != r.Size() {
			t.Errorf("%v parts cover %d strings, want %d", r, total, r.Size())
		}
		if parts[0].Low != r.Low || parts[len(parts)-1].High != r.High {
			t.Errorf("%v parts do not span the region: %v", r, parts)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Region{Low: "0101", High: "0212"}
	b := Region{Low: "0120", High: "1021"}
	got, ok := a.Intersect(b)
	if !ok || got.Low != "0120" || got.High != "0212" {
		t.Fatalf("Intersect = %v/%v", got, ok)
	}
	c := Region{Low: "2010", High: "2121"}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint regions intersected")
	}
}

// Property: every string a region claims to contain has the region's common
// prefix.
func TestCommonPrefixCoversQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(aSeed, bSeed uint32) bool {
		const k = 10
		ra := uint64(aSeed) % SpaceSize(k)
		rb := uint64(bSeed) % SpaceSize(k)
		if ra > rb {
			ra, rb = rb, ra
		}
		low, err1 := FromRank(ra, k)
		high, err2 := FromRank(rb, k)
		if err1 != nil || err2 != nil {
			return false
		}
		r := Region{Low: low, High: high}
		com := r.CommonPrefix()
		// Sample a few members via rank interpolation.
		for i := 0; i < 5; i++ {
			mid, err := FromRank(ra+uint64(rng.Int63n(int64(rb-ra+1))), k)
			if err != nil || !mid.HasPrefix(com) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: SplitByFirstSymbol subregions tile the region exactly.
func TestSplitTilesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(aSeed, bSeed uint32) bool {
		const k = 9
		ra := uint64(aSeed) % SpaceSize(k)
		rb := uint64(bSeed) % SpaceSize(k)
		if ra > rb {
			ra, rb = rb, ra
		}
		low, _ := FromRank(ra, k)
		high, _ := FromRank(rb, k)
		r := Region{Low: low, High: high}
		var total uint64
		for _, p := range r.SplitByFirstSymbol() {
			if p.Low[0] != p.High[0] || p.Low > p.High {
				return false
			}
			total += p.Size()
		}
		return total == r.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}
