// Package kautz implements arithmetic on Kautz strings and the Kautz graph
// K(2,k), the namespace substrate of the FISSIONE DHT.
//
// A Kautz string of base d is a string over the alphabet {0, 1, ..., d} in
// which neighboring symbols differ. This package fixes d = 2 (alphabet
// {0,1,2}), the base used by FISSIONE and Armada. KautzSpace(2,k) is the set
// of all such strings of length k; it contains 3·2^(k-1) elements and is
// totally ordered by the usual lexicographic order, written ≼ in the paper.
//
// The package provides validation, ordering, prefix algebra (minimal and
// maximal completions), ranking (string ↔ dense index), lexicographic
// regions ⟨Low, High⟩ with prefix-intersection predicates, the static Kautz
// graph adjacency, and Kautz_hash, the uniform naming function used for
// exact-match publishing.
package kautz

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Base is the Kautz base d. FISSIONE and Armada use d = 2, giving the
// three-symbol alphabet {0,1,2}.
const Base = 2

// Alphabet lists the valid symbols in ascending order.
const Alphabet = "012"

// MaxRankLen is the longest string length supported by Rank/FromRank
// (3·2^(k-1) must fit in uint64).
const MaxRankLen = 62

// Str is a Kautz string: a sequence of symbols '0','1','2' in which adjacent
// symbols differ. The zero value is the empty string, which is a valid
// prefix of every Kautz string. Comparison between equal-length strings with
// the built-in < operator coincides with the paper's ≼ order.
type Str string

// Errors returned by constructors and parsers in this package.
var (
	ErrInvalid  = errors.New("kautz: invalid Kautz string")
	ErrBadLen   = errors.New("kautz: bad length")
	ErrOverflow = errors.New("kautz: length exceeds rank arithmetic range")
)

// Parse validates s and returns it as a Str.
func Parse(s string) (Str, error) {
	if !Valid(Str(s)) {
		return "", fmt.Errorf("%w: %q", ErrInvalid, s)
	}
	return Str(s), nil
}

// MustParse is Parse for tests and package literals; it panics on invalid
// input.
func MustParse(s string) Str {
	ks, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return ks
}

// Valid reports whether s is a well-formed Kautz string: every symbol is in
// {0,1,2} and no two adjacent symbols are equal. The empty string is valid.
func Valid(s Str) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '2' {
			return false
		}
		if i > 0 && s[i] == s[i-1] {
			return false
		}
	}
	return true
}

// Len returns the number of symbols in s.
func (s Str) Len() int { return len(s) }

// At returns the symbol at position i as a byte in {'0','1','2'}.
func (s Str) At(i int) byte { return s[i] }

// HasPrefix reports whether p is a prefix of s.
func (s Str) HasPrefix(p Str) bool { return strings.HasPrefix(string(s), string(p)) }

// HasSuffix reports whether p is a suffix of s.
func (s Str) HasSuffix(p Str) bool { return strings.HasSuffix(string(s), string(p)) }

// PrefixComparable reports whether s is a prefix of t or t is a prefix of s.
// Two peers' identifiers are never prefix-comparable (the PeerID set is a
// prefix-free cover of the namespace), but a PeerID and an ObjectID are
// exactly when the peer owns the object.
func PrefixComparable(s, t Str) bool {
	if len(s) <= len(t) {
		return t.HasPrefix(s)
	}
	return s.HasPrefix(t)
}

// Drop returns s with its first n symbols removed. Dropping more symbols
// than s holds yields the empty string.
func (s Str) Drop(n int) Str {
	if n >= len(s) {
		return ""
	}
	if n <= 0 {
		return s
	}
	return s[n:]
}

// CanAppend reports whether symbol c may legally follow s.
func (s Str) CanAppend(c byte) bool {
	if c < '0' || c > '2' {
		return false
	}
	return len(s) == 0 || s[len(s)-1] != c
}

// Append returns s extended by symbol c, or an error if the extension is not
// a Kautz string.
func (s Str) Append(c byte) (Str, error) {
	if !s.CanAppend(c) {
		return "", fmt.Errorf("%w: cannot append %q to %q", ErrInvalid, string(c), s)
	}
	return s + Str(c), nil
}

// Concat joins s and t, returning an error when the junction would place two
// equal symbols side by side.
func Concat(s, t Str) (Str, error) {
	if len(s) > 0 && len(t) > 0 && s[len(s)-1] == t[0] {
		return "", fmt.Errorf("%w: junction %q|%q", ErrInvalid, s, t)
	}
	return s + t, nil
}

// nextSymbols returns the symbols that may follow prev ('0','1','2', or 0
// meaning "start of string"), in ascending order.
func nextSymbols(prev byte) []byte {
	switch prev {
	case 0:
		return []byte{'0', '1', '2'}
	case '0':
		return []byte{'1', '2'}
	case '1':
		return []byte{'0', '2'}
	case '2':
		return []byte{'0', '1'}
	default:
		return nil
	}
}

// Extensions returns the symbols that may legally extend s, in ascending
// order: all three symbols for the empty string, otherwise the two symbols
// different from s's last.
func Extensions(s Str) []byte {
	return nextSymbols(lastOr0(s))
}

// lastOr0 returns the last symbol of s, or 0 for the empty string.
func lastOr0(s Str) byte {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// MinExtend returns the lexicographically smallest Kautz string of length k
// with prefix p. It panics if p is longer than k (callers must truncate).
func MinExtend(p Str, k int) Str {
	if len(p) > k {
		panic(fmt.Sprintf("kautz: MinExtend prefix %q longer than k=%d", p, k))
	}
	var b strings.Builder
	b.Grow(k)
	b.WriteString(string(p))
	prev := lastOr0(p)
	for i := len(p); i < k; i++ {
		c := nextSymbols(prev)[0]
		b.WriteByte(c)
		prev = c
	}
	return Str(b.String())
}

// MaxExtend returns the lexicographically largest Kautz string of length k
// with prefix p. It panics if p is longer than k.
func MaxExtend(p Str, k int) Str {
	if len(p) > k {
		panic(fmt.Sprintf("kautz: MaxExtend prefix %q longer than k=%d", p, k))
	}
	var b strings.Builder
	b.Grow(k)
	b.WriteString(string(p))
	prev := lastOr0(p)
	for i := len(p); i < k; i++ {
		cands := nextSymbols(prev)
		c := cands[len(cands)-1]
		b.WriteByte(c)
		prev = c
	}
	return Str(b.String())
}

// Succ returns the lexicographic successor of s within KautzSpace(2,len(s)).
// The second result is false when s is the maximum element.
func Succ(s Str) (Str, bool) {
	b := []byte(s)
	for i := len(b) - 1; i >= 0; i-- {
		var prev byte
		if i > 0 {
			prev = b[i-1]
		}
		// Find the smallest allowed symbol strictly greater than b[i].
		for _, c := range nextSymbols(prev) {
			if c > b[i] {
				head := Str(b[:i]) + Str(c)
				return MinExtend(head, len(s)), true
			}
		}
	}
	return "", false
}

// Pred returns the lexicographic predecessor of s within
// KautzSpace(2,len(s)). The second result is false when s is the minimum.
func Pred(s Str) (Str, bool) {
	b := []byte(s)
	for i := len(b) - 1; i >= 0; i-- {
		var prev byte
		if i > 0 {
			prev = b[i-1]
		}
		cands := nextSymbols(prev)
		for j := len(cands) - 1; j >= 0; j-- {
			if cands[j] < b[i] {
				head := Str(b[:i]) + Str(cands[j])
				return MaxExtend(head, len(s)), true
			}
		}
	}
	return "", false
}

// SpaceSize returns |KautzSpace(2,k)| = 3·2^(k-1). k must be in [1,
// MaxRankLen].
func SpaceSize(k int) uint64 {
	if k < 1 || k > MaxRankLen {
		panic(fmt.Sprintf("kautz: SpaceSize k=%d out of range", k))
	}
	return 3 << uint(k-1)
}

// Rank returns the zero-based position of s in the lexicographic enumeration
// of KautzSpace(2,len(s)).
func Rank(s Str) uint64 {
	if len(s) == 0 || len(s) > MaxRankLen {
		panic(fmt.Sprintf("kautz: Rank on length %d", len(s)))
	}
	r := uint64(s[0] - '0')
	for i := 1; i < len(s); i++ {
		r <<= 1
		// The two symbols allowed after s[i-1], ascending; the larger
		// contributes a 1 bit.
		if s[i] == nextSymbols(s[i-1])[1] {
			r |= 1
		}
	}
	return r
}

// FromRank is the inverse of Rank: it returns the Kautz string of length k
// at position r in lexicographic order.
func FromRank(r uint64, k int) (Str, error) {
	if k < 1 || k > MaxRankLen {
		return "", fmt.Errorf("%w: k=%d", ErrBadLen, k)
	}
	if r >= SpaceSize(k) {
		return "", fmt.Errorf("%w: rank %d out of range for k=%d", ErrBadLen, r, k)
	}
	b := make([]byte, k)
	b[0] = byte('0' + r>>uint(k-1))
	for i := 1; i < k; i++ {
		bit := (r >> uint(k-1-i)) & 1
		b[i] = nextSymbols(b[i-1])[bit]
	}
	return Str(b), nil
}

// Enumerate returns all Kautz strings of length k in ascending order. It is
// intended for tests and small k.
func Enumerate(k int) []Str {
	n := SpaceSize(k)
	out := make([]Str, 0, n)
	for r := uint64(0); r < n; r++ {
		s, err := FromRank(r, k)
		if err != nil {
			panic(err) // unreachable: r < SpaceSize(k)
		}
		out = append(out, s)
	}
	return out
}

// Random returns a uniformly random Kautz string of length k drawn from rng.
func Random(rng *rand.Rand, k int) Str {
	s, err := FromRank(uint64(rng.Int63n(int64(SpaceSize(k)))), k)
	if err != nil {
		panic(err) // unreachable: rank drawn in range
	}
	return s
}

// OutNeighbors returns the out-neighbors of node s in the static Kautz graph
// K(2,len(s)): the nodes s[1:]+α for each symbol α that may follow s's last
// symbol.
func OutNeighbors(s Str) []Str {
	if len(s) == 0 {
		return nil
	}
	tail := s.Drop(1)
	cands := nextSymbols(s[len(s)-1])
	out := make([]Str, 0, len(cands))
	for _, c := range cands {
		out = append(out, tail+Str(c))
	}
	return out
}

// InNeighbors returns the in-neighbors of node s in the static Kautz graph
// K(2,len(s)): the nodes α+s[:len(s)-1] for each symbol α ≠ s[0].
func InNeighbors(s Str) []Str {
	if len(s) == 0 {
		return nil
	}
	head := s[:len(s)-1]
	var in []Str
	for _, c := range []byte(Alphabet) {
		if c == s[0] {
			continue
		}
		in = append(in, Str(c)+head)
	}
	return in
}

// CommonPrefix returns the longest common prefix of a and b.
func CommonPrefix(a, b Str) Str {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// OverlapSuffixPrefix returns the length of the longest suffix of a that is
// a prefix of b. This is the f = |ComS| quantity of the paper: the number of
// routing hops PIRA may skip because the issuer's identifier already ends
// with the targets' common prefix.
func OverlapSuffixPrefix(a, b Str) int {
	maxL := min(len(a), len(b))
	for l := maxL; l > 0; l-- {
		if a[len(a)-l:] == Str(b[:l]) {
			return l
		}
	}
	return 0
}
