package kautz

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestValid(t *testing.T) {
	tests := []struct {
		give string
		want bool
	}{
		{"", true},
		{"0", true},
		{"1", true},
		{"2", true},
		{"01", true},
		{"010", true},
		{"012", true},
		{"0120", true},
		{"210210", true},
		{"00", false},
		{"011", false},
		{"0110", false},
		{"3", false},
		{"0a2", false},
		{"01 ", false},
		{"102201", false},
	}
	for _, tt := range tests {
		if got := Valid(Str(tt.give)); got != tt.want {
			t.Errorf("Valid(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	if _, err := Parse("0101"); err != nil {
		t.Fatalf("Parse(0101) error: %v", err)
	}
	if _, err := Parse("0110"); err == nil {
		t.Fatal("Parse(0110) should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("22")
}

func TestSpaceSize(t *testing.T) {
	tests := []struct {
		k    int
		want uint64
	}{
		{1, 3}, {2, 6}, {3, 12}, {4, 24}, {10, 1536},
	}
	for _, tt := range tests {
		if got := SpaceSize(tt.k); got != tt.want {
			t.Errorf("SpaceSize(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestEnumerateSortedValidComplete(t *testing.T) {
	for k := 1; k <= 7; k++ {
		all := Enumerate(k)
		if uint64(len(all)) != SpaceSize(k) {
			t.Fatalf("k=%d: %d strings, want %d", k, len(all), SpaceSize(k))
		}
		for i, s := range all {
			if !Valid(s) {
				t.Fatalf("k=%d: invalid string %q in enumeration", k, s)
			}
			if len(s) != k {
				t.Fatalf("k=%d: wrong length %q", k, s)
			}
			if i > 0 && all[i-1] >= s {
				t.Fatalf("k=%d: enumeration not strictly ascending at %d: %q ≥ %q", k, i, all[i-1], s)
			}
		}
	}
}

func TestRankFromRankRoundTrip(t *testing.T) {
	for k := 1; k <= 7; k++ {
		for r := uint64(0); r < SpaceSize(k); r++ {
			s, err := FromRank(r, k)
			if err != nil {
				t.Fatalf("FromRank(%d,%d): %v", r, k, err)
			}
			if got := Rank(s); got != r {
				t.Fatalf("Rank(FromRank(%d,%d)) = %d", r, k, got)
			}
		}
	}
}

func TestFromRankErrors(t *testing.T) {
	if _, err := FromRank(0, 0); err == nil {
		t.Error("FromRank(0,0) should fail")
	}
	if _, err := FromRank(SpaceSize(4), 4); err == nil {
		t.Error("FromRank out of range should fail")
	}
	if _, err := FromRank(0, MaxRankLen+1); err == nil {
		t.Error("FromRank beyond MaxRankLen should fail")
	}
}

func TestSuccPredExhaustive(t *testing.T) {
	all := Enumerate(5)
	for i, s := range all {
		next, ok := Succ(s)
		if i == len(all)-1 {
			if ok {
				t.Fatalf("Succ(max) = %q, want none", next)
			}
		} else if !ok || next != all[i+1] {
			t.Fatalf("Succ(%q) = %q/%v, want %q", s, next, ok, all[i+1])
		}
		prev, ok := Pred(s)
		if i == 0 {
			if ok {
				t.Fatalf("Pred(min) = %q, want none", prev)
			}
		} else if !ok || prev != all[i-1] {
			t.Fatalf("Pred(%q) = %q/%v, want %q", s, prev, ok, all[i-1])
		}
	}
}

func TestMinMaxExtend(t *testing.T) {
	tests := []struct {
		prefix  string
		k       int
		wantMin string
		wantMax string
	}{
		{"", 3, "010", "212"},
		{"0", 3, "010", "021"},
		{"1", 3, "101", "121"},
		{"2", 3, "201", "212"},
		{"01", 4, "0101", "0121"},
		{"02", 4, "0201", "0212"},
		{"0120", 4, "0120", "0120"},
	}
	for _, tt := range tests {
		if got := MinExtend(Str(tt.prefix), tt.k); got != Str(tt.wantMin) {
			t.Errorf("MinExtend(%q,%d) = %q, want %q", tt.prefix, tt.k, got, tt.wantMin)
		}
		if got := MaxExtend(Str(tt.prefix), tt.k); got != Str(tt.wantMax) {
			t.Errorf("MaxExtend(%q,%d) = %q, want %q", tt.prefix, tt.k, got, tt.wantMax)
		}
	}
}

// MinExtend/MaxExtend must bound exactly the set of length-k strings with the
// given prefix.
func TestExtendBoundsExhaustive(t *testing.T) {
	const k = 6
	all := Enumerate(k)
	prefixes := []Str{"0", "2", "01", "21", "010", "2102", "01210"}
	for _, p := range prefixes {
		lo, hi := MinExtend(p, k), MaxExtend(p, k)
		for _, s := range all {
			inBounds := lo <= s && s <= hi
			if inBounds != s.HasPrefix(p) {
				t.Fatalf("prefix %q: string %q bounds=%v prefix=%v", p, s, inBounds, s.HasPrefix(p))
			}
		}
	}
}

func TestDropAppendConcat(t *testing.T) {
	s := MustParse("01201")
	if got := s.Drop(2); got != "201" {
		t.Errorf("Drop(2) = %q", got)
	}
	if got := s.Drop(0); got != s {
		t.Errorf("Drop(0) = %q", got)
	}
	if got := s.Drop(9); got != "" {
		t.Errorf("Drop(9) = %q", got)
	}
	if _, err := s.Append('1'); err == nil {
		t.Error("Append equal symbol should fail")
	}
	ext, err := s.Append('2')
	if err != nil || ext != "012012" {
		t.Errorf("Append('2') = %q, %v", ext, err)
	}
	if _, err := Concat("012", "20"); err == nil {
		t.Error("Concat with equal junction should fail")
	}
	joined, err := Concat("012", "02")
	if err != nil || joined != "01202" {
		t.Errorf("Concat = %q, %v", joined, err)
	}
	if joined, err := Concat("", "01"); err != nil || joined != "01" {
		t.Errorf("Concat empty = %q, %v", joined, err)
	}
}

func TestOutNeighborsStatic(t *testing.T) {
	// Figure 1 of the paper: node 012 in K(2,3) has out-edges to 120, 121.
	got := OutNeighbors(MustParse("012"))
	want := []Str{"120", "121"}
	if len(got) != len(want) {
		t.Fatalf("OutNeighbors(012) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutNeighbors(012) = %v, want %v", got, want)
		}
	}
}

func TestInOutNeighborsConsistent(t *testing.T) {
	for _, s := range Enumerate(4) {
		for _, o := range OutNeighbors(s) {
			if !Valid(o) {
				t.Fatalf("OutNeighbors(%q) yields invalid %q", s, o)
			}
			found := false
			for _, back := range InNeighbors(o) {
				if back == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("%q not an in-neighbor of its out-neighbor %q", s, o)
			}
		}
		if got := len(OutNeighbors(s)); got != 2 {
			t.Fatalf("degree of %q = %d, want 2", s, got)
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	tests := []struct {
		a, b, want string
	}{
		{"0120", "0202", "0"},
		{"0120", "0121", "012"},
		{"0120", "0120", "0120"},
		{"0120", "1020", ""},
		{"", "010", ""},
	}
	for _, tt := range tests {
		if got := CommonPrefix(Str(tt.a), Str(tt.b)); got != Str(tt.want) {
			t.Errorf("CommonPrefix(%q,%q) = %q, want %q", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestOverlapSuffixPrefix(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"212", "0120", 0},
		{"212", "120", 2},  // suffix "12" = prefix "12"
		{"212", "2120", 3}, // whole of a
		{"0101", "0120", 2},
		{"0101", "1012", 3},
		{"", "012", 0},
		{"012", "", 0},
	}
	for _, tt := range tests {
		if got := OverlapSuffixPrefix(Str(tt.a), Str(tt.b)); got != tt.want {
			t.Errorf("OverlapSuffixPrefix(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPrefixComparable(t *testing.T) {
	if !PrefixComparable("01", "0120") || !PrefixComparable("0120", "01") {
		t.Error("prefix pairs should be comparable")
	}
	if PrefixComparable("012", "010") {
		t.Error("diverging strings should not be comparable")
	}
	if !PrefixComparable("", "2") {
		t.Error("empty string is a prefix of everything")
	}
}

func TestHashDeterministicValidUniformish(t *testing.T) {
	const k = 20
	a, b := Hash("alpha", k), Hash("alpha", k)
	if a != b {
		t.Fatalf("Hash not deterministic: %q vs %q", a, b)
	}
	if !Valid(a) || len(a) != k {
		t.Fatalf("Hash output invalid: %q", a)
	}
	if Hash("alpha", k) == Hash("beta", k) {
		t.Fatal("distinct names should hash differently (overwhelmingly)")
	}
	// Rough uniformity: first-symbol counts over many names should all be
	// within a loose band of n/3.
	counts := map[byte]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[Hash(string(rune('a'+i%26))+string(rune('0'+i)), k)[0]]++
	}
	for sym, c := range counts {
		if c < n/3-n/10 || c > n/3+n/10 {
			t.Errorf("first symbol %q count %d far from uniform %d", sym, c, n/3)
		}
	}
}

func TestHashZeroLength(t *testing.T) {
	if got := Hash("x", 0); got != "" {
		t.Errorf("Hash(k=0) = %q, want empty", got)
	}
}

// Property: Rank is monotone with lexicographic order.
func TestRankMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(aSeed, bSeed uint32) bool {
		const k = 12
		a, erra := FromRank(uint64(aSeed)%SpaceSize(k), k)
		b, errb := FromRank(uint64(bSeed)%SpaceSize(k), k)
		if erra != nil || errb != nil {
			return false
		}
		return (a < b) == (Rank(a) < Rank(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Succ increases rank by exactly one.
func TestSuccRankQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed uint32) bool {
		const k = 10
		s, err := FromRank(uint64(seed)%(SpaceSize(k)-1), k)
		if err != nil {
			return false
		}
		next, ok := Succ(s)
		return ok && Valid(next) && Rank(next) == Rank(s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: operations preserve validity.
func TestOpsPreserveValidityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed uint32, dropN uint8, extendTo uint8) bool {
		k := 4 + int(seed%12)
		s := Random(rng, k)
		if !Valid(s) {
			return false
		}
		d := s.Drop(int(dropN) % (k + 1))
		if !Valid(d) {
			return false
		}
		target := len(d) + int(extendTo%5)
		return Valid(MinExtend(d, target)) && Valid(MaxExtend(d, target))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRandomDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k = 3
	counts := make(map[Str]int)
	const n = 12000
	for i := 0; i < n; i++ {
		counts[Random(rng, k)]++
	}
	if len(counts) != int(SpaceSize(k)) {
		t.Fatalf("Random covered %d/%d strings", len(counts), SpaceSize(k))
	}
	for s, c := range counts {
		if c < n/12/2 || c > n/12*2 {
			t.Errorf("Random(%q) count %d far from %d", s, c, n/12)
		}
	}
}

func TestSortOrderMatchesRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 9
	strs := make([]Str, 200)
	for i := range strs {
		strs[i] = Random(rng, k)
	}
	byString := append([]Str(nil), strs...)
	sort.Slice(byString, func(i, j int) bool { return byString[i] < byString[j] })
	byRank := append([]Str(nil), strs...)
	sort.Slice(byRank, func(i, j int) bool { return Rank(byRank[i]) < Rank(byRank[j]) })
	for i := range byString {
		if byString[i] != byRank[i] {
			t.Fatalf("order mismatch at %d: %q vs %q", i, byString[i], byRank[i])
		}
	}
}
