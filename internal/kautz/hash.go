package kautz

import (
	"crypto/sha256"
	"encoding/binary"
)

// Hash implements Kautz_hash, FISSIONE's naming algorithm: it maps an
// arbitrary object name to a near-uniform Kautz string of length k. The
// first symbol consumes two bits of a SHA-256-derived stream (rejecting the
// out-of-range value 3); each later symbol consumes one bit selecting
// between the two symbols allowed after its predecessor. The construction is
// deterministic and extends the bit stream in counter mode when exhausted.
func Hash(name string, k int) Str {
	if k <= 0 {
		return ""
	}
	bits := newBitStream(name)
	b := make([]byte, 0, k)
	for {
		v := bits.take(2)
		if v < 3 {
			b = append(b, byte('0'+v))
			break
		}
	}
	for len(b) < k {
		bit := bits.take(1)
		b = append(b, nextSymbols(b[len(b)-1])[bit])
	}
	return Str(b)
}

// bitStream yields bits from SHA-256(name || counter) blocks.
type bitStream struct {
	name    string
	counter uint64
	buf     []byte
	bitPos  int
}

func newBitStream(name string) *bitStream {
	s := &bitStream{name: name}
	s.refill()
	return s
}

func (s *bitStream) refill() {
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], s.counter)
	s.counter++
	h := sha256.New()
	h.Write([]byte(s.name))
	h.Write(ctr[:])
	s.buf = h.Sum(s.buf[:0])
	s.bitPos = 0
}

// take returns the next n bits (n ≤ 8) as an integer.
func (s *bitStream) take(n int) int {
	v := 0
	for i := 0; i < n; i++ {
		if s.bitPos >= len(s.buf)*8 {
			s.refill()
		}
		byteIdx, bitIdx := s.bitPos/8, uint(7-s.bitPos%8)
		v = v<<1 | int(s.buf[byteIdx]>>bitIdx&1)
		s.bitPos++
	}
	return v
}
