package loadctl

import (
	"errors"
	"testing"
	"time"
)

// fakeActuator scripts the samples the controller sees and records the
// actions it takes. Tick calls back synchronously, so no locking is needed
// in single-goroutine tests.
type fakeActuator struct {
	samples    []Sample
	splits     []string
	migrations [][2]string
	extra      int
	err        error
}

func (f *fakeActuator) Sample() []Sample { return f.samples }

func (f *fakeActuator) Split(id string) (int, error) {
	f.splits = append(f.splits, id)
	return f.extra, f.err
}

func (f *fakeActuator) Migrate(donor, hot string) (int, error) {
	f.migrations = append(f.migrations, [2]string{donor, hot})
	return f.extra, f.err
}

// instant is a config whose EWMA tracks the instantaneous rate almost
// exactly (nanosecond half-life), so tests reason about deliveries/sec
// directly instead of convergence curves.
func instant(threshold float64) Config {
	return Config{
		HalfLife:       time.Nanosecond,
		SplitThreshold: threshold,
		Cooldown:       time.Millisecond,
		MaxGrowth:      64,
	}
}

// tick advances the controller by one 100ms step with the given cumulative
// counters, returning the new clock.
func tick(c *Controller, act *fakeActuator, at time.Time, counts map[string]int64) time.Time {
	for i, s := range act.samples {
		if v, ok := counts[s.ID]; ok {
			act.samples[i].Deliveries = v
		}
	}
	c.Tick(at)
	return at.Add(100 * time.Millisecond)
}

func TestEWMAConvergesToSustainedRate(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "a", Width: 10}}}
	// Default half-life (500ms): convergence takes several ticks.
	c := New(Config{SplitThreshold: 1e12}, act)
	at := time.Unix(0, 0)
	var total int64
	for i := 0; i < 60; i++ { // 6s at 100 deliveries per 100ms = 1000/s
		total += 100
		at = tick(c, act, at, map[string]int64{"a": total})
	}
	rep := c.Report()
	if rep.Tracked != 1 || len(rep.Hottest) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	got := rep.Hottest[0].Rate
	if got < 990 || got > 1010 {
		t.Fatalf("EWMA rate = %.1f after 12 half-lives of a sustained 1000/s, want ~1000", got)
	}
}

func TestSplitFiresOnHotRegion(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "hot", Width: 10}, {ID: "cold", Width: 10}}}
	c := New(instant(500), act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil) // first observation: counters initialize, no rate
	if len(act.splits) != 0 {
		t.Fatalf("split on the very first observation: %v", act.splits)
	}
	tick(c, act, at, map[string]int64{"hot": 100, "cold": 1}) // 1000/s vs 10/s
	if len(act.splits) != 1 || act.splits[0] != "hot" {
		t.Fatalf("splits = %v, want [hot]", act.splits)
	}
	rep := c.Report()
	if rep.Counters.AutoSplits != 1 || rep.Counters.Migrations != 0 {
		t.Fatalf("counters = %+v", rep.Counters)
	}
	if rep.Hottest[0].ID != "hot" {
		t.Fatalf("hottest = %+v, want hot first", rep.Hottest)
	}
}

func TestBelowThresholdNoAction(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "a", Width: 10}}}
	c := New(instant(2000), act)
	at := time.Unix(0, 0)
	var total int64
	for i := 0; i < 10; i++ {
		total += 100 // 1000/s, threshold 2000
		at = tick(c, act, at, map[string]int64{"a": total})
	}
	if len(act.splits)+len(act.migrations) != 0 {
		t.Fatalf("actions below threshold: splits=%v migrations=%v", act.splits, act.migrations)
	}
}

func TestCooldownSeparatesActions(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "a", Width: 10}}}
	cfg := instant(500)
	cfg.Cooldown = time.Second
	c := New(cfg, act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil)
	var total int64
	for i := 0; i < 5; i++ { // 500ms of sustained heat, all inside the cooldown
		total += 100
		at = tick(c, act, at, map[string]int64{"a": total})
	}
	if len(act.splits) != 1 {
		t.Fatalf("%d splits within one cooldown window, want exactly 1", len(act.splits))
	}
	at = at.Add(time.Second) // past the cooldown
	total += 1000
	tick(c, act, at, map[string]int64{"a": total})
	if len(act.splits) != 2 {
		t.Fatalf("no second split after the cooldown elapsed: %v", act.splits)
	}
}

func TestMigrationAtGrowthCap(t *testing.T) {
	act := &fakeActuator{samples: []Sample{
		{ID: "hot", Width: 10},
		{ID: "cold", Width: 10},
		{ID: "mid", Width: 10},
	}}
	cfg := instant(500)
	cfg.MaxGrowth = 1
	cfg.Migrate = true
	c := New(cfg, act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil)
	counts := map[string]int64{"hot": 100, "cold": 0, "mid": 30}
	at = tick(c, act, at, counts) // grown 0 < 1: split
	if len(act.splits) != 1 {
		t.Fatalf("splits = %v, want the pre-cap split", act.splits)
	}
	at = at.Add(10 * time.Millisecond) // past the 1ms cooldown
	counts["hot"] += 200
	counts["mid"] += 60
	tick(c, act, at, counts) // at cap: migrate cold → hot
	if len(act.migrations) != 1 {
		t.Fatalf("migrations = %v, want one at the growth cap", act.migrations)
	}
	if m := act.migrations[0]; m != [2]string{"cold", "hot"} {
		t.Fatalf("migration = %v, want cold donor and hot target", m)
	}
	rep := c.Report()
	if rep.Counters.AutoSplits != 1 || rep.Counters.Migrations != 1 {
		t.Fatalf("counters = %+v", rep.Counters)
	}
}

func TestMigrationNeedsColdDonor(t *testing.T) {
	// Both regions run warm: nobody qualifies as a donor (ColdFraction of
	// the mean), so at the cap the controller must hold still.
	act := &fakeActuator{samples: []Sample{{ID: "hot", Width: 10}, {ID: "warm", Width: 10}}}
	cfg := instant(500)
	cfg.MaxGrowth = 1
	cfg.Migrate = true
	c := New(cfg, act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil)
	counts := map[string]int64{"hot": 100, "warm": 80}
	at = tick(c, act, at, counts) // the one pre-cap split
	for i := 0; i < 5; i++ {
		at = at.Add(10 * time.Millisecond)
		counts["hot"] += 100
		counts["warm"] += 80
		at = tick(c, act, at, counts)
	}
	if len(act.migrations) != 0 {
		t.Fatalf("migrated with no cold donor: %v", act.migrations)
	}
}

func TestWidthGuardBlocksNarrowRegions(t *testing.T) {
	// Width 4 with the default MinRegionWidth 4: splitting would leave 3
	// free symbols, below the floor, so the region is untouchable however
	// hot it runs.
	act := &fakeActuator{samples: []Sample{{ID: "narrow", Width: 4}}}
	c := New(instant(500), act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil)
	var total int64
	for i := 0; i < 5; i++ {
		total += 1000
		at = tick(c, act, at, map[string]int64{"narrow": total})
	}
	if len(act.splits) != 0 {
		t.Fatalf("split a region at the width floor: %v", act.splits)
	}
}

func TestRenameInitializesWithoutSpike(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "a", Width: 10}}}
	c := New(instant(500), act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil)
	at = tick(c, act, at, map[string]int64{"a": 1})
	// "a" splits and survives as "a0": the cumulative counter rides along.
	// Treating it as one tick's delta would read as 500000/s and trigger
	// an immediate re-split.
	act.samples = []Sample{{ID: "a0", Width: 9}, {ID: "a1", Width: 9}}
	at = tick(c, act, at, map[string]int64{"a0": 50000, "a1": 0})
	if len(act.splits) != 0 {
		t.Fatalf("rename spike triggered a split: %v", act.splits)
	}
	rep := c.Report()
	if rep.Tracked != 2 {
		t.Fatalf("tracked = %d after rename, want 2 (old identifier pruned)", rep.Tracked)
	}
	for _, r := range rep.Hottest {
		if r.ID == "a" {
			t.Fatalf("vanished identifier still tracked: %+v", rep.Hottest)
		}
		if r.Rate != 0 {
			t.Fatalf("fresh identifier %q starts with rate %.0f, want 0", r.ID, r.Rate)
		}
	}
}

func TestFailedActionCountsAndCoolsDown(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "a", Width: 10}}, err: errors.New("no")}
	cfg := instant(500)
	cfg.Cooldown = time.Second
	c := New(cfg, act)
	at := time.Unix(0, 0)
	at = tick(c, act, at, nil)
	var total int64
	for i := 0; i < 5; i++ { // sustained heat inside one cooldown window
		total += 100
		at = tick(c, act, at, map[string]int64{"a": total})
	}
	if len(act.splits) != 1 {
		t.Fatalf("failed action retried within its cooldown: %d attempts", len(act.splits))
	}
	rep := c.Report()
	if rep.Counters.FailedActions != 1 || rep.Counters.AutoSplits != 0 {
		t.Fatalf("counters = %+v, want the failure counted and no split", rep.Counters)
	}
}

func TestStopWithoutStartReturns(t *testing.T) {
	c := New(Config{}, &fakeActuator{})
	done := make(chan struct{})
	go func() { c.Stop(); c.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hangs on a never-started controller")
	}
}

func TestStartStop(t *testing.T) {
	act := &fakeActuator{samples: []Sample{{ID: "a", Width: 10}}}
	cfg := Config{SampleInterval: time.Millisecond, SplitThreshold: 1e12}
	c := New(cfg, act)
	c.Start()
	c.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	c.Stop()
	c.Stop() // idempotent
	if rep := c.Report(); rep.Tracked != 1 {
		t.Fatalf("loop never sampled: %+v", rep)
	}
}
