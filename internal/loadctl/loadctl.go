// Package loadctl is Armada's adaptive load controller: a per-region load
// accountant plus the policy that decides when a hot region is split and
// when ownership migrates from an underloaded peer toward a hot one.
//
// The accountant keeps an exponentially weighted moving average (EWMA) of
// each region's delivery rate, fed by periodic samples of the per-peer
// cumulative delivery counters. The controller then applies a simple,
// deterministic policy per tick:
//
//   - A region whose sustained rate crosses SplitThreshold is split in two
//     (adding one peer at the hotspot), as long as the network has not yet
//     grown by MaxGrowth peers and the region is wide enough to split.
//   - At the growth cap, relief comes from migration instead (when
//     enabled): the coldest sufficiently idle peer leaves, and the hot
//     region is split — ownership capacity moves from the cold spot to the
//     hot one at constant network size.
//   - Actions are separated by at least Cooldown, so one hot window never
//     triggers a burst of topology churn.
//
// The package is policy only: it knows nothing about Kautz strings or
// topology locks. The embedding layer supplies an Actuator that samples
// the peers and performs splits and migrations under its own exclusion
// scheme, and decides the controller's sampling cadence (Start/Stop run
// the built-in ticker loop; tests drive Tick directly with synthetic
// clocks). This is the D3-Tree idea — deterministic load balancing over a
// decentralized tree — transplanted onto FISSIONE's region trie.
package loadctl

import (
	"math"
	"sort"
	"sync"
	"time"

	"armada/internal/obs"
)

// Sample is one peer's load observation: the region identifier, the number
// of free ObjectID symbols below it (how many more times it can split),
// and the cumulative delivery counter.
type Sample struct {
	ID         string
	Width      int
	Deliveries int64
}

// Actuator is the embedding layer's handle the controller acts through.
// Sample must be consistent (taken under a read lock); Split and Migrate
// perform the topology change under write exclusion and report how many
// peers beyond the nominal one the action created (invariant-restoring
// cascade splits).
type Actuator interface {
	Sample() []Sample
	Split(id string) (extra int, err error)
	Migrate(donor, hot string) (extra int, err error)
}

// Config tunes the controller. Zero values take the defaults noted on each
// field.
type Config struct {
	// SampleInterval is the tick period of the Start loop (default 100ms).
	SampleInterval time.Duration
	// HalfLife is the EWMA half-life: how long a rate change takes to show
	// half its magnitude (default 500ms). Longer half-lives demand more
	// sustained heat before any action.
	HalfLife time.Duration
	// SplitThreshold is the sustained per-region delivery rate
	// (deliveries/second, EWMA) that triggers relief (default 1000).
	SplitThreshold float64
	// Cooldown is the minimum time between two control actions (default
	// 300ms).
	Cooldown time.Duration
	// MinRegionWidth is the minimum number of free ObjectID symbols a
	// region must retain after splitting (default 4): regions narrower
	// than that are left alone however hot they run.
	MinRegionWidth int
	// MaxGrowth caps how many peers auto-splits may add in total; at the
	// cap the controller migrates instead of growing (default 64).
	MaxGrowth int
	// Migrate enables ownership migration at the growth cap.
	Migrate bool
	// ColdFraction qualifies migration donors: a peer may be asked to
	// leave only when its rate is at most this fraction of the mean
	// (default 0.25).
	ColdFraction float64
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = 100 * time.Millisecond
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 500 * time.Millisecond
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 1000
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 300 * time.Millisecond
	}
	if c.MinRegionWidth <= 0 {
		c.MinRegionWidth = 4
	}
	if c.MaxGrowth <= 0 {
		c.MaxGrowth = 64
	}
	if c.ColdFraction <= 0 {
		c.ColdFraction = 0.25
	}
	return c
}

// Counters are the controller's lifetime action counts.
type Counters struct {
	// AutoSplits counts hot regions split; Migrations counts
	// leave-then-split ownership moves. CascadeSplits totals the extra
	// invariant-restoring splits those actions needed, and FailedActions
	// the attempts the actuator rejected.
	AutoSplits    int64
	Migrations    int64
	CascadeSplits int64
	FailedActions int64
}

// RegionRate is one region's EWMA delivery rate in a Report.
type RegionRate struct {
	ID   string
	Rate float64 // deliveries/second
}

// Report is a point-in-time snapshot of the controller's state.
type Report struct {
	Counters Counters
	// Hottest lists the highest-rate regions, hottest first, capped at
	// ReportTopN; Tracked is the total number of regions accounted.
	Hottest []RegionRate
	Tracked int
}

// ReportTopN caps Report.Hottest.
const ReportTopN = 16

// regionRate is one region's accounting state.
type regionRate struct {
	last  int64   // cumulative deliveries at the previous tick
	rate  float64 // EWMA deliveries/second
	width int     // free ObjectID symbols, from the latest sample
}

// Controller runs the accounting and policy. Create with New, then either
// Start/Stop the built-in loop or call Tick directly.
type Controller struct {
	cfg Config
	act Actuator

	mu         sync.Mutex
	rates      map[string]*regionRate
	lastTick   time.Time
	lastAction time.Time
	grown      int // net peers added by controller actions

	// Action counters live as registry instruments (see DescribeMetrics);
	// Report assembles the public Counters struct from them.
	autoSplits    obs.Counter
	migrations    obs.Counter
	cascadeSplits obs.Counter
	failedActions obs.Counter

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a controller over the actuator; cfg zero values take their
// documented defaults. The controller is idle until Start (or Tick).
func New(cfg Config, act Actuator) *Controller {
	return &Controller{
		cfg:   cfg.withDefaults(),
		act:   act,
		rates: make(map[string]*regionRate),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the background tick loop. It is idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() { go c.run() })
}

// Stop terminates the tick loop and waits for it to exit. It is idempotent
// and safe to call on a controller that was never started.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to wait out
	<-c.done
}

func (c *Controller) run() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.Tick(now)
		}
	}
}

// Tick performs one controller step at the given time: sample every peer,
// fold the deltas into the EWMA rates, and apply at most one control
// action. The Start loop calls it on each tick; tests call it directly
// with a synthetic clock.
func (c *Controller) Tick(now time.Time) {
	samples := c.act.Sample()

	c.mu.Lock()
	dt := 0.0
	if !c.lastTick.IsZero() {
		dt = now.Sub(c.lastTick).Seconds()
	}
	c.lastTick = now
	alpha := 1.0
	if dt > 0 {
		alpha = 1 - math.Exp(-dt*math.Ln2/c.cfg.HalfLife.Seconds())
	}
	seen := make(map[string]struct{}, len(samples))
	for _, s := range samples {
		seen[s.ID] = struct{}{}
		r, ok := c.rates[s.ID]
		if !ok {
			// First observation of this identifier. A split renames the
			// surviving peer (its cumulative counter rides along), so
			// initializing without a rate — rather than treating the whole
			// counter as one tick's delta — both avoids a bogus spike and
			// gives freshly split regions a clean measurement window.
			c.rates[s.ID] = &regionRate{last: s.Deliveries, width: s.Width}
			continue
		}
		if dt > 0 {
			inst := float64(s.Deliveries-r.last) / dt
			r.rate += alpha * (inst - r.rate)
		}
		r.last = s.Deliveries
		r.width = s.Width
	}
	for id := range c.rates {
		if _, ok := seen[id]; !ok {
			delete(c.rates, id) // renamed or departed
		}
	}

	action, hot, donor := c.decide(now)
	c.mu.Unlock()

	switch action {
	case actNone:
		return
	case actSplit:
		extra, err := c.act.Split(hot)
		c.noteAction(now, err, func() {
			c.autoSplits.Inc()
			c.cascadeSplits.Add(int64(extra))
			c.grown += 1 + extra
		})
	case actMigrate:
		extra, err := c.act.Migrate(donor, hot)
		c.noteAction(now, err, func() {
			c.migrations.Inc()
			c.cascadeSplits.Add(int64(extra))
			c.grown += extra // one peer left, one was created
		})
	}
}

type action int

const (
	actNone action = iota
	actSplit
	actMigrate
)

// decide picks at most one action from the current rates. The caller holds
// c.mu.
func (c *Controller) decide(now time.Time) (act action, hot, donor string) {
	if !c.lastAction.IsZero() && now.Sub(c.lastAction) < c.cfg.Cooldown {
		return actNone, "", ""
	}
	var (
		hotID, coldID     string
		hotRate, coldRate float64
		total             float64
	)
	for id, r := range c.rates {
		total += r.rate
		// Splitting shaves one symbol off the region's width; leave it
		// alone when that would cut below the floor.
		splittable := r.width-1 >= c.cfg.MinRegionWidth
		if splittable && (hotID == "" || r.rate > hotRate || (r.rate == hotRate && id < hotID)) {
			hotID, hotRate = id, r.rate
		}
		if coldID == "" || r.rate < coldRate || (r.rate == coldRate && id < coldID) {
			coldID, coldRate = id, r.rate
		}
	}
	if hotID == "" || hotRate < c.cfg.SplitThreshold {
		return actNone, "", ""
	}
	if c.grown < c.cfg.MaxGrowth {
		return actSplit, hotID, ""
	}
	if !c.cfg.Migrate {
		return actNone, "", ""
	}
	mean := total / float64(len(c.rates))
	if coldID == "" || coldID == hotID || coldRate > c.cfg.ColdFraction*mean {
		return actNone, "", ""
	}
	return actMigrate, hotID, coldID
}

// noteAction records one attempted action's outcome.
func (c *Controller) noteAction(now time.Time, err error, onSuccess func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Failed attempts advance the cooldown too: a persistently impossible
	// action (identifier-length ceiling, network at minimum size) must not
	// be retried every tick.
	c.lastAction = now
	if err != nil {
		c.failedActions.Inc()
		return
	}
	onSuccess()
}

// DescribeMetrics registers the controller's action counters on reg.
func (c *Controller) DescribeMetrics(reg *obs.Registry) {
	reg.MustRegister("loadctl_auto_splits_total", &c.autoSplits)
	reg.MustRegister("loadctl_migrations_total", &c.migrations)
	reg.MustRegister("loadctl_cascade_splits_total", &c.cascadeSplits)
	reg.MustRegister("loadctl_failed_actions_total", &c.failedActions)
}

// Report snapshots the controller's counters and hottest regions.
func (c *Controller) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{Counters: Counters{
		AutoSplits:    c.autoSplits.Value(),
		Migrations:    c.migrations.Value(),
		CascadeSplits: c.cascadeSplits.Value(),
		FailedActions: c.failedActions.Value(),
	}, Tracked: len(c.rates)}
	rep.Hottest = make([]RegionRate, 0, len(c.rates))
	for id, r := range c.rates {
		rep.Hottest = append(rep.Hottest, RegionRate{ID: id, Rate: r.rate})
	}
	sort.Slice(rep.Hottest, func(i, j int) bool {
		if rep.Hottest[i].Rate != rep.Hottest[j].Rate {
			return rep.Hottest[i].Rate > rep.Hottest[j].Rate
		}
		return rep.Hottest[i].ID < rep.Hottest[j].ID
	})
	if len(rep.Hottest) > ReportTopN {
		rep.Hottest = rep.Hottest[:ReportTopN]
	}
	return rep
}

// Rates returns every tracked region's EWMA delivery rate, hottest first —
// the uncapped feed behind live region-heat introspection (Report caps its
// Hottest list for JSON reports).
func (c *Controller) Rates() []RegionRate {
	c.mu.Lock()
	out := make([]RegionRate, 0, len(c.rates))
	for id, r := range c.rates {
		out = append(out, RegionRate{ID: id, Rate: r.rate})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].ID < out[j].ID
	})
	return out
}
