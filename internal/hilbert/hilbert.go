// Package hilbert implements the 2-d Hilbert space-filling curve used by
// the DCF-CAN baseline (Andrzejak & Xu, P2P 2002) to map a one-dimensional
// attribute space onto CAN's two-dimensional coordinate space while
// preserving locality: consecutive curve indices are 4-adjacent cells, so a
// contiguous index interval maps to a connected set of CAN zones.
//
// The curve has a fixed order: it visits the 2^order × 2^order grid of
// cells over the unit square [0,1)². Index ↔ cell conversions use the
// classic bit-interleaving construction; interval ↔ rectangle intersection
// is decided by quadtree recursion rather than cell enumeration.
package hilbert

import "fmt"

// Curve is a Hilbert curve of a fixed order over the unit square.
type Curve struct {
	order uint
	side  uint32 // 2^order cells per side
}

// MaxOrder keeps indices within uint64 (2 bits per level).
const MaxOrder = 31

// New creates a curve of the given order (order ≥ 1).
func New(order uint) (*Curve, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("hilbert: order %d out of range [1, %d]", order, MaxOrder)
	}
	return &Curve{order: order, side: 1 << order}, nil
}

// Order returns the curve's order.
func (c *Curve) Order() uint { return c.order }

// Cells returns the total number of cells, side².
func (c *Curve) Cells() uint64 { return uint64(c.side) * uint64(c.side) }

// IndexToCell maps a curve index to its cell coordinates.
func (c *Curve) IndexToCell(d uint64) (x, y uint32) {
	var rx, ry uint32
	t := d
	for s := uint32(1); s < c.side; s <<= 1 {
		rx = uint32(t/2) & 1
		ry = uint32(t^uint64(rx)) & 1
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// CellToIndex maps cell coordinates to the curve index visiting them.
func (c *Curve) CellToIndex(x, y uint32) uint64 {
	var d uint64
	for s := c.side / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// rot rotates/flips a quadrant appropriately.
func rot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// ValueToPoint maps t ∈ [0,1] to the unit-square point at the center of the
// cell visited at curve position t (t = 1 clamps to the last cell).
func (c *Curve) ValueToPoint(t float64) (px, py float64) {
	x, y := c.IndexToCell(c.ValueToIndex(t))
	side := float64(c.side)
	return (float64(x) + 0.5) / side, (float64(y) + 0.5) / side
}

// ValueToIndex maps t ∈ [0,1] to a curve index.
func (c *Curve) ValueToIndex(t float64) uint64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return c.Cells() - 1
	}
	return uint64(t * float64(c.Cells()))
}

// Rect is an axis-aligned half-open rectangle [X0,X1)×[Y0,Y1) in the unit
// square.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// ContainsPoint reports whether (x,y) lies in the rectangle.
func (r Rect) ContainsPoint(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// IntersectsSegment reports whether any curve index in [lo, hi] falls in a
// cell whose center lies inside rect. It recurses over the curve's
// quadtree: each quadrant of the square covers one contiguous quarter of
// the index range, so subtrees disjoint from either the index interval or
// the rectangle are pruned.
func (c *Curve) IntersectsSegment(lo, hi uint64, rect Rect) bool {
	if lo > hi {
		return false
	}
	return c.intersect(0, c.Cells()-1, 0, 0, c.side, lo, hi, rect)
}

// intersect recurses over the quadtree node covering cells
// [cx, cx+size) × [cy, cy+size) and curve indices [first, last].
func (c *Curve) intersect(first, last uint64, cx, cy, size uint32, lo, hi uint64, rect Rect) bool {
	if last < lo || first > hi {
		return false
	}
	side := float64(c.side)
	nx0, ny0 := float64(cx)/side, float64(cy)/side
	nx1, ny1 := float64(cx+size)/side, float64(cy+size)/side
	if nx1 <= rect.X0 || nx0 >= rect.X1 || ny1 <= rect.Y0 || ny0 >= rect.Y1 {
		return false
	}
	if size == 1 {
		// Leaf cell: decide by its center, matching ValueToPoint.
		return rect.ContainsPoint(nx0+0.5/side, ny0+0.5/side)
	}
	if first >= lo && last <= hi && cellRangeInside(nx0, ny0, nx1, ny1, rect) {
		// Node fully inside both the index interval and the rectangle.
		return true
	}
	half := size / 2
	quarter := (last - first + 1) / 4
	for q := uint64(0); q < 4; q++ {
		qFirst := first + q*quarter
		qLast := qFirst + quarter - 1
		// Identify which spatial quadrant holds this index quarter: probe
		// the quarter's first cell.
		px, py := c.IndexToCell(qFirst)
		qx := cx
		if px >= cx+half {
			qx = cx + half
		}
		qy := cy
		if py >= cy+half {
			qy = cy + half
		}
		if c.intersect(qFirst, qLast, qx, qy, half, lo, hi, rect) {
			return true
		}
	}
	return false
}

// cellRangeInside reports whether the node square is entirely inside rect.
func cellRangeInside(x0, y0, x1, y1 float64, rect Rect) bool {
	return x0 >= rect.X0 && x1 <= rect.X1 && y0 >= rect.Y0 && y1 <= rect.Y1
}
