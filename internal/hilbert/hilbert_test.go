package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCurve(t *testing.T, order uint) *Curve {
	t.Helper()
	c, err := New(order)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := New(MaxOrder + 1); err == nil {
		t.Error("excessive order accepted")
	}
	c := mustCurve(t, 4)
	if c.Cells() != 256 || c.Order() != 4 {
		t.Errorf("cells=%d order=%d", c.Cells(), c.Order())
	}
}

func TestIndexCellRoundTripExhaustive(t *testing.T) {
	c := mustCurve(t, 5)
	seen := make(map[[2]uint32]bool, c.Cells())
	for d := uint64(0); d < c.Cells(); d++ {
		x, y := c.IndexToCell(d)
		if x >= 32 || y >= 32 {
			t.Fatalf("index %d maps outside grid: (%d,%d)", d, x, y)
		}
		if seen[[2]uint32{x, y}] {
			t.Fatalf("cell (%d,%d) visited twice", x, y)
		}
		seen[[2]uint32{x, y}] = true
		if back := c.CellToIndex(x, y); back != d {
			t.Fatalf("CellToIndex(IndexToCell(%d)) = %d", d, back)
		}
	}
	if uint64(len(seen)) != c.Cells() {
		t.Fatalf("curve visited %d cells, want %d", len(seen), c.Cells())
	}
}

// The defining property: consecutive indices are 4-adjacent cells.
func TestCurveContinuity(t *testing.T) {
	c := mustCurve(t, 6)
	px, py := c.IndexToCell(0)
	for d := uint64(1); d < c.Cells(); d++ {
		x, y := c.IndexToCell(d)
		dx, dy := absDiff(x, px), absDiff(y, py)
		if dx+dy != 1 {
			t.Fatalf("indices %d and %d are not adjacent: (%d,%d) -> (%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestValueToIndexBounds(t *testing.T) {
	c := mustCurve(t, 8)
	if c.ValueToIndex(-0.5) != 0 {
		t.Error("negative value should clamp to 0")
	}
	if c.ValueToIndex(0) != 0 {
		t.Error("0 should map to 0")
	}
	if got := c.ValueToIndex(1); got != c.Cells()-1 {
		t.Errorf("1 maps to %d, want last cell %d", got, c.Cells()-1)
	}
	if got := c.ValueToIndex(2); got != c.Cells()-1 {
		t.Error("overflow value should clamp to last cell")
	}
}

// ValueToIndex is monotone.
func TestValueToIndexMonotoneQuick(t *testing.T) {
	c := mustCurve(t, 10)
	f := func(a, b float64) bool {
		a, b = clamp01(a), clamp01(b)
		if a > b {
			a, b = b, a
		}
		return c.ValueToIndex(a) <= c.ValueToIndex(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	for v > 1 {
		v /= 2
	}
	return v
}

func TestValueToPointInUnitSquare(t *testing.T) {
	c := mustCurve(t, 9)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x, y := c.ValueToPoint(rng.Float64())
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			t.Fatalf("point (%v,%v) outside unit square", x, y)
		}
	}
}

// IntersectsSegment agrees with brute-force cell enumeration.
func TestIntersectsSegmentBruteForce(t *testing.T) {
	c := mustCurve(t, 5) // 1024 cells: enumerable
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		lo := uint64(rng.Int63n(int64(c.Cells())))
		hi := lo + uint64(rng.Int63n(int64(c.Cells()-lo)))
		r := randRect(rng)
		want := false
		for d := lo; d <= hi; d++ {
			x, y := c.IndexToCell(d)
			side := float64(c.side)
			if r.ContainsPoint((float64(x)+0.5)/side, (float64(y)+0.5)/side) {
				want = true
				break
			}
		}
		if got := c.IntersectsSegment(lo, hi, r); got != want {
			t.Fatalf("IntersectsSegment([%d,%d], %+v) = %v, want %v", lo, hi, r, got, want)
		}
	}
}

func TestIntersectsSegmentEmpty(t *testing.T) {
	c := mustCurve(t, 5)
	if c.IntersectsSegment(10, 5, Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}) {
		t.Error("inverted interval should not intersect")
	}
	if c.IntersectsSegment(0, c.Cells()-1, Rect{X0: 0.5, Y0: 0.5, X1: 0.5, Y1: 0.5}) {
		t.Error("empty rectangle should not intersect")
	}
}

func TestIntersectsSegmentFullCoverage(t *testing.T) {
	c := mustCurve(t, 6)
	full := Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}
	if !c.IntersectsSegment(0, 0, full) {
		t.Error("single index against full square should intersect")
	}
	if !c.IntersectsSegment(0, c.Cells()-1, Rect{X0: 0.49, Y0: 0.49, X1: 0.51, Y1: 0.51}) {
		t.Error("full curve should hit a central sliver")
	}
}

func randRect(rng *rand.Rand) Rect {
	x0, y0 := rng.Float64(), rng.Float64()
	return Rect{
		X0: x0,
		Y0: y0,
		X1: x0 + rng.Float64()*(1-x0),
		Y1: y0 + rng.Float64()*(1-y0),
	}
}
