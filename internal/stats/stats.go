// Package stats provides the small numeric summaries used by the
// experiment harness.
package stats

import (
	"math"
	"sort"
)

// Sample accumulates observations of one metric.
type Sample struct {
	values []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddInt records one integer observation.
func (s *Sample) AddInt(v int) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.values {
		total += v
	}
	return total / float64(len(s.values))
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	if len(s.values) == 0 {
		return 0
	}
	mean := s.Mean()
	total := 0.0
	for _, v := range s.values {
		d := v - mean
		total += d * d
	}
	return math.Sqrt(total / float64(len(s.values)))
}
