// Package stats provides the small numeric summaries used by the
// experiment harness and the workload engine.
package stats

import (
	"math"
	"sort"
	"sync"
)

// Sample accumulates observations of one metric. It is not safe for
// concurrent use; wrap it in SafeSample when several goroutines record.
type Sample struct {
	values []float64
	// sorted caches the ascending order of values for Percentile; Add
	// invalidates it, so repeated quantile reads over a large sample sort
	// once instead of once per call.
	sorted []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = nil
}

// AddInt records one integer observation.
func (s *Sample) AddInt(v int) { s.Add(float64(v)) }

// Merge records every observation of other.
func (s *Sample) Merge(other *Sample) {
	if other == nil || len(other.values) == 0 {
		return
	}
	s.values = append(s.values, other.values...)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.values {
		total += v
	}
	return total / float64(len(s.values))
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// ensureSorted (re)builds the sorted cache when stale.
func (s *Sample) ensureSorted() []float64 {
	if s.sorted == nil && len(s.values) > 0 {
		s.sorted = append([]float64(nil), s.values...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := s.ensureSorted()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	if len(s.values) == 0 {
		return 0
	}
	mean := s.Mean()
	total := 0.0
	for _, v := range s.values {
		d := v - mean
		total += d * d
	}
	return math.Sqrt(total / float64(len(s.values)))
}

// SafeSample is a Sample safe for concurrent recording — the collection
// type behind workload metric gathering, where many workers observe one
// metric at once.
type SafeSample struct {
	mu sync.Mutex
	s  Sample
}

// Add records one observation.
func (c *SafeSample) Add(v float64) {
	c.mu.Lock()
	c.s.Add(v)
	c.mu.Unlock()
}

// AddInt records one integer observation.
func (c *SafeSample) AddInt(v int) { c.Add(float64(v)) }

// N returns the number of observations recorded so far.
func (c *SafeSample) N() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.N()
}

// Snapshot returns an independent copy of the accumulated sample for
// lock-free summarizing.
func (c *SafeSample) Snapshot() *Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Sample{values: append([]float64(nil), c.s.values...)}
}

// Drain returns the accumulated sample and resets the accumulator, so a
// periodic reader (the workload runner's interval snapshots) gets
// interval-local observations instead of run-cumulative ones.
func (c *SafeSample) Drain() *Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Sample{values: c.s.values}
	c.s = Sample{}
	return out
}
