package stats

import (
	"math"
	"sync"
	"testing"
)

func sampleOf(vs ...float64) *Sample {
	var s Sample
	for _, v := range vs {
		s.Add(v)
	}
	return &s
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(50) != 0 || s.StdDev() != 0 {
		t.Error("empty sample should report zeros")
	}
	if s.N() != 0 {
		t.Error("empty sample N != 0")
	}
}

func TestMeanMinMax(t *testing.T) {
	s := sampleOf(4, 2, 10, 8)
	if s.Mean() != 6 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 10 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.N() != 4 {
		t.Errorf("n = %d", s.N())
	}
}

func TestAddInt(t *testing.T) {
	var s Sample
	s.AddInt(3)
	s.AddInt(5)
	if s.Mean() != 4 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestPercentile(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileCacheInvalidatedByAdd(t *testing.T) {
	s := sampleOf(5, 1, 3)
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	s.Add(9) // must invalidate the sorted cache
	if got := s.Percentile(100); got != 9 {
		t.Errorf("P100 after Add = %v, want 9", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 after Add = %v, want 1", got)
	}
	s.Merge(sampleOf(0.5))
	if got := s.Percentile(0); got != 0.5 {
		t.Errorf("P0 after Merge = %v, want 0.5", got)
	}
}

func TestMerge(t *testing.T) {
	s := sampleOf(1, 2)
	s.Merge(sampleOf(3, 4))
	s.Merge(nil)
	s.Merge(&Sample{})
	if s.N() != 4 || s.Mean() != 2.5 {
		t.Errorf("after merge: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestSafeSampleConcurrent(t *testing.T) {
	var c SafeSample
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(base int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				c.AddInt(base + i)
			}
		}(w * 100)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	snap := c.Snapshot()
	if snap.N() != 800 || c.N() != 800 {
		t.Fatalf("n = %d / %d, want 800", snap.N(), c.N())
	}
	if snap.Min() != 0 || snap.Max() != 799 {
		t.Errorf("min/max = %v/%v", snap.Min(), snap.Max())
	}
}

func TestStdDev(t *testing.T) {
	s := sampleOf(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

// TestSafeSampleDrainConservation: interleaving Drain (the runner's
// interval snapshots) with concurrent Add must neither lose nor duplicate
// observations — the drained intervals plus the final drain hold exactly
// the values added, each once. Run under -race this also proves a drained
// Sample's backing array is never shared with a later Add.
func TestSafeSampleDrainConservation(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	var c SafeSample
	writersDone := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.AddInt(base + i)
			}
		}(w * perW)
	}
	go func() { wg.Wait(); close(writersDone) }()

	// The drainer races the writers, reading each drained interval the way
	// the runner does — the returned Sample must stay safely readable
	// while Adds continue. A Snapshot reader rides along to catch any
	// aliasing between the copy and the live accumulator.
	seen := make(map[float64]int)
	drained := 0
	take := func(s *Sample) {
		drained += s.N()
		for _, v := range s.values {
			seen[v]++
		}
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-writersDone:
				return
			default:
				_ = c.Snapshot().N()
			}
		}
	}()
	for loop := true; loop; {
		select {
		case <-writersDone:
			loop = false
		default:
		}
		take(c.Drain())
	}
	<-snapDone
	take(c.Drain()) // anything added after the last in-loop drain

	if want := writers * perW; drained != want {
		t.Fatalf("drained %d observations, want %d", drained, want)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %v drained %d times, want once", v, n)
		}
	}
	if c.N() != 0 {
		t.Errorf("accumulator holds %d observations after the final drain", c.N())
	}
}
