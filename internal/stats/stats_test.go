package stats

import (
	"math"
	"testing"
)

func sampleOf(vs ...float64) *Sample {
	var s Sample
	for _, v := range vs {
		s.Add(v)
	}
	return &s
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(50) != 0 || s.StdDev() != 0 {
		t.Error("empty sample should report zeros")
	}
	if s.N() != 0 {
		t.Error("empty sample N != 0")
	}
}

func TestMeanMinMax(t *testing.T) {
	s := sampleOf(4, 2, 10, 8)
	if s.Mean() != 6 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 10 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.N() != 4 {
		t.Errorf("n = %d", s.N())
	}
}

func TestAddInt(t *testing.T) {
	var s Sample
	s.AddInt(3)
	s.AddInt(5)
	if s.Mean() != 4 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestPercentile(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	s := sampleOf(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
}
