package simnet

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
)

// chainHandler forwards along a fixed chain of peers p0 -> p1 -> ... -> pN.
func chainHandler(n int) Handler {
	return func(m Message) []Message {
		i := m.Payload.(int)
		if i >= n {
			return nil
		}
		return []Message{{To: "p" + strconv.Itoa(i+1), Payload: i + 1}}
	}
}

func chainPeers(n int) []string {
	ids := make([]string, n+1)
	for i := range ids {
		ids[i] = "p" + strconv.Itoa(i)
	}
	return ids
}

// mustSync runs RunSync with a background context and fails on error.
func mustSync(t *testing.T, seeds []Message, handle Handler) Metrics {
	t.Helper()
	m, err := RunSync(context.Background(), seeds, handle)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunSyncChain(t *testing.T) {
	m := mustSync(t, []Message{{To: "p0", Payload: 0}}, chainHandler(5))
	if m.Delay != 5 || m.Messages != 5 {
		t.Fatalf("chain metrics = %+v, want delay 5 messages 5", m)
	}
}

func TestRunSyncSeedOnly(t *testing.T) {
	m := mustSync(t, []Message{{To: "a", Payload: nil}}, func(Message) []Message { return nil })
	if m.Delay != 0 || m.Messages != 0 {
		t.Fatalf("seed-only metrics = %+v, want zeros", m)
	}
}

func TestRunSyncNilContext(t *testing.T) {
	m, err := RunSync(nil, []Message{{To: "p0", Payload: 0}}, chainHandler(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay != 3 {
		t.Fatalf("nil-ctx metrics = %+v", m)
	}
}

func TestRunSyncFanout(t *testing.T) {
	// One seed fans out to 3 peers, each of which fans out to 2 more.
	handle := func(m Message) []Message {
		switch m.Payload.(int) {
		case 0:
			return []Message{{To: "a", Payload: 1}, {To: "b", Payload: 1}, {To: "c", Payload: 1}}
		case 1:
			return []Message{{To: "x", Payload: 2}, {To: "y", Payload: 2}}
		default:
			return nil
		}
	}
	m := mustSync(t, []Message{{To: "root", Payload: 0}}, handle)
	if m.Delay != 2 || m.Messages != 9 {
		t.Fatalf("fanout metrics = %+v, want delay 2 messages 9", m)
	}
}

func TestRunSyncMultipleSeeds(t *testing.T) {
	m := mustSync(t, []Message{
		{To: "p0", Payload: 3}, // short chain: 2 hops
		{To: "p0", Payload: 0}, // full chain: 5 hops
	}, chainHandler(5))
	if m.Delay != 5 || m.Messages != 7 {
		t.Fatalf("multi-seed metrics = %+v, want delay 5 messages 7", m)
	}
}

func TestRunSyncDeterministicOrder(t *testing.T) {
	var trace []string
	handle := func(m Message) []Message {
		trace = append(trace, m.To)
		if m.To == "root" {
			return []Message{{To: "a"}, {To: "b"}}
		}
		if m.To == "a" {
			return []Message{{To: "c"}}
		}
		return nil
	}
	mustSync(t, []Message{{To: "root"}}, handle)
	want := []string{"root", "a", "b", "c"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v (BFS order)", trace, want)
		}
	}
}

func TestRunSyncCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	processed := 0
	handle := func(m Message) []Message {
		processed++
		if processed == 3 {
			cancel()
		}
		return chainHandler(50)(m)
	}
	m, err := RunSync(ctx, []Message{{To: "p0", Payload: 0}}, handle)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if processed != 3 {
		t.Fatalf("processed %d messages after cancel, want 3", processed)
	}
	if m.Messages >= 50 {
		t.Fatalf("cancelled run counted %d messages", m.Messages)
	}
}

func TestRunAsyncMatchesSyncChain(t *testing.T) {
	syncM := mustSync(t, []Message{{To: "p0", Payload: 0}}, chainHandler(20))
	asyncM, err := RunAsync(context.Background(), chainPeers(20), []Message{{To: "p0", Payload: 0}}, chainHandler(20))
	if err != nil {
		t.Fatal(err)
	}
	if syncM != asyncM {
		t.Fatalf("async %+v != sync %+v", asyncM, syncM)
	}
}

func TestRunAsyncFanoutCounts(t *testing.T) {
	// Binary fanout of depth 8 over a peer per (level, index) address.
	peers := []string{"seed"}
	for d := 1; d <= 8; d++ {
		for i := 0; i < 1<<d; i++ {
			peers = append(peers, addr(d, i))
		}
	}
	type pos struct{ d, i int }
	handle := func(m Message) []Message {
		p := m.Payload.(pos)
		if p.d == 8 {
			return nil
		}
		return []Message{
			{To: addr(p.d+1, p.i*2), Payload: pos{p.d + 1, p.i * 2}},
			{To: addr(p.d+1, p.i*2+1), Payload: pos{p.d + 1, p.i*2 + 1}},
		}
	}
	m, err := RunAsync(context.Background(), peers, []Message{{To: "seed", Payload: pos{0, 0}}}, handle)
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := 0
	for d := 1; d <= 8; d++ {
		wantMsgs += 1 << d
	}
	if m.Delay != 8 || m.Messages != wantMsgs {
		t.Fatalf("async fanout = %+v, want delay 8 messages %d", m, wantMsgs)
	}
}

func TestRunAsyncNoSeeds(t *testing.T) {
	m, err := RunAsync(context.Background(), []string{"a", "b"}, nil, func(Message) []Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay != 0 || m.Messages != 0 {
		t.Fatalf("empty async = %+v", m)
	}
}

func TestRunAsyncCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var (
		mu        sync.Mutex
		processed int
	)
	handle := func(m Message) []Message {
		mu.Lock()
		processed++
		if processed == 3 {
			cancel()
		}
		mu.Unlock()
		return chainHandler(500)(m)
	}
	_, err := RunAsync(ctx, chainPeers(500), []Message{{To: "p0", Payload: 0}}, handle)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if processed >= 500 {
		t.Fatalf("cancelled run still processed all %d messages", processed)
	}
}

// A cancellation that lands while the final message is already being
// processed must not turn a complete run into an error.
func TestRunAsyncCancelAtCompletion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handle := func(m Message) []Message {
		i := m.Payload.(int)
		if i >= 5 {
			cancel() // fires as the last message is handled
			return nil
		}
		return []Message{{To: "p" + strconv.Itoa(i+1), Payload: i + 1}}
	}
	m, err := RunAsync(ctx, chainPeers(5), []Message{{To: "p0", Payload: 0}}, handle)
	if err != nil {
		t.Fatalf("completed run reported error %v", err)
	}
	if m.Delay != 5 || m.Messages != 5 {
		t.Fatalf("metrics = %+v, want delay 5 messages 5", m)
	}
}

func TestRunAsyncConcurrentHandlerSafety(t *testing.T) {
	// A handler with shared state protected by a mutex: every peer pings a
	// central accumulator through forwards.
	var (
		mu    sync.Mutex
		count int
	)
	peers := chainPeers(50)
	handle := func(m Message) []Message {
		mu.Lock()
		count++
		mu.Unlock()
		i := m.Payload.(int)
		if i >= 50 {
			return nil
		}
		return []Message{{To: peers[i+1], Payload: i + 1}}
	}
	if _, err := RunAsync(context.Background(), peers, []Message{{To: "p0", Payload: 0}}, handle); err != nil {
		t.Fatal(err)
	}
	if count != 51 {
		t.Fatalf("handler ran %d times, want 51", count)
	}
}

func addr(d, i int) string { return "n" + strconv.Itoa(d) + "_" + strconv.Itoa(i) }

func TestMergeMetrics(t *testing.T) {
	m := MergeMetrics(Metrics{Delay: 3, Messages: 10}, Metrics{Delay: 5, Messages: 2}, Metrics{})
	if m.Delay != 5 || m.Messages != 12 {
		t.Fatalf("MergeMetrics = %+v", m)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Deliver(strconv.Itoa(i % 5))
		}(i)
	}
	wg.Wait()
	d := c.Destinations()
	if len(d) != 20 {
		t.Fatalf("collector recorded %d, want 20", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1] > d[i] {
			t.Fatal("destinations not sorted")
		}
	}
}
