// Package simnet provides the message-passing engines that drive query
// simulations. A query is a set of seed messages plus a handler that, given
// a delivered message, returns the messages to forward next. The engine
// tracks the paper's two cost metrics:
//
//   - Delay: the largest hop depth at which any message is delivered (the
//     time until the last destination peer has been reached).
//   - Messages: the number of overlay messages sent (seed messages are local
//     computation at the issuer and are not counted).
//
// Two engines share the same handler contract. RunSync is deterministic and
// single-threaded; it is the engine used for experiments. RunAsync executes
// the same query with one goroutine per peer exchanging messages through
// mailboxes, demonstrating that the algorithms are genuinely local and
// concurrent; its handler must be safe for concurrent use.
package simnet

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// Message is one overlay message addressed to a peer. Depth is assigned by
// the engine: seeds are at depth 0 and every forward is one deeper than the
// message that produced it.
type Message struct {
	To      string
	Depth   int
	Payload any
}

// Handler processes a delivered message at its destination and returns the
// messages to forward. Returned messages must have To and Payload set;
// Depth is ignored and reassigned by the engine.
type Handler func(m Message) []Message

// Metrics are the cost counters of one simulated query.
type Metrics struct {
	Delay    int
	Messages int
}

// merge folds another query's metrics into m (delays take the max, message
// counts add), used when a query is executed as several subqueries.
func (m *Metrics) merge(o Metrics) {
	if o.Delay > m.Delay {
		m.Delay = o.Delay
	}
	m.Messages += o.Messages
}

// RunSync executes the query breadth-first in a single goroutine. Messages
// at equal depth are processed in insertion order, so a deterministic
// handler yields a deterministic trace.
//
// Cancelling ctx stops the run between messages; the metrics accumulated so
// far are returned together with ctx's error. A nil ctx never cancels.
func RunSync(ctx context.Context, seeds []Message, handle Handler) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var metrics Metrics
	queue := make([]Message, 0, len(seeds))
	for _, s := range seeds {
		s.Depth = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return metrics, err
		}
		m := queue[0]
		queue = queue[1:]
		if m.Depth > metrics.Delay {
			metrics.Delay = m.Depth
		}
		if m.Depth >= 1 {
			metrics.Messages++
		}
		for _, f := range handle(m) {
			f.Depth = m.Depth + 1
			queue = append(queue, f)
		}
	}
	return metrics, nil
}

// RunAsync executes the query with one goroutine per participating peer.
// Peers exchange messages through unbounded mailboxes (an actor-style
// overlay), and termination is detected by counting outstanding messages:
// processing a message removes it and adds its forwards, so the query is
// complete when the counter returns to zero. The handler runs concurrently
// on many goroutines and must synchronize its own state.
//
// peerIDs must contain every address the query can reach. The returned
// metrics equal RunSync's for the same query.
//
// Cancelling ctx closes every mailbox, draining the run early; the metrics
// accumulated so far are returned together with ctx's error. A nil ctx
// never cancels.
func RunAsync(ctx context.Context, peerIDs []string, seeds []Message, handle Handler) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	boxes := make(map[string]*mailbox, len(peerIDs))
	for _, id := range peerIDs {
		boxes[id] = newMailbox()
	}

	var (
		outstanding atomic.Int64
		delay       atomic.Int64
		messages    atomic.Int64
		completed   atomic.Bool // the run drained naturally (not cancelled)
		wg          sync.WaitGroup
	)
	outstanding.Store(int64(len(seeds)))

	closeAll := func() {
		for _, b := range boxes {
			b.close()
		}
	}

	// Cancellation watcher: closing every mailbox unblocks all workers.
	watcherDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watcherDone:
		}
	}()

	for _, b := range boxes {
		wg.Add(1)
		go func(b *mailbox) {
			defer wg.Done()
			for {
				m, ok := b.pop()
				if !ok {
					return
				}
				// Workers observe cancellation themselves: relying on the
				// watcher goroutine alone would leave promptness to the
				// scheduler (on one CPU a busy chain of workers can drain
				// an entire run before the watcher ever gets on).
				if ctx.Err() != nil && !completed.Load() {
					closeAll()
					return
				}
				if d := int64(m.Depth); d > delay.Load() {
					// Lossy max is fine: we re-check under CAS.
					for {
						cur := delay.Load()
						if d <= cur || delay.CompareAndSwap(cur, d) {
							break
						}
					}
				}
				if m.Depth >= 1 {
					messages.Add(1)
				}
				fwd := handle(m)
				for _, f := range fwd {
					f.Depth = m.Depth + 1
					dst, ok := boxes[f.To]
					if !ok {
						panic("simnet: forward to unknown peer " + f.To)
					}
					outstanding.Add(1)
					dst.push(f)
				}
				if outstanding.Add(-1) == 0 {
					completed.Store(true)
					closeAll()
					return
				}
			}
		}(b)
	}

	if len(seeds) == 0 {
		completed.Store(true)
		closeAll()
	}
	for _, s := range seeds {
		s.Depth = 0
		dst, ok := boxes[s.To]
		if !ok {
			panic("simnet: seed to unknown peer " + s.To)
		}
		dst.push(s)
	}
	wg.Wait()
	close(watcherDone)
	m := Metrics{Delay: int(delay.Load()), Messages: int(messages.Load())}
	// A run that drained naturally is complete even if ctx cancelled in the
	// same instant — only report an error when cancellation cut it short.
	if !completed.Load() {
		return m, ctx.Err()
	}
	return m, nil
}

// mailbox is an unbounded FIFO queue with blocking pop. Unboundedness
// matters: peers both send and receive, so bounded channels could deadlock
// on cyclic sends.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(m Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.queue = append(b.queue, m)
	b.cond.Signal()
}

func (b *mailbox) pop() (Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return Message{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m, true
}

func (b *mailbox) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// Collector accumulates per-query observations from handlers that may run
// concurrently. The zero value is ready to use.
type Collector struct {
	mu    sync.Mutex
	dests []string
}

// Deliver records a destination peer.
func (c *Collector) Deliver(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dests = append(c.dests, peer)
}

// Destinations returns the recorded destinations, sorted.
func (c *Collector) Destinations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.dests...)
	sort.Strings(out)
	return out
}

// MergeMetrics combines per-subquery metrics into a single query metric:
// subqueries run in parallel, so delays take the maximum while message
// counts add.
func MergeMetrics(parts ...Metrics) Metrics {
	var m Metrics
	for _, p := range parts {
		m.merge(p)
	}
	return m
}
