package pht

import (
	"math"
	"math/rand"
	"testing"

	"armada/internal/core"
	"armada/internal/fissione"
)

func buildTree(t *testing.T, peers int, seed int64) *Tree {
	t.Helper()
	net, err := fissione.BuildRandom(24, peers, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(eng, 16, 4, 0, 1000, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewValidation(t *testing.T) {
	net, err := fissione.New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, 0, 4, 0, 1, 1); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := New(eng, 40, 4, 0, 1, 1); err == nil {
		t.Error("bits=40 accepted")
	}
	if _, err := New(eng, 16, 0, 0, 1, 1); err == nil {
		t.Error("block=0 accepted")
	}
	if _, err := New(eng, 16, 4, 1, 1, 1); err == nil {
		t.Error("empty space accepted")
	}
}

func TestInsertSplitsLeaves(t *testing.T) {
	tree := buildTree(t, 40, 3)
	for i := 0; i < 50; i++ {
		tree.Insert(name(i), float64(i)*20)
	}
	if tree.NodeCount() < 3 {
		t.Fatalf("tree did not split: %d nodes for 50 keys with block 4", tree.NodeCount())
	}
}

func TestRangeQueryCompleteness(t *testing.T) {
	tree := buildTree(t, 60, 5)
	rng := rand.New(rand.NewSource(6))
	values := make([]float64, 300)
	for i := range values {
		values[i] = rng.Float64() * 1000
		tree.Insert(name(i), values[i])
	}
	for trial := 0; trial < 30; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*(1000-lo)
		res, err := tree.RangeQuery(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range values {
			if v >= lo && v <= hi {
				want++
			}
		}
		if len(res.Matches) != want {
			t.Fatalf("[%f,%f]: %d matches, want %d", lo, hi, len(res.Matches), want)
		}
	}
}

func TestRangeQueryValidation(t *testing.T) {
	tree := buildTree(t, 20, 7)
	if _, err := tree.RangeQuery(5, 1); err == nil {
		t.Error("inverted range accepted")
	}
}

// PHT's range-query delay is a multiple of the DHT's routing delay — far
// above Armada's bounded delay on the same network (Table 1's contrast).
func TestDelayExceedsDHTRouting(t *testing.T) {
	tree := buildTree(t, 400, 9)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		tree.Insert(name(i), rng.Float64()*1000)
	}
	logN := math.Log2(400)
	total := 0.0
	const trials = 25
	for i := 0; i < trials; i++ {
		lo := rng.Float64() * 800
		res, err := tree.RangeQuery(lo, lo+100)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(res.Stats.Delay)
	}
	if avg := total / trials; avg < logN {
		t.Errorf("PHT avg delay %.1f below logN %.1f — should cost multiple DHT routings", avg, logN)
	}
}

func TestKeyDiscretization(t *testing.T) {
	tree := buildTree(t, 20, 11)
	if tree.keyOf(-5) != 0 {
		t.Error("below-range value should clamp to 0")
	}
	if got, want := tree.keyOf(2000), uint32(1<<16-1); got != want {
		t.Errorf("above-range key = %d, want %d", got, want)
	}
	if tree.keyOf(0) >= tree.keyOf(500) || tree.keyOf(500) >= tree.keyOf(1000) {
		t.Error("keyOf not monotone")
	}
}

func TestPrefixIntersects(t *testing.T) {
	tree := buildTree(t, 20, 13)
	// Prefix "1" covers the upper half of the key space.
	if !tree.prefixIntersects("1", tree.keyOf(600), tree.keyOf(900)) {
		t.Error("upper prefix should intersect upper range")
	}
	if tree.prefixIntersects("1", tree.keyOf(0), tree.keyOf(400)) {
		t.Error("upper prefix should not intersect lower range")
	}
	if !tree.prefixIntersects("", tree.keyOf(1), tree.keyOf(2)) {
		t.Error("root intersects everything")
	}
}

func name(i int) string {
	return "k" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10))
}
