// Package pht implements a Prefix Hash Tree (Chawathe et al., "A Case Study
// in Building Layered DHT Applications", SIGCOMM 2005) over the FISSIONE
// DHT — the general range-query baseline the Armada paper cites as PHT.
//
// A PHT is a binary trie over D-bit keys whose nodes live in the DHT: node
// label ℓ (a bit-string prefix) is stored at the peer owning
// Kautz_hash("pht:"+ℓ). Every node access therefore costs one DHT routing of
// O(log N) hops, which is what makes PHT's range queries O(b·log N) — the
// paper's Table 1 row — rather than delay-bounded.
//
// This implementation charges the full routing cost of every node access
// through the Armada engine's exact-match lookup while keeping node payloads
// in process (the DHT stores opaque blobs; serializing them would not change
// any counted metric). Lookups binary-search the prefix length; range
// queries locate the query's longest-common-prefix node and then fan out
// level by level, charging each level the maximum routing delay among its
// node accesses (the client fetches a level's children in parallel).
package pht

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"armada/internal/core"
	"armada/internal/kautz"
)

// Errors returned by the tree.
var (
	ErrBadBits  = errors.New("pht: bits must be in [1, 32]")
	ErrBadBlock = errors.New("pht: leaf capacity must be positive")
	ErrBadSpace = errors.New("pht: attribute space must have Low < High")
	ErrBadRange = errors.New("pht: query low bound above high bound")
)

// Key is a discretized attribute value.
type Key struct {
	Name  string
	Value float64
}

// node is one trie node; leaves hold keys.
type node struct {
	leaf bool
	keys []Key
}

// Tree is a PHT over a single numeric attribute.
type Tree struct {
	eng   *core.Engine
	bits  int
	block int
	low   float64
	high  float64
	nodes map[string]*node
	rng   *rand.Rand
}

// New creates an empty PHT over eng's network for values in [low, high],
// with D-bit keys and the given leaf capacity.
func New(eng *core.Engine, bits, block int, low, high float64, seed int64) (*Tree, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("%w: %d", ErrBadBits, bits)
	}
	if block < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadBlock, block)
	}
	if !(low < high) {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadSpace, low, high)
	}
	t := &Tree{
		eng:   eng,
		bits:  bits,
		block: block,
		low:   low,
		high:  high,
		nodes: map[string]*node{"": {leaf: true}},
		rng:   rand.New(rand.NewSource(seed)),
	}
	return t, nil
}

// Stats accumulate the DHT cost of one PHT operation.
type Stats struct {
	// Delay is the hop count on the operation's critical path: sequential
	// probes add up; a level of parallel child fetches contributes its
	// maximum.
	Delay int
	// Messages is the total hops across all DHT routings.
	Messages int
	// Lookups is the number of DHT node accesses.
	Lookups int
}

// keyOf discretizes a value to bits resolution.
func (t *Tree) keyOf(v float64) uint32 {
	f := (v - t.low) / (t.high - t.low)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	max := uint64(1)<<uint(t.bits) - 1
	return uint32(f * float64(max))
}

// prefixOf returns the length-l bit-prefix of key as a string.
func (t *Tree) prefixOf(key uint32, l int) string {
	var b strings.Builder
	b.Grow(l)
	for i := 0; i < l; i++ {
		if key&(1<<uint(t.bits-1-i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// access charges one DHT routing to the node labelled ℓ from a random peer
// (the querying client's resolver) and returns the node, creating it if
// requested.
func (t *Tree) access(label string, create bool, stats *Stats) (*node, int) {
	issuer := t.eng.Network().RandomPeer(t.rng)
	oid := kautz.Hash("pht:"+label, t.eng.Network().K())
	res, err := t.eng.Lookup(context.Background(), issuer, oid)
	hops := 0
	if err == nil {
		hops = res.Stats.Delay
	}
	stats.Messages += hops
	stats.Lookups++
	nd, ok := t.nodes[label]
	if !ok && create {
		nd = &node{leaf: true}
		t.nodes[label] = nd
	}
	return nd, hops
}

// Insert adds a key, splitting overflowing leaves, and returns the DHT cost.
func (t *Tree) Insert(name string, value float64) Stats {
	var stats Stats
	key := t.keyOf(value)
	label, hops := t.lookupLeaf(key, &stats)
	stats.Delay += hops

	nd := t.nodes[label]
	nd.keys = append(nd.keys, Key{Name: name, Value: value})
	for len(nd.keys) > t.block && len(label) < t.bits {
		// Split: redistribute the keys one level down.
		nd.leaf = false
		keys := nd.keys
		nd.keys = nil
		left, leftHops := t.access(label+"0", true, &stats)
		right, rightHops := t.access(label+"1", true, &stats)
		stats.Delay += max(leftHops, rightHops)
		left.leaf, right.leaf = true, true
		for _, k := range keys {
			if t.prefixOf(t.keyOf(k.Value), len(label)+1)[len(label)] == '0' {
				left.keys = append(left.keys, k)
			} else {
				right.keys = append(right.keys, k)
			}
		}
		if len(left.keys) > t.block {
			label, nd = label+"0", left
		} else if len(right.keys) > t.block {
			label, nd = label+"1", right
		} else {
			break
		}
	}
	return stats
}

// lookupLeaf binary-searches the prefix length holding key's leaf,
// accumulating DHT costs, and returns the leaf's label and the critical-path
// hops of the search.
func (t *Tree) lookupLeaf(key uint32, stats *Stats) (string, int) {
	lo, hi := 0, t.bits
	pathHops := 0
	best := ""
	for lo <= hi {
		mid := (lo + hi) / 2
		label := t.prefixOf(key, mid)
		nd, hops := t.access(label, false, stats)
		pathHops += hops
		switch {
		case nd == nil:
			hi = mid - 1
		case nd.leaf:
			return label, pathHops
		default:
			best = label
			lo = mid + 1
		}
	}
	// The trie always has a leaf on every root-to-leaf path; fall back to
	// walking down from the deepest internal node seen.
	label := best
	for {
		nd, hops := t.access(label, false, stats)
		pathHops += hops
		if nd == nil {
			t.nodes[label] = &node{leaf: true}
			return label, pathHops
		}
		if nd.leaf {
			return label, pathHops
		}
		label = label + string('0'+byte((key>>uint(t.bits-1-len(label)))&1))
	}
}

// Match is one object found by a range query.
type Match struct {
	Name  string
	Value float64
}

// RangeResult is the outcome of a PHT range query.
type RangeResult struct {
	Matches []Match
	Stats   Stats
}

// RangeQuery finds all keys with values in [lo, hi]. It locates the node of
// the bounds' longest common prefix, then descends the trie level by level,
// pruning subtrees whose key interval misses the query.
func (t *Tree) RangeQuery(lo, hi float64) (*RangeResult, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	var stats Stats
	kLo, kHi := t.keyOf(lo), t.keyOf(hi)
	lcp := commonPrefixLen(t.prefixOf(kLo, t.bits), t.prefixOf(kHi, t.bits))

	// Locate the shallowest existing node on the lcp path (costs a binary
	// search of DHT lookups on the critical path).
	start := ""
	pathHops := 0
	for l := lcp; l >= 0; l-- {
		label := t.prefixOf(kLo, l)
		nd, hops := t.access(label, false, &stats)
		pathHops += hops
		if nd != nil {
			start = label
			break
		}
	}
	stats.Delay += pathHops

	res := &RangeResult{}
	level := []string{start}
	for len(level) > 0 {
		var next []string
		levelMax := 0
		for _, label := range level {
			nd, hops := t.access(label, false, &stats)
			if hops > levelMax {
				levelMax = hops
			}
			if nd == nil {
				continue
			}
			if nd.leaf {
				for _, k := range nd.keys {
					if k.Value >= lo && k.Value <= hi {
						res.Matches = append(res.Matches, Match{Name: k.Name, Value: k.Value})
					}
				}
				continue
			}
			for _, c := range []string{label + "0", label + "1"} {
				if t.prefixIntersects(c, kLo, kHi) {
					next = append(next, c)
				}
			}
		}
		stats.Delay += levelMax
		level = next
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].Value != res.Matches[j].Value {
			return res.Matches[i].Value < res.Matches[j].Value
		}
		return res.Matches[i].Name < res.Matches[j].Name
	})
	res.Stats = stats
	return res, nil
}

// prefixIntersects reports whether the key interval of the trie node
// labelled p intersects [kLo, kHi].
func (t *Tree) prefixIntersects(p string, kLo, kHi uint32) bool {
	var lo uint32
	for i := 0; i < len(p); i++ {
		if p[i] == '1' {
			lo |= 1 << uint(t.bits-1-i)
		}
	}
	hi := lo
	for i := len(p); i < t.bits; i++ {
		hi |= 1 << uint(t.bits-1-i)
	}
	return lo <= kHi && kLo <= hi
}

// NodeCount returns the number of trie nodes (a size diagnostic).
func (t *Tree) NodeCount() int { return len(t.nodes) }

func commonPrefixLen(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
