package diag

import (
	"sync"
	"time"
)

// The burn-rate windows follow the multi-window convention: a fast window
// that reacts to an active incident within seconds and a slow window that
// smooths it into a page-worthy trend. Burn rate is the window's bad
// fraction divided by the SLO's error budget (1 − objective): 1.0 means
// the budget is being spent exactly at the sustainable rate, higher means
// it is burning down.
const (
	fastWindow = 5 * time.Second
	slowWindow = 60 * time.Second
)

// SLOReport is the burn-rate monitor's exported state.
type SLOReport struct {
	// Objective is the good fraction promised over the delay bound (e.g.
	// 0.999: at most one query in a thousand may reach 2·log₂N hops).
	Objective     float64 `json:"objective"`
	FastWindowSec float64 `json:"fast_window_sec"`
	SlowWindowSec float64 `json:"slow_window_sec"`
	FastBurnRate  float64 `json:"fast_burn_rate"`
	SlowBurnRate  float64 `json:"slow_burn_rate"`
	// Queries and Violations are run-cumulative (not windowed).
	Queries    int64 `json:"queries"`
	Violations int64 `json:"violations"`
}

// sloBucket accumulates one second's observations.
type sloBucket struct {
	total int64
	bad   int64
}

// SLO tracks delay-bound conformance in per-second buckets over the slow
// window, deriving fast- and slow-window burn rates on demand.
type SLO struct {
	objective float64
	now       func() time.Duration // monitor clock (since start)

	mu      sync.Mutex
	secs    [int64(slowWindow / time.Second)]sloBucket
	lastSec int64 // highest second index observed or advanced to
	total   int64 // run-cumulative
	bad     int64
}

func newSLO(objective float64, now func() time.Duration) *SLO {
	return &SLO{objective: objective, now: now}
}

// advanceLocked rolls the ring forward to sec, clearing buckets whose
// second has passed out from under them. The caller holds s.mu.
func (s *SLO) advanceLocked(sec int64) {
	n := int64(len(s.secs))
	if sec-s.lastSec >= n {
		// The whole window elapsed unobserved; clear everything.
		s.secs = [int64(slowWindow / time.Second)]sloBucket{}
		s.lastSec = sec
		return
	}
	for s.lastSec < sec {
		s.lastSec++
		s.secs[s.lastSec%n] = sloBucket{}
	}
}

// Observe records one query's delay-bound verdict.
func (s *SLO) Observe(violation bool) {
	sec := int64(s.now() / time.Second)
	s.mu.Lock()
	s.advanceLocked(sec)
	b := &s.secs[sec%int64(len(s.secs))]
	b.total++
	s.total++
	if violation {
		b.bad++
		s.bad++
	}
	s.mu.Unlock()
}

// burnLocked computes the burn rate over the trailing window seconds
// (including the current partial second). The caller holds s.mu with the
// ring advanced to the current second.
func (s *SLO) burnLocked(window time.Duration) float64 {
	n := int64(len(s.secs))
	w := int64(window / time.Second)
	if w > n {
		w = n
	}
	var total, bad int64
	for i := int64(0); i < w; i++ {
		sec := s.lastSec - i
		if sec < 0 {
			break
		}
		b := s.secs[sec%n]
		total += b.total
		bad += b.bad
	}
	if total == 0 {
		return 0
	}
	budget := 1 - s.objective
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// Report snapshots the monitor: both window burn rates plus the
// run-cumulative totals.
func (s *SLO) Report() SLOReport {
	sec := int64(s.now() / time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(sec)
	return SLOReport{
		Objective:     s.objective,
		FastWindowSec: fastWindow.Seconds(),
		SlowWindowSec: slowWindow.Seconds(),
		FastBurnRate:  s.burnLocked(fastWindow),
		SlowBurnRate:  s.burnLocked(slowWindow),
		Queries:       s.total,
		Violations:    s.bad,
	}
}
