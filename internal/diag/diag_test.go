package diag

import (
	"math"
	"testing"
	"time"
)

// clockMonitor builds a monitor on a synthetic clock the test advances.
func clockMonitor(cfg Config) (*Monitor, *time.Duration) {
	m := NewMonitor(cfg)
	cur := new(time.Duration)
	m.now = func() time.Duration { return *cur }
	return m, cur
}

func finishAfter(m *Monitor, cur *time.Duration, d time.Duration, out Outcome) {
	q := m.Begin(1, "range", "p", 0)
	*cur += d
	m.Finish(q, out)
}

func TestClassifierPriorities(t *testing.T) {
	m, cur := clockMonitor(Config{Threshold: time.Hour})

	// Queue wait longer than service time wins over everything.
	q := m.Begin(1, "range", "p", 50*time.Millisecond)
	*cur += 10 * time.Millisecond
	if c := m.classify(q, Outcome{}, int64(10*time.Millisecond)); c != CauseQueueWait {
		t.Fatalf("queue-wait case classified %v", c)
	}

	// A control action overlapping the query marks it split-in-flight.
	q = m.Begin(2, "range", "p", 0)
	m.NoteControlAction()
	if c := m.classify(q, Outcome{}, 0); c != CauseSplitInFlight {
		t.Fatalf("split overlap classified %v", c)
	}
	// A query starting after the action is not blamed on it.
	*cur += time.Millisecond
	q = m.Begin(3, "range", "p", 0)
	q.Note(StageForward, 1)
	if c := m.classify(q, Outcome{}, 0); c == CauseSplitInFlight {
		t.Fatalf("post-action query still blamed on split")
	}

	// Stale frontier beats shortcut-miss.
	q = m.Begin(4, "range", "p", 0)
	q.MarkStaleFrontier()
	q.MarkShortcutEligible()
	if c := m.classify(q, Outcome{}, 0); c != CauseStaleFrontier {
		t.Fatalf("stale frontier classified %v", c)
	}

	// Shortcut-eligible with a descent and no hits is a shortcut miss.
	q = m.Begin(5, "lookup", "p", 0)
	q.MarkShortcutEligible()
	q.Note(StageForward, 1)
	if c := m.classify(q, Outcome{}, 0); c != CauseShortcutMiss {
		t.Fatalf("shortcut miss classified %v", c)
	}
	// ...but a shortcut hit clears it.
	q = m.Begin(6, "lookup", "p", 0)
	q.MarkShortcutEligible()
	q.Note(StageShortcut, 1)
	if c := m.classify(q, Outcome{ShortcutHits: 1}, 0); c == CauseShortcutMiss {
		t.Fatalf("shortcut hit still classified a miss")
	}

	// Realized delay near the bound is a deep descent.
	q = m.Begin(7, "range", "p", 0)
	if c := m.classify(q, Outcome{Delay: 15, Bound: 20}, 0); c != CauseDeepDescent {
		t.Fatalf("near-bound delay classified %v", c)
	}

	// Dominant stage fallback: delivery-side time means a hot region...
	q = m.Begin(8, "range", "p", 0)
	*cur += time.Millisecond
	q.Note(StageForward, 1)
	*cur += 10 * time.Millisecond
	q.NoteScan(2, 5)
	if c := m.classify(q, Outcome{Delay: 2, Bound: 20}, int64(11*time.Millisecond)); c != CauseHotRegion {
		t.Fatalf("scan-dominated query classified %v", c)
	}
	// ...forward-dominated time means a deep descent...
	q = m.Begin(9, "range", "p", 0)
	*cur += 10 * time.Millisecond
	q.Note(StageForward, 1)
	*cur += time.Millisecond
	q.Note(StageDeliver, 2)
	if c := m.classify(q, Outcome{Delay: 2, Bound: 20}, int64(11*time.Millisecond)); c != CauseDeepDescent {
		t.Fatalf("forward-dominated query classified %v", c)
	}
	// ...and redirect-dominated time blames the replica redirect.
	q = m.Begin(10, "lookup", "p", 0)
	*cur += 10 * time.Millisecond
	q.Note(StageRedirect, 2)
	if c := m.classify(q, Outcome{Delay: 2, Bound: 20}, int64(10*time.Millisecond)); c != CauseReplicaRedirect {
		t.Fatalf("redirect-dominated query classified %v", c)
	}

	// No events at all: unknown.
	q = m.Begin(11, "lookup", "p", 0)
	if c := m.classify(q, Outcome{}, 0); c != CauseUnknown {
		t.Fatalf("event-free query classified %v", c)
	}
}

func TestFixedThresholdSlowLog(t *testing.T) {
	m, cur := clockMonitor(Config{Threshold: 5 * time.Millisecond, LogCapacity: 4})
	finishAfter(m, cur, time.Millisecond, Outcome{})
	finishAfter(m, cur, 10*time.Millisecond, Outcome{Delay: 3, Messages: 7})
	recs := m.SlowQueries()
	if len(recs) != 1 {
		t.Fatalf("want 1 slow record, got %d", len(recs))
	}
	r := recs[0]
	if r.DurationMs < 9.999 || r.ThresholdMs != 5 || r.Messages != 7 {
		t.Fatalf("bad record: %+v", r)
	}
	if m.slow.Value() != 1 || m.queries.Value() != 2 {
		t.Fatalf("counters slow=%d queries=%d", m.slow.Value(), m.queries.Value())
	}
}

func TestSlowRingWraps(t *testing.T) {
	m, cur := clockMonitor(Config{Threshold: time.Millisecond, LogCapacity: 3})
	for i := 0; i < 5; i++ {
		q := m.Begin(uint64(i+1), "range", "p", 0)
		*cur += 2 * time.Millisecond
		m.Finish(q, Outcome{})
	}
	recs := m.SlowQueries()
	if len(recs) != 3 {
		t.Fatalf("want 3 retained records, got %d", len(recs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if recs[i].QID != want {
			t.Fatalf("record %d has qid %d, want %d (oldest-first)", i, recs[i].QID, want)
		}
	}
}

func TestAdaptiveThreshold(t *testing.T) {
	m, cur := clockMonitor(Config{LogCapacity: 64})
	if thr := m.ThresholdMs(); thr != 0 {
		t.Fatalf("threshold before first batch = %v, want 0", thr)
	}
	// First batch: 126 fast queries and two 100ms stragglers (the batch
	// p99 by nearest rank lands on a straggler). Nothing is slow until
	// the batch completes and its p99 becomes the threshold.
	for i := 0; i < batchSize-2; i++ {
		finishAfter(m, cur, time.Millisecond, Outcome{})
	}
	finishAfter(m, cur, 100*time.Millisecond, Outcome{})
	finishAfter(m, cur, 100*time.Millisecond, Outcome{})
	if n := len(m.SlowQueries()); n != 0 {
		t.Fatalf("%d slow records before first batch completed", n)
	}
	thr := m.ThresholdMs()
	if thr < 50 || thr > 101 {
		t.Fatalf("adaptive threshold %v ms not near the batch p99", thr)
	}
	// A query past the adaptive threshold now logs.
	finishAfter(m, cur, 200*time.Millisecond, Outcome{})
	if n := len(m.SlowQueries()); n != 1 {
		t.Fatalf("want 1 slow record after threshold, got %d", n)
	}
}

func TestTailAttributionFractionsCoverTail(t *testing.T) {
	m, cur := clockMonitor(Config{Threshold: time.Hour})
	for i := 0; i < 500; i++ {
		finishAfter(m, cur, time.Millisecond, Outcome{Delay: 2, Bound: 20})
	}
	// Tail (under 1% of the run): deep descents near the bound.
	for i := 0; i < 4; i++ {
		finishAfter(m, cur, 50*time.Millisecond, Outcome{Delay: 18, Bound: 20})
	}
	att := m.TailAttribution()
	if att.Queries != 504 || att.TailQueries == 0 {
		t.Fatalf("attribution totals: %+v", att)
	}
	var sum float64
	for _, f := range att.Causes {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("cause fractions sum to %v: %v", sum, att.Causes)
	}
	if att.Causes["deep-descent"] != 1 {
		t.Fatalf("tail not attributed to deep descents: %v", att.Causes)
	}
	if att.P99Ms > 2 {
		t.Fatalf("p99 %v ms pulled up by the tail", att.P99Ms)
	}
}

func TestFailedQueriesExcludedFromAttribution(t *testing.T) {
	m, cur := clockMonitor(Config{Threshold: time.Millisecond})
	finishAfter(m, cur, 10*time.Millisecond, Outcome{Err: true})
	att := m.TailAttribution()
	if att.Queries != 0 || len(att.Causes) != 0 {
		t.Fatalf("failed query leaked into attribution: %+v", att)
	}
	// ...but it still lands in the slow log, flagged.
	recs := m.SlowQueries()
	if len(recs) != 1 || !recs[0].Failed {
		t.Fatalf("failed slow query not logged: %+v", recs)
	}
	if rep := m.SLOReport(); rep.Queries != 0 {
		t.Fatalf("failed query counted against the SLO: %+v", rep)
	}
}

func TestSLOBurnRateWindows(t *testing.T) {
	m, cur := clockMonitor(Config{Objective: 0.9})
	slo := m.slo
	// Second 0: 9 good + 1 bad = exactly the budget → burn rate 1.
	for i := 0; i < 9; i++ {
		slo.Observe(false)
	}
	slo.Observe(true)
	rep := slo.Report()
	if math.Abs(rep.FastBurnRate-1) > 1e-9 || math.Abs(rep.SlowBurnRate-1) > 1e-9 {
		t.Fatalf("burn at budget: fast=%v slow=%v", rep.FastBurnRate, rep.SlowBurnRate)
	}
	// 10 seconds later the fast window has rolled past the violation but
	// the slow window still remembers it.
	*cur += 10 * time.Second
	for i := 0; i < 10; i++ {
		slo.Observe(false)
	}
	rep = slo.Report()
	if rep.FastBurnRate != 0 {
		t.Fatalf("fast window kept the old violation: %v", rep.FastBurnRate)
	}
	if rep.SlowBurnRate <= 0 {
		t.Fatalf("slow window forgot the violation: %v", rep.SlowBurnRate)
	}
	// Past the slow window everything is forgotten; cumulative totals stay.
	*cur += 2 * slowWindow
	rep = slo.Report()
	if rep.FastBurnRate != 0 || rep.SlowBurnRate != 0 {
		t.Fatalf("windows not cleared: %+v", rep)
	}
	if rep.Queries != 20 || rep.Violations != 1 {
		t.Fatalf("cumulative totals wrong: %+v", rep)
	}
}

func TestConcurrentNotes(t *testing.T) {
	m := NewMonitor(Config{Threshold: time.Nanosecond})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				q := m.Begin(uint64(i), "range", "p", 0)
				q.Note(StageForward, 1)
				q.Note(StageDeliver, 2)
				q.NoteScan(2, 1)
				m.Finish(q, Outcome{Delay: 2, Bound: 10, Deliveries: 1})
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := m.queries.Value(); got != 800 {
		t.Fatalf("queries counter %d, want 800", got)
	}
	m.SlowQueries()
	m.TailAttribution()
	m.SLOReport()
}
