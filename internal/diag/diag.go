// Package diag is Armada's query-diagnostics layer: per-query
// critical-path breakdowns assembled from the engine's trace stream, a
// cause classifier for slow queries, a bounded slow-query log with an
// adaptive threshold, and a multi-window SLO burn-rate monitor over the
// paper's 2·log₂N delay bound.
//
// The paper's delay-bound conformance counter says *that* the tail moved;
// this package says *why*. Every finished query is timed stage by stage
// (descent forwards, frontier seeds, shortcut sends, deliveries, replica
// redirects, store scans — plus the dispatcher queue wait the workload
// layer threads in), classified into a cause, and sampled into the tail
// attribution the workload report exposes. Queries slower than the
// threshold — fixed, or an EWMA of the observed p99 — additionally land in
// a bounded ring of structured, exportable Records.
//
// A Monitor is attached per network and must be cheap: the per-event cost
// is one atomic swap and two atomic adds, and a network built without
// diagnostics never constructs a Query at all, so the disabled fast path
// is allocation-free.
package diag

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"armada/internal/obs"
)

// Stage classifies one traced event of a query's execution for the
// critical-path breakdown. Stages mirror the engine's hop kinds plus the
// post-delivery store scan.
type Stage uint8

const (
	// StageForward is one FRT descent forward.
	StageForward Stage = iota
	// StageDeliver is a delivery served by the region owner.
	StageDeliver
	// StageRedirect is a delivery the read policy redirected to a replica.
	StageRedirect
	// StageSeed is one frontier-seeded direct send.
	StageSeed
	// StageShortcut is one shortcut-routed direct send.
	StageShortcut
	// StageScan is one delivery's completed store scan.
	StageScan
	numStages
)

// String names the stage for records and reports.
func (s Stage) String() string {
	switch s {
	case StageForward:
		return "forward"
	case StageDeliver:
		return "deliver"
	case StageRedirect:
		return "redirect"
	case StageSeed:
		return "seed"
	case StageShortcut:
		return "shortcut"
	case StageScan:
		return "scan"
	default:
		return "stage?"
	}
}

// Cause is the classifier's verdict on what a query's latency is
// attributed to.
type Cause uint8

const (
	// CauseUnknown means the classifier had nothing to go on (a query that
	// produced no trace events at all).
	CauseUnknown Cause = iota
	// CauseQueueWait: the operation spent longer in the dispatcher queue
	// than in service — the network was fine, the load was not.
	CauseQueueWait
	// CauseSplitInFlight: a load-control split or migration overlapped the
	// query, so it raced a topology mutation for the write lock.
	CauseSplitInFlight
	// CauseStaleFrontier: a candidate frontier (session seed or shared
	// cache entry) had been invalidated by a topology epoch change, forcing
	// a full descent the query expected to skip.
	CauseStaleFrontier
	// CauseShortcutMiss: the query was eligible for shortcut routing but
	// the table had no fresh covering entries, so it paid a descent.
	CauseShortcutMiss
	// CauseReplicaRedirect: redirected deliveries dominated the query's
	// critical path (the extra hop to the serving replica).
	CauseReplicaRedirect
	// CauseHotRegion: delivery-side work (scans, seeds, deliveries)
	// dominated — the query's time went to busy destination peers.
	CauseHotRegion
	// CauseDeepDescent: the descent itself was unusually deep — realized
	// hop delay near the bound, or forwarding dominating the breakdown.
	CauseDeepDescent
	numCauses
)

// String names the cause; the names key the tail-attribution map and the
// slow-query records.
func (c Cause) String() string {
	switch c {
	case CauseQueueWait:
		return "queue-wait"
	case CauseSplitInFlight:
		return "split-in-flight"
	case CauseStaleFrontier:
		return "stale-frontier"
	case CauseShortcutMiss:
		return "shortcut-miss"
	case CauseReplicaRedirect:
		return "replica-redirect"
	case CauseHotRegion:
		return "hot-region"
	case CauseDeepDescent:
		return "deep-descent"
	default:
		return "unknown"
	}
}

// StageMs is one stage's share of a slow query's critical-path breakdown.
type StageMs struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
	Count int     `json:"count"`
}

// Record is one slow query's structured log entry — everything needed to
// diagnose it offline: identity, timing, the classified cause and the
// per-stage breakdown.
type Record struct {
	QID    uint64 `json:"qid"`
	Kind   string `json:"kind"`
	Issuer string `json:"issuer,omitempty"`
	// AtMs is the query's completion time relative to monitor start.
	AtMs       float64 `json:"at_ms"`
	DurationMs float64 `json:"duration_ms"`
	// QueueWaitMs is the dispatcher queue wait the workload layer measured
	// before the query began (not part of DurationMs).
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	// ThresholdMs is the slow threshold in force when the query was logged.
	ThresholdMs float64 `json:"threshold_ms"`
	Cause       string  `json:"cause"`
	// Delay and Bound are the realized hop delay and the instantaneous
	// 2·log₂N bound it is judged against.
	Delay     int       `json:"delay"`
	Bound     float64   `json:"bound,omitempty"`
	Messages  int       `json:"messages"`
	DestPeers int       `json:"dest_peers"`
	Failed    bool      `json:"failed,omitempty"`
	Stages    []StageMs `json:"stages,omitempty"`
}

// Attribution is the run's tail-latency attribution: of the queries slower
// than the p99, what fraction each cause accounts for. The fractions sum
// to 1 whenever TailQueries is nonzero.
type Attribution struct {
	// P99Ms is the p99 service duration over every successful query.
	P99Ms float64 `json:"p99_ms"`
	// Queries is how many successful queries were observed; TailQueries how
	// many of them were slower than the p99 (the attributed set).
	Queries     int64 `json:"queries"`
	TailQueries int   `json:"tail_queries"`
	// Causes maps cause name → fraction of tail queries attributed to it.
	Causes map[string]float64 `json:"causes"`
}

// Config tunes a Monitor. Zero values take the noted defaults.
type Config struct {
	// LogCapacity bounds the slow-query ring (default 256 records).
	LogCapacity int
	// Threshold fixes the slow-query threshold. Zero means adaptive: an
	// EWMA of the p99 service duration, folded in per 128-query batch —
	// nothing is considered slow until the first batch completes.
	Threshold time.Duration
	// Objective is the SLO's good fraction over the delay bound (default
	// 0.999: at most one query in a thousand may reach 2·log₂N hops).
	Objective float64
}

const (
	defaultLogCapacity = 256
	defaultObjective   = 0.999
	// batchSize queries are pooled before each adaptive-threshold p99 is
	// computed and folded into the EWMA.
	batchSize = 128
	// batchAlpha is the EWMA weight of each new batch p99.
	batchAlpha = 0.25
	// maxTailSamples bounds the attribution sample store; past it the
	// store is decimated to every other sample and the keep stride doubles,
	// so memory stays bounded while the kept set remains an unbiased
	// uniform-stride sample of the run.
	maxTailSamples = 1 << 20
)

// tailSample is one finished query's contribution to tail attribution.
type tailSample struct {
	ms    float32
	cause Cause
}

// Monitor is one network's diagnostics state. All methods are safe for
// concurrent use.
type Monitor struct {
	cfg   Config
	start time.Time
	// now returns the time since monitor start; tests substitute a
	// synthetic clock.
	now  func() time.Duration
	slo  *SLO
	pool sync.Pool

	// queries counts finished queries observed; slow the subset past the
	// threshold at their completion.
	queries obs.Counter
	slow    obs.Counter

	// lastActionNs is 1 + the since-start nanosecond of the most recent
	// load-control action (0 = none yet); Finish checks overlap against it.
	lastActionNs atomic.Int64

	mu       sync.Mutex
	ring     []Record // slow-query ring, ringNext = next write slot
	ringNext int
	batch    []float64 // current adaptive-threshold batch (service ms)
	p99Ms    float64   // EWMA of batch p99s; 0 until the first batch
	samples  []tailSample
	stride   int64 // keep every stride-th sample (decimation)
	seen     int64 // successful queries seen (stride counter)
}

// NewMonitor builds a monitor with the config's defaults filled.
func NewMonitor(cfg Config) *Monitor {
	if cfg.LogCapacity <= 0 {
		cfg.LogCapacity = defaultLogCapacity
	}
	if cfg.Objective == 0 {
		cfg.Objective = defaultObjective
	}
	m := &Monitor{cfg: cfg, start: time.Now(), stride: 1}
	m.now = func() time.Duration { return time.Since(m.start) }
	m.slo = newSLO(cfg.Objective, func() time.Duration { return m.now() })
	m.ring = make([]Record, 0, cfg.LogCapacity)
	m.batch = make([]float64, 0, batchSize)
	return m
}

// DescribeMetrics registers the monitor's instruments on reg: query and
// slow-query counters, the live threshold, and the SLO burn-rate gauges.
func (m *Monitor) DescribeMetrics(reg *obs.Registry) {
	reg.MustRegister("diag_queries_total", &m.queries)
	reg.MustRegister("diag_slow_queries_total", &m.slow)
	reg.MustRegister("diag_slow_threshold_us", obs.GaugeFunc(func() int64 {
		m.mu.Lock()
		thr := m.thresholdMsLocked()
		m.mu.Unlock()
		return int64(thr * 1000)
	}))
	reg.MustRegister("slo_fast_burn_rate_milli", obs.GaugeFunc(func() int64 {
		return int64(m.slo.Report().FastBurnRate * 1000)
	}))
	reg.MustRegister("slo_slow_burn_rate_milli", obs.GaugeFunc(func() int64 {
		return int64(m.slo.Report().SlowBurnRate * 1000)
	}))
}

// sinceNs is the monitor clock in nanoseconds.
func (m *Monitor) sinceNs() int64 { return int64(m.now()) }

// NoteControlAction records that a load-control split or migration just
// completed; queries overlapping it classify as split-in-flight.
func (m *Monitor) NoteControlAction() { m.lastActionNs.Store(m.sinceNs() + 1) }

// Query collects one query's breakdown. The engine's trace callback feeds
// Note/NoteScan (concurrently, under the async engine); the armada layer
// sets the classifier flags; Finish folds everything into the monitor and
// recycles the collector.
type Query struct {
	m       *Monitor
	qid     uint64
	kind    string
	issuer  string
	startNs int64
	// lastNs is the since-start time of the previous event; each event's
	// gap from it is attributed to that event's stage.
	lastNs     atomic.Int64
	queueWait  time.Duration
	stageNs    [numStages]atomic.Int64
	stageN     [numStages]atomic.Int32
	stale      atomic.Bool
	scEligible atomic.Bool
}

// Begin starts collecting one query. queueWait is the dispatcher queue
// wait the caller measured before starting the query (zero when unknown).
func (m *Monitor) Begin(qid uint64, kind, issuer string, queueWait time.Duration) *Query {
	q, _ := m.pool.Get().(*Query)
	if q == nil {
		q = &Query{}
	}
	q.m, q.qid, q.kind, q.issuer = m, qid, kind, issuer
	q.queueWait = queueWait
	q.startNs = m.sinceNs()
	q.lastNs.Store(q.startNs)
	for i := range q.stageNs {
		q.stageNs[i].Store(0)
		q.stageN[i].Store(0)
	}
	q.stale.Store(false)
	q.scEligible.Store(false)
	return q
}

// Note attributes the time since the previous event to the stage. Safe for
// concurrent use: under the async engine events interleave, so the
// breakdown is an attribution of wall time to the event stream, not an
// exact per-message service time.
func (q *Query) Note(stage Stage, depth int) {
	_ = depth // reserved: depth histograms ride the stage counters today
	now := q.m.sinceNs()
	prev := q.lastNs.Swap(now)
	if dt := now - prev; dt > 0 {
		q.stageNs[stage].Add(dt)
	}
	q.stageN[stage].Add(1)
}

// NoteScan records one delivery's completed store scan.
func (q *Query) NoteScan(depth, matched int) {
	_ = matched
	q.Note(StageScan, depth)
}

// MarkStaleFrontier records that a candidate frontier was invalidated by a
// topology epoch change, forcing a descent.
func (q *Query) MarkStaleFrontier() { q.stale.Store(true) }

// MarkShortcutEligible records that the query consulted the learned
// shortcut table (a descent despite eligibility is a shortcut miss).
func (q *Query) MarkShortcutEligible() { q.scEligible.Store(true) }

// Outcome carries a finished query's cost stats into Finish.
type Outcome struct {
	// Err marks a failed query: it is logged when slow but excluded from
	// tail attribution and the SLO (its stats are not comparable).
	Err           bool
	Delay         int
	Bound         float64 // the instantaneous 2·log₂N bound (0 when unknown)
	Messages      int
	DestPeers     int
	Deliveries    int
	ReplicaServed int
	ShortcutHits  int
	FrontierHits  int
	DescentsSaved int
}

// Finish completes the query: classify, sample, log when slow, recycle.
func (m *Monitor) Finish(q *Query, out Outcome) {
	endNs := m.sinceNs()
	durNs := endNs - q.startNs
	if durNs < 0 {
		durNs = 0
	}
	m.queries.Inc()
	cause := m.classify(q, out, durNs)
	if !out.Err {
		m.slo.Observe(out.Bound > 0 && float64(out.Delay) >= out.Bound)
	}
	durMs := float64(durNs) / 1e6

	m.mu.Lock()
	thr := m.thresholdMsLocked()
	slow := thr > 0 && durMs >= thr
	if !out.Err {
		m.noteSampleLocked(durMs, cause)
	}
	if slow {
		m.appendRecordLocked(q, out, durMs, thr, cause, endNs)
	}
	m.mu.Unlock()
	if slow {
		m.slow.Inc()
	}
	q.m = nil
	m.pool.Put(q)
}

// classify attributes the query's latency to a cause, most specific signal
// first, falling back to whichever stage dominated the breakdown.
func (m *Monitor) classify(q *Query, out Outcome, durNs int64) Cause {
	if q.queueWait > 0 && int64(q.queueWait) > durNs {
		return CauseQueueWait
	}
	if a := m.lastActionNs.Load(); a > 0 && a-1 >= q.startNs {
		return CauseSplitInFlight
	}
	if q.stale.Load() {
		return CauseStaleFrontier
	}
	if q.scEligible.Load() && out.ShortcutHits == 0 && out.DescentsSaved == 0 &&
		q.stageN[StageForward].Load() > 0 {
		return CauseShortcutMiss
	}
	if out.Bound > 0 && float64(out.Delay) >= 0.75*out.Bound {
		// The paper's average is log₂N — half the bound. Three quarters of
		// the way to the bound is a descent well past typical depth.
		return CauseDeepDescent
	}
	// Fall back to the dominant stage of the breakdown.
	var best Stage
	var bestNs, total int64
	for s := Stage(0); s < numStages; s++ {
		ns := q.stageNs[s].Load()
		total += ns
		if ns > bestNs {
			best, bestNs = s, ns
		}
	}
	if total > 0 {
		switch best {
		case StageForward:
			return CauseDeepDescent
		case StageRedirect:
			return CauseReplicaRedirect
		default:
			return CauseHotRegion
		}
	}
	// Events but no measurable time (sub-resolution queries): count them.
	var n, fwd int32
	for s := Stage(0); s < numStages; s++ {
		c := q.stageN[s].Load()
		n += c
		if s == StageForward {
			fwd = c
		}
	}
	if n > 0 {
		if fwd*2 >= n {
			return CauseDeepDescent
		}
		return CauseHotRegion
	}
	return CauseUnknown
}

// thresholdMsLocked is the slow threshold currently in force in
// milliseconds (0 = none yet). The caller holds m.mu.
func (m *Monitor) thresholdMsLocked() float64 {
	if m.cfg.Threshold > 0 {
		return float64(m.cfg.Threshold) / 1e6
	}
	return m.p99Ms
}

// ThresholdMs reports the slow threshold currently in force (0 = the
// adaptive threshold has not seen its first batch yet).
func (m *Monitor) ThresholdMs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.thresholdMsLocked()
}

// noteSampleLocked records one successful query's duration into the tail
// attribution store and the adaptive-threshold batch. The caller holds
// m.mu.
func (m *Monitor) noteSampleLocked(durMs float64, cause Cause) {
	if m.seen%m.stride == 0 {
		m.samples = append(m.samples, tailSample{ms: float32(durMs), cause: cause})
		if len(m.samples) >= maxTailSamples {
			kept := m.samples[:0]
			for i := 0; i < len(m.samples); i += 2 {
				kept = append(kept, m.samples[i])
			}
			m.samples = kept
			m.stride *= 2
		}
	}
	m.seen++

	if m.cfg.Threshold > 0 {
		return // fixed threshold: no batch bookkeeping needed
	}
	m.batch = append(m.batch, durMs)
	if len(m.batch) < batchSize {
		return
	}
	sort.Float64s(m.batch)
	p99 := m.batch[(99*(len(m.batch)-1)+50)/100]
	if m.p99Ms == 0 {
		m.p99Ms = p99
	} else {
		m.p99Ms += batchAlpha * (p99 - m.p99Ms)
	}
	m.batch = m.batch[:0]
}

// appendRecordLocked logs one slow query into the ring. The caller holds
// m.mu.
func (m *Monitor) appendRecordLocked(q *Query, out Outcome, durMs, thrMs float64, cause Cause, endNs int64) {
	rec := Record{
		QID:         q.qid,
		Kind:        q.kind,
		Issuer:      q.issuer,
		AtMs:        float64(endNs) / 1e6,
		DurationMs:  durMs,
		QueueWaitMs: float64(q.queueWait) / 1e6,
		ThresholdMs: thrMs,
		Cause:       cause.String(),
		Delay:       out.Delay,
		Bound:       out.Bound,
		Messages:    out.Messages,
		DestPeers:   out.DestPeers,
		Failed:      out.Err,
	}
	for s := Stage(0); s < numStages; s++ {
		n := int(q.stageN[s].Load())
		if n == 0 {
			continue
		}
		rec.Stages = append(rec.Stages, StageMs{
			Stage: s.String(),
			Ms:    float64(q.stageNs[s].Load()) / 1e6,
			Count: n,
		})
	}
	if len(m.ring) < cap(m.ring) {
		m.ring = append(m.ring, rec)
	} else {
		m.ring[m.ringNext] = rec
	}
	m.ringNext = (m.ringNext + 1) % cap(m.ring)
}

// SlowQueries returns the retained slow-query records, oldest first.
func (m *Monitor) SlowQueries() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.ring))
	if len(m.ring) == cap(m.ring) {
		out = append(out, m.ring[m.ringNext:]...)
		out = append(out, m.ring[:m.ringNext]...)
	} else {
		out = append(out, m.ring...)
	}
	return out
}

// TailAttribution computes the run's tail attribution: the p99 over every
// successful query's service duration and, for the queries slower than it,
// the fraction attributed to each cause.
func (m *Monitor) TailAttribution() Attribution {
	m.mu.Lock()
	samples := append([]tailSample(nil), m.samples...)
	seen := m.seen
	m.mu.Unlock()
	att := Attribution{Queries: seen, Causes: map[string]float64{}}
	if len(samples) == 0 {
		return att
	}
	sorted := make([]float64, len(samples))
	for i, s := range samples {
		sorted[i] = float64(s.ms)
	}
	sort.Float64s(sorted)
	p99 := sorted[(99*(len(sorted)-1)+50)/100]
	att.P99Ms = p99
	var counts [numCauses]int
	tail := 0
	for _, s := range samples {
		if float64(s.ms) > p99 {
			counts[s.cause]++
			tail++
		}
	}
	if tail == 0 {
		// Nearest-rank p99 ties the maximum (small runs, discrete
		// durations): widen to >= so the tail set is never empty.
		for _, s := range samples {
			if float64(s.ms) >= p99 {
				counts[s.cause]++
				tail++
			}
		}
	}
	att.TailQueries = tail
	for c := Cause(0); c < numCauses; c++ {
		if counts[c] > 0 {
			att.Causes[c.String()] = float64(counts[c]) / float64(tail)
		}
	}
	return att
}

// SLOReport returns the burn-rate monitor's current state.
func (m *Monitor) SLOReport() SLOReport { return m.slo.Report() }
