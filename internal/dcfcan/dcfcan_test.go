package dcfcan

import (
	"math"
	"math/rand"
	"testing"

	"armada/internal/can"
)

const testOrder = 9

func buildScheme(t *testing.T, zones int, seed int64) *Scheme {
	t.Helper()
	net, err := can.BuildRandom(zones, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net, testOrder, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	net := can.New(1)
	if _, err := New(net, testOrder, 5, 5); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := New(net, 0, 0, 1); err == nil {
		t.Error("bad curve order accepted")
	}
}

func TestPublishPlacesInCorrectZone(t *testing.T) {
	s := buildScheme(t, 64, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		v := rng.Float64() * 1000
		zoneID, err := s.Publish("o", v)
		if err != nil {
			t.Fatal(err)
		}
		z, ok := s.Network().Zone(zoneID)
		if !ok {
			t.Fatalf("zone %q missing", zoneID)
		}
		found := false
		for _, it := range z.Items() {
			if it.Value == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("value %v not stored in %q", v, zoneID)
		}
	}
}

// Completeness against brute force: the flood finds exactly the in-range
// objects.
func TestRangeQueryCompleteness(t *testing.T) {
	s := buildScheme(t, 150, 3)
	rng := rand.New(rand.NewSource(4))
	values := make([]float64, 400)
	for i := range values {
		values[i] = rng.Float64() * 1000
		if _, err := s.Publish(name(i), values[i]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 30; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*(1000-lo)
		res, err := s.RangeQuery(s.Network().RandomZone(rng), lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range values {
			if v >= lo && v <= hi {
				want++
			}
		}
		if len(res.Matches) != want {
			t.Fatalf("[%f,%f]: %d matches, want %d", lo, hi, len(res.Matches), want)
		}
		for _, m := range res.Matches {
			if m.Value < lo || m.Value > hi {
				t.Fatalf("out-of-range match %+v", m)
			}
		}
	}
}

// The flood visits exactly the zones intersecting the query segment.
func TestRangeQueryDestinations(t *testing.T) {
	s := buildScheme(t, 120, 5)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		lo := rng.Float64() * 900
		hi := lo + rng.Float64()*(1000-lo)
		res, err := s.RangeQuery(s.Network().RandomZone(rng), lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := s.ZonesIntersecting(lo, hi)
		if len(res.Destinations) != len(want) {
			t.Fatalf("[%f,%f]: visited %d zones, want %d", lo, hi, len(res.Destinations), len(want))
		}
		for i := range want {
			if res.Destinations[i] != want[i] {
				t.Fatalf("destinations %v, want %v", res.Destinations, want)
			}
		}
		if res.Stats.DestZones != len(want) {
			t.Fatalf("DestZones = %d, want %d", res.Stats.DestZones, len(want))
		}
	}
}

func TestRangeQueryValidation(t *testing.T) {
	s := buildScheme(t, 16, 7)
	if _, err := s.RangeQuery(s.Network().ZoneIDs()[0], 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := s.RangeQuery("nope", 0, 10); err == nil {
		t.Error("unknown issuer accepted")
	}
}

// DCF-CAN delay grows with range size (the contrast to PIRA in Figure 5).
func TestDelayGrowsWithRangeSize(t *testing.T) {
	s := buildScheme(t, 400, 9)
	rng := rand.New(rand.NewSource(10))
	avgDelay := func(width float64) float64 {
		total := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			lo := rng.Float64() * (1000 - width)
			res, err := s.RangeQuery(s.Network().RandomZone(rng), lo, lo+width)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.Delay
		}
		return float64(total) / trials
	}
	small, large := avgDelay(2), avgDelay(300)
	if large <= small {
		t.Errorf("delay did not grow with range size: width 2 -> %.1f, width 300 -> %.1f", small, large)
	}
}

// DCF-CAN delay grows with network size on the order of sqrt(N) (Figure 7's
// contrast).
func TestDelayGrowsWithNetworkSize(t *testing.T) {
	avgDelay := func(zones int) float64 {
		s := buildScheme(t, zones, int64(zones))
		rng := rand.New(rand.NewSource(int64(zones) + 1))
		total := 0
		const trials = 50
		for i := 0; i < trials; i++ {
			lo := rng.Float64() * 980
			res, err := s.RangeQuery(s.Network().RandomZone(rng), lo, lo+20)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.Delay
		}
		return float64(total) / trials
	}
	small, large := avgDelay(100), avgDelay(900)
	if ratio := large / small; ratio < 1.5 {
		t.Errorf("delay scaling 100 -> 900 zones: %.1f -> %.1f (ratio %.2f), want noticeable growth",
			small, large, ratio)
	}
	if large < 0.3*math.Sqrt(900) {
		t.Errorf("delay at 900 zones = %.1f, implausibly small for O(sqrt N)", large)
	}
}

// A point query floods only the median zone's segment: its cost is
// essentially the routing phase.
func TestPointQueryCost(t *testing.T) {
	s := buildScheme(t, 200, 11)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 20; i++ {
		v := rng.Float64() * 1000
		res, err := s.RangeQuery(s.Network().RandomZone(rng), v, v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DestZones < 1 {
			t.Fatal("point query reached no zone")
		}
		if res.Stats.Delay < res.Stats.RouteHops {
			t.Fatalf("delay %d below route hops %d", res.Stats.Delay, res.Stats.RouteHops)
		}
	}
}

func name(i int) string {
	return "it-" + string(rune('a'+i%26)) + string(rune('0'+i%10))
}
