// Package dcfcan implements the paper's baseline: Andrzejak & Xu's
// single-attribute range-query scheme with directed controlled flooding
// over CAN ("Scalable, Efficient Range Queries for Grid Information
// Services", IEEE P2P 2002), called DCF-CAN in the Armada paper.
//
// The attribute interval [L,H] is mapped onto CAN's 2-d space with a
// Hilbert space-filling curve: value v lands at the curve point of its
// normalized position, so a range [a,b] becomes a contiguous curve-index
// segment whose zones form a connected set. A query is processed in two
// phases:
//
//  1. Route (CAN greedy routing) from the issuing zone to the zone owning
//     the query's median value.
//  2. Directed controlled flooding: every zone receiving the query forwards
//     it to each neighbor whose zone intersects the query's curve segment,
//     except the zone it came from. Zones process the query once
//     (duplicates are suppressed on arrival but still counted as messages,
//     which is the flood's honest overhead).
//
// The resulting delay grows with both network size (the routing phase costs
// on the order of N^(1/2) hops on a 2-d CAN) and range size (the flood must
// cross the segment's zone set) — the behaviour Figures 5 and 7 contrast
// with PIRA's flat, bounded delay.
package dcfcan

import (
	"errors"
	"fmt"
	"sort"

	"armada/internal/can"
	"armada/internal/hilbert"
	"armada/internal/simnet"
)

// Errors returned by the scheme.
var (
	ErrBadSpace = errors.New("dcfcan: attribute space must have Low < High")
	ErrBadRange = errors.New("dcfcan: query low bound above high bound")
)

// Scheme binds a CAN network to an attribute space through a Hilbert curve.
type Scheme struct {
	net   *can.Network
	curve *hilbert.Curve
	low   float64
	high  float64
}

// New creates a scheme over net for attribute values in [low, high], using
// a Hilbert curve of the given order for the value-to-space mapping.
func New(net *can.Network, order uint, low, high float64) (*Scheme, error) {
	if !(low < high) {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadSpace, low, high)
	}
	curve, err := hilbert.New(order)
	if err != nil {
		return nil, err
	}
	return &Scheme{net: net, curve: curve, low: low, high: high}, nil
}

// Network returns the underlying CAN.
func (s *Scheme) Network() *can.Network { return s.net }

// normalize maps a value to curve position t ∈ [0,1].
func (s *Scheme) normalize(v float64) float64 {
	t := (v - s.low) / (s.high - s.low)
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Publish stores an object with the given attribute value on the zone
// owning its curve point.
func (s *Scheme) Publish(name string, value float64) (zoneID string, err error) {
	x, y := s.curve.ValueToPoint(s.normalize(value))
	zoneID, err = s.net.ZoneAt(x, y)
	if err != nil {
		return "", err
	}
	z, _ := s.net.Zone(zoneID)
	z.AddItem(can.Item{Name: name, Value: value})
	return zoneID, nil
}

// Match is one object satisfying a range query.
type Match struct {
	Name  string
	Value float64
	Zone  string
}

// Stats are the cost metrics of one DCF-CAN query.
type Stats struct {
	// Delay is the total hop count until the last destination zone received
	// the query: routing hops to the median zone plus flood depth.
	Delay int
	// RouteHops is the routing phase's contribution to Delay.
	RouteHops int
	// Messages counts every overlay message: the routing path plus every
	// flood forward (including duplicates suppressed on arrival).
	Messages int
	// DestZones is the number of distinct zones intersecting the query.
	DestZones int
}

// Result is the outcome of a range query.
type Result struct {
	Matches      []Match
	Destinations []string
	Stats        Stats
}

// floodMsg is the payload of one flood message.
type floodMsg struct {
	lo, hi uint64 // curve-index segment
	from   string // sending zone ("" for the flood seed)
}

// RangeQuery executes [lo, hi] from the given issuing zone.
func (s *Scheme) RangeQuery(issuer string, lo, hi float64) (*Result, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	if _, ok := s.net.Zone(issuer); !ok {
		return nil, fmt.Errorf("dcfcan: issuer %w", can.ErrNoSuchZone)
	}
	iLo := s.curve.ValueToIndex(s.normalize(lo))
	iHi := s.curve.ValueToIndex(s.normalize(hi))

	// Phase 1: route to the zone owning the median value.
	median := s.normalize((lo + hi) / 2)
	mx, my := s.curve.ValueToPoint(median)
	medianZone, routeHops, err := s.net.Route(issuer, mx, my)
	if err != nil {
		return nil, fmt.Errorf("dcfcan: median routing: %w", err)
	}

	// Phase 2: directed controlled flooding across the segment's zones.
	res := &Result{}
	seen := make(map[string]bool)
	handle := func(m simnet.Message) []simnet.Message {
		fm, ok := m.Payload.(floodMsg)
		if !ok {
			return nil
		}
		if seen[m.To] {
			return nil // duplicate: suppressed, but its delivery was counted
		}
		seen[m.To] = true
		zone, ok := s.net.Zone(m.To)
		if !ok {
			return nil
		}
		res.Destinations = append(res.Destinations, m.To)
		for _, it := range zone.Items() {
			if it.Value >= lo && it.Value <= hi {
				res.Matches = append(res.Matches, Match{Name: it.Name, Value: it.Value, Zone: m.To})
			}
		}
		var fwd []simnet.Message
		for _, nbID := range zone.Neighbors() {
			if nbID == fm.from {
				continue
			}
			nb, _ := s.net.Zone(nbID)
			if !s.curve.IntersectsSegment(fm.lo, fm.hi, nb.Rect()) {
				continue
			}
			fwd = append(fwd, simnet.Message{To: nbID, Payload: floodMsg{lo: fm.lo, hi: fm.hi, from: m.To}})
		}
		return fwd
	}
	floodMetrics, _ := simnet.RunSync(nil, []simnet.Message{
		{To: medianZone, Payload: floodMsg{lo: iLo, hi: iHi}},
	}, handle) // nil ctx: the baseline never cancels

	sort.Strings(res.Destinations)
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].Value != res.Matches[j].Value {
			return res.Matches[i].Value < res.Matches[j].Value
		}
		return res.Matches[i].Name < res.Matches[j].Name
	})
	res.Stats = Stats{
		Delay:     routeHops + floodMetrics.Delay,
		RouteHops: routeHops,
		Messages:  routeHops + floodMetrics.Messages,
		DestZones: len(res.Destinations),
	}
	return res, nil
}

// ZonesIntersecting returns, from the global view, the zones intersecting
// the value range — the ground truth for destination-set tests.
func (s *Scheme) ZonesIntersecting(lo, hi float64) []string {
	iLo := s.curve.ValueToIndex(s.normalize(lo))
	iHi := s.curve.ValueToIndex(s.normalize(hi))
	var out []string
	for _, id := range s.net.ZoneIDs() {
		z, _ := s.net.Zone(id)
		if s.curve.IntersectsSegment(iLo, iHi, z.Rect()) {
			out = append(out, id)
		}
	}
	return out
}
