// Package shortcut implements an issuer-side learned shortcut routing
// table: a bounded LRU mapping peer identifiers (normalized region
// prefixes — every peer owns exactly the ObjectIDs its identifier
// prefixes) to the responsible peer and, when replicated, its group
// members. Entries are learned passively from the delivery hops of every
// observed descent, so warm regions accumulate routing state for free.
// On issue, a query whose region the learned entries tile is routed in
// one direct hop per destination instead of a ~log N FRT descent.
//
// Correctness under churn is epoch-based, never best-effort — the same
// machinery descent frontiers use: every entry records the fissione
// topology epoch it was learned at, Route refuses entries from any other
// epoch (dropping them on sight), and a refused route simply means the
// query descends in full. A stale table can cost the descent it would
// have saved, never results.
package shortcut

import (
	"container/list"
	"sync"

	"armada/internal/kautz"
	"armada/internal/obs"
)

// MaxTargets caps the fan-out of one shortcut route. A region needing
// more learned entries than this is served by the normal descent, whose
// per-destination message cost is already amortized at that size.
const MaxTargets = 16

// Entry is one learned routing fact: the peer owning a region and, on a
// replicated network, its replica group (owner first, trie-order
// successors after; nil when unreplicated). Group is immutable after
// Learn; Route hands the slice out without copying.
type Entry struct {
	Owner kautz.Str
	Group []kautz.Str
}

// tentry is one table entry with its validity epoch.
type tentry struct {
	Entry
	epoch uint64
}

// Table is a bounded LRU of learned shortcut entries, safe for concurrent
// use (queries share it under the network's read lock).
type Table struct {
	k int // ObjectID length; an owner's region is ⟨MinExtend, MaxExtend⟩ at this k

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byOwner  map[kautz.Str]*list.Element
	// minLen and maxLen loosely bound the live owner-identifier lengths,
	// limiting the longest-prefix probe. They only ever widen: evicting the
	// last entry of an extreme length costs extra map probes, not wrong
	// results.
	minLen, maxLen int

	hits   obs.Counter // routes fully resolved from learned entries
	misses obs.Counter // routes that fell back to the descent
	stale  obs.Counter // entries dropped on sight for an epoch mismatch
	evicts obs.Counter // entries evicted by the capacity bound
}

// NewTable creates a table holding at most capacity entries (at least 1)
// for a network with ObjectID length k.
func NewTable(capacity, k int) *Table {
	if capacity < 1 {
		capacity = 1
	}
	return &Table{
		k:        k,
		capacity: capacity,
		ll:       list.New(),
		byOwner:  make(map[kautz.Str]*list.Element, capacity),
		minLen:   k + 1,
	}
}

// Learn records (or refreshes) the entry for owner at the given topology
// epoch, evicting the least recently used entry when over capacity. group
// must not be mutated afterwards.
func (t *Table) Learn(owner kautz.Str, group []kautz.Str, epoch uint64) {
	if len(owner) == 0 || len(owner) > t.k {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.byOwner[owner]; ok {
		en := el.Value.(*tentry)
		en.Group, en.epoch = group, epoch
		t.ll.MoveToFront(el)
		return
	}
	t.byOwner[owner] = t.ll.PushFront(&tentry{Entry: Entry{Owner: owner, Group: group}, epoch: epoch})
	if len(owner) < t.minLen {
		t.minLen = len(owner)
	}
	if len(owner) > t.maxLen {
		t.maxLen = len(owner)
	}
	for t.ll.Len() > t.capacity {
		t.removeLocked(t.ll.Back())
		t.evicts.Inc()
	}
}

// Route resolves a query region against the learned entries: it walks the
// region from Low to High, longest-prefix matching each position to a
// learned owner and stepping past that owner's region, and succeeds only
// when fresh entries tile the whole region (in ascending owner order,
// MaxTargets at most). The prefix-free namespace cover makes the tiling
// exact: a peer's identifier prefixing an ObjectID means the peer owns it.
// ok is false — one counted miss, zero messages spent — when any position
// finds no fresh entry; entries from another epoch are dropped on sight.
func (t *Table) Route(region kautz.Region, epoch uint64) (targets []Entry, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := region.Low
	for {
		if len(targets) == MaxTargets {
			t.misses.Inc()
			return nil, false
		}
		en, el, found := t.probeLocked(cur, epoch)
		if !found {
			t.misses.Inc()
			return nil, false
		}
		t.ll.MoveToFront(el)
		targets = append(targets, en.Entry)
		high := kautz.MaxExtend(en.Owner, t.k)
		if high >= region.High {
			break
		}
		next, hasNext := kautz.Succ(high)
		if !hasNext {
			t.misses.Inc()
			return nil, false
		}
		cur = next
	}
	t.hits.Inc()
	return targets, true
}

// probeLocked longest-prefix matches s against the live entries, dropping
// epoch-mismatched entries on sight. The caller holds t.mu.
func (t *Table) probeLocked(s kautz.Str, epoch uint64) (*tentry, *list.Element, bool) {
	high := t.maxLen
	if len(s) < high {
		high = len(s)
	}
	for l := high; l >= t.minLen; l-- {
		el, ok := t.byOwner[s[:l]]
		if !ok {
			continue
		}
		en := el.Value.(*tentry)
		if en.epoch != epoch {
			t.removeLocked(el)
			t.stale.Inc()
			continue
		}
		return en, el, true
	}
	return nil, nil, false
}

// removeLocked unlinks one element; the caller holds t.mu.
func (t *Table) removeLocked(el *list.Element) {
	t.ll.Remove(el)
	delete(t.byOwner, el.Value.(*tentry).Owner)
}

// Stats is a snapshot of the table's counters.
type Stats struct {
	// Hits and Misses count route resolutions; Stale is how many entries
	// were dropped on sight for a topology epoch mismatch; Evicted how many
	// the capacity bound pushed out.
	Hits    int64
	Misses  int64
	Stale   int64
	Evicted int64
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int
	Capacity int
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Hits:     t.hits.Value(),
		Misses:   t.misses.Value(),
		Stale:    t.stale.Value(),
		Evicted:  t.evicts.Value(),
		Entries:  t.ll.Len(),
		Capacity: t.capacity,
	}
}

// DescribeMetrics registers the table's counters on reg.
func (t *Table) DescribeMetrics(reg *obs.Registry) {
	reg.MustRegister("shortcut_hits_total", &t.hits)
	reg.MustRegister("shortcut_misses_total", &t.misses)
	reg.MustRegister("shortcut_stale_total", &t.stale)
	reg.MustRegister("shortcut_evictions_total", &t.evicts)
	reg.MustRegister("shortcut_entries", obs.GaugeFunc(func() int64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return int64(t.ll.Len())
	}))
}
