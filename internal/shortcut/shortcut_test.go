package shortcut

import (
	"testing"

	"armada/internal/kautz"
)

const k = 4

// region returns the owned region of an owner prefix at the package's k.
func region(owner kautz.Str) kautz.Region {
	return kautz.Region{Low: kautz.MinExtend(owner, k), High: kautz.MaxExtend(owner, k)}
}

func TestLearnRouteSingleOwner(t *testing.T) {
	tb := NewTable(8, k)
	tb.Learn("01", nil, 7)
	targets, ok := tb.Route(region("01"), 7)
	if !ok || len(targets) != 1 || targets[0].Owner != "01" {
		t.Fatalf("Route = %v, %v; want the learned owner", targets, ok)
	}
	// A sub-region of the owner's span resolves through the same entry.
	sub := kautz.Region{Low: kautz.MinExtend("012", k), High: kautz.MaxExtend("012", k)}
	if targets, ok = tb.Route(sub, 7); !ok || len(targets) != 1 || targets[0].Owner != "01" {
		t.Fatalf("Route(sub) = %v, %v; want the learned owner", targets, ok)
	}
	st := tb.Stats()
	if st.Hits != 2 || st.Misses != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 2 hits, 0 misses, 1 entry", st)
	}
}

func TestRouteTilesMultipleOwners(t *testing.T) {
	tb := NewTable(8, k)
	group := []kautz.Str{"1", "20"}
	tb.Learn("0", nil, 1)
	tb.Learn("1", group, 1)
	tb.Learn("2", nil, 1)
	whole := kautz.Region{Low: kautz.MinExtend("0", k), High: kautz.MaxExtend("2", k)}
	targets, ok := tb.Route(whole, 1)
	if !ok || len(targets) != 3 {
		t.Fatalf("Route(whole) = %v, %v; want 3 owners", targets, ok)
	}
	for i, want := range []kautz.Str{"0", "1", "2"} {
		if targets[i].Owner != want {
			t.Fatalf("target %d = %q, want %q (ascending order)", i, targets[i].Owner, want)
		}
	}
	if g := targets[1].Group; len(g) != 2 || g[0] != group[0] || g[1] != group[1] {
		t.Fatalf("group not carried through: %v", targets[1].Group)
	}
}

func TestRouteGapIsOneMiss(t *testing.T) {
	tb := NewTable(8, k)
	tb.Learn("0", nil, 1)
	tb.Learn("2", nil, 1) // "1" never learned: the tiling has a hole
	whole := kautz.Region{Low: kautz.MinExtend("0", k), High: kautz.MaxExtend("2", k)}
	if targets, ok := tb.Route(whole, 1); ok {
		t.Fatalf("Route across a gap succeeded: %v", targets)
	}
	st := tb.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v; want exactly one miss", st)
	}
}

func TestStaleEntriesDroppedOnSight(t *testing.T) {
	tb := NewTable(8, k)
	tb.Learn("01", nil, 3)
	if _, ok := tb.Route(region("01"), 4); ok {
		t.Fatal("Route trusted an entry from another epoch")
	}
	st := tb.Stats()
	if st.Stale != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v; want the stale entry dropped", st)
	}
	// Relearning at the live epoch restores the route.
	tb.Learn("01", nil, 4)
	if _, ok := tb.Route(region("01"), 4); !ok {
		t.Fatal("Route failed after relearning at the live epoch")
	}
}

func TestLRUEviction(t *testing.T) {
	tb := NewTable(2, k)
	tb.Learn("0", nil, 1)
	tb.Learn("1", nil, 1)
	tb.Learn("0", nil, 1) // refresh: "1" is now the least recently used
	tb.Learn("2", nil, 1)
	if st := tb.Stats(); st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v; want one eviction at capacity 2", st)
	}
	if _, ok := tb.Route(region("1"), 1); ok {
		t.Fatal("evicted entry still routes")
	}
	if _, ok := tb.Route(region("0"), 1); !ok {
		t.Fatal("refreshed entry was evicted instead of the LRU one")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	// After a split the table can briefly hold both the old parent owner
	// and a new child; the probe must prefer the more specific entry.
	tb := NewTable(8, k)
	tb.Learn("0", nil, 1)
	tb.Learn("01", nil, 1)
	targets, ok := tb.Route(region("01"), 1)
	if !ok || len(targets) != 1 || targets[0].Owner != "01" {
		t.Fatalf("Route = %v, %v; want the longest-prefix owner \"01\"", targets, ok)
	}
}

func TestMaxTargetsBoundsFanOut(t *testing.T) {
	// Full-length owners each own exactly one ID, so a span of
	// MaxTargets+1 IDs needs too many entries and must miss.
	ids := kautz.Enumerate(k)
	if len(ids) <= MaxTargets+1 {
		t.Fatalf("space too small: %d ids", len(ids))
	}
	tb := NewTable(len(ids), k)
	for _, id := range ids {
		tb.Learn(id, nil, 1)
	}
	wide := kautz.Region{Low: ids[0], High: ids[MaxTargets]}
	if targets, ok := tb.Route(wide, 1); ok {
		t.Fatalf("Route over %d owners succeeded (%d targets); want a miss past MaxTargets=%d",
			MaxTargets+1, len(targets), MaxTargets)
	}
	exact := kautz.Region{Low: ids[0], High: ids[MaxTargets-1]}
	if targets, ok := tb.Route(exact, 1); !ok || len(targets) != MaxTargets {
		t.Fatalf("Route over exactly MaxTargets owners = %d targets, %v", len(targets), ok)
	}
}

func TestLearnRejectsBadOwners(t *testing.T) {
	tb := NewTable(8, k)
	tb.Learn("", nil, 1)
	tb.Learn("01010", nil, 1) // longer than k
	if st := tb.Stats(); st.Entries != 0 {
		t.Fatalf("bad owners entered the table: %+v", st)
	}
}
