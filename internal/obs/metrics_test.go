package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var g Gauge
	reg.MustRegister("ops_total", &c)
	reg.MustRegister("inflight", &g)
	reg.MustRegister("peers", GaugeFunc(func() int64 { return 42 }))

	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)

	v := reg.Values()
	if v["ops_total"] != 5 {
		t.Errorf("counter = %d, want 5", v["ops_total"])
	}
	if v["inflight"] != 5 {
		t.Errorf("gauge = %d, want 5", v["inflight"])
	}
	if v["peers"] != 42 {
		t.Errorf("gauge func = %d, want 42", v["peers"])
	}
	// CounterValues must exclude gauges: deltas of its snapshots stay
	// meaningful.
	cv := reg.CounterValues()
	if _, ok := cv["inflight"]; ok {
		t.Errorf("CounterValues includes gauge: %v", cv)
	}
	if _, ok := cv["peers"]; ok {
		t.Errorf("CounterValues includes gauge func: %v", cv)
	}
	if cv["ops_total"] != 5 {
		t.Errorf("CounterValues counter = %d, want 5", cv["ops_total"])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.0; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Cumulative: ≤1 → {0.5, 1}; ≤2 → +{1.5}; ≤4 → +{3}; +Inf → +{100}.
	want := []int64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("x", &Counter{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate MustRegister did not panic")
		}
	}()
	reg.MustRegister("x", &Counter{})
}

// TestRegistryConcurrent is the -race stress test: concurrent writers on
// every instrument kind while readers snapshot and export continuously.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var g Gauge
	h := NewHistogram(1, 10, 100)
	reg.MustRegister("c_total", &c)
	reg.MustRegister("g", &g)
	reg.MustRegister("h", h)

	const (
		writers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 128))
			}
		}(w)
	}
	// Readers run until the writers finish.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for rdr := 0; rdr < 4; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = reg.Values()
				buf.Reset()
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	total := int64(writers * perW)
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// The CAS-maintained sum must be exact: every observed value is an
	// integer small enough that float64 addition is lossless.
	var wantSum float64
	for i := 0; i < perW; i++ {
		wantSum += float64(i % 128)
	}
	wantSum *= writers
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	h := NewHistogram(0.5, 1)
	h.Observe(0.25)
	h.Observe(2)
	reg.MustRegister("armada_ops_total", &c)
	reg.MustRegister("armada_ratio", h)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE armada_ops_total counter\narmada_ops_total 3\n",
		"# TYPE armada_ratio histogram\n",
		`armada_ratio_bucket{le="0.5"} 1`,
		`armada_ratio_bucket{le="1"} 1`,
		`armada_ratio_bucket{le="+Inf"} 2`,
		"armada_ratio_sum 2.25",
		"armada_ratio_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatBound(t *testing.T) {
	for in, want := range map[float64]string{
		0.5: "0_5", 1: "1", 2.25: "2_25", 1e21: "1e21",
	} {
		if got := formatBound(in); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestCounterValuesMonotonicDeltas: CounterValues snapshots taken while
// writers increment must be subtractable — every key present in every
// snapshot, no interval delta negative (counters, histogram counts and
// cumulative buckets alike), and the interval deltas telescoping to
// exactly the full-run delta. This is the contract the workload report's
// metric-delta block leans on.
func TestCounterValuesMonotonicDeltas(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	h := NewHistogram(1, 10, 100)
	reg.MustRegister("deltas_total", &c)
	reg.MustRegister("deltas_hist", h)
	reg.MustRegister("deltas_gauge", &Gauge{}) // must never appear in CounterValues

	const (
		writers = 6
		perW    = 4000
	)
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				h.Observe(float64((w*perW + i) % 128))
			}
		}(w)
	}
	go func() { wg.Wait(); close(writersDone) }()

	snaps := []map[string]int64{reg.CounterValues()}
	for loop := true; loop; {
		select {
		case <-writersDone:
			loop = false
		default:
		}
		snaps = append(snaps, reg.CounterValues())
	}
	snaps = append(snaps, reg.CounterValues()) // quiescent final snapshot

	first, last := snaps[0], snaps[len(snaps)-1]
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots; the writers finished before any interval landed", len(snaps))
	}
	sums := make(map[string]int64)
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if len(cur) != len(prev) {
			t.Fatalf("snapshot %d has %d keys, previous had %d", i, len(cur), len(prev))
		}
		for k, v := range cur {
			pv, ok := prev[k]
			if !ok {
				t.Fatalf("key %q appeared between snapshots %d and %d", k, i-1, i)
			}
			if v < pv {
				t.Fatalf("key %q went backwards between snapshots %d and %d: %d -> %d", k, i-1, i, pv, v)
			}
			sums[k] += v - pv
		}
	}
	for k, sum := range sums {
		if full := last[k] - first[k]; sum != full {
			t.Errorf("key %q: interval deltas sum to %d, full-run delta is %d", k, sum, full)
		}
	}
	if _, ok := last["deltas_gauge"]; ok {
		t.Error("gauge leaked into CounterValues; deltas over it are meaningless")
	}
	if got, want := last["deltas_total"], int64(writers*perW); got != want {
		t.Errorf("deltas_total = %d, want %d", got, want)
	}
	if got, want := last["deltas_hist_count"], int64(writers*perW); got != want {
		t.Errorf("deltas_hist_count = %d, want %d", got, want)
	}
	if got, want := last["deltas_hist_le_inf"], last["deltas_hist_count"]; got != want {
		t.Errorf("le_inf bucket %d != observation count %d", got, want)
	}
}
