package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(Event{Kind: EvDescentStep, Depth: i})
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := 7 + i; ev.Depth != want {
			t.Errorf("event %d depth = %d, want %d (oldest-first order)", i, ev.Depth, want)
		}
	}
	// Timestamps are stamped monotonically.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Errorf("events out of time order: %v then %v", evs[i-1].At, evs[i].At)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: EvDeliver, QID: uint64(w)})
				if i%100 == 0 {
					_ = r.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != 8*500 {
		t.Errorf("total = %d, want %d", r.Total(), 8*500)
	}
	if got := len(r.Events()); got != 128 {
		t.Errorf("retained = %d, want 128", got)
	}
}

// TestChromeTraceRoundTrip records one full query lifecycle and checks the
// Chrome trace-event export parses back with matched async span begin/end
// and the lifecycle's instants in between.
func TestChromeTraceRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	r.Record(Event{Kind: EvQueryStart, QID: 7, From: "010", Note: "range"})
	r.Record(Event{Kind: EvDescentStep, QID: 7, From: "010", To: "101", Depth: 1, Remaining: 2})
	r.Record(Event{Kind: EvDeliver, QID: 7, From: "101", To: "101", Depth: 2})
	r.Record(Event{Kind: EvReplicaRedirect, QID: 7, From: "101", To: "012", Depth: 2})
	r.Record(Event{Kind: EvPageCut, QID: 7, Note: "0101010"})
	r.Record(Event{Kind: EvQueryEnd, QID: 7, V1: 3, V2: 9})
	r.Record(Event{Kind: EvSplit, From: "101", V1: 1})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    *int64         `json:"ts"`
			ID    string         `json:"id"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("exported %d events, want 7", len(doc.TraceEvents))
	}
	var begins, ends int
	for _, ce := range doc.TraceEvents {
		if ce.TS == nil {
			t.Errorf("event %q missing ts", ce.Name)
		}
		switch ce.Phase {
		case "b":
			begins++
			if ce.ID != "7" || ce.Name != "query" {
				t.Errorf("begin span id=%q name=%q", ce.ID, ce.Name)
			}
			if ce.Args["query_kind"] != "range" {
				t.Errorf("begin args = %v", ce.Args)
			}
		case "e":
			ends++
			if ce.ID != "7" {
				t.Errorf("end span id=%q", ce.ID)
			}
			if ce.Args["delay"] != float64(3) || ce.Args["messages"] != float64(9) {
				t.Errorf("end args = %v", ce.Args)
			}
		case "i":
		default:
			t.Errorf("unexpected phase %q", ce.Phase)
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("span begin/end = %d/%d, want 1/1", begins, ends)
	}
	// The page cut's cursor must survive the round trip.
	var sawCut bool
	for _, ce := range doc.TraceEvents {
		if ce.Name == "page-cut" {
			sawCut = true
			if ce.Args["cursor"] != "0101010" {
				t.Errorf("page-cut args = %v", ce.Args)
			}
		}
	}
	if !sawCut {
		t.Error("no page-cut instant exported")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvQueryStart, EvQueryEnd, EvDescentStep, EvDeliver,
		EvReplicaRedirect, EvFrontierSeed, EvShortcutSeed, EvFrontierCapture,
		EvPageCut, EvRepair, EvSplit, EvMigrate}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "event(200)" {
		t.Errorf("unknown kind = %q", EventKind(200).String())
	}
}
