// Package obs is Armada's observability substrate: a process-local metrics
// registry (counters, gauges, bounded-bucket histograms — all lock-free
// atomic updates, allocation-free on the hot path) and a query-lifecycle
// flight recorder (recorder.go). Components own their instruments and
// register them by name; the registry is only the directory read by
// exporters (the Prometheus text endpoint, expvar, the workload report's
// metric deltas), so registration cost is paid once at construction and
// never on an update.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metric is anything the registry can hold. The interface is closed: the
// implementations in this package are the full set.
type Metric interface {
	metricKind() string
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; updates are a single atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative to keep the counter monotonic).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (*Counter) metricKind() string { return "counter" }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (*Gauge) metricKind() string { return "gauge" }

// GaugeFunc is a gauge computed at read time — for values already
// maintained elsewhere (e.g. the live peer count). The function must be
// safe to call concurrently with anything.
type GaugeFunc func() int64

func (GaugeFunc) metricKind() string { return "gauge" }

// Histogram is a fixed-bucket histogram with atomic, allocation-free
// observation: one linear scan of the (small, immutable) bound slice, one
// atomic bucket increment, one atomic count increment and a CAS loop for
// the float sum. Create with NewHistogram.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; bucket i counts v <= bounds[i]
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An implicit +Inf bucket is always appended. It panics on
// unsorted or empty bounds (a construction-time bug, never load-dependent).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the bucket upper bounds and the cumulative count at or
// below each (Prometheus le semantics), excluding the implicit +Inf bucket
// whose cumulative count is Count.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.bounds))
	var c int64
	for i := range h.bounds {
		c += h.buckets[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

func (*Histogram) metricKind() string { return "histogram" }

// Registry is a named directory of metrics. Registration locks; reads
// (Values, WritePrometheus) lock only the directory, never the updates.
type Registry struct {
	mu    sync.Mutex
	named map[string]Metric
	order []string // registration order, for stable export
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]Metric)}
}

// MustRegister adds a metric under name, panicking on a duplicate name or
// nil metric — both construction-time bugs.
func (r *Registry) MustRegister(name string, m Metric) {
	if m == nil {
		panic("obs: nil metric " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.named[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.named[name] = m
	r.order = append(r.order, name)
}

// snapshot copies the directory under the lock so exporters read metric
// values without holding it.
func (r *Registry) snapshot() (names []string, named map[string]Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names = append([]string(nil), r.order...)
	named = make(map[string]Metric, len(r.named))
	for k, v := range r.named {
		named[k] = v
	}
	return names, named
}

// CounterValues returns every monotonic value in the registry: counters,
// histogram observation counts (<name>_count) and cumulative bucket counts
// (<name>_le_<bound>, plus <name>_le_inf). Gauges are excluded, so any two
// snapshots may be subtracted to get an interval delta.
func (r *Registry) CounterValues() map[string]int64 {
	names, named := r.snapshot()
	out := make(map[string]int64, len(names))
	for _, name := range names {
		switch m := named[name].(type) {
		case *Counter:
			out[name] = m.Value()
		case *Histogram:
			out[name+"_count"] = m.Count()
			bounds, cum := m.Buckets()
			for i, b := range bounds {
				out[name+"_le_"+formatBound(b)] = cum[i]
			}
			out[name+"_le_inf"] = m.Count()
		}
	}
	return out
}

// Values returns every metric's instantaneous value — CounterValues plus
// gauges. Use CounterValues when deltas must be meaningful.
func (r *Registry) Values() map[string]int64 {
	out := r.CounterValues()
	names, named := r.snapshot()
	for _, name := range names {
		switch m := named[name].(type) {
		case *Gauge:
			out[name] = m.Value()
		case GaugeFunc:
			out[name] = m()
		}
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, named := r.snapshot()
	for _, name := range names {
		m := named[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.metricKind()); err != nil {
			return err
		}
		var err error
		switch m := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s %d\n", name, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s %d\n", name, m.Value())
		case GaugeFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", name, m())
		case *Histogram:
			bounds, cum := m.Buckets()
			for i, b := range bounds {
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum[i]); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count()); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(m.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", name, m.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// SortedNames returns the registered metric names, sorted — for tests and
// debug dumps.
func (r *Registry) SortedNames() []string {
	names, _ := r.snapshot()
	sort.Strings(names)
	return names
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// formatBound renders a bucket bound as a metric-name suffix: "0.5" → "0_5"
// so the flattened CounterValues keys stay identifier-shaped.
func formatBound(f float64) string {
	s := formatFloat(f)
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.':
			out = append(out, '_')
		case '+':
			// skip
		case '-':
			out = append(out, 'm')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
