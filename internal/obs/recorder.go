package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// EventKind classifies one flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds, covering a query's full lifecycle plus the
// background control-plane actions interleaved with it.
const (
	// EvQueryStart opens a query span: From is the issuer, Note the query
	// kind.
	EvQueryStart EventKind = iota + 1
	// EvQueryEnd closes a query span: V1 is the realized hop delay, V2 the
	// message count; Note carries the error text when the query failed.
	EvQueryEnd
	// EvDescentStep is one FRT forward: From forwards to To at Depth with
	// Remaining hops to the destination level.
	EvDescentStep
	// EvDeliver is a delivery served by the region owner itself (From ==
	// To).
	EvDeliver
	// EvReplicaRedirect is a delivery the read policy redirected: From is
	// the region owner, To the serving replica.
	EvReplicaRedirect
	// EvFrontierSeed is one direct fan-out send of a frontier-seeded query
	// (the descent was skipped): From is the issuer, To a surviving
	// destination.
	EvFrontierSeed
	// EvShortcutSeed is one direct fan-out send of a shortcut-routed query
	// (the descent was skipped): From is the issuer, To the serving peer
	// the learned route chose.
	EvShortcutSeed
	// EvFrontierCapture records a full descent capturing its frontier; V1
	// is the number of captured entries.
	EvFrontierCapture
	// EvPageCut records a paginated query truncating its result; Note is
	// the continuation cursor (NextOffsetID).
	EvPageCut
	// EvRepair records replica repair after a topology change: From is the
	// repaired region's owner, V1 the objects copied.
	EvRepair
	// EvSplit records a controller auto-split: From is the split peer, V1
	// the extra cascade splits it needed.
	EvSplit
	// EvMigrate records a controller ownership migration: From is the
	// donor, To the hot peer, V1 the extra cascade splits.
	EvMigrate
)

// String names the kind for dumps and the Chrome trace export.
func (k EventKind) String() string {
	switch k {
	case EvQueryStart:
		return "query-start"
	case EvQueryEnd:
		return "query-end"
	case EvDescentStep:
		return "descent-step"
	case EvDeliver:
		return "deliver"
	case EvReplicaRedirect:
		return "replica-redirect"
	case EvFrontierSeed:
		return "frontier-seed"
	case EvShortcutSeed:
		return "shortcut-seed"
	case EvFrontierCapture:
		return "frontier-capture"
	case EvPageCut:
		return "page-cut"
	case EvRepair:
		return "repair"
	case EvSplit:
		return "split"
	case EvMigrate:
		return "migrate"
	default:
		return "event(" + strconv.Itoa(int(k)) + ")"
	}
}

// Event is one recorded flight-recorder event. Field meaning varies by
// Kind (see the kind constants); unused fields are zero.
type Event struct {
	// At is the event time relative to the recorder's start.
	At   time.Duration `json:"at"`
	Kind EventKind     `json:"kind"`
	// QID ties the event to one query's lifecycle; 0 for background events
	// (repair, split, migrate).
	QID       uint64 `json:"qid,omitempty"`
	From      string `json:"from,omitempty"`
	To        string `json:"to,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	Remaining int    `json:"remaining,omitempty"`
	V1        int64  `json:"v1,omitempty"`
	V2        int64  `json:"v2,omitempty"`
	Note      string `json:"note,omitempty"`
}

// Recorder is a bounded ring buffer of flight-recorder events. Record
// appends under a short mutex (the buffer is preallocated; recording never
// allocates), overwriting the oldest events once full. A Recorder is safe
// for concurrent use.
type Recorder struct {
	start time.Time

	mu      sync.Mutex
	buf     []Event
	next    int // index the next event lands at
	wrapped bool
	total   Counter
}

// NewRecorder builds a recorder holding the last capacity events
// (capacity must be at least 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{start: time.Now(), buf: make([]Event, 0, capacity)}
}

// Record stamps ev.At and appends it, overwriting the oldest event when
// the ring is full.
func (r *Recorder) Record(ev Event) {
	ev.At = time.Since(r.start)
	r.total.Inc()
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next++
		r.wrapped = true
		if r.next == len(r.buf) {
			r.next = 0
		}
	}
	r.mu.Unlock()
}

// Total returns how many events were recorded over the recorder's
// lifetime, including events the ring has since overwritten.
func (r *Recorder) Total() int64 { return r.total.Value() }

// TotalCounter exposes the lifetime event count as a registrable Counter.
func (r *Recorder) TotalCounter() *Counter { return &r.total }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). Queries export as async "b"/"e" spans
// keyed by QID; everything else as thread-scoped instants.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events as Chrome trace-event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
// Query lifecycles become async spans (one per QID); hop and control-plane
// events become instants carrying their fields as args.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  "armada",
			TS:   ev.At.Microseconds(),
			PID:  1,
			TID:  1,
		}
		args := map[string]any{}
		if ev.QID != 0 {
			args["qid"] = ev.QID
		}
		if ev.From != "" {
			args["from"] = ev.From
		}
		if ev.To != "" {
			args["to"] = ev.To
		}
		switch ev.Kind {
		case EvQueryStart, EvQueryEnd:
			ce.Name = "query"
			ce.Cat = "query"
			ce.ID = strconv.FormatUint(ev.QID, 10)
			if ev.Kind == EvQueryStart {
				ce.Phase = "b"
				if ev.Note != "" {
					args["query_kind"] = ev.Note
				}
			} else {
				ce.Phase = "e"
				args["delay"] = ev.V1
				args["messages"] = ev.V2
				if ev.Note != "" {
					args["error"] = ev.Note
				}
			}
		case EvDescentStep, EvDeliver, EvReplicaRedirect, EvFrontierSeed, EvShortcutSeed:
			ce.Cat = "hop"
			ce.Phase = "i"
			ce.Scope = "t"
			args["depth"] = ev.Depth
			args["remaining"] = ev.Remaining
		case EvFrontierCapture, EvPageCut:
			ce.Cat = "query"
			ce.Phase = "i"
			ce.Scope = "t"
			if ev.V1 != 0 {
				args["entries"] = ev.V1
			}
			if ev.Note != "" {
				args["cursor"] = ev.Note
			}
		default:
			ce.Cat = "control"
			ce.Phase = "i"
			ce.Scope = "t"
			if ev.V1 != 0 {
				args["v1"] = ev.V1
			}
			if ev.V2 != 0 {
				args["v2"] = ev.V2
			}
			if ev.Note != "" {
				args["note"] = ev.Note
			}
		}
		ce.Args = args
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: out})
}
