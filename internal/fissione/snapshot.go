package fissione

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"armada/internal/kautz"
)

// Warm-start snapshots.
//
// A snapshot serializes the routing-relevant topology — the identifier
// cover, every peer's out-edges, the replication degree, the epoch and the
// rng replay state — but no stored objects. Loading reconstructs the
// network in O(file): identifiers are unpacked into one shared blob,
// in-edges are recovered by inverting the out-edges (the lists are exact
// duals on a Kautz cover), and all routing tables are packed into one
// arena. The loaded network is byte-identical to the one the snapshot was
// taken from: same cover, same tables, same epoch, and — because the
// builder's rng is re-seeded and its join draws replayed — the same future
// join sequence. A fingerprint trailer makes any decode or inversion
// mismatch a load error rather than silent corruption.
//
// The rng replay covers join draws only; a network that consumed its own
// rng through RandomPeer(nil) will not replay those draws. Armada always
// passes an explicit rng there, so snapshots taken through the armada
// layer replay exactly.

// snapshotMagic identifies and versions the snapshot format.
const snapshotMagic = "ARMDSNP1"

// snapshotMaxPeers bounds the peer count a loader will accept, so a
// corrupt or hostile header cannot trigger an absurd allocation.
const snapshotMaxPeers = 1 << 28

// WriteSnapshot serializes the network's topology to w in the versioned
// binary snapshot format. Stored objects are not serialized. Safe to call
// while the topology is externally quiesced (the same exclusion every
// audit requires).
func (n *Network) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		bw.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	writeUvarint(uint64(n.k))
	bw.Write(buf[:binary.PutVarint(buf[:], n.seed)])
	writeUvarint(n.joins)
	writeUvarint(uint64(n.replicas))
	writeUvarint(n.epoch.Load())
	writeUvarint(uint64(len(n.ids)))
	for _, id := range n.ids {
		writeUvarint(uint64(len(id)))
		bw.WriteString(string(id))
	}
	for _, id := range n.ids {
		out := n.peers[id].Out()
		writeUvarint(uint64(len(out)))
		for _, nb := range out {
			idx := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= nb })
			if idx >= len(n.ids) || n.ids[idx] != nb {
				return fmt.Errorf("fissione: snapshot: %q lists unknown neighbor %q", id, nb)
			}
			writeUvarint(uint64(idx))
		}
	}
	var fp [8]byte
	binary.LittleEndian.PutUint64(fp[:], snapshotCheck(n.Fingerprint(), n.seed, n.joins))
	bw.Write(fp[:])
	return bw.Flush()
}

// snapshotCheck folds the rng replay state into the topology fingerprint:
// the trailer must move if any serialized field does, and seed and join
// count are not part of Fingerprint (which digests topology only).
func snapshotCheck(fp uint64, seed int64, joins uint64) uint64 {
	fp ^= uint64(seed) * 0x9e3779b97f4a7c15
	fp ^= joins * 0xbf58476d1ce4e5b9
	return fp
}

// LoadSnapshot reconstructs a network from a snapshot written by
// WriteSnapshot. The result carries empty stores; replication degree,
// epoch and the builder rng state are restored, so subsequent joins,
// publishes and queries behave exactly as on the network the snapshot was
// taken from.
func LoadSnapshot(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	bad := func(format string, args ...any) error {
		return fmt.Errorf("fissione: snapshot: "+format, args...)
	}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, bad("reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, bad("bad magic %q (want %q)", magic, snapshotMagic)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }

	ku, err := readUvarint()
	if err != nil {
		return nil, bad("reading k: %w", err)
	}
	k := int(ku)
	if k < 2 || k > kautz.MaxRankLen {
		return nil, bad("k=%d out of range [2, %d]", k, kautz.MaxRankLen)
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, bad("reading seed: %w", err)
	}
	joins, err := readUvarint()
	if err != nil {
		return nil, bad("reading join count: %w", err)
	}
	replicasU, err := readUvarint()
	if err != nil {
		return nil, bad("reading replicas: %w", err)
	}
	replicas := int(replicasU)
	if replicas < 1 {
		return nil, bad("replication degree %d < 1", replicas)
	}
	epoch, err := readUvarint()
	if err != nil {
		return nil, bad("reading epoch: %w", err)
	}
	np, err := readUvarint()
	if err != nil {
		return nil, bad("reading peer count: %w", err)
	}
	if np < 3 || np > snapshotMaxPeers {
		return nil, bad("peer count %d out of range [3, %d]", np, snapshotMaxPeers)
	}
	npeers := int(np)

	// Identifiers: unpack into one shared blob, exactly as the batch
	// builder lays them out.
	lens := make([]int, npeers)
	var blob strings.Builder
	idBuf := make([]byte, k)
	for i := range lens {
		lu, err := readUvarint()
		if err != nil {
			return nil, bad("reading id %d length: %w", i, err)
		}
		l := int(lu)
		if l < 1 || l >= k {
			return nil, bad("id %d length %d out of range [1, %d]", i, l, k-1)
		}
		lens[i] = l
		if _, err := io.ReadFull(br, idBuf[:l]); err != nil {
			return nil, bad("reading id %d: %w", i, err)
		}
		blob.Write(idBuf[:l])
	}
	packed := blob.String()
	ids := make([]kautz.Str, npeers)
	peers := make(map[kautz.Str]*Peer, npeers)
	off := 0
	for i, l := range lens {
		id := kautz.Str(packed[off : off+l])
		off += l
		if !kautz.Valid(id) {
			return nil, bad("id %d (%q) is not a Kautz string", i, id)
		}
		if i > 0 && id <= ids[i-1] {
			return nil, bad("ids out of order at %d: %q after %q", i, id, ids[i-1])
		}
		ids[i] = id
		peers[id] = newPeer(id)
	}

	// Out-edges as indices; in-edges recovered by inversion (iterating
	// sources in ascending order keeps every in-list sorted). All tables
	// pack into one arena.
	outDeg := make([]int32, npeers)
	totalOut := 0
	outIdx := make([]uint32, 0, 4*npeers)
	for i := range ids {
		du, err := readUvarint()
		if err != nil {
			return nil, bad("reading out-degree of %q: %w", ids[i], err)
		}
		d := int(du)
		if d > npeers {
			return nil, bad("out-degree %d of %q exceeds peer count", d, ids[i])
		}
		outDeg[i] = int32(d)
		totalOut += d
		for j := 0; j < d; j++ {
			xu, err := readUvarint()
			if err != nil {
				return nil, bad("reading out-edge %d of %q: %w", j, ids[i], err)
			}
			if xu >= np {
				return nil, bad("out-edge index %d of %q out of range", xu, ids[i])
			}
			outIdx = append(outIdx, uint32(xu))
		}
	}
	inDeg := make([]int32, npeers)
	for _, v := range outIdx {
		inDeg[v]++
	}
	base := make([]int32, npeers+1)
	for i := 0; i < npeers; i++ {
		base[i+1] = base[i] + outDeg[i] + inDeg[i]
	}
	arena := make([]kautz.Str, base[npeers])
	cursor := make([]int32, npeers) // next in-slot per peer, relative to its in-section
	pos := 0
	for u := 0; u < npeers; u++ {
		for j := int32(0); j < outDeg[u]; j++ {
			v := outIdx[pos]
			arena[base[u]+j] = ids[v]
			arena[base[v]+outDeg[v]+cursor[v]] = ids[u]
			cursor[v]++
			pos++
		}
	}
	for i, id := range ids {
		peers[id].setTables(arena[base[i]:base[i+1]:base[i+1]], int(outDeg[i]))
	}

	var fp [8]byte
	if _, err := io.ReadFull(br, fp[:]); err != nil {
		return nil, bad("reading fingerprint: %w", err)
	}
	want := binary.LittleEndian.Uint64(fp[:])

	n := &Network{
		k:        k,
		peers:    peers,
		ids:      ids,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		joins:    joins,
		replicas: replicas,
	}
	n.epoch.Store(epoch)
	// Replay the builder's join draws so future joins continue the exact
	// sequence the snapshotted network would have produced.
	space := int64(kautz.SpaceSize(k))
	for i := uint64(0); i < joins; i++ {
		n.rng.Int63n(space)
	}

	if err := n.CheckCover(); err != nil {
		return nil, bad("cover check failed: %w", err)
	}
	if got := snapshotCheck(n.Fingerprint(), seed, joins); got != want {
		return nil, bad("fingerprint mismatch: %x != %x", got, want)
	}
	return n, nil
}
