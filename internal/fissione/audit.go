package fissione

import (
	"fmt"
	"math"
	"sort"

	"armada/internal/kautz"
)

// IDLengthStats summarizes the distribution of peer identifier lengths. The
// paper's FISSIONE bounds are Max < 2·log₂N and Avg < log₂N.
type IDLengthStats struct {
	Min int
	Max int
	Avg float64
}

// IDLengths returns the identifier length distribution.
func (n *Network) IDLengths() IDLengthStats {
	s := IDLengthStats{Min: math.MaxInt}
	total := 0
	for _, id := range n.ids {
		l := len(id)
		total += l
		if l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
	}
	s.Avg = float64(total) / float64(len(n.ids))
	return s
}

// AvgOutDegree returns the mean out-degree across peers. FISSIONE's average
// degree is 4 (2 out + 2 in on average; out-degree alone averages 2).
func (n *Network) AvgOutDegree() float64 {
	total := 0
	for _, id := range n.ids {
		total += n.peers[id].Degree()
	}
	return float64(total) / float64(len(n.ids))
}

// AvgDegree returns the mean total degree (in + out) across peers.
func (n *Network) AvgDegree() float64 {
	total := 0
	for _, id := range n.ids {
		p := n.peers[id]
		total += len(p.nbr)
	}
	return float64(total) / float64(len(n.ids))
}

// CheckCover verifies that the peer identifiers form a prefix-free exact
// cover of KautzSpace(2,k): no identifier is a prefix of another, and the
// regions sum to the whole namespace.
func (n *Network) CheckCover() error {
	ids := n.PeerIDs() // sorted
	maxLen := 0
	for _, id := range ids {
		if !kautz.Valid(id) || len(id) == 0 || len(id) >= n.k {
			return fmt.Errorf("%w: identifier %q invalid for k=%d", ErrCorrupt, id, n.k)
		}
		if len(id) > maxLen {
			maxLen = len(id)
		}
	}
	for i := 1; i < len(ids); i++ {
		if ids[i].HasPrefix(ids[i-1]) {
			return fmt.Errorf("%w: %q is a prefix of %q", ErrCorrupt, ids[i-1], ids[i])
		}
	}
	// Each identifier of length l covers 2^(maxLen-l) slots of a depth-maxLen
	// expansion; a full cover sums to 3·2^(maxLen-1).
	var total uint64
	for _, id := range ids {
		total += uint64(1) << uint(maxLen-len(id))
	}
	if want := uint64(3) << uint(maxLen-1); total != want {
		return fmt.Errorf("%w: regions cover %d/%d of the namespace", ErrCorrupt, total, want)
	}
	return nil
}

// CheckInvariant verifies the neighborhood invariant: the identifier
// lengths of any pair of neighboring peers differ by at most one.
func (n *Network) CheckInvariant() error {
	for _, id := range n.ids {
		if err := n.checkPeerInvariant(id); err != nil {
			return err
		}
	}
	return nil
}

// checkPeerInvariant verifies the neighborhood invariant at one peer.
func (n *Network) checkPeerInvariant(id kautz.Str) error {
	p := n.peers[id]
	for _, lists := range [2][]kautz.Str{p.Out(), p.In()} {
		for _, nb := range lists {
			if d := len(id) - len(nb); d > 1 || d < -1 {
				return fmt.Errorf("fissione: neighborhood invariant violated: |%q|-|%q| = %d", id, nb, d)
			}
		}
	}
	return nil
}

// CheckTables verifies that every peer's stored routing table matches the
// tables derived from the current cover, and that in/out lists are duals.
func (n *Network) CheckTables() error {
	for _, id := range n.ids {
		if err := n.checkPeerTables(id); err != nil {
			return err
		}
	}
	return nil
}

// checkPeerTables verifies one peer's stored routing table against the
// derived one and the in/out duality of its out-edges.
func (n *Network) checkPeerTables(id kautz.Str) error {
	p := n.peers[id]
	if !equalIDs(p.Out(), n.computeOut(id)) {
		return fmt.Errorf("fissione: stale out-table at %q: have %v, want %v", id, p.Out(), n.computeOut(id))
	}
	if !equalIDs(p.In(), n.computeIn(id)) {
		return fmt.Errorf("fissione: stale in-table at %q: have %v, want %v", id, p.In(), n.computeIn(id))
	}
	for _, nb := range p.Out() {
		q, ok := n.peers[nb]
		if !ok {
			return fmt.Errorf("fissione: %q lists missing out-neighbor %q", id, nb)
		}
		if !containsID(q.In(), id) {
			return fmt.Errorf("fissione: %q -> %q edge not mirrored in in-table", id, nb)
		}
	}
	return nil
}

// Audit runs every structural check; with a replication degree above 1 it
// also verifies byte-for-byte replica-set consistency (CheckReplicas).
func (n *Network) Audit() error {
	if err := n.CheckCover(); err != nil {
		return err
	}
	if err := n.CheckInvariant(); err != nil {
		return err
	}
	if err := n.CheckTables(); err != nil {
		return err
	}
	if n.replicas > 1 {
		return n.CheckReplicas()
	}
	return nil
}

// AuditSampled runs the structural checks on a deterministic evenly-spaced
// sample of roughly the given number of peers instead of all of them. The
// cover check still runs in full — it is a single O(N) pass and global by
// nature — while the per-peer invariant, table and replica checks are
// sampled. A sample of zero or at least the network size degenerates to
// the full Audit. The sample is deterministic (every ceil(N/sample)-th
// identifier in sorted order), so repeated audits of an unchanged network
// check the same peers.
func (n *Network) AuditSampled(sample int) error {
	if sample <= 0 || sample >= len(n.ids) {
		return n.Audit()
	}
	if err := n.CheckCover(); err != nil {
		return err
	}
	stride := (len(n.ids) + sample - 1) / sample
	for i := 0; i < len(n.ids); i += stride {
		id := n.ids[i]
		if err := n.checkPeerInvariant(id); err != nil {
			return err
		}
		if err := n.checkPeerTables(id); err != nil {
			return err
		}
	}
	if n.replicas > 1 {
		for i := 0; i < len(n.ids); i += stride {
			if err := n.checkReplicaRegion(n.ids[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// PeersIntersectingRegion returns, from the global view, the identifiers of
// all peers owning at least one ObjectID in the region — the ground-truth
// destination set ("Destpeers") used to validate query engines.
func (n *Network) PeersIntersectingRegion(r kautz.Region) []kautz.Str {
	var out []kautz.Str
	for _, id := range n.ids {
		if r.ContainsPrefix(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []kautz.Str) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsID(list []kautz.Str, id kautz.Str) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}
