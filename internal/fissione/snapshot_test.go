package fissione

import (
	"bytes"
	"testing"
)

// TestSnapshotRoundTrip pins the loader to the builder: a loaded network
// must match the saved one byte for byte — cover, tables, epoch,
// replication degree — and continue the same join sequence.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		k, size  int
		seed     int64
		replicas int
		churn    bool
	}{
		{16, 50, 1, 1, false},
		{32, 500, 7, 1, false},
		{32, 300, 3, 2, false},
		{32, 400, 11, 1, true},
		{32, 400, 13, 3, true},
	} {
		n, err := BuildRandom(tc.k, tc.size, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		if tc.replicas > 1 {
			if err := n.SetReplicas(tc.replicas); err != nil {
				t.Fatal(err)
			}
		}
		if tc.churn {
			// Shake the topology so the snapshot covers a churned network,
			// not just a fresh build.
			for i := 0; i < 20; i++ {
				if _, err := n.Join(); err != nil {
					t.Fatal(err)
				}
			}
			ids := n.PeerIDs()
			for i := 0; i < 10; i++ {
				if err := n.Leave(ids[(i*37)%len(ids)]); err != nil {
					t.Fatal(err)
				}
			}
		}

		var buf bytes.Buffer
		if err := n.WriteSnapshot(&buf); err != nil {
			t.Fatalf("k=%d size=%d: write: %v", tc.k, tc.size, err)
		}
		m, err := LoadSnapshot(&buf)
		if err != nil {
			t.Fatalf("k=%d size=%d: load: %v", tc.k, tc.size, err)
		}

		if got, want := m.Fingerprint(), n.Fingerprint(); got != want {
			t.Fatalf("k=%d size=%d: fingerprint %x != %x", tc.k, tc.size, got, want)
		}
		if got, want := m.Epoch(), n.Epoch(); got != want {
			t.Errorf("k=%d size=%d: epoch %d != %d", tc.k, tc.size, got, want)
		}
		if got, want := m.Replicas(), n.Replicas(); got != want {
			t.Errorf("k=%d size=%d: replicas %d != %d", tc.k, tc.size, got, want)
		}
		if err := m.Audit(); err != nil {
			t.Errorf("k=%d size=%d: loaded audit: %v", tc.k, tc.size, err)
		}
		// rng continuity: the next join draws the same target on both.
		jn, err1 := n.Join()
		jm, err2 := m.Join()
		if err1 != nil || err2 != nil {
			t.Fatalf("k=%d size=%d: post-load join: %v / %v", tc.k, tc.size, err1, err2)
		}
		if jn != jm {
			t.Errorf("k=%d size=%d: post-load joins diverge: %q != %q", tc.k, tc.size, jn, jm)
		}
	}
}

// TestSnapshotRejectsCorruption checks truncation and bit flips surface as
// load errors, not corrupt networks.
func TestSnapshotRejectsCorruption(t *testing.T) {
	n, err := BuildRandom(16, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := LoadSnapshot(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated snapshot loaded without error")
	}
	if _, err := LoadSnapshot(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("snapshot missing fingerprint byte loaded without error")
	}
	for _, pos := range []int{0, len(snapshotMagic) + 1, len(raw) / 2, len(raw) - 3} {
		flipped := append([]byte(nil), raw...)
		flipped[pos] ^= 0x40
		if _, err := LoadSnapshot(bytes.NewReader(flipped)); err == nil {
			t.Errorf("snapshot with byte %d flipped loaded without error", pos)
		}
	}
}
