package fissione

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"armada/internal/kautz"
)

// refStore is the naive reference model of a peer store: the map the
// pre-index implementation used, queried by filter-and-sort. The ordered
// index must agree with it byte for byte on every operation.
type refStore map[kautz.Str][]Object

func (ref refStore) add(id kautz.Str, obj Object) { ref[id] = append(ref[id], obj) }

func (ref refStore) remove(id kautz.Str, obj Object) bool {
	objs := ref[id]
	for i, o := range objs {
		if o.Name != obj.Name || !reflect.DeepEqual(o.Values, obj.Values) {
			continue
		}
		objs = append(objs[:i], objs[i+1:]...)
		if len(objs) == 0 {
			delete(ref, id)
		} else {
			ref[id] = objs
		}
		return true
	}
	return false
}

func (ref refStore) count() int {
	n := 0
	for _, objs := range ref {
		n += len(objs)
	}
	return n
}

// inRegion is the old O(store) scan-and-sort, kept as the oracle.
func (ref refStore) inRegion(r kautz.Region) []StoredObject {
	var out []StoredObject
	for id, objs := range ref {
		if !r.Contains(id) {
			continue
		}
		for _, o := range objs {
			out = append(out, StoredObject{ObjectID: id, Object: o})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjectID != out[j].ObjectID {
			return out[i].ObjectID < out[j].ObjectID
		}
		return out[i].Object.Name < out[j].Object.Name
	})
	return out
}

func (ref refStore) all(k int) []StoredObject {
	return ref.inRegion(kautz.Region{Low: kautz.MinExtend("", k), High: kautz.MaxExtend("", k)})
}

// refObject derives an object deterministically from a small name space so
// that equal (ObjectID, Name) pairs always carry equal Values — ties are
// then identical elements and any tie order is byte-identical.
func refObject(rng *rand.Rand) Object {
	n := rng.Intn(40)
	return Object{Name: fmt.Sprintf("n%02d", n), Values: []float64{float64(n), float64(n % 7)}}
}

// TestOrderedIndexMatchesReference drives a random publish / unpublish /
// region-query / scan / count sequence against both the ordered index and
// the naive reference, requiring identical results throughout.
func TestOrderedIndexMatchesReference(t *testing.T) {
	const k = 12
	rng := rand.New(rand.NewSource(4242))
	p := newPeer("0")
	ref := refStore{}
	var pool []kautz.Str // previously used ObjectIDs, for duplicates and removals

	randomID := func() kautz.Str {
		if len(pool) > 0 && rng.Intn(3) == 0 {
			return pool[rng.Intn(len(pool))]
		}
		id := kautz.Random(rng, k)
		pool = append(pool, id)
		return id
	}
	randomRegion := func() kautz.Region {
		a, b := kautz.Random(rng, k), kautz.Random(rng, k)
		if a > b {
			a, b = b, a
		}
		if rng.Intn(4) == 0 { // sometimes a whole-prefix region
			pre := a[:1+rng.Intn(3)]
			return kautz.Region{Low: kautz.MinExtend(pre, k), High: kautz.MaxExtend(pre, k)}
		}
		return kautz.Region{Low: a, High: b}
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // publish
			id, obj := randomID(), refObject(rng)
			p.addObject(id, obj)
			ref.add(id, obj)
		case op < 6: // unpublish, often of something absent
			id, obj := randomID(), refObject(rng)
			if got, want := p.removeObject(id, obj), ref.remove(id, obj); got != want {
				t.Fatalf("step %d: removeObject(%s, %v) = %v, reference %v", step, id, obj, got, want)
			}
		case op < 8: // region query
			r := randomRegion()
			got, want := p.ObjectsInRegion(r), ref.inRegion(r)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: ObjectsInRegion(%v) diverged:\n got %v\nwant %v", step, r, got, want)
			}
			hint := -1
			p.ScanRegionHinted(r, "", func(n int) { hint = n }, func(StoredObject) bool { return true })
			if hint != len(want) {
				t.Fatalf("step %d: ScanRegionHinted(%v) hinted %d, want %d", step, r, hint, len(want))
			}
		case op < 9: // paged scan: pages concatenate to the full region scan
			r := randomRegion()
			want := ref.inRegion(r)
			limit := 1 + rng.Intn(5)
			var (
				got   []StoredObject
				after kautz.Str
			)
			for pages := 0; ; pages++ {
				if pages > len(want)+2 {
					t.Fatalf("step %d: paged scan of %v does not terminate", step, r)
				}
				var page []StoredObject
				p.ScanRegion(r, after, func(so StoredObject) bool {
					if len(page) >= limit && so.ObjectID != page[len(page)-1].ObjectID {
						return false
					}
					page = append(page, so)
					return true
				})
				if len(page) == 0 {
					break
				}
				got = append(got, page...)
				after = page[len(page)-1].ObjectID
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: paged scan of %v diverged:\n got %v\nwant %v", step, r, got, want)
			}
		default: // full-store invariants
			if got, want := p.ObjectCount(), ref.count(); got != want {
				t.Fatalf("step %d: ObjectCount = %d, want %d", step, got, want)
			}
			if got, want := p.AllObjects(), ref.all(k); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: AllObjects diverged:\n got %v\nwant %v", step, got, want)
			}
		}
	}
}

// TestReplicatedStoreMatchesReference extends the index-vs-naive property
// test to replicated stores: every publish/unpublish fans out to a replica
// group, yet the network as a whole must answer region queries, paged
// scans and counts exactly like the naive single-copy reference — and
// every group member's copy must stay byte-identical to the owner's run.
func TestReplicatedStoreMatchesReference(t *testing.T) {
	const k = 12
	for _, replicas := range []int{2, 3} {
		t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(5000 + replicas)))
			n, err := BuildRandom(k, 24, int64(6000+replicas))
			if err != nil {
				t.Fatal(err)
			}
			if err := n.SetReplicas(replicas); err != nil {
				t.Fatal(err)
			}
			ref := refStore{}
			var pool []kautz.Str

			randomID := func() kautz.Str {
				if len(pool) > 0 && rng.Intn(3) == 0 {
					return pool[rng.Intn(len(pool))]
				}
				id := kautz.Random(rng, k)
				pool = append(pool, id)
				return id
			}
			// netInRegion answers a region query the way the engine does:
			// each owner contributes only its own region's slice, so
			// replica copies never double-count.
			netInRegion := func(r kautz.Region) []StoredObject {
				var out []StoredObject
				for _, id := range n.PeerIDs() {
					own := kautz.Region{Low: kautz.MinExtend(id, k), High: kautz.MaxExtend(id, k)}
					clipped, ok := r.Intersect(own)
					if !ok {
						continue
					}
					p, _ := n.Peer(id)
					out = append(out, p.ObjectsInRegion(clipped)...)
				}
				return out
			}
			wholeSpace := kautz.Region{Low: kautz.MinExtend("", k), High: kautz.MaxExtend("", k)}

			for step := 0; step < 1500; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // publish
					id, obj := randomID(), refObject(rng)
					if _, err := n.PublishAt(id, obj); err != nil {
						t.Fatalf("step %d: publish: %v", step, err)
					}
					ref.add(id, obj)
				case op < 6: // unpublish, often of something absent
					id, obj := randomID(), refObject(rng)
					_, err := n.UnpublishAt(id, obj)
					if want := ref.remove(id, obj); (err == nil) != want {
						t.Fatalf("step %d: UnpublishAt(%s, %v) err=%v, reference removed=%v", step, id, obj, err, want)
					}
				case op < 8: // region query
					a, b := kautz.Random(rng, k), kautz.Random(rng, k)
					if a > b {
						a, b = b, a
					}
					r := kautz.Region{Low: a, High: b}
					got, want := netInRegion(r), ref.inRegion(r)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: region %v diverged:\n got %v\nwant %v", step, r, got, want)
					}
				default: // full-space + replica-set invariants
					got, want := netInRegion(wholeSpace), ref.all(k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: whole space diverged: %d objects, want %d", step, len(got), len(want))
					}
					if err := n.CheckReplicas(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
		})
	}
}

// TestOrderedIndexMoves exercises the contiguous-cut move paths (splits,
// merges, crashes) against the reference model.
func TestOrderedIndexMoves(t *testing.T) {
	const k = 10
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		src, dst := newPeer("0"), newPeer("1")
		refSrc, refDst := refStore{}, refStore{}
		for i := 0; i < 120; i++ {
			id, obj := kautz.Random(rng, k), refObject(rng)
			src.addObject(id, obj)
			refSrc.add(id, obj)
			if rng.Intn(3) == 0 { // dst starts non-empty to exercise merging
				id2, obj2 := kautz.Random(rng, k), refObject(rng)
				dst.addObject(id2, obj2)
				refDst.add(id2, obj2)
			}
		}
		prefix := kautz.Random(rng, k)[:1+rng.Intn(3)]
		src.moveObjectsWithPrefix(prefix, dst)
		for id, objs := range refSrc {
			if id.HasPrefix(prefix) {
				refDst[id] = append(refDst[id], objs...)
				delete(refSrc, id)
			}
		}
		if got, want := src.AllObjects(), refSrc.all(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: source after move of %q diverged:\n got %v\nwant %v", trial, prefix, got, want)
		}
		if got, want := dst.AllObjects(), refDst.all(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: destination after move of %q diverged:\n got %v\nwant %v", trial, prefix, got, want)
		}

		src.moveAllObjects(dst)
		for id, objs := range refSrc {
			refDst[id] = append(refDst[id], objs...)
			delete(refSrc, id)
		}
		if src.ObjectCount() != 0 {
			t.Fatalf("trial %d: source not empty after moveAllObjects", trial)
		}
		if got, want := dst.AllObjects(), refDst.all(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: destination after moveAllObjects diverged", trial)
		}

		if lost := dst.clearStore(); lost != refDst.count() {
			t.Fatalf("trial %d: clearStore dropped %d, want %d", trial, lost, refDst.count())
		}
		if dst.ObjectCount() != 0 || len(dst.AllObjects()) != 0 {
			t.Fatalf("trial %d: store not empty after clearStore", trial)
		}
	}
}
