package fissione

import (
	"errors"
	"testing"

	"armada/internal/kautz"
)

func TestSplitRegionLocalMinNoCascade(t *testing.T) {
	n, err := New(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ { // 93 peers: lengths 5 and 6 coexist
		if _, err := n.Join(); err != nil {
			t.Fatal(err)
		}
	}
	// A shortest peer is a local length-minimum: splitting it needs no
	// cascade.
	var shortest kautz.Str
	for _, id := range n.PeerIDs() {
		if shortest == "" || len(id) < len(shortest) {
			shortest = id
		}
	}
	kept, created, extra, err := n.SplitRegion(shortest)
	if err != nil {
		t.Fatalf("SplitRegion(%q): %v", shortest, err)
	}
	if extra != 0 {
		t.Errorf("splitting a local minimum cascaded %d splits", extra)
	}
	if len(kept) != len(shortest)+1 || len(created) != len(shortest)+1 {
		t.Errorf("split of %q produced %q and %q, want one symbol deeper", shortest, kept, created)
	}
	if err := n.Audit(); err != nil {
		t.Fatalf("audit after split: %v", err)
	}
}

func TestSplitRegionCascadesOnDeepTarget(t *testing.T) {
	n, err := New(24, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := n.Join(); err != nil {
			t.Fatal(err)
		}
	}
	// Repeatedly deepen one spot of the namespace: once the target is
	// deeper than its neighborhood, SplitRegion must pre-split the shorter
	// neighbors (extra > 0) to preserve the length invariant — and a
	// budget-exhausted attempt must stop between consistent states.
	rep := kautz.MinExtend(n.PeerIDs()[0], n.K())
	totalExtra := 0
	for i := 0; i < 5; i++ {
		for attempt := 0; ; attempt++ {
			if attempt > 20 {
				t.Fatalf("deepening %d stuck", i+1)
			}
			owner, err := n.OwnerOf(rep)
			if err != nil {
				t.Fatal(err)
			}
			_, _, extra, err := n.SplitRegion(owner)
			totalExtra += extra
			if err != nil {
				if auditErr := n.Audit(); auditErr != nil {
					t.Fatalf("budget-stopped split left the network inconsistent: %v", auditErr)
				}
				continue
			}
			break
		}
		if err := n.Audit(); err != nil {
			t.Fatalf("audit after deepening %d: %v", i+1, err)
		}
	}
	if totalExtra == 0 {
		t.Error("five stacked deepenings never cascaded")
	}
}

func TestSplitRegionUnknownPeer(t *testing.T) {
	n, err := New(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := n.SplitRegion("0101"); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("err = %v, want ErrNoSuchPeer", err)
	}
}

func TestSplitRegionBumpsEpoch(t *testing.T) {
	n, err := New(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := n.Join(); err != nil {
			t.Fatal(err)
		}
	}
	before := n.Epoch()
	if _, _, _, err := n.SplitRegion(n.PeerIDs()[0]); err != nil {
		t.Fatal(err)
	}
	if n.Epoch() <= before {
		t.Errorf("epoch %d -> %d across a region split, want a bump", before, n.Epoch())
	}
}
