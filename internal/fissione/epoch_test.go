package fissione

import (
	"math/rand"
	"testing"

	"armada/internal/kautz"
)

// TestEpochBumpsOnTopologyChange: every mutation that can move region
// ownership must advance the epoch, and nothing else may.
func TestEpochBumpsOnTopologyChange(t *testing.T) {
	n, err := BuildRandom(16, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := n.Epoch()
	if e == 0 {
		t.Error("building by joins left the epoch at zero")
	}

	if _, err := n.Join(); err != nil {
		t.Fatal(err)
	}
	if n.ValidEpoch(e) {
		t.Error("join did not bump the epoch")
	}
	e = n.Epoch()

	if err := n.Leave(n.RandomPeer(nil)); err != nil {
		t.Fatal(err)
	}
	if n.ValidEpoch(e) {
		t.Error("leave did not bump the epoch")
	}
	e = n.Epoch()

	if err := n.FailAbrupt(n.RandomPeer(nil)); err != nil {
		t.Fatal(err)
	}
	if n.ValidEpoch(e) {
		t.Error("crash did not bump the epoch")
	}
	e = n.Epoch()

	if err := n.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	if n.ValidEpoch(e) {
		t.Error("replication change did not bump the epoch")
	}
	e = n.Epoch()

	// Object operations move no ownership and must not invalidate
	// captured routing state.
	oid := kautz.Random(rand.New(rand.NewSource(3)), n.K())
	if _, err := n.PublishAt(oid, Object{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.UnpublishAt(oid, Object{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if !n.ValidEpoch(e) {
		t.Error("publish/unpublish bumped the epoch")
	}
}
