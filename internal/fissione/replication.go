package fissione

import (
	"fmt"
	"sort"

	"armada/internal/kautz"
	"armada/internal/obs"
)

// Replica groups.
//
// With a replication degree r > 1, each leaf region is owned by a group of
// r peers: the owner (the unique peer whose identifier prefixes the
// region's ObjectIDs) plus its r−1 successors in the sorted identifier
// order. Sorted identifier order is the DFS order of the partition trie,
// so the successors are the owner's trie siblings and their descendants —
// the deterministic, locality-preserving placement D3-Tree-style overlays
// use. Publishes and unpublishes fan out to every group member, owner
// first; reads may be served by any member (the query engine's read
// policies), because every member holds a byte-identical copy of the
// region's objects.
//
// Group membership is a pure function of the current identifier set, so a
// topology change (split, merge, relocation, crash) shifts membership for
// the owners near the touched positions. Each mutation therefore ends with
// a repair pass over that neighborhood: the authoritative content of every
// affected region is reassembled as the multiset union of the surviving
// copies, installed on every current member and dropped from every former
// member. A crash-stop loses nothing as long as one group member survives
// it — with mutations serialized (they require external exclusion), that
// is every single-crash sequence.

// SetReplicas sets the network's replication degree and synchronously
// places (or removes) copies so that every region is replicated on exactly
// min(r, Size()) peers. Like topology mutation, it requires external
// exclusion against every other operation.
func (n *Network) SetReplicas(r int) error {
	if r < 1 {
		return fmt.Errorf("fissione: replication degree %d < 1", r)
	}
	n.replicas = r
	n.syncReplicas()
	n.epoch.Add(1)
	return nil
}

// Replicas returns the configured replication degree (1 = no replication).
func (n *Network) Replicas() int { return n.replicas }

// ReReplications returns the total number of objects copied between peers
// by churn repair since the network was built (provisioning by SetReplicas
// is not counted).
func (n *Network) ReReplications() int64 { return n.reRepl.Value() }

// SetRepairHook installs an observer called after each region repair that
// copied objects, with the repaired region's owner and the copy count. It
// must be set before any topology mutation and runs under the same
// external exclusion those mutations require.
func (n *Network) SetRepairHook(f func(owner kautz.Str, copied int)) { n.onRepair = f }

// DescribeMetrics registers the network's repair counters on reg.
func (n *Network) DescribeMetrics(reg *obs.Registry) {
	reg.MustRegister("fissione_re_replications_total", &n.reRepl)
	reg.MustRegister("fissione_repairs_total", &n.repairs)
}

// effectiveReplicas caps the degree at the network size.
func (n *Network) effectiveReplicas() int {
	if n.replicas < len(n.ids) {
		return n.replicas
	}
	return len(n.ids)
}

// idPos returns the position of id in the sorted identifier index — or,
// for an id no longer present, its former neighborhood (the insertion
// position).
func (n *Network) idPos(id kautz.Str) int {
	i := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= id })
	if i == len(n.ids) {
		i = 0 // circular: past the end is the start's neighborhood
	}
	return i
}

// groupIDs returns the identifiers of the peers owning a copy of owner's
// region: owner itself followed by its effectiveReplicas−1 successors in
// circular sorted order.
func (n *Network) groupIDs(owner kautz.Str) []kautz.Str {
	r := n.effectiveReplicas()
	out := make([]kautz.Str, 0, r)
	pos := n.idPos(owner)
	for j := 0; j < r; j++ {
		out = append(out, n.ids[(pos+j)%len(n.ids)])
	}
	return out
}

// AppendGroupPeers appends owner's replica group (owner first, replicas in
// placement order) to dst and returns the extended slice; hot paths bring
// their own buffer and stay allocation-free. owner must be a peer. Safe
// for concurrent use while the topology is stable.
func (n *Network) AppendGroupPeers(dst []*Peer, owner kautz.Str) []*Peer {
	pos := n.idPos(owner)
	r := n.effectiveReplicas()
	for j := 0; j < r; j++ {
		dst = append(dst, n.peers[n.ids[(pos+j)%len(n.ids)]])
	}
	return dst
}

// repairAround restores the replica placement invariant after a topology
// mutation that touched the given identifiers (inserted, removed or
// renamed). Only owners whose groups can have shifted — those within
// replicas+2 circular positions of a touched identifier — are repaired;
// the margin covers every single-event membership move (splits and merges
// shift positions by one, relocations move data together with the adopted
// identifier, and a crashed peer's region reappears at most one position
// away from its replicas).
func (n *Network) repairAround(touched ...kautz.Str) {
	if n.replicas <= 1 || len(touched) == 0 {
		return
	}
	margin := n.effectiveReplicas() + 2
	owners := make(map[kautz.Str]struct{})
	size := len(n.ids)
	for _, id := range touched {
		pos := n.idPos(id)
		for d := -margin; d <= margin; d++ {
			owners[n.ids[((pos+d)%size+size)%size]] = struct{}{}
		}
	}
	for owner := range owners {
		n.repairOwner(owner)
	}
}

// repairOwner reassembles the authoritative content of owner's region from
// every copy in the owner's positional neighborhood, installs it on every
// current group member and drops it from every neighbor that is no longer
// one. Mutations run under external exclusion, so all copies are snapshots
// of the same quiesced history: their multiset union (max multiplicity per
// object) is exactly the set of objects that survive.
func (n *Network) repairOwner(owner kautz.Str) {
	margin := n.effectiveReplicas() + 2
	pos := n.idPos(owner)
	size := len(n.ids)

	member := make(map[kautz.Str]bool)
	for _, id := range n.groupIDs(owner) {
		member[id] = true
	}

	// Candidates: the circular window around the owner where copies of its
	// region can live (current members, former members, and peers that
	// inherited a former member's store wholesale).
	seen := make(map[kautz.Str]struct{}, 2*margin+1)
	var auth []StoredObject
	candidates := make([]kautz.Str, 0, 2*margin+1)
	for d := -margin; d <= margin; d++ {
		id := n.ids[((pos+d)%size+size)%size]
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		candidates = append(candidates, id)
		if run := n.peers[id].copyPrefixRun(owner); len(run) > 0 {
			auth = unionMax(auth, run)
		}
	}

	var copied int
	for _, id := range candidates {
		if member[id] {
			copied += n.peers[id].setPrefixRun(owner, auth)
		} else {
			n.peers[id].dropPrefixRun(owner)
		}
	}
	if copied > 0 {
		n.reRepl.Add(int64(copied))
		n.repairs.Inc()
		if n.onRepair != nil {
			n.onRepair(owner, copied)
		}
	}
}

// unionMax merges two canonical-sorted multisets taking the maximum
// multiplicity of each distinct element — the union of two snapshots of
// the same replicated run, possibly with different suffixes of history
// applied.
func unionMax(a, b []StoredObject) []StoredObject {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]StoredObject, 0, max(len(a), len(b)))
	for len(a) > 0 && len(b) > 0 {
		switch c := storedCompare(a[0], b[0]); {
		case c < 0:
			out = append(out, a[0])
			a = a[1:]
		case c > 0:
			out = append(out, b[0])
			b = b[1:]
		default:
			out = append(out, a[0])
			a, b = a[1:], b[1:]
		}
	}
	return append(append(out, a...), b...)
}

// syncReplicas rebuilds the whole placement for the current degree: every
// peer keeps only the runs it is entitled to, then every owner's primary
// run is copied to its group. Used by SetReplicas on a stable network (the
// owners hold their primaries, so they are the single source of truth).
func (n *Network) syncReplicas() {
	for _, id := range n.ids {
		p := n.peers[id]
		for _, prefix := range n.foreignRunPrefixes(p) {
			if !containsID(n.groupIDs(prefix), id) {
				p.dropPrefixRun(prefix)
			}
		}
	}
	if n.replicas <= 1 {
		return
	}
	for _, owner := range n.ids {
		run := n.peers[owner].copyPrefixRun(owner)
		for _, id := range n.groupIDs(owner)[1:] {
			n.peers[id].setPrefixRun(owner, run)
		}
	}
}

// foreignRunPrefixes returns the owner identifiers of every run in p's
// store other than p's own region, in store order.
func (n *Network) foreignRunPrefixes(p *Peer) []kautz.Str {
	var out []kautz.Str
	store := p.AllObjects()
	for i := 0; i < len(store); {
		owner, err := n.OwnerOf(store[i].ObjectID)
		if err != nil {
			i++ // unreachable on an audited cover; skip defensively
			continue
		}
		if owner != p.id {
			out = append(out, owner)
		}
		for i < len(store) && store[i].ObjectID.HasPrefix(owner) {
			i++
		}
	}
	return out
}

// CheckReplicas verifies the replica placement invariant: every group
// member's copy of its owner's region is byte-for-byte identical to the
// owner's, and no peer stores an object of a region whose group it does
// not belong to. With a degree of 1 it verifies the single-owner
// invariant: every peer stores only its own region's objects.
func (n *Network) CheckReplicas() error {
	for _, owner := range n.ids {
		if err := n.checkReplicaRegion(owner); err != nil {
			return err
		}
	}
	return nil
}

// checkReplicaRegion verifies the replica invariant at one identifier:
// every member of id's replica group holds a byte-identical copy of id's
// region, and id's own store contains no run of a region whose group it
// does not belong to.
func (n *Network) checkReplicaRegion(id kautz.Str) error {
	group := n.groupIDs(id)
	own := n.peers[id].copyPrefixRun(id)
	for _, member := range group[1:] {
		got := n.peers[member].copyPrefixRun(id)
		if !equalStored(got, own) {
			return fmt.Errorf("fissione: replica %q of region %q diverged: holds %d objects, owner holds %d",
				member, id, len(got), len(own))
		}
	}
	p := n.peers[id]
	for _, prefix := range n.foreignRunPrefixes(p) {
		if !containsID(n.groupIDs(prefix), id) {
			return fmt.Errorf("fissione: %q stores objects of region %q but is not in its replica group", id, prefix)
		}
	}
	return nil
}

// equalStored compares two canonical runs element for element.
func equalStored(a, b []StoredObject) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if storedCompare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}
