package fissione

import (
	"fmt"
	"math/rand"
	"testing"

	"armada/internal/kautz"
)

func TestReplicaGroupPlacement(t *testing.T) {
	n, err := BuildRandom(16, 40, 900)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetReplicas(3); err != nil {
		t.Fatal(err)
	}
	ids := n.PeerIDs()
	for i, owner := range ids {
		group := n.groupIDs(owner)
		if len(group) != 3 {
			t.Fatalf("group of %q has %d members, want 3", owner, len(group))
		}
		if group[0] != owner {
			t.Fatalf("group of %q does not lead with the owner: %v", owner, group)
		}
		for j := 1; j < len(group); j++ {
			if want := ids[(i+j)%len(ids)]; group[j] != want {
				t.Fatalf("group of %q member %d = %q, want successor %q", owner, j, group[j], want)
			}
		}
	}
	// Degrees above the network size cap at the network size.
	small, err := New(8, 901)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.SetReplicas(5); err != nil {
		t.Fatal(err)
	}
	if got := small.groupIDs("0"); len(got) != 3 {
		t.Fatalf("3-peer network group has %d members, want 3", len(got))
	}
	if err := small.SetReplicas(0); err == nil {
		t.Fatal("SetReplicas(0) accepted")
	}
}

func TestReplicatedFanoutAndAudit(t *testing.T) {
	n, err := BuildRandom(16, 30, 910)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(911))
	oid := kautz.Random(rng, 16)
	obj := Object{Name: "x", Values: []float64{1, 2}}
	owner, err := n.PublishAt(oid, obj)
	if err != nil {
		t.Fatal(err)
	}
	group := n.groupIDs(owner)
	for _, id := range group {
		p, _ := n.Peer(id)
		if run := p.copyPrefixRun(owner); len(run) != 1 {
			t.Fatalf("member %q holds %d objects of %q's region, want 1", id, len(run), owner)
		}
	}
	if err := n.Audit(); err != nil {
		t.Fatalf("audit after replicated publish: %v", err)
	}
	if _, err := n.UnpublishAt(oid, obj); err != nil {
		t.Fatalf("unpublish: %v", err)
	}
	for _, id := range group {
		p, _ := n.Peer(id)
		if p.ObjectCount() != 0 {
			t.Fatalf("member %q still holds objects after unpublish", id)
		}
	}
	if _, err := n.UnpublishAt(oid, obj); err == nil {
		t.Fatal("second unpublish of the same object succeeded")
	}
}

// TestReplicationSurvivesChurn drives random publishes, unpublishes and
// topology churn — including crash-stops — against a 2-replicated network
// and a naive reference multiset, asserting after every event that the
// audit (with byte-for-byte replica verification) passes, that region
// queries match the reference exactly, and that no object is ever lost.
func TestReplicationSurvivesChurn(t *testing.T) {
	const k = 14
	n, err := BuildRandom(k, 50, 920)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(921))
	ref := refStore{}
	var live []StoredObject

	collectRegion := func(r kautz.Region) []StoredObject {
		// Gather the region's objects the way the query engine does: each
		// owner contributes only its own region's slice, so replica copies
		// never double-count.
		var out []StoredObject
		for _, id := range n.PeerIDs() {
			own := kautz.Region{Low: kautz.MinExtend(id, k), High: kautz.MaxExtend(id, k)}
			clipped, ok := r.Intersect(own)
			if !ok {
				continue
			}
			p, _ := n.Peer(id)
			out = append(out, p.ObjectsInRegion(clipped)...)
		}
		return out
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // publish
			oid, obj := kautz.Random(rng, k), refObject(rng)
			if _, err := n.PublishAt(oid, obj); err != nil {
				t.Fatalf("step %d: publish: %v", step, err)
			}
			ref.add(oid, obj)
			live = append(live, StoredObject{ObjectID: oid, Object: obj})
		case op < 6 && len(live) > 0: // unpublish a live object — must never miss
			i := rng.Intn(len(live))
			so := live[i]
			if _, err := n.UnpublishAt(so.ObjectID, so.Object); err != nil {
				t.Fatalf("step %d: unpublish of live object %v: %v", step, so, err)
			}
			ref.remove(so.ObjectID, so.Object)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case op < 7: // join
			if _, err := n.Join(); err != nil {
				t.Fatalf("step %d: join: %v", step, err)
			}
		case op < 8: // graceful leave
			if n.Size() > 10 {
				if err := n.Leave(n.RandomPeer(rng)); err != nil {
					t.Fatalf("step %d: leave: %v", step, err)
				}
			}
		case op < 9: // crash-stop — replication must absorb it
			if n.Size() > 10 {
				if err := n.FailAbrupt(n.RandomPeer(rng)); err != nil {
					t.Fatalf("step %d: fail: %v", step, err)
				}
			}
		default: // verify a random region against the reference
			a, b := kautz.Random(rng, k), kautz.Random(rng, k)
			if a > b {
				a, b = b, a
			}
			r := kautz.Region{Low: a, High: b}
			got, want := collectRegion(r), ref.inRegion(r)
			if !equalStored(got, want) {
				t.Fatalf("step %d: region %v diverged: got %d objects, want %d", step, r, len(got), len(want))
			}
		}
		if err := n.Audit(); err != nil {
			t.Fatalf("step %d: audit: %v", step, err)
		}
	}
	if n.ReReplications() == 0 {
		t.Fatal("churn storm triggered no re-replication")
	}

	// Crash-stop durability: every object the reference still holds must be
	// removable — nothing was lost across the whole storm.
	for _, so := range live {
		if _, err := n.UnpublishAt(so.ObjectID, so.Object); err != nil {
			t.Fatalf("object %v lost during churn: %v", so, err)
		}
	}
}

// TestSetReplicasTransitions grows and shrinks the degree on a loaded
// network: every transition must leave placement consistent.
func TestSetReplicasTransitions(t *testing.T) {
	const k = 14
	n, err := BuildRandom(k, 40, 930)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(931))
	for i := 0; i < 300; i++ {
		if _, err := n.PublishAt(kautz.Random(rng, k), refObject(rng)); err != nil {
			t.Fatal(err)
		}
	}
	total := func() int {
		c := 0
		for _, id := range n.PeerIDs() {
			p, _ := n.Peer(id)
			own := kautz.Region{Low: kautz.MinExtend(id, k), High: kautz.MaxExtend(id, k)}
			c += len(p.ObjectsInRegion(own))
		}
		return c
	}
	for _, r := range []int{3, 2, 4, 1, 2} {
		if err := n.SetReplicas(r); err != nil {
			t.Fatalf("SetReplicas(%d): %v", r, err)
		}
		if err := n.Audit(); err != nil {
			t.Fatalf("audit at degree %d: %v", r, err)
		}
		if err := n.CheckReplicas(); err != nil {
			t.Fatalf("CheckReplicas at degree %d: %v", r, err)
		}
		if got := total(); got != 300 {
			t.Fatalf("degree %d: %d primary objects, want 300", r, got)
		}
	}
}

func TestCheckReplicasDetectsDivergence(t *testing.T) {
	n, err := BuildRandom(14, 30, 940)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(941))
	oid := kautz.Random(rng, 14)
	owner, err := n.PublishAt(oid, Object{Name: "probe"})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the replica behind the network's back.
	replica, _ := n.Peer(n.groupIDs(owner)[1])
	if !replica.removeObject(oid, Object{Name: "probe"}) {
		t.Fatal("replica did not hold the object")
	}
	if err := n.CheckReplicas(); err == nil {
		t.Fatal("CheckReplicas missed a diverged replica")
	}
	// And a foreign run on a non-member must be caught too.
	replica.addObject(oid, Object{Name: "probe"}) // repair the first corruption
	if err := n.CheckReplicas(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	ids := n.PeerIDs()
	var outsider *Peer
	for _, id := range ids {
		if !containsID(n.groupIDs(owner), id) {
			outsider, _ = n.Peer(id)
			break
		}
	}
	outsider.addObject(oid, Object{Name: "stray"})
	if err := n.CheckReplicas(); err == nil {
		t.Fatal("CheckReplicas missed a stray copy outside the group")
	}
}

func TestAbsorbAllObjectsTakesMultisetMax(t *testing.T) {
	src, dst := newPeer("0"), newPeer("1")
	shared := Object{Name: "s", Values: []float64{1}}
	dup := Object{Name: "d", Values: []float64{2}}
	only := Object{Name: "o", Values: []float64{3}}
	// shared×1 and dup×2 on both (a replicated run); only×1 on src alone.
	for _, p := range []*Peer{src, dst} {
		p.addObject("0101010101", shared)
		p.addObject("0101010102", dup)
		p.addObject("0101010102", dup)
	}
	src.addObject("0202020202", only)
	src.absorbAllObjects(dst)
	if src.ObjectCount() != 0 {
		t.Fatal("source not empty after absorb")
	}
	if got := dst.ObjectCount(); got != 4 {
		t.Fatalf("absorbed store holds %d objects, want 4 (shared×1, dup×2, only×1)", got)
	}
}

func BenchmarkReplicatedPublish(b *testing.B) {
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", r), func(b *testing.B) {
			n, err := BuildRandom(20, 200, 950)
			if err != nil {
				b.Fatal(err)
			}
			if err := n.SetReplicas(r); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(951))
			ids := make([]kautz.Str, 4096)
			for i := range ids {
				ids[i] = kautz.Random(rng, 20)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.PublishAt(ids[i%len(ids)], Object{Name: "b"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
