// Package fissione implements the FISSIONE DHT overlay of Li, Lu and Wu
// (INFOCOM 2005), the substrate on which Armada runs.
//
// FISSIONE organizes peers into an approximation of the Kautz graph K(2,k).
// Peer identifiers are variable-length Kautz strings forming a prefix-free
// cover of the namespace: every ObjectID (a Kautz string of fixed length k)
// has exactly one peer whose PeerID is one of its prefixes, and that peer
// stores the object. The overlay maintains FISSIONE's topology rules:
//
//   - Shift edges: peer U = u1u2...ub has an out-edge to every peer owning
//     part of the namespace region u2...ub·*. Under the neighborhood
//     invariant those peers have identifiers u2...ub·q with 0 ≤ |q| ≤ 2.
//   - Neighborhood invariant: the identifier lengths of neighboring peers
//     differ by at most one. Joins preserve it by walking to a local minimum
//     of identifier length before splitting; graceful departures merge the
//     departing peer's sibling when legal and otherwise relocate a peer
//     freed by merging a globally deepest sibling pair.
//
// The package is a faithful, locally-routed simulator: every peer keeps its
// own routing table (out- and in-neighbor lists) and query engines consult
// only those tables; the global maps exist for construction, bookkeeping and
// audits.
//
// # Concurrency
//
// Topology mutation (Join, Leave, FailAbrupt, the Build functions) requires
// external exclusion: callers must not mutate the topology while any other
// operation runs. Object storage, however, is safe for concurrent use while
// the topology is stable: each Peer guards its store with its own lock, so
// any number of PublishAt/UnpublishAt calls and store reads (ObjectsInRegion,
// ScanRegion, AllObjects, ObjectCount) may run concurrently, on the same
// peer or different ones. The armada package maps this onto a two-tier
// scheme: a topology RWMutex held exclusively by Join/Leave/Fail and shared
// by everything else, plus the per-peer store locks.
package fissione

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"armada/internal/kautz"
)

// Object is a named item published on the DHT, carrying the attribute
// values it was named by (one value for single-attribute naming, m values
// for multi-attribute naming) — or no values for exact-match-only objects.
type Object struct {
	Name   string
	Values []float64
}

// Peer is one FISSIONE node. Its routing table (out- and in-neighbors) is
// maintained by the Network on joins and departures; query engines must
// route using only these tables.
//
// The store is an ordered index: a slice of StoredObject sorted by
// (ObjectID, Name, Values). Ordering makes every region scan a binary
// search plus a contiguous walk — O(log n + k) for k results — and makes
// prefix moves (splits, merges) contiguous slice operations. ObjectIDs all
// have the network's fixed length k, so plain lexicographic comparison
// orders them and every Kautz region and identifier prefix denotes one
// contiguous run. The Values tie-break makes the order canonical: two
// stores holding the same multiset of objects are element-for-element
// identical regardless of insertion interleaving, which is what lets a
// replica set be compared byte for byte.
type Peer struct {
	id kautz.Str

	// nbr packs both neighbor lists — out-neighbors then in-neighbors —
	// into one backing array of interned identifiers: a peer's whole
	// routing table is a single allocation, and outLen marks the split.
	nbr    []kautz.Str
	outLen int32

	// served counts region scans this peer has answered as the serving
	// member of a replica group — the load signal of the least-loaded read
	// policy and the read-spread metric.
	served atomic.Int64

	// deliveries counts query deliveries addressed to this peer as region
	// owner — the per-region load signal the load controller samples. It
	// advances regardless of which replica serves the scan (ownership, not
	// serving, is the unit splits and migrations act on) and regardless of
	// replication degree, unlike served, which only moves on replicated
	// networks.
	deliveries atomic.Int64

	// mu guards store. Routing-table fields above are only written during
	// topology mutation, which excludes all other operations externally.
	mu    sync.RWMutex
	store []StoredObject // ascending (ObjectID, Name, Values)
}

func newPeer(id kautz.Str) *Peer {
	return &Peer{id: id}
}

// ID returns the peer's identifier.
func (p *Peer) ID() kautz.Str { return p.id }

// Out returns the peer's out-neighbor identifiers in ascending order. The
// slice is owned by the peer and must not be modified.
func (p *Peer) Out() []kautz.Str { return p.nbr[:p.outLen:p.outLen] }

// In returns the peer's in-neighbor identifiers in ascending order. The
// slice is owned by the peer and must not be modified.
func (p *Peer) In() []kautz.Str { return p.nbr[p.outLen:] }

// OutCopy returns a copy of the out-neighbor list.
func (p *Peer) OutCopy() []kautz.Str { return append([]kautz.Str(nil), p.Out()...) }

// InCopy returns a copy of the in-neighbor list.
func (p *Peer) InCopy() []kautz.Str { return append([]kautz.Str(nil), p.In()...) }

// Degree returns the peer's out-degree.
func (p *Peer) Degree() int { return int(p.outLen) }

// setTables installs the packed routing table: nbr holds the out-neighbors
// followed by the in-neighbors, outLen marks the split.
func (p *Peer) setTables(nbr []kautz.Str, outLen int) {
	p.nbr = nbr
	p.outLen = int32(outLen)
}

// ServedReads returns how many region scans this peer has answered as a
// replica group's serving member.
func (p *Peer) ServedReads() int64 { return p.served.Load() }

// NoteServed records one served region scan.
func (p *Peer) NoteServed() { p.served.Add(1) }

// Deliveries returns how many query deliveries have addressed this peer as
// its region's owner.
func (p *Peer) Deliveries() int64 { return p.deliveries.Load() }

// NoteDelivery records one query delivery addressed to this peer's region.
func (p *Peer) NoteDelivery() { p.deliveries.Add(1) }

// storedCompare is the canonical total order of the index: (ObjectID,
// Name, Values lexicographic). Fully equal elements (duplicate
// publications) compare equal.
func storedCompare(a, b StoredObject) int {
	if c := cmp.Compare(a.ObjectID, b.ObjectID); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Object.Name, b.Object.Name); c != 0 {
		return c
	}
	return slices.Compare(a.Object.Values, b.Object.Values)
}

// storedLess orders the index by storedCompare.
func storedLess(a, b StoredObject) bool { return storedCompare(a, b) < 0 }

// lowerBound returns the first index i with (store[i].ObjectID,
// store[i].Name) >= (id, name). The caller holds p.mu.
func (p *Peer) lowerBound(id kautz.Str, name string) int {
	return sort.Search(len(p.store), func(i int) bool {
		so := p.store[i]
		if so.ObjectID != id {
			return so.ObjectID > id
		}
		return so.Object.Name >= name
	})
}

// addObject stores obj under objectID on this peer, at its canonical
// position.
func (p *Peer) addObject(objectID kautz.Str, obj Object) {
	p.mu.Lock()
	defer p.mu.Unlock()
	so := StoredObject{ObjectID: objectID, Object: obj}
	i := sort.Search(len(p.store), func(i int) bool { return storedCompare(p.store[i], so) >= 0 })
	p.store = slices.Insert(p.store, i, so)
}

// removeObject deletes one stored occurrence of the object under objectID
// whose name and values match, reporting whether one was found. Values
// match element-wise (duplicate publications remove one at a time).
func (p *Peer) removeObject(objectID kautz.Str, obj Object) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := p.lowerBound(objectID, obj.Name); i < len(p.store); i++ {
		so := p.store[i]
		if so.ObjectID != objectID || so.Object.Name != obj.Name {
			return false
		}
		if slices.Equal(so.Object.Values, obj.Values) {
			p.store = slices.Delete(p.store, i, i+1)
			return true
		}
	}
	return false
}

// ObjectCount returns the number of objects stored on the peer in O(1).
func (p *Peer) ObjectCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.store)
}

// scanBounds returns the index interval [lo, hi) a scan over the region —
// restricted to ObjectIDs strictly greater than after when after is
// non-empty — visits, in O(log n). The caller holds p.mu.
func (p *Peer) scanBounds(r kautz.Region, after kautz.Str) (lo, hi int) {
	low := r.Low
	lo = sort.Search(len(p.store), func(i int) bool { return p.store[i].ObjectID >= low })
	if after != "" && after >= low {
		lo = sort.Search(len(p.store), func(i int) bool { return p.store[i].ObjectID > after })
	}
	hi = lo + sort.Search(len(p.store)-lo, func(i int) bool { return p.store[lo+i].ObjectID > r.High })
	return lo, hi
}

// ScanRegion calls fn for each stored object whose ObjectID lies in the
// Kautz region — restricted to ObjectIDs strictly greater than after when
// after is non-empty — in ascending (ObjectID, Name) order, stopping early
// when fn returns false. The scan costs O(log n) to position plus O(1) per
// visited object, and holds the peer's store lock throughout: fn must not
// call back into the peer.
func (p *Peer) ScanRegion(r kautz.Region, after kautz.Str, fn func(StoredObject) bool) {
	p.ScanRegionHinted(r, after, nil, fn)
}

// ScanRegionHinted is ScanRegion with the visit count precomputed in the
// same lock acquisition: when hint is non-nil it receives the number of
// objects the scan will visit (an exact allocation size) before the first
// fn call. Like fn, hint runs under the store lock and must not call back
// into the peer.
func (p *Peer) ScanRegionHinted(r kautz.Region, after kautz.Str, hint func(int), fn func(StoredObject) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	lo, hi := p.scanBounds(r, after)
	if hint != nil {
		hint(hi - lo)
	}
	for i := lo; i < hi; i++ {
		if !fn(p.store[i]) {
			return
		}
	}
}

// ObjectsInRegion returns the objects whose ObjectIDs lie in the Kautz
// region, together with their IDs, in ascending (ObjectID, Name) order.
func (p *Peer) ObjectsInRegion(r kautz.Region) []StoredObject {
	var out []StoredObject
	p.ScanRegionHinted(r, "", func(n int) {
		if n > 0 {
			out = make([]StoredObject, 0, n)
		}
	}, func(so StoredObject) bool {
		out = append(out, so)
		return true
	})
	return out
}

// AllObjects returns every object stored on the peer in ascending
// (ObjectID, Name) order.
func (p *Peer) AllObjects() []StoredObject {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]StoredObject(nil), p.store...)
}

// prefixRange returns the half-open index interval [lo, hi) of stored
// objects whose ObjectID starts with prefix. The caller holds p.mu. In the
// fixed-length lexicographic order every prefix owns one contiguous run.
func (p *Peer) prefixRange(prefix kautz.Str) (lo, hi int) {
	lo = sort.Search(len(p.store), func(i int) bool { return p.store[i].ObjectID >= prefix })
	hi = lo + sort.Search(len(p.store)-lo, func(i int) bool {
		return !p.store[lo+i].ObjectID.HasPrefix(prefix)
	})
	return lo, hi
}

// mergeStored merges two (ObjectID, Name)-sorted slices into one.
func mergeStored(a, b []StoredObject) []StoredObject {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]StoredObject, 0, len(a)+len(b))
	for len(a) > 0 && len(b) > 0 {
		if storedLess(b[0], a[0]) {
			out = append(out, b[0])
			b = b[1:]
		} else {
			out = append(out, a[0])
			a = a[1:]
		}
	}
	return append(append(out, a...), b...)
}

// lockPair acquires both peers' store locks in identifier order, so
// concurrent movers could never deadlock. Movers in fact only run under the
// topology write lock; the ordering is defense in depth.
func lockPair(a, b *Peer) (unlock func()) {
	if b.id < a.id {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
	return func() { b.mu.Unlock(); a.mu.Unlock() }
}

// moveObjectsWithPrefix moves every stored object whose ObjectID has the
// given prefix from p to dst — one contiguous slice cut and one merge.
func (p *Peer) moveObjectsWithPrefix(prefix kautz.Str, dst *Peer) {
	defer lockPair(p, dst)()
	lo, hi := p.prefixRange(prefix)
	if lo == hi {
		return
	}
	moved := append([]StoredObject(nil), p.store[lo:hi]...)
	p.store = slices.Delete(p.store, lo, hi)
	dst.store = mergeStored(dst.store, moved)
}

// moveAllObjects moves the peer's whole store to dst.
func (p *Peer) moveAllObjects(dst *Peer) {
	defer lockPair(p, dst)()
	dst.store = mergeStored(dst.store, p.store)
	p.store = nil
}

// absorbAllObjects moves the peer's whole store into dst taking the
// multiset maximum of the two stores instead of their sum: a run held by
// both peers collapses to one copy instead of doubling. This is the
// takeover move on replicated networks, where the absorbing peer often
// already holds a replica of the mover's region — copies within one group
// are identical, so keeping the maximum loses nothing (and preserves
// genuine duplicate publications, which are replicated at equal
// multiplicity everywhere).
func (p *Peer) absorbAllObjects(dst *Peer) {
	defer lockPair(p, dst)()
	dst.store = unionMax(dst.store, p.store)
	p.store = nil
}

// copyPrefixRun returns a copy of the peer's contiguous run of objects
// whose ObjectID starts with prefix. Object values are aliased, not deep
// copied — replica copies of one object share its value slice, which is
// safe because stored values are never mutated in place.
func (p *Peer) copyPrefixRun(prefix kautz.Str) []StoredObject {
	p.mu.RLock()
	defer p.mu.RUnlock()
	lo, hi := p.prefixRange(prefix)
	if lo == hi {
		return nil
	}
	return append([]StoredObject(nil), p.store[lo:hi]...)
}

// setPrefixRun replaces the peer's run for prefix with the given canonical
// run, returning how many of run's elements the peer did not already hold
// (the objects genuinely copied onto it). run must ascend storedCompare and
// contain only IDs with the prefix.
func (p *Peer) setPrefixRun(prefix kautz.Str, run []StoredObject) (added int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lo, hi := p.prefixRange(prefix)
	added = diffCount(run, p.store[lo:hi])
	if added == 0 && len(run) == hi-lo {
		return 0 // identical content — the common case after churn
	}
	p.store = slices.Concat(p.store[:lo:lo], run, p.store[hi:])
	return added
}

// dropPrefixRun deletes the peer's run for prefix, returning how many
// objects it removed.
func (p *Peer) dropPrefixRun(prefix kautz.Str) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	lo, hi := p.prefixRange(prefix)
	if lo == hi {
		return 0
	}
	p.store = slices.Delete(p.store, lo, hi)
	return hi - lo
}

// diffCount returns how many elements of a (a sorted multiset) are absent
// from b (also sorted): the multiset difference |a \ b|.
func diffCount(a, b []StoredObject) int {
	missing := 0
	for len(a) > 0 {
		if len(b) == 0 {
			return missing + len(a)
		}
		switch c := storedCompare(a[0], b[0]); {
		case c < 0:
			missing++
			a = a[1:]
		case c > 0:
			b = b[1:]
		default:
			a, b = a[1:], b[1:]
		}
	}
	return missing
}

// clearStore discards every stored object (a crash-stop losing its data),
// returning how many were dropped.
func (p *Peer) clearStore() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.store)
	p.store = nil
	return n
}

// StoredObject pairs an object with the ObjectID it was published under.
type StoredObject struct {
	ObjectID kautz.Str
	Object   Object
}

func (s StoredObject) String() string {
	return fmt.Sprintf("%s@%s", s.Object.Name, s.ObjectID)
}
