// Package fissione implements the FISSIONE DHT overlay of Li, Lu and Wu
// (INFOCOM 2005), the substrate on which Armada runs.
//
// FISSIONE organizes peers into an approximation of the Kautz graph K(2,k).
// Peer identifiers are variable-length Kautz strings forming a prefix-free
// cover of the namespace: every ObjectID (a Kautz string of fixed length k)
// has exactly one peer whose PeerID is one of its prefixes, and that peer
// stores the object. The overlay maintains FISSIONE's topology rules:
//
//   - Shift edges: peer U = u1u2...ub has an out-edge to every peer owning
//     part of the namespace region u2...ub·*. Under the neighborhood
//     invariant those peers have identifiers u2...ub·q with 0 ≤ |q| ≤ 2.
//   - Neighborhood invariant: the identifier lengths of neighboring peers
//     differ by at most one. Joins preserve it by walking to a local minimum
//     of identifier length before splitting; graceful departures merge the
//     departing peer's sibling when legal and otherwise relocate a peer
//     freed by merging a globally deepest sibling pair.
//
// The package is a faithful, locally-routed simulator: every peer keeps its
// own routing table (out- and in-neighbor lists) and query engines consult
// only those tables; the global maps exist for construction, bookkeeping and
// audits.
package fissione

import (
	"fmt"
	"slices"
	"sort"

	"armada/internal/kautz"
)

// Object is a named item published on the DHT, carrying the attribute
// values it was named by (one value for single-attribute naming, m values
// for multi-attribute naming) — or no values for exact-match-only objects.
type Object struct {
	Name   string
	Values []float64
}

// Peer is one FISSIONE node. Its routing table (out- and in-neighbors) is
// maintained by the Network on joins and departures; query engines must
// route using only these tables.
type Peer struct {
	id    kautz.Str
	out   []kautz.Str
	in    []kautz.Str
	store map[kautz.Str][]Object
}

func newPeer(id kautz.Str) *Peer {
	return &Peer{id: id, store: make(map[kautz.Str][]Object)}
}

// ID returns the peer's identifier.
func (p *Peer) ID() kautz.Str { return p.id }

// Out returns the peer's out-neighbor identifiers in ascending order. The
// slice is owned by the peer and must not be modified.
func (p *Peer) Out() []kautz.Str { return p.out }

// In returns the peer's in-neighbor identifiers in ascending order. The
// slice is owned by the peer and must not be modified.
func (p *Peer) In() []kautz.Str { return p.in }

// OutCopy returns a copy of the out-neighbor list.
func (p *Peer) OutCopy() []kautz.Str { return append([]kautz.Str(nil), p.out...) }

// InCopy returns a copy of the in-neighbor list.
func (p *Peer) InCopy() []kautz.Str { return append([]kautz.Str(nil), p.in...) }

// Degree returns the peer's out-degree.
func (p *Peer) Degree() int { return len(p.out) }

// addObject stores obj under objectID on this peer.
func (p *Peer) addObject(objectID kautz.Str, obj Object) {
	p.store[objectID] = append(p.store[objectID], obj)
}

// removeObject deletes one stored occurrence of the object under objectID
// whose name and values match, reporting whether one was found. Values
// match element-wise (duplicate publications remove one at a time).
func (p *Peer) removeObject(objectID kautz.Str, obj Object) bool {
	objs := p.store[objectID]
	for i, o := range objs {
		if o.Name != obj.Name || !slices.Equal(o.Values, obj.Values) {
			continue
		}
		objs = append(objs[:i], objs[i+1:]...)
		if len(objs) == 0 {
			delete(p.store, objectID)
		} else {
			p.store[objectID] = objs
		}
		return true
	}
	return false
}

// ObjectCount returns the number of objects stored on the peer.
func (p *Peer) ObjectCount() int {
	n := 0
	for _, objs := range p.store {
		n += len(objs)
	}
	return n
}

// ObjectsInRegion returns the objects whose ObjectIDs lie in the Kautz
// region, together with their IDs, in ascending ObjectID order.
func (p *Peer) ObjectsInRegion(r kautz.Region) []StoredObject {
	var out []StoredObject
	for id, objs := range p.store {
		if !r.Contains(id) {
			continue
		}
		for _, o := range objs {
			out = append(out, StoredObject{ObjectID: id, Object: o})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjectID != out[j].ObjectID {
			return out[i].ObjectID < out[j].ObjectID
		}
		return out[i].Object.Name < out[j].Object.Name
	})
	return out
}

// AllObjects returns every object stored on the peer in ascending ObjectID
// order.
func (p *Peer) AllObjects() []StoredObject {
	var out []StoredObject
	for id, objs := range p.store {
		for _, o := range objs {
			out = append(out, StoredObject{ObjectID: id, Object: o})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjectID != out[j].ObjectID {
			return out[i].ObjectID < out[j].ObjectID
		}
		return out[i].Object.Name < out[j].Object.Name
	})
	return out
}

// moveObjectsWithPrefix moves every stored object whose ObjectID has the
// given prefix from p to dst.
func (p *Peer) moveObjectsWithPrefix(prefix kautz.Str, dst *Peer) {
	for id, objs := range p.store {
		if id.HasPrefix(prefix) {
			dst.store[id] = append(dst.store[id], objs...)
			delete(p.store, id)
		}
	}
}

// moveAllObjects moves the peer's whole store to dst.
func (p *Peer) moveAllObjects(dst *Peer) {
	for id, objs := range p.store {
		dst.store[id] = append(dst.store[id], objs...)
		delete(p.store, id)
	}
}

// StoredObject pairs an object with the ObjectID it was published under.
type StoredObject struct {
	ObjectID kautz.Str
	Object   Object
}

func (s StoredObject) String() string {
	return fmt.Sprintf("%s@%s", s.Object.Name, s.ObjectID)
}
