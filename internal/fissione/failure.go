package fissione

import (
	"fmt"

	"armada/internal/kautz"
)

// FailAbrupt simulates a crash-stop failure of the identified peer: unlike
// a graceful Leave, everything the peer stored vanishes with it. The
// surviving peers then run the same region-takeover protocol a graceful
// departure uses — FISSIONE's self-stabilization restores the prefix cover
// and the neighborhood invariant before the next query.
//
// Without replication (degree 1, the paper's model) the crashed peer's
// objects are permanently lost. With SetReplicas(r > 1), the takeover's
// repair pass restores them from the surviving members of each affected
// replica group, so a crash loses data only if it wipes a whole group —
// impossible for the serialized single-crash events this simulator models.
//
// The network remains fully consistent when FailAbrupt returns; tests may
// call Audit to verify. Failing below the three seed regions is rejected.
func (n *Network) FailAbrupt(id kautz.Str) error {
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, id)
	}
	if len(n.peers) <= 3 {
		return ErrTooSmall
	}
	// The crash destroys the peer's data; the takeover protocol then
	// reassigns its (now empty) region exactly as a departure would.
	lost := p.clearStore()
	if err := n.Leave(id); err != nil {
		return fmt.Errorf("fissione: stabilization after crash of %q (%d objects lost): %w", id, lost, err)
	}
	return nil
}
