package fissione

import (
	"fmt"

	"armada/internal/kautz"
)

// FailAbrupt simulates a crash-stop failure of the identified peer: unlike
// a graceful Leave, the peer's stored objects are lost (this implementation
// does not replicate data — neither does the paper's). The surviving peers
// then run the same region-takeover protocol a graceful departure uses —
// FISSIONE's self-stabilization restores the prefix cover and the
// neighborhood invariant before the next query.
//
// The network remains fully consistent when FailAbrupt returns; tests may
// call Audit to verify. Failing below the three seed regions is rejected.
func (n *Network) FailAbrupt(id kautz.Str) error {
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, id)
	}
	if len(n.peers) <= 3 {
		return ErrTooSmall
	}
	// The crash destroys the peer's data; the takeover protocol then
	// reassigns its (now empty) region exactly as a departure would.
	lost := p.clearStore()
	if err := n.Leave(id); err != nil {
		return fmt.Errorf("fissione: stabilization after crash of %q (%d objects lost): %w", id, lost, err)
	}
	return nil
}
