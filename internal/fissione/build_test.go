package fissione

import (
	"testing"
	"unsafe"

	"armada/internal/kautz"
)

// sameBacking reports whether two equal strings share one backing array.
func sameBacking(a, b kautz.Str) bool {
	return len(a) == len(b) && unsafe.StringData(string(a)) == unsafe.StringData(string(b))
}

// buildSequential grows a network by plain sequential joins — the
// reference path GrowBatch must match byte for byte.
func buildSequential(t *testing.T, k, size int, seed int64) *Network {
	t.Helper()
	n, err := New(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Grow(size - n.Size()); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBatchBuildMatchesSequential pins the batch-construction path to the
// sequential-join path: same seed, same size — identical identifier set,
// identical routing tables, identical epoch, identical subsequent rng
// draws.
func TestBatchBuildMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		k, size int
		seed    int64
	}{
		{8, 4, 1},
		{16, 50, 1},
		{16, 50, 2},
		{32, 500, 7},
		{32, 1000, 42},
	} {
		seq := buildSequential(t, tc.k, tc.size, tc.seed)
		batch, err := BuildRandom(tc.k, tc.size, tc.seed)
		if err != nil {
			t.Fatalf("k=%d size=%d seed=%d: batch build: %v", tc.k, tc.size, tc.seed, err)
		}

		if got, want := batch.Size(), seq.Size(); got != want {
			t.Fatalf("k=%d size=%d seed=%d: size %d != %d", tc.k, tc.size, tc.seed, got, want)
		}
		if got, want := batch.Epoch(), seq.Epoch(); got != want {
			t.Errorf("k=%d size=%d seed=%d: epoch %d != %d", tc.k, tc.size, tc.seed, got, want)
		}
		if !equalIDs(batch.PeerIDs(), seq.PeerIDs()) {
			t.Fatalf("k=%d size=%d seed=%d: identifier sets differ", tc.k, tc.size, tc.seed)
		}
		for _, id := range seq.PeerIDs() {
			sp, _ := seq.Peer(id)
			bp, ok := batch.Peer(id)
			if !ok {
				t.Fatalf("k=%d size=%d seed=%d: batch missing peer %q", tc.k, tc.size, tc.seed, id)
			}
			if !equalIDs(bp.Out(), sp.Out()) {
				t.Errorf("k=%d size=%d seed=%d: out-table of %q differs: %v != %v",
					tc.k, tc.size, tc.seed, id, bp.Out(), sp.Out())
			}
			if !equalIDs(bp.In(), sp.In()) {
				t.Errorf("k=%d size=%d seed=%d: in-table of %q differs: %v != %v",
					tc.k, tc.size, tc.seed, id, bp.In(), sp.In())
			}
		}
		if got, want := batch.Fingerprint(), seq.Fingerprint(); got != want {
			t.Errorf("k=%d size=%d seed=%d: fingerprint %x != %x", tc.k, tc.size, tc.seed, got, want)
		}
		if err := batch.Audit(); err != nil {
			t.Errorf("k=%d size=%d seed=%d: batch audit: %v", tc.k, tc.size, tc.seed, err)
		}

		// The rng must be left in the same state: the next join on both
		// networks draws the same target and creates the same peer.
		sNext, serr := seq.Join()
		bNext, berr := batch.Join()
		if serr != nil || berr != nil {
			t.Fatalf("k=%d size=%d seed=%d: post-build join: %v / %v", tc.k, tc.size, tc.seed, serr, berr)
		}
		if sNext != bNext {
			t.Errorf("k=%d size=%d seed=%d: post-build joins diverge: %q != %q",
				tc.k, tc.size, tc.seed, sNext, bNext)
		}
	}
}

// TestGrowBatchReplicatedFallsBack checks the batch path defers to
// sequential Grow on a replicated network and stays audit-clean.
func TestGrowBatchReplicatedFallsBack(t *testing.T) {
	n, err := New(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.GrowBatch(20); err != nil {
		t.Fatal(err)
	}
	if err := n.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	if err := n.GrowBatch(20); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 43 {
		t.Fatalf("size %d != 43", n.Size())
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintMoves checks the fingerprint actually covers the
// topology: any mutation must change it.
func TestFingerprintMoves(t *testing.T) {
	n, err := BuildRandom(16, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := n.Fingerprint()
	if got := n.Fingerprint(); got != before {
		t.Fatalf("fingerprint not stable: %x != %x", got, before)
	}
	if _, err := n.Join(); err != nil {
		t.Fatal(err)
	}
	if got := n.Fingerprint(); got == before {
		t.Fatal("fingerprint unchanged by a join")
	}
	ids := n.PeerIDs()
	if err := n.Leave(ids[len(ids)/2]); err != nil {
		t.Fatal(err)
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestInternedTables checks routing-table entries alias the named peer's
// own identifier string rather than private copies — the invariant the
// footprint diet rests on.
func TestInternedTables(t *testing.T) {
	n, err := BuildRandom(16, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		for _, lists := range [2][]kautz.Str{p.Out(), p.In()} {
			for _, nb := range lists {
				q, ok := n.Peer(nb)
				if !ok {
					t.Fatalf("peer %q lists unknown neighbor %q", id, nb)
				}
				if !sameBacking(nb, q.ID()) {
					t.Fatalf("neighbor entry %q of %q is a private copy, not interned", nb, id)
				}
			}
		}
	}
}

// TestAuditSampled checks the sampled audit passes on a clean network,
// degenerates to the full audit at small sizes, and still catches a
// corrupted cover (which is always checked in full).
func TestAuditSampled(t *testing.T) {
	n, err := BuildRandom(32, 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	for _, sample := range []int{0, 1, 10, 50, 299, 300, 1000} {
		if err := n.AuditSampled(sample); err != nil {
			t.Errorf("sample=%d: %v", sample, err)
		}
	}
	// Corrupt the cover: a duplicated identifier breaks prefix-freeness,
	// which even the sampled audit must catch (the cover check is full).
	n.ids[42] = n.ids[41]
	if err := n.AuditSampled(10); err == nil {
		t.Error("sampled audit missed a corrupted cover")
	}
}
