package fissione

import (
	"math/rand"
	"testing"

	"armada/internal/kautz"
)

func TestFailAbruptLosesOnlyCrashedPeersObjects(t *testing.T) {
	n, err := BuildRandom(20, 60, 301)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(302))
	// Publish objects and remember each one's owner.
	owners := make(map[kautz.Str]kautz.Str, 200)
	for i := 0; i < 200; i++ {
		oid := kautz.Random(rng, 20)
		owner, err := n.PublishAt(oid, Object{Name: "o"})
		if err != nil {
			t.Fatal(err)
		}
		owners[oid] = owner
	}
	victim := n.RandomPeer(rng)
	victimObjects := 0
	for _, owner := range owners {
		if owner == victim {
			victimObjects++
		}
	}
	if err := n.FailAbrupt(victim); err != nil {
		t.Fatal(err)
	}
	if err := n.Audit(); err != nil {
		t.Fatalf("network inconsistent after crash: %v", err)
	}
	// Every object not on the victim must still be on its (new) owner.
	surviving := 0
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		surviving += p.ObjectCount()
	}
	if surviving != len(owners)-victimObjects {
		t.Fatalf("%d objects survive, want %d (victim held %d)",
			surviving, len(owners)-victimObjects, victimObjects)
	}
}

func TestFailAbruptValidation(t *testing.T) {
	n, err := New(12, 303)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailAbrupt("0"); err == nil {
		t.Error("crash below 3 peers accepted")
	}
	if err := n.FailAbrupt("01012"); err == nil {
		t.Error("crash of unknown peer accepted")
	}
}

func TestRepeatedCrashesStayConsistent(t *testing.T) {
	n, err := BuildRandom(22, 80, 305)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(306))
	for i := 0; i < 40; i++ {
		if err := n.FailAbrupt(n.RandomPeer(rng)); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
	}
	if n.Size() != 40 {
		t.Fatalf("size = %d, want 40", n.Size())
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}
