package fissione

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"

	"armada/internal/kautz"
)

// Batch construction.
//
// Growing a network by sequential Join calls maintains the sorted
// identifier index and repairs routing tables after every single split.
// The index maintenance is an O(N) memmove per join — O(N²) for a build —
// and the per-split table refreshes serialize on one goroutine. GrowBatch
// runs the exact same join decision sequence (one kautz.Random draw, owner
// lookup, walk to a local length minimum, split) but defers all derived
// state: the identifier index is rebuilt with one sort at the end, and
// every routing table is recomputed once, in parallel, from the final
// cover. Because the walk consults tables derived from the live cover —
// which equal the incrementally-maintained ones at every step — the batch
// build is byte-identical to the sequential one (pinned by
// TestBatchBuildMatchesSequential).

// GrowBatch performs count random joins through the batch-construction
// path. It requires a replication degree of 1 (builds run before
// SetReplicas); on a replicated network it falls back to sequential Grow,
// whose per-split repair bookkeeping needs the live identifier index.
func (n *Network) GrowBatch(count int) error {
	if count <= 0 {
		return nil
	}
	if n.replicas != 1 {
		return n.Grow(count)
	}
	var done uint64
	var err error
	for i := 0; i < count; i++ {
		target := kautz.Random(n.rng, n.k)
		n.joins++
		owner, oerr := n.OwnerOf(target)
		if oerr != nil {
			err = fmt.Errorf("batch join %d: %w", i, oerr)
			break
		}
		victim := n.walkToLocalMinLive(owner)
		if serr := n.splitDeferred(victim); serr != nil {
			err = fmt.Errorf("batch join %d: %w", i, serr)
			break
		}
		done++
	}
	// Finalize even on error so the network stays audit-consistent: the
	// cover itself is never corrupted by a failed split attempt.
	n.rebuildIndex()
	n.refreshAllParallel()
	n.epoch.Add(done)
	return err
}

// walkToLocalMinLive is walkToLocalMin with neighbor lists derived from the
// live cover instead of the stored tables (which the batch path leaves
// stale until the final rebuild). During a build the stored tables are
// always fresh, so both walks see identical neighbor sets and make
// identical moves.
func (n *Network) walkToLocalMinLive(start kautz.Str) kautz.Str {
	cur := start
	for {
		best := cur
		for _, lists := range [2][]kautz.Str{n.computeOut(cur), n.computeIn(cur)} {
			for _, nb := range lists {
				if len(nb) < len(best) || (len(nb) == len(best) && nb < best) {
					best = nb
				}
			}
		}
		if len(best) >= len(cur) {
			return cur
		}
		cur = best
	}
}

// splitDeferred is split without the derived-state maintenance the batch
// path defers: no identifier-index update, no table refresh, no replica
// repair and no epoch bump (GrowBatch advances the epoch once at the end).
func (n *Network) splitDeferred(id kautz.Str) error {
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, id)
	}
	if len(id)+1 >= n.k {
		return fmt.Errorf("fissione: cannot split %q: identifier would reach ObjectID length %d", id, n.k)
	}
	ext := kautz.Extensions(id)
	lower, upper := id+kautz.Str(ext[0]), id+kautz.Str(ext[1])

	delete(n.peers, id)
	p.id = lower
	n.peers[lower] = p

	np := newPeer(upper)
	n.peers[upper] = np
	p.moveObjectsWithPrefix(upper, np)
	return nil
}

// rebuildIndex reconstitutes the sorted identifier index from the peers
// map with one sort, then compacts every identifier's bytes into a single
// blob: each peer's id, its map key, its index entry and (after the table
// rebuild) every neighbor-list mention all alias one backing array, so the
// per-identifier allocator rounding the incremental path pays disappears.
func (n *Network) rebuildIndex() {
	ids := make([]kautz.Str, 0, len(n.peers))
	total := 0
	for _, p := range n.peers {
		ids = append(ids, p.id)
		total += len(p.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var blob strings.Builder
	blob.Grow(total)
	for _, id := range ids {
		blob.WriteString(string(id))
	}
	packed := blob.String()

	peers := make(map[kautz.Str]*Peer, len(ids))
	off := 0
	for i, id := range ids {
		c := kautz.Str(packed[off : off+len(id)])
		off += len(id)
		p := n.peers[id]
		p.id = c
		ids[i] = c
		peers[c] = p
	}
	n.peers = peers
	n.ids = ids
}

// refreshAllParallel recomputes every peer's routing table from the
// current cover, sharding the identifier index across GOMAXPROCS
// goroutines. Derivation only reads the peers map and writes the shard's
// own peers, so shards are independent.
func (n *Network) refreshAllParallel() {
	// Each shard derives its peers' tables into scratch first, then packs
	// them into one exact-sized arena: the scratch is garbage after the
	// pass, and the surviving routing state is a handful of allocations
	// for the whole network instead of one (rounded-up) allocation per
	// peer.
	shard := func(ids []kautz.Str) {
		type tbl struct {
			nbr    []kautz.Str
			outLen int32
		}
		tmp := make([]tbl, len(ids))
		total := 0
		for i, id := range ids {
			out := n.computeOut(id)
			in := n.computeIn(id)
			nbr := make([]kautz.Str, len(out)+len(in))
			for j, o := range out {
				nbr[j] = n.canon(o)
			}
			for j, o := range in {
				nbr[len(out)+j] = n.canon(o)
			}
			tmp[i] = tbl{nbr, int32(len(out))}
			total += len(nbr)
		}
		arena := make([]kautz.Str, 0, total)
		for i, id := range ids {
			base := len(arena)
			arena = append(arena, tmp[i].nbr...)
			n.peers[id].setTables(arena[base:len(arena):len(arena)], int(tmp[i].outLen))
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(n.ids)/64 {
		workers = max(1, len(n.ids)/64)
	}
	if workers <= 1 {
		shard(n.ids)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(n.ids) + workers - 1) / workers
	for lo := 0; lo < len(n.ids); lo += chunk {
		hi := min(lo+chunk, len(n.ids))
		wg.Add(1)
		go func(ids []kautz.Str) {
			defer wg.Done()
			shard(ids)
		}(n.ids[lo:hi])
	}
	wg.Wait()
}

// Fingerprint returns an FNV-1a digest of the routing-relevant topology:
// k, replication degree, epoch and every peer identifier with its out- and
// in-neighbor lists in index order. Two networks with equal fingerprints
// have byte-identical covers and tables; the batch builder and the
// snapshot loader are pinned to the sequential-join path by comparing
// fingerprints.
func (n *Network) Fingerprint() uint64 {
	h := fnv.New64a()
	var num [8]byte
	writeNum := func(v uint64) {
		for i := range num {
			num[i] = byte(v >> (8 * i))
		}
		h.Write(num[:])
	}
	writeNum(uint64(n.k))
	writeNum(uint64(n.replicas))
	writeNum(n.epoch.Load())
	writeNum(uint64(len(n.ids)))
	for _, id := range n.ids {
		p := n.peers[id]
		writeNum(uint64(len(id)))
		h.Write([]byte(id))
		for _, lists := range [2][]kautz.Str{p.Out(), p.In()} {
			writeNum(uint64(len(lists)))
			for _, nb := range lists {
				writeNum(uint64(len(nb)))
				h.Write([]byte(nb))
			}
		}
	}
	return h.Sum64()
}
