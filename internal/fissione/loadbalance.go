package fissione

import (
	"fmt"

	"armada/internal/kautz"
)

// splitCascadeBudget bounds how many preparatory splits SplitRegion may
// perform to make its target a local length minimum. Identifier lengths
// across a FISSIONE network stay within a small band (joins walk to local
// minima), so real cascades are one or two splits deep; the budget is a
// guard against pathological covers, not a tuning knob.
const splitCascadeBudget = 8

// SplitRegion splits the region of peer id in two — the hot-region relief
// operation of the load controller. The peer keeps the lower child
// identifier and a freshly created peer takes the upper child and the
// objects falling in its half, exactly as a join-triggered split does.
//
// A join may split only a local length minimum (the neighborhood invariant
// caps neighbor length differences at one), but a hot peer is wherever the
// load is. When id is longer than one of its neighbors, SplitRegion first
// splits those shorter neighbors — recursively, each at a local minimum of
// its own — until id itself is a local minimum, then splits it. extra
// reports how many such preparatory peers were created beyond the one
// created for id. The cascade is bounded by splitCascadeBudget; exceeding
// it (or reaching the identifier-length ceiling) fails without changing
// anything beyond the preparatory splits already applied, each of which
// left the network fully consistent.
//
// Like every topology mutation, SplitRegion requires external exclusion
// and bumps the topology epoch (once per underlying split).
func (n *Network) SplitRegion(id kautz.Str) (kept, created kautz.Str, extra int, err error) {
	if _, ok := n.peers[id]; !ok {
		return "", "", 0, fmt.Errorf("%w: %q", ErrNoSuchPeer, id)
	}
	budget := splitCascadeBudget
	if err := n.splitShorterNeighbors(id, &budget); err != nil {
		return "", "", splitCascadeBudget - budget, err
	}
	kept, created, err = n.split(id)
	return kept, created, splitCascadeBudget - budget, err
}

// splitShorterNeighbors splits id's strictly shorter neighbors (in either
// direction) until id is a local length minimum, recursing so every actual
// split happens at a local minimum — the invariant-preserving split site.
// Each split spends one unit of budget.
func (n *Network) splitShorterNeighbors(id kautz.Str, budget *int) error {
	for {
		victim, ok := n.shorterNeighbor(id)
		if !ok {
			return nil
		}
		if *budget <= 0 {
			return fmt.Errorf("fissione: splitting %q needs a neighbor-split cascade beyond %d splits", id, splitCascadeBudget)
		}
		if err := n.splitShorterNeighbors(victim, budget); err != nil {
			return err
		}
		*budget--
		if _, _, err := n.split(victim); err != nil {
			return err
		}
	}
}

// shorterNeighbor returns a neighbor of id (out or in) with a strictly
// shorter identifier, preferring the shortest and then the smallest for
// determinism.
func (n *Network) shorterNeighbor(id kautz.Str) (kautz.Str, bool) {
	p := n.peers[id]
	best := id
	for _, lists := range [2][]kautz.Str{p.Out(), p.In()} {
		for _, nb := range lists {
			if len(nb) < len(best) || (len(nb) == len(best) && nb < best) {
				best = nb
			}
		}
	}
	if len(best) >= len(id) {
		return "", false
	}
	return best, true
}
