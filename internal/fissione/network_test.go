package fissione

import (
	"math"
	"math/rand"
	"testing"

	"armada/internal/kautz"
)

func TestNewSeedsThreePeers(t *testing.T) {
	n, err := New(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 3 {
		t.Fatalf("size = %d, want 3", n.Size())
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
	// K(2,1) adjacency: each seed peer neighbors the other two.
	for _, id := range []kautz.Str{"0", "1", "2"} {
		p, ok := n.Peer(id)
		if !ok {
			t.Fatalf("missing seed peer %q", id)
		}
		if len(p.Out()) != 2 || len(p.In()) != 2 {
			t.Fatalf("seed %q degree out=%d in=%d, want 2/2", id, len(p.Out()), len(p.In()))
		}
	}
}

func TestNewRejectsBadK(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := New(kautz.MaxRankLen+1, 1); err == nil {
		t.Error("k too large accepted")
	}
}

func TestJoinGrowsAndStaysSound(t *testing.T) {
	n, err := New(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := n.Join(); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if n.Size() != 203 {
		t.Fatalf("size = %d, want 203", n.Size())
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBalancedLengthSpread(t *testing.T) {
	n, err := BuildBalanced(24, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := n.IDLengths()
	if s.Max-s.Min > 1 {
		t.Fatalf("balanced build spread %d..%d, want ≤ 1", s.Min, s.Max)
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

// Section 3 of the paper: maximum identifier length < 2·log₂N and average
// < log₂N.
func TestIDLengthBounds(t *testing.T) {
	for _, size := range []int{100, 500, 2000} {
		n, err := BuildRandom(30, size, 11)
		if err != nil {
			t.Fatal(err)
		}
		logN := log2(float64(size))
		s := n.IDLengths()
		if float64(s.Max) >= 2*logN {
			t.Errorf("N=%d: max ID length %d ≥ 2log N = %.2f", size, s.Max, 2*logN)
		}
		if s.Avg >= logN {
			t.Errorf("N=%d: avg ID length %.2f ≥ log N = %.2f", size, s.Avg, logN)
		}
	}
}

// FISSIONE's average total degree is about 4 (out-degree about 2).
func TestFissioneDegree(t *testing.T) {
	n, err := BuildRandom(30, 1000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d := n.AvgDegree(); d < 3.5 || d > 4.5 {
		t.Errorf("avg total degree = %.2f, want ≈ 4", d)
	}
	if d := n.AvgOutDegree(); d < 1.7 || d > 2.3 {
		t.Errorf("avg out-degree = %.2f, want ≈ 2", d)
	}
}

func TestOwnerOf(t *testing.T) {
	n, err := BuildRandom(20, 64, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		oid := kautz.Random(rng, 20)
		owner, err := n.OwnerOf(oid)
		if err != nil {
			t.Fatalf("OwnerOf(%q): %v", oid, err)
		}
		if !oid.HasPrefix(owner) {
			t.Fatalf("owner %q is not a prefix of %q", owner, oid)
		}
	}
	if _, err := n.OwnerOf("012"); err == nil {
		t.Error("short ObjectID accepted")
	}
	if _, err := n.OwnerOf(kautz.Str("0") + kautz.MinExtend("0", 19)); err == nil {
		t.Error("invalid ObjectID accepted")
	}
}

func TestPublishAtStoresOnOwner(t *testing.T) {
	n, err := BuildRandom(20, 32, 19)
	if err != nil {
		t.Fatal(err)
	}
	oid := kautz.Hash("my-file", 20)
	owner, err := n.PublishAt(oid, Object{Name: "my-file"})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := n.Peer(owner)
	if !ok {
		t.Fatalf("owner %q missing", owner)
	}
	if p.ObjectCount() != 1 {
		t.Fatalf("owner stores %d objects, want 1", p.ObjectCount())
	}
	objs := p.AllObjects()
	if len(objs) != 1 || objs[0].Object.Name != "my-file" || objs[0].ObjectID != oid {
		t.Fatalf("stored %+v", objs)
	}
}

func TestSplitMovesObjects(t *testing.T) {
	n, err := New(12, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Publish several objects under region 0·*, then split peer 0 and check
	// each object lives with the child owning its ObjectID.
	rng := rand.New(rand.NewSource(5))
	var oids []kautz.Str
	for i := 0; i < 40; i++ {
		oid := kautz.MinExtend("0", 12)
		for j := 0; j < i; j++ {
			next, ok := kautz.Succ(oid)
			if !ok {
				break
			}
			oid = next
		}
		if oid[0] != '0' {
			break
		}
		oids = append(oids, oid)
		if _, err := n.PublishAt(oid, Object{Name: string(rune('a' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	_ = rng
	kept, created, err := n.split("0")
	if err != nil {
		t.Fatal(err)
	}
	if kept != "01" || created != "02" {
		t.Fatalf("split children = %q, %q", kept, created)
	}
	for _, oid := range oids {
		owner, err := n.OwnerOf(oid)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := n.Peer(owner)
		found := false
		for _, so := range p.AllObjects() {
			if so.ObjectID == oid {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %q not on its owner %q after split", oid, owner)
		}
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveCaseDirectMerge(t *testing.T) {
	n, err := BuildBalanced(20, 8, 29)
	if err != nil {
		t.Fatal(err)
	}
	// In a balanced network every leaf has a same-length sibling somewhere;
	// removing any peer must keep the network sound.
	id := n.PeerIDs()[3]
	if err := n.Leave(id); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 7 {
		t.Fatalf("size = %d, want 7", n.Size())
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestLeavePreservesObjects(t *testing.T) {
	n, err := BuildRandom(20, 50, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	oids := make([]kautz.Str, 120)
	for i := range oids {
		oids[i] = kautz.Random(rng, 20)
		if _, err := n.PublishAt(oids[i], Object{Name: string(rune('A' + i%26))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		id := n.RandomPeer(rng)
		if err := n.Leave(id); err != nil {
			t.Fatalf("leave %d (%q): %v", i, id, err)
		}
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		for _, so := range p.AllObjects() {
			owner, err := n.OwnerOf(so.ObjectID)
			if err != nil {
				t.Fatal(err)
			}
			if owner != id {
				t.Fatalf("object %q stored on %q but owned by %q", so.ObjectID, id, owner)
			}
			total++
		}
	}
	if total != len(oids) {
		t.Fatalf("%d objects after churn, want %d", total, len(oids))
	}
}

func TestLeaveRefusesBelowThree(t *testing.T) {
	n, err := New(12, 37)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Leave("0"); err == nil {
		t.Error("leave below 3 peers accepted")
	}
	if err := n.Leave("012"); err == nil {
		t.Error("leave of unknown peer accepted")
	}
}

// Heavy random churn keeps every structural property intact.
func TestChurnSoak(t *testing.T) {
	n, err := BuildRandom(26, 120, 41)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 400; step++ {
		if rng.Intn(2) == 0 && n.Size() > 10 {
			if err := n.Leave(n.RandomPeer(rng)); err != nil {
				t.Fatalf("step %d leave: %v", step, err)
			}
		} else {
			if _, err := n.Join(); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
		}
		if step%50 == 0 {
			if err := n.Audit(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := n.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnersIntersecting(t *testing.T) {
	n, err := BuildBalanced(16, 12, 43)
	if err != nil {
		t.Fatal(err)
	}
	// The full namespace intersects every peer.
	if got := n.OwnersIntersecting(""); len(got) != n.Size() {
		t.Fatalf("OwnersIntersecting(\"\") = %d peers, want %d", len(got), n.Size())
	}
	// A full-length prefix has exactly one owner.
	oid := kautz.MinExtend("", 15)
	owners := n.OwnersIntersecting(oid)
	if len(owners) != 1 {
		t.Fatalf("OwnersIntersecting(%q) = %v", oid, owners)
	}
}

func TestRandomPeerUsesProvidedSource(t *testing.T) {
	n, err := BuildBalanced(16, 20, 47)
	if err != nil {
		t.Fatal(err)
	}
	a := n.RandomPeer(rand.New(rand.NewSource(1)))
	b := n.RandomPeer(rand.New(rand.NewSource(1)))
	if a != b {
		t.Error("same seed should pick the same peer")
	}
}

func TestPeersIntersectingRegion(t *testing.T) {
	n, err := BuildBalanced(16, 24, 53)
	if err != nil {
		t.Fatal(err)
	}
	all := kautz.Region{Low: kautz.MinExtend("", 16), High: kautz.MaxExtend("", 16)}
	if got := n.PeersIntersectingRegion(all); len(got) != n.Size() {
		t.Fatalf("full region hits %d peers, want %d", len(got), n.Size())
	}
	point := kautz.Region{Low: kautz.MinExtend("", 16), High: kautz.MinExtend("", 16)}
	if got := n.PeersIntersectingRegion(point); len(got) != 1 {
		t.Fatalf("point region hits %d peers, want 1", len(got))
	}
}

func log2(x float64) float64 { return math.Log2(x) }
