package fissione

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"armada/internal/kautz"
	"armada/internal/obs"
)

// Errors returned by Network operations.
var (
	ErrTooSmall     = errors.New("fissione: network cannot shrink below its three seed regions")
	ErrNoSuchPeer   = errors.New("fissione: no such peer")
	ErrBadObjectID  = errors.New("fissione: ObjectID must be a Kautz string of the network's length k")
	ErrCorrupt      = errors.New("fissione: namespace cover is corrupt")
	ErrNoSuchObject = errors.New("fissione: no such object")
)

// Network is a FISSIONE overlay of peers partitioning KautzSpace(2,k) by
// identifier prefix. Topology mutation (Join, Leave, FailAbrupt,
// SetReplicas) is not safe for concurrent use and requires external
// exclusion against every other operation. While the topology is stable,
// object operations (PublishAt, UnpublishAt) and reads may all run
// concurrently: each peer's store is guarded by its own lock (see Peer).
//
// With a replication degree above 1 (SetReplicas), each region is owned by
// a replica group — the owner plus its successors in trie order — and
// every store write fans out to the whole group; see replication.go.
type Network struct {
	k        int
	peers    map[kautz.Str]*Peer
	ids      []kautz.Str // sorted; kept in sync with peers
	rng      *rand.Rand
	seed     int64       // rng seed; snapshots embed it to replay draws
	joins    uint64      // random joins performed (rng draws to replay on load)
	replicas int         // replication degree; 1 = single-owner
	reRepl   obs.Counter // objects copied by churn repair
	repairs  obs.Counter // regions whose replica set repair actually rebuilt
	epoch    atomic.Uint64
	// onRepair, when set (SetRepairHook), observes each region repair that
	// copied objects. It runs under the same external exclusion topology
	// mutation requires.
	onRepair func(owner kautz.Str, copied int)
}

// Epoch returns the topology epoch: a counter bumped by every mutation that
// can move region ownership — splits (joins), departures, crashes and
// replication-degree changes. Routing state captured outside the network
// (the query engine's descent frontiers) is valid only while the epoch it
// was captured at still matches; ValidEpoch is the check. Reads are safe
// concurrently with queries; the counter only advances under the same
// external exclusion topology mutation requires, so a value observed while
// holding a read lock stays exact for the lock's duration.
func (n *Network) Epoch() uint64 { return n.epoch.Load() }

// ValidEpoch reports whether routing state captured at epoch e may still be
// used: ownership has not shifted since.
func (n *Network) ValidEpoch(e uint64) bool { return n.epoch.Load() == e }

// New creates a minimal network of the three seed peers 0, 1 and 2, with
// ObjectIDs of length k. The seed determines all subsequent randomized
// choices (join targets), making builds reproducible.
func New(k int, seed int64) (*Network, error) {
	if k < 2 || k > kautz.MaxRankLen {
		return nil, fmt.Errorf("fissione: k=%d out of range [2, %d]", k, kautz.MaxRankLen)
	}
	n := &Network{
		k:        k,
		peers:    make(map[kautz.Str]*Peer, 3),
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		replicas: 1,
	}
	for _, id := range []kautz.Str{"0", "1", "2"} {
		n.peers[id] = newPeer(id)
		n.ids = append(n.ids, id)
	}
	for id := range n.peers {
		n.refreshTables(id)
	}
	return n, nil
}

// BuildRandom creates a network of size peers grown by random joins (each
// join hashes to a random namespace position and splits the local
// length-minimum peer there, as FISSIONE joins do). It grows through the
// batch-construction path (see GrowBatch), which is byte-identical to
// sequential joins with the same seed.
func BuildRandom(k, size int, seed int64) (*Network, error) {
	n, err := New(k, seed)
	if err != nil {
		return nil, err
	}
	if err := n.GrowBatch(size - n.Size()); err != nil {
		return nil, err
	}
	return n, nil
}

// BuildBalanced creates a network of size peers by always splitting a peer
// of globally minimal identifier length, yielding identifier lengths that
// differ by at most one across the whole network.
func BuildBalanced(k, size int, seed int64) (*Network, error) {
	n, err := New(k, seed)
	if err != nil {
		return nil, err
	}
	for n.Size() < size {
		shortest := n.ids[0]
		for _, id := range n.ids[1:] {
			if len(id) < len(shortest) {
				shortest = id
			}
		}
		if _, _, err := n.split(shortest); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// K returns the ObjectID length.
func (n *Network) K() int { return n.k }

// Size returns the number of peers.
func (n *Network) Size() int { return len(n.peers) }

// Peer returns the peer with the given identifier.
func (n *Network) Peer(id kautz.Str) (*Peer, bool) {
	p, ok := n.peers[id]
	return p, ok
}

// PeerIDs returns all peer identifiers in ascending order. The returned
// slice is a copy.
func (n *Network) PeerIDs() []kautz.Str {
	return append([]kautz.Str(nil), n.ids...)
}

// RandomPeer returns a peer identifier drawn uniformly from rng (or the
// network's own source when rng is nil).
func (n *Network) RandomPeer(rng *rand.Rand) kautz.Str {
	if rng == nil {
		rng = n.rng
	}
	return n.ids[rng.Intn(len(n.ids))]
}

// Grow performs count random joins.
func (n *Network) Grow(count int) error {
	for i := 0; i < count; i++ {
		if _, err := n.Join(); err != nil {
			return fmt.Errorf("grow join %d: %w", i, err)
		}
	}
	return nil
}

// Join adds one peer: it picks a uniformly random namespace position, finds
// the owning peer, walks to a local minimum of identifier length (preserving
// the neighborhood invariant) and splits it. It returns the identifier of
// the newly created peer.
func (n *Network) Join() (kautz.Str, error) {
	target := kautz.Random(n.rng, n.k)
	n.joins++
	owner, err := n.OwnerOf(target)
	if err != nil {
		return "", err
	}
	victim := n.walkToLocalMin(owner)
	_, created, err := n.split(victim)
	return created, err
}

// walkToLocalMin follows neighbor links from start to a peer whose
// identifier is no longer than any of its neighbors'. Each step moves to a
// strictly shorter neighbor (smallest length, then smallest identifier, for
// determinism), so the walk terminates.
func (n *Network) walkToLocalMin(start kautz.Str) kautz.Str {
	cur := start
	for {
		p := n.peers[cur]
		best := cur
		for _, lists := range [2][]kautz.Str{p.Out(), p.In()} {
			for _, nb := range lists {
				if len(nb) < len(best) || (len(nb) == len(best) && nb < best) {
					best = nb
				}
			}
		}
		if len(best) >= len(cur) {
			return cur
		}
		cur = best
	}
}

// split divides the region of peer id between it and a freshly created
// peer: id's two children in the partition trie become the identifiers, the
// existing peer keeps the lexicographically lower child and the new peer
// takes the higher. It returns both identifiers.
func (n *Network) split(id kautz.Str) (kept, created kautz.Str, err error) {
	p, ok := n.peers[id]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", ErrNoSuchPeer, id)
	}
	if len(id)+1 >= n.k {
		return "", "", fmt.Errorf("fissione: cannot split %q: identifier would reach ObjectID length %d", id, n.k)
	}
	ext := kautz.Extensions(id)
	lower, upper := id+kautz.Str(ext[0]), id+kautz.Str(ext[1])

	affected := neighborSet(p)

	// The existing peer is renamed to the lower child; the new peer takes
	// the upper child and the objects falling in its half.
	n.removeID(id)
	delete(n.peers, id)
	p.id = lower
	n.peers[lower] = p
	n.insertID(lower)

	np := newPeer(upper)
	n.peers[upper] = np
	n.insertID(upper)
	p.moveObjectsWithPrefix(upper, np)

	affected[lower] = struct{}{}
	affected[upper] = struct{}{}
	n.refreshAll(affected)
	n.repairAround(lower, upper)
	n.epoch.Add(1)
	return lower, upper, nil
}

// Leave removes the peer id gracefully, reassigning its region and objects
// while preserving the prefix cover and the neighborhood invariant.
//
// If the departing peer's trie sibling is itself a leaf peer and absorbing
// the pair's parent region violates no invariant, the sibling takes over
// (case A). Otherwise a globally deepest sibling leaf pair is merged — which
// is always invariant-safe — and the peer freed by that merge adopts the
// departing peer's identifier and objects (case B).
func (n *Network) Leave(id kautz.Str) error {
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, id)
	}
	if len(n.peers) <= 3 {
		return ErrTooSmall
	}

	// Case A: direct sibling merge.
	if sib, ok := n.leafSibling(id); ok && n.mergeSafe(id, sib) {
		parent := id[:len(id)-1]
		sp := n.peers[sib]
		affected := neighborSet(p)
		for a := range neighborSet(sp) {
			affected[a] = struct{}{}
		}

		n.removeID(id)
		delete(n.peers, id)
		n.removeID(sib)
		delete(n.peers, sib)
		n.takeover(p, sp)
		sp.id = parent
		n.peers[parent] = sp
		n.insertID(parent)

		affected[parent] = struct{}{}
		delete(affected, id)
		delete(affected, sib)
		n.refreshAll(affected)
		n.repairAround(id, sib, parent)
		n.epoch.Add(1)
		return nil
	}

	// Case B: merge a globally deepest sibling pair and relocate the freed
	// peer into the departing peer's position.
	u0, u1, ok := n.deepestSiblingPair(id)
	if !ok {
		return fmt.Errorf("%w: no mergeable sibling pair", ErrCorrupt)
	}
	parent := u0[:len(u0)-1]
	keep, free := n.peers[u0], n.peers[u1]

	affected := neighborSet(p)
	for a := range neighborSet(keep) {
		affected[a] = struct{}{}
	}
	for a := range neighborSet(free) {
		affected[a] = struct{}{}
	}

	// Merge the pair: keep absorbs the parent region.
	n.removeID(u0)
	delete(n.peers, u0)
	n.removeID(u1)
	delete(n.peers, u1)
	n.takeover(free, keep)
	keep.id = parent
	n.peers[parent] = keep
	n.insertID(parent)

	// Relocate the freed peer into the departing peer's identity.
	n.removeID(id)
	delete(n.peers, id)
	free.id = id
	n.takeover(p, free)
	n.peers[id] = free
	n.insertID(id)

	affected[parent] = struct{}{}
	affected[id] = struct{}{}
	delete(affected, u0)
	delete(affected, u1)
	n.refreshAll(affected)
	n.repairAround(u0, u1, parent, id)
	n.epoch.Add(1)
	return nil
}

// takeover moves src's whole store into dst for a departure or merge. On a
// replicated network the stores may overlap — dst often already holds a
// replica copy of src's region (the trie sibling is usually the first
// successor) — so the move takes the multiset maximum; without replication
// the stores are disjoint and the plain merge is kept byte for byte.
func (n *Network) takeover(src, dst *Peer) {
	if n.replicas > 1 {
		src.absorbAllObjects(dst)
	} else {
		src.moveAllObjects(dst)
	}
}

// leafSibling returns the identifier of id's trie sibling if that sibling
// is an existing leaf peer. Peers directly under the ternary root have two
// siblings; merging there is never possible above three peers, so they
// report false.
func (n *Network) leafSibling(id kautz.Str) (kautz.Str, bool) {
	if len(id) < 2 {
		return "", false
	}
	parent := id[:len(id)-1]
	for _, c := range kautz.Extensions(parent) {
		sib := parent + kautz.Str(c)
		if sib == id {
			continue
		}
		if _, ok := n.peers[sib]; ok {
			return sib, true
		}
	}
	return "", false
}

// mergeSafe reports whether merging leaf peers a and b into their parent
// keeps the neighborhood invariant: no neighbor of either may be longer
// than the pair (the merged peer is one symbol shorter).
func (n *Network) mergeSafe(a, b kautz.Str) bool {
	l := len(a)
	for _, id := range []kautz.Str{a, b} {
		p := n.peers[id]
		for _, lists := range [2][]kautz.Str{p.Out(), p.In()} {
			for _, nb := range lists {
				if len(nb) > l {
					return false
				}
			}
		}
	}
	return true
}

// deepestSiblingPair finds two sibling leaf peers of maximal identifier
// length, excluding the departing peer exclude (whose own sibling merge was
// already ruled out).
func (n *Network) deepestSiblingPair(exclude kautz.Str) (kautz.Str, kautz.Str, bool) {
	var bestA, bestB kautz.Str
	for _, id := range n.ids {
		if id == exclude || len(id) < 2 || len(id) <= len(bestA) {
			continue
		}
		parent := id[:len(id)-1]
		for _, c := range kautz.Extensions(parent) {
			sib := parent + kautz.Str(c)
			if sib == id || sib == exclude {
				continue
			}
			if _, ok := n.peers[sib]; ok {
				bestA, bestB = id, sib
				break
			}
		}
	}
	if bestA == "" {
		return "", "", false
	}
	if bestB < bestA {
		bestA, bestB = bestB, bestA
	}
	return bestA, bestB, true
}

// OwnerOf returns the identifier of the peer owning objectID (the unique
// peer whose identifier is a prefix of it).
func (n *Network) OwnerOf(objectID kautz.Str) (kautz.Str, error) {
	if len(objectID) != n.k || !kautz.Valid(objectID) {
		return "", fmt.Errorf("%w: %q", ErrBadObjectID, objectID)
	}
	for l := 1; l <= len(objectID); l++ {
		if _, ok := n.peers[objectID[:l]]; ok {
			return objectID[:l], nil
		}
	}
	return "", fmt.Errorf("%w: no owner for %q", ErrCorrupt, objectID)
}

// PublishAt stores obj under objectID on every member of its region's
// replica group directly (without routing) and returns the owner. The
// fan-out applies member by member in placement order (owner first) under
// each member's own store lock, so it runs concurrently with queries and
// other publishes; a reader racing the fan-out may observe the object on
// some members before others. Routing-accounted publication is provided by
// the query engine's Lookup.
func (n *Network) PublishAt(objectID kautz.Str, obj Object) (kautz.Str, error) {
	owner, err := n.OwnerOf(objectID)
	if err != nil {
		return "", err
	}
	if n.replicas == 1 {
		n.peers[owner].addObject(objectID, obj)
		return owner, nil
	}
	for _, id := range n.groupIDs(owner) {
		n.peers[id].addObject(objectID, obj)
	}
	return owner, nil
}

// UnpublishAt removes one stored occurrence of obj under objectID from
// every member of its region's replica group and returns the owner. It
// returns ErrNoSuchObject when no member stored a matching object. Like
// PublishAt, the fan-out applies member by member in placement order.
func (n *Network) UnpublishAt(objectID kautz.Str, obj Object) (kautz.Str, error) {
	owner, err := n.OwnerOf(objectID)
	if err != nil {
		return "", err
	}
	removed := false
	if n.replicas == 1 {
		removed = n.peers[owner].removeObject(objectID, obj)
	} else {
		for _, id := range n.groupIDs(owner) {
			if n.peers[id].removeObject(objectID, obj) {
				removed = true
			}
		}
	}
	if !removed {
		return "", fmt.Errorf("%w: %q at %q", ErrNoSuchObject, obj.Name, objectID)
	}
	return owner, nil
}

// OwnersIntersecting returns the identifiers of all peers whose region
// intersects prefix·*: either the single peer whose identifier covers
// prefix, or every peer whose identifier extends prefix. Results ascend.
func (n *Network) OwnersIntersecting(prefix kautz.Str) []kautz.Str {
	for l := 0; l <= len(prefix); l++ {
		if _, ok := n.peers[prefix[:l]]; ok {
			return []kautz.Str{prefix[:l]}
		}
	}
	var out []kautz.Str
	n.collectLeaves(prefix, &out)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Network) collectLeaves(prefix kautz.Str, out *[]kautz.Str) {
	if len(prefix) > n.k {
		panic(fmt.Sprintf("fissione: namespace cover broken below %q", prefix))
	}
	if _, ok := n.peers[prefix]; ok {
		*out = append(*out, prefix)
		return
	}
	for _, c := range kautz.Extensions(prefix) {
		n.collectLeaves(prefix+kautz.Str(c), out)
	}
}

// computeOut derives id's out-neighbors from the current cover: the owners
// of the shifted region id[1:]·*, excluding id itself.
func (n *Network) computeOut(id kautz.Str) []kautz.Str {
	owners := n.OwnersIntersecting(id.Drop(1))
	out := owners[:0:0]
	for _, o := range owners {
		if o != id {
			out = append(out, o)
		}
	}
	return out
}

// computeIn derives id's in-neighbors: peers whose shifted region
// intersects id's region, i.e. the owners intersecting α·id for each symbol
// α ≠ id's first.
func (n *Network) computeIn(id kautz.Str) []kautz.Str {
	var in []kautz.Str
	for _, a := range []byte(kautz.Alphabet) {
		if a == id[0] {
			continue
		}
		for _, o := range n.OwnersIntersecting(kautz.Str(a) + id) {
			if o != id {
				in = append(in, o)
			}
		}
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	return in
}

// canon returns the canonical interned copy of a peer identifier: the id
// string owned by the peer itself. Routing tables and the identifier index
// alias that one backing array instead of keeping the per-entry copies
// table derivation builds, so each identifier's bytes live on the heap
// exactly once no matter how many neighbor lists mention it.
func (n *Network) canon(id kautz.Str) kautz.Str {
	if p, ok := n.peers[id]; ok {
		return p.id
	}
	return id
}

// refreshTables recomputes the routing table of peer id. Both lists are
// packed into one backing array of interned identifiers — a peer's whole
// routing state is a single allocation aliasing its neighbors' own id
// strings.
func (n *Network) refreshTables(id kautz.Str) {
	p := n.peers[id]
	out := n.computeOut(id)
	in := n.computeIn(id)
	nbr := make([]kautz.Str, len(out)+len(in))
	for i, o := range out {
		nbr[i] = n.canon(o)
	}
	for i, o := range in {
		nbr[len(out)+i] = n.canon(o)
	}
	p.setTables(nbr, len(out))
}

// refreshAll recomputes routing tables for every identifier in set that
// still names a peer.
func (n *Network) refreshAll(set map[kautz.Str]struct{}) {
	for id := range set {
		if _, ok := n.peers[id]; ok {
			n.refreshTables(id)
		}
	}
}

// neighborSet collects a peer's current neighbors (both directions) as a
// set, seeded with the peer itself.
func neighborSet(p *Peer) map[kautz.Str]struct{} {
	set := make(map[kautz.Str]struct{}, len(p.nbr)+1)
	set[p.id] = struct{}{}
	for _, id := range p.nbr {
		set[id] = struct{}{}
	}
	return set
}

// insertID adds id to the sorted identifier index.
func (n *Network) insertID(id kautz.Str) {
	i := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= id })
	n.ids = append(n.ids, "")
	copy(n.ids[i+1:], n.ids[i:])
	n.ids[i] = id
}

// removeID deletes id from the sorted identifier index.
func (n *Network) removeID(id kautz.Str) {
	i := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= id })
	if i < len(n.ids) && n.ids[i] == id {
		n.ids = append(n.ids[:i], n.ids[i+1:]...)
	}
}
