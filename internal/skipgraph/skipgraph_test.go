package skipgraph

import (
	"math"
	"math/rand"
	"testing"
)

func buildGraph(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	g, err := Build(n, 0, 1000, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(0, 0, 1, 1); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Build(10, 5, 5, 1); err == nil {
		t.Error("empty key space accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	for _, n := range []int{1, 2, 10, 200} {
		g := buildGraph(t, n, int64(n))
		if g.Size() != n {
			t.Fatalf("size = %d, want %d", g.Size(), n)
		}
		if err := g.CheckLinks(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestLevelsAndDegreeScaleLogarithmically(t *testing.T) {
	g := buildGraph(t, 1024, 3)
	logN := math.Log2(1024)
	// The deepest level at which any two of N random vectors still share a
	// prefix is ≈ 2·log₂N (birthday bound); levels must be Θ(logN).
	if lv := float64(g.Levels()); lv < logN-2 || lv > 2*logN+6 {
		t.Errorf("levels = %v, want within [logN-2, 2logN+6] = [%v, %v]", lv, logN-2, 2*logN+6)
	}
	if d := g.AvgDegree(); d < logN/2 || d > 4*logN {
		t.Errorf("avg degree = %.1f, want O(logN) = %.1f", d, logN)
	}
}

func TestPublishOwner(t *testing.T) {
	g := buildGraph(t, 50, 5)
	idx := g.Publish("a", 421.5)
	if g.nodes[idx].key > 421.5 {
		t.Fatalf("owner key %v above value", g.nodes[idx].key)
	}
	if idx+1 < len(g.nodes) && g.nodes[idx+1].key <= 421.5 {
		t.Fatalf("owner %d is not the largest key ≤ value", idx)
	}
	// Values below every key go to node 0.
	if got := g.Publish("b", -5); got != 0 {
		t.Fatalf("below-range owner = %d", got)
	}
}

func TestRangeQueryCompleteness(t *testing.T) {
	g := buildGraph(t, 120, 7)
	rng := rand.New(rand.NewSource(8))
	values := make([]float64, 400)
	for i := range values {
		values[i] = rng.Float64() * 1000
		g.Publish(name(i), values[i])
	}
	for trial := 0; trial < 40; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*(1000-lo)
		res, err := g.RangeQuery(g.RandomNode(rng), lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range values {
			if v >= lo && v <= hi {
				want++
			}
		}
		if len(res.Matches) != want {
			t.Fatalf("[%f,%f]: %d matches, want %d", lo, hi, len(res.Matches), want)
		}
	}
}

func TestRangeQueryValidation(t *testing.T) {
	g := buildGraph(t, 10, 9)
	if _, err := g.RangeQuery(0, 9, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := g.RangeQuery(-1, 0, 1); err == nil {
		t.Error("bad start index accepted")
	}
}

// Search cost is O(logN); the sweep adds ~n hops — so delay grows with the
// answer size (Table 1: not delay-bounded).
func TestDelayGrowsWithAnswerSize(t *testing.T) {
	g := buildGraph(t, 1000, 11)
	rng := rand.New(rand.NewSource(12))
	avgDelay := func(width float64) float64 {
		total := 0
		const trials = 100
		for i := 0; i < trials; i++ {
			lo := rng.Float64() * (1000 - width)
			res, err := g.RangeQuery(g.RandomNode(rng), lo, lo+width)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.Delay
		}
		return float64(total) / trials
	}
	small, large := avgDelay(2), avgDelay(300)
	if large < small+100 {
		t.Errorf("delay %f -> %f: a 30%% range should add ≈ 300 sweep hops", small, large)
	}
}

// The descent alone is logarithmic.
func TestSearchHopsLogarithmic(t *testing.T) {
	g := buildGraph(t, 2048, 13)
	rng := rand.New(rand.NewSource(14))
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		v := rng.Float64() * 1000
		res, err := g.RangeQuery(g.RandomNode(rng), v, v)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Stats.SearchHops
	}
	logN := math.Log2(2048)
	if avg := float64(total) / trials; avg > 3*logN {
		t.Errorf("avg search hops %.1f, want O(logN) = %.1f", avg, logN)
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := buildGraph(t, 1, 15)
	g.Publish("only", 500)
	res, err := g.RangeQuery(0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Stats.DestNodes != 1 {
		t.Fatalf("single-node result = %+v", res)
	}
}

func name(i int) string {
	return "s" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10))
}
