// Package skipgraph implements a Skip Graph (Aspnes & Shah, SODA 2003) —
// the O(logN)-degree structure the Armada paper's Table 1 compares against.
// Skip Graphs support single-attribute range queries natively: nodes are
// totally ordered by key, and level-0 links form a sorted doubly linked
// list, so a query routes to the range's low end in O(logN) hops and then
// sweeps right, giving O(logN + n) delay — dependent on the answer size n,
// i.e. *not* delay-bounded.
//
// Each node draws a random membership vector; at level i a node links to
// the nearest node in each direction sharing its first i membership bits.
// The expected number of non-trivial levels is log₂N and the expected
// degree O(logN).
package skipgraph

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Errors returned by the graph.
var (
	ErrEmpty    = errors.New("skipgraph: graph has no nodes")
	ErrBadRange = errors.New("skipgraph: query low bound above high bound")
	ErrNoNode   = errors.New("skipgraph: no such node")
)

// maxLevels bounds membership vectors; 64 supports any practical size.
const maxLevels = 64

// Item is an object stored on a node by the range-query layer.
type Item struct {
	Name  string
	Value float64
}

// node is one Skip Graph participant.
type node struct {
	key    float64
	vector uint64
	// left[i] and right[i] are neighbor indexes at level i (-1 when none).
	left  []int
	right []int
	items []Item
}

// Graph is a Skip Graph over float64 keys. It is immutable after Build and
// safe for concurrent queries.
type Graph struct {
	nodes  []*node // sorted by key
	levels int
}

// Build creates a Skip Graph of n nodes with distinct uniformly random keys
// in [low, high).
func Build(n int, low, high float64, seed int64) (*Graph, error) {
	if n < 1 {
		return nil, ErrEmpty
	}
	if !(low < high) {
		return nil, fmt.Errorf("skipgraph: key space [%v, %v] empty", low, high)
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make(map[float64]bool, n)
	g := &Graph{nodes: make([]*node, 0, n)}
	for len(g.nodes) < n {
		k := low + rng.Float64()*(high-low)
		if keys[k] {
			continue
		}
		keys[k] = true
		g.nodes = append(g.nodes, &node{key: k, vector: rng.Uint64()})
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].key < g.nodes[j].key })
	g.link()
	return g, nil
}

// link wires left/right neighbors at every level: at level l, neighbors are
// the nearest nodes (in key order) sharing the first l membership bits.
// Linking stops at the first level where every node is isolated.
func (g *Graph) link() {
	n := len(g.nodes)
	for _, nd := range g.nodes {
		nd.left = nd.left[:0]
		nd.right = nd.right[:0]
	}
	for level := 0; level < maxLevels; level++ {
		mask := uint64(0)
		if level > 0 {
			mask = ^uint64(0) >> uint(64-level)
		}
		// prev[v] is the index of the last node seen with prefix v.
		prev := make(map[uint64]int, n)
		linked := false
		for i, nd := range g.nodes {
			v := nd.vector & mask
			nd.left = append(nd.left, -1)
			nd.right = append(nd.right, -1)
			if j, ok := prev[v]; ok {
				nd.left[level] = j
				g.nodes[j].right[level] = i
				linked = true
			}
			prev[v] = i
		}
		g.levels = level + 1
		if !linked {
			break
		}
	}
}

// Size returns the number of nodes.
func (g *Graph) Size() int { return len(g.nodes) }

// Levels returns the number of constructed levels (≈ log₂N + 1).
func (g *Graph) Levels() int { return g.levels }

// AvgDegree returns the mean number of distinct neighbors per node.
func (g *Graph) AvgDegree() float64 {
	total := 0
	for _, nd := range g.nodes {
		seen := make(map[int]bool)
		for l := 0; l < len(nd.left); l++ {
			if nd.left[l] >= 0 {
				seen[nd.left[l]] = true
			}
			if nd.right[l] >= 0 {
				seen[nd.right[l]] = true
			}
		}
		total += len(seen)
	}
	return float64(total) / float64(len(g.nodes))
}

// RandomNode returns a uniformly random node index.
func (g *Graph) RandomNode(rng *rand.Rand) int { return rng.Intn(len(g.nodes)) }

// Publish stores an object on the node owning value: the node with the
// largest key ≤ value (the first node for smaller values). It returns the
// node index.
func (g *Graph) Publish(name string, value float64) int {
	i := g.ownerIndex(value)
	g.nodes[i].items = append(g.nodes[i].items, Item{Name: name, Value: value})
	return i
}

// ownerIndex returns the index of the node with the largest key ≤ v, or 0.
func (g *Graph) ownerIndex(v float64) int {
	i := sort.Search(len(g.nodes), func(i int) bool { return g.nodes[i].key > v })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Stats are the cost metrics of one Skip Graph query.
type Stats struct {
	// Delay is the total hop count: the O(logN) descent to the range's low
	// end plus the level-0 sweep across it (sequential, so delay equals
	// messages).
	Delay int
	// SearchHops is the descent's share of Delay.
	SearchHops int
	// Messages equals Delay (every hop is one message).
	Messages int
	// DestNodes is the number of nodes intersecting the range.
	DestNodes int
}

// Match is one object satisfying a range query.
type Match struct {
	Name  string
	Value float64
}

// Result is the outcome of a range query.
type Result struct {
	Matches []Match
	Stats   Stats
}

// RangeQuery searches [lo, hi] starting from the node with index start.
func (g *Graph) RangeQuery(start int, lo, hi float64) (*Result, error) {
	if start < 0 || start >= len(g.nodes) {
		return nil, fmt.Errorf("%w: index %d", ErrNoNode, start)
	}
	if lo > hi {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	target := g.ownerIndex(lo)
	cur, searchHops := g.search(start, g.nodes[target].key)

	res := &Result{}
	hops := searchHops
	// Level-0 sweep right across the range.
	for {
		nd := g.nodes[cur]
		res.Stats.DestNodes++
		for _, it := range nd.items {
			if it.Value >= lo && it.Value <= hi {
				res.Matches = append(res.Matches, Match{Name: it.Name, Value: it.Value})
			}
		}
		next := nd.right[0]
		if next < 0 || g.nodes[next].key > hi {
			break
		}
		cur = next
		hops++
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].Value != res.Matches[j].Value {
			return res.Matches[i].Value < res.Matches[j].Value
		}
		return res.Matches[i].Name < res.Matches[j].Name
	})
	res.Stats.Delay = hops
	res.Stats.SearchHops = searchHops
	res.Stats.Messages = hops
	return res, nil
}

// search routes from node index start to the node whose key equals key
// (which must exist), using the standard top-down Skip Graph traversal, and
// returns the destination index and hop count.
func (g *Graph) search(start int, key float64) (int, int) {
	cur := start
	hops := 0
	for level := len(g.nodes[cur].left) - 1; level >= 0; level-- {
		for {
			nd := g.nodes[cur]
			if nd.key == key {
				return cur, hops
			}
			if level >= len(nd.left) {
				break
			}
			var next int
			if nd.key < key {
				next = nd.right[level]
				if next < 0 || g.nodes[next].key > key {
					break
				}
			} else {
				next = nd.left[level]
				if next < 0 || g.nodes[next].key < key {
					break
				}
			}
			cur = next
			hops++
		}
	}
	return cur, hops
}

// CheckLinks verifies structural soundness: level-0 forms the sorted list
// and all links are symmetric and prefix-consistent.
func (g *Graph) CheckLinks() error {
	for i, nd := range g.nodes {
		if i > 0 && nd.left[0] != i-1 {
			return fmt.Errorf("skipgraph: node %d level-0 left link = %d", i, nd.left[0])
		}
		if i < len(g.nodes)-1 && nd.right[0] != i+1 {
			return fmt.Errorf("skipgraph: node %d level-0 right link = %d", i, nd.right[0])
		}
		for l := 0; l < len(nd.left); l++ {
			if j := nd.left[l]; j >= 0 {
				if g.nodes[j].right[l] != i {
					return fmt.Errorf("skipgraph: asymmetric link %d<-%d at level %d", i, j, l)
				}
				if l > 0 && (g.nodes[j].vector^nd.vector)&(^uint64(0)>>uint(64-l)) != 0 {
					return fmt.Errorf("skipgraph: level-%d link %d-%d without shared prefix", l, j, i)
				}
			}
		}
	}
	return nil
}
