package experiments

import "testing"

// smallCfg keeps test runs fast while exercising the full pipeline.
func smallCfg() Config {
	return Config{
		Queries:    30,
		Seed:       7,
		K:          28,
		CurveOrder: 8,
		RangeSizes: []int{10, 100},
		NetSizes:   []int{100, 300},
		FixedNet:   200,
		FixedRange: 20,
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Queries != 1000 || cfg.FixedNet != 2000 || cfg.FixedRange != 20 {
		t.Errorf("defaults = %+v", cfg)
	}
	if len(cfg.RangeSizes) != 8 || len(cfg.NetSizes) != 8 {
		t.Errorf("default sweeps = %v / %v", cfg.RangeSizes, cfg.NetSizes)
	}
	if cfg.SpaceLow != 0 || cfg.SpaceHigh != 1000 {
		t.Errorf("default space = [%v, %v]", cfg.SpaceLow, cfg.SpaceHigh)
	}
}

func TestRangeSizeFiguresShape(t *testing.T) {
	figs, err := RangeSizeFigures(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d figures, want 3", len(figs))
	}
	fig5 := figs[0]
	if fig5.ID != "fig5" || len(fig5.X) != 2 || len(fig5.Series) != 3 {
		t.Fatalf("fig5 shape: %+v", fig5)
	}
	// PIRA's delay must stay below logN and be essentially flat; DCF-CAN's
	// must exceed it.
	pira, dcf, logN := fig5.Series[0].Y, fig5.Series[1].Y, fig5.Series[2].Y
	for i := range fig5.X {
		if pira[i] >= logN[i] {
			t.Errorf("PIRA delay %v ≥ logN %v at x=%v", pira[i], logN[i], fig5.X[i])
		}
		if dcf[i] <= pira[i] {
			t.Errorf("DCF-CAN delay %v ≤ PIRA %v at x=%v", dcf[i], pira[i], fig5.X[i])
		}
	}
	// Fig 6a: Destpeers ≈ half of PIRA messages (paper's observation).
	fig6a := figs[1]
	msgs, dest := fig6a.Series[0].Y, fig6a.Series[2].Y
	for i := range fig6a.X {
		if dest[i] <= 0 || msgs[i] <= dest[i] {
			t.Errorf("fig6a point %d: messages %v vs destpeers %v", i, msgs[i], dest[i])
		}
	}
	// Fig 6b: IncreRatio (marginal messages per destination) stays near 2;
	// MesgRatio includes the fixed ~logN routing cost and so can sit higher
	// when destinations are few — it must still come down toward 2 as the
	// range grows.
	fig6b := figs[2]
	mesg, incre := fig6b.Series[0].Y, fig6b.Series[1].Y
	for i, v := range incre {
		if v < 0.8 || v > 2.6 {
			t.Errorf("fig6b IncreRatio[%d] = %v, want ≈ 2", i, v)
		}
	}
	last := len(mesg) - 1
	if mesg[last] < 1.5 || mesg[last] > 3.5 {
		t.Errorf("fig6b MesgRatio at largest range = %v, want ≈ 2", mesg[last])
	}
	if mesg[last] > mesg[0] {
		t.Errorf("MesgRatio should fall as ranges grow: %v -> %v", mesg[0], mesg[last])
	}
}

func TestNetworkSizeFiguresShape(t *testing.T) {
	figs, err := NetworkSizeFigures(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d figures, want 3", len(figs))
	}
	fig7 := figs[0]
	pira, dcf := fig7.Series[0].Y, fig7.Series[1].Y
	// DCF-CAN delay grows faster with N than PIRA's.
	if dcf[1]-dcf[0] <= pira[1]-pira[0] {
		t.Errorf("DCF-CAN growth %v..%v should exceed PIRA growth %v..%v",
			dcf[0], dcf[1], pira[0], pira[1])
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("table has %d rows, want 6", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Armada (this paper)" || last[7] != "yes" {
		t.Fatalf("Armada row = %v", last)
	}
	// Every row has a value per header column.
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tab.Header))
		}
	}
}

func TestDelayBounds(t *testing.T) {
	fig, err := DelayBounds(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	maxDelay, bound := fig.Series[0].Y, fig.Series[1].Y
	avg, logN := fig.Series[2].Y, fig.Series[3].Y
	for i := range fig.X {
		if maxDelay[i] >= bound[i] {
			t.Errorf("max delay %v ≥ 2logN %v at N=%v", maxDelay[i], bound[i], fig.X[i])
		}
		if avg[i] >= logN[i] {
			t.Errorf("avg delay %v ≥ logN %v at N=%v", avg[i], logN[i], fig.X[i])
		}
	}
}

func TestMIRAFigure(t *testing.T) {
	cfg := smallCfg()
	cfg.Queries = 15
	fig, err := MIRAFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	delay, logN := fig.Series[0].Y, fig.Series[1].Y
	for i := range fig.X {
		if delay[i] >= 2*logN[i] {
			t.Errorf("MIRA delay %v ≥ 2logN %v at m=%v", delay[i], 2*logN[i], fig.X[i])
		}
	}
}

func TestAblationFigure(t *testing.T) {
	cfg := smallCfg()
	fig, err := AblationFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pruned, flood := fig.Series[0].Y, fig.Series[1].Y
	for i := range fig.X {
		if flood[i] <= pruned[i] {
			t.Errorf("flood %v ≤ pruned %v at N=%v: pruning should save messages",
				flood[i], pruned[i], fig.X[i])
		}
	}
}

func TestRunDispatch(t *testing.T) {
	cfg := smallCfg()
	figs, tabs, err := Run("table1", cfg)
	if err != nil || len(figs) != 0 || len(tabs) != 1 {
		t.Fatalf("table1 dispatch: %d figs %d tabs %v", len(figs), len(tabs), err)
	}
	if _, _, err := Run("nope", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	figs, _, err = Run("fig5", cfg)
	if err != nil || len(figs) != 3 {
		t.Fatalf("fig5 dispatch: %d figs %v", len(figs), err)
	}
}
