package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"armada/internal/core"
	"armada/internal/fissione"
	"armada/internal/naming"
	"armada/internal/stats"
)

// This file holds the extension experiments (EX1–EX5 in DESIGN.md) that go
// beyond the paper's published figures.

// DelayBounds regenerates the Section 4.3.2 claims as a figure: measured
// maximum and average PIRA delay against the 2·logN bound and the logN
// average bound, across network sizes.
func DelayBounds(cfg Config) (*Figure, error) {
	cfg = cfg.WithDefaults()
	x := make([]float64, len(cfg.NetSizes))
	var (
		maxDelay = make([]float64, len(cfg.NetSizes))
		avgDelay = make([]float64, len(cfg.NetSizes))
		bound    = make([]float64, len(cfg.NetSizes))
		logN     = make([]float64, len(cfg.NetSizes))
	)
	for i, n := range cfg.NetSizes {
		net, err := fissione.BuildRandom(cfg.K, n, cfg.Seed+int64(i)*17)
		if err != nil {
			return nil, err
		}
		tree, err := naming.NewSingleTree(cfg.K, cfg.SpaceLow, cfg.SpaceHigh)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(net, tree)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*17 + 1))
		var delay stats.Sample
		for q := 0; q < cfg.Queries; q++ {
			// Mix widths so the bound is exercised across query shapes.
			width := []float64{2, 20, 200, 800}[q%4]
			lo := cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
			res, err := eng.RangeQuery(context.Background(), net.RandomPeer(rng), []float64{lo}, []float64{lo + width})
			if err != nil {
				return nil, err
			}
			delay.AddInt(res.Stats.Delay)
		}
		x[i] = float64(n)
		maxDelay[i] = delay.Max()
		avgDelay[i] = delay.Mean()
		bound[i] = 2 * math.Log2(float64(n))
		logN[i] = math.Log2(float64(n))
	}
	return &Figure{
		ID: "bounds", Title: "PIRA delay bounds (Section 4.3.2 claims)",
		XLabel: "Network Size", YLabel: "Delay (hops)", X: x,
		Series: []Series{
			{"max delay", maxDelay}, {"2*logN bound", bound},
			{"avg delay", avgDelay}, {"logN", logN},
		},
	}, nil
}

// MIRAFigure is extension EX1: MIRA delay and message cost as the number of
// attributes grows, with query boxes covering a fixed fraction of each
// attribute.
func MIRAFigure(cfg Config) (*Figure, error) {
	cfg = cfg.WithDefaults()
	attrs := []int{1, 2, 3, 4}
	x := make([]float64, len(attrs))
	var (
		delay = make([]float64, len(attrs))
		msgs  = make([]float64, len(attrs))
		dests = make([]float64, len(attrs))
		logN  = make([]float64, len(attrs))
	)
	for i, m := range attrs {
		net, err := fissione.BuildRandom(cfg.K, cfg.FixedNet, cfg.Seed+int64(i)*23)
		if err != nil {
			return nil, err
		}
		spaces := make([]naming.Space, m)
		for j := range spaces {
			spaces[j] = naming.Space{Low: cfg.SpaceLow, High: cfg.SpaceHigh}
		}
		tree, err := naming.NewTree(cfg.K, spaces...)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(net, tree)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*23 + 1))
		var d, ms, dp stats.Sample
		// Per-attribute width chosen so the box volume fraction stays at
		// about 2% regardless of m.
		frac := math.Pow(0.02, 1/float64(m))
		width := frac * (cfg.SpaceHigh - cfg.SpaceLow)
		for q := 0; q < cfg.Queries; q++ {
			lo := make([]float64, m)
			hi := make([]float64, m)
			for j := range lo {
				lo[j] = cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
				hi[j] = lo[j] + width
			}
			res, err := eng.RangeQuery(context.Background(), net.RandomPeer(rng), lo, hi)
			if err != nil {
				return nil, err
			}
			d.AddInt(res.Stats.Delay)
			ms.AddInt(res.Stats.Messages)
			dp.AddInt(res.Stats.DestPeers)
		}
		x[i] = float64(m)
		delay[i] = d.Mean()
		msgs[i] = ms.Mean()
		dests[i] = dp.Mean()
		logN[i] = math.Log2(float64(cfg.FixedNet))
	}
	return &Figure{
		ID: "mira", Title: "EX1: MIRA cost vs number of attributes (2% selectivity)",
		XLabel: "Attributes (m)", YLabel: "Mean", X: x,
		Series: []Series{
			{"delay", delay}, {"logN", logN}, {"messages", msgs}, {"destpeers", dests},
		},
	}, nil
}

// AblationFigure is extension EX5: what PIRA's two design levers buy.
// It compares, across network sizes, the message cost of the pruned search
// against the unpruned FRT flood, and the delay on random-join builds
// against perfectly balanced builds.
func AblationFigure(cfg Config) (*Figure, error) {
	cfg = cfg.WithDefaults()
	sizes := cfg.NetSizes
	if len(sizes) > 4 {
		sizes = sizes[:4] // floods are expensive; a prefix of sizes suffices
	}
	x := make([]float64, len(sizes))
	var (
		prunedMsgs    = make([]float64, len(sizes))
		floodMsgs     = make([]float64, len(sizes))
		randomDelay   = make([]float64, len(sizes))
		balancedDelay = make([]float64, len(sizes))
	)
	queries := cfg.Queries / 10
	if queries < 10 {
		queries = 10
	}
	for i, n := range sizes {
		for variant := 0; variant < 2; variant++ {
			var (
				net *fissione.Network
				err error
			)
			if variant == 0 {
				net, err = fissione.BuildRandom(cfg.K, n, cfg.Seed+int64(i)*31)
			} else {
				net, err = fissione.BuildBalanced(cfg.K, n, cfg.Seed+int64(i)*31)
			}
			if err != nil {
				return nil, err
			}
			tree, err := naming.NewSingleTree(cfg.K, cfg.SpaceLow, cfg.SpaceHigh)
			if err != nil {
				return nil, err
			}
			eng, err := core.New(net, tree)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*31 + int64(variant)))
			var delaySample, prunedSample, floodSample stats.Sample
			width := float64(cfg.FixedRange)
			for q := 0; q < queries; q++ {
				lo := cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
				issuer := net.RandomPeer(rng)
				res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{lo + width})
				if err != nil {
					return nil, err
				}
				delaySample.AddInt(res.Stats.Delay)
				if variant == 0 {
					prunedSample.AddInt(res.Stats.Messages)
					flood, err := eng.FloodQuery(context.Background(), issuer, []float64{lo}, []float64{lo + width})
					if err != nil {
						return nil, err
					}
					floodSample.AddInt(flood.Stats.Messages)
				}
			}
			if variant == 0 {
				randomDelay[i] = delaySample.Mean()
				prunedMsgs[i] = prunedSample.Mean()
				floodMsgs[i] = floodSample.Mean()
			} else {
				balancedDelay[i] = delaySample.Mean()
			}
		}
		x[i] = float64(n)
	}
	return &Figure{
		ID: "ablation", Title: "EX5: pruning and build-balance ablations",
		XLabel: "Network Size", YLabel: "Mean", X: x,
		Series: []Series{
			{"PIRA messages", prunedMsgs},
			{"unpruned FRT flood messages", floodMsgs},
			{"delay (random joins)", randomDelay},
			{"delay (balanced build)", balancedDelay},
		},
	}, nil
}

// Run dispatches an experiment by identifier. Valid identifiers: fig5,
// fig6, fig7, fig8, table1, bounds, mira, ablation, all.
func Run(id string, cfg Config) ([]Figure, []*Table, error) {
	switch id {
	case "fig5", "fig6":
		figs, err := RangeSizeFigures(cfg)
		return figs, nil, err
	case "fig7", "fig8":
		figs, err := NetworkSizeFigures(cfg)
		return figs, nil, err
	case "table1":
		tab, err := Table1(cfg)
		if err != nil {
			return nil, nil, err
		}
		return nil, []*Table{tab}, nil
	case "bounds":
		fig, err := DelayBounds(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []Figure{*fig}, nil, nil
	case "mira":
		fig, err := MIRAFigure(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []Figure{*fig}, nil, nil
	case "ablation":
		fig, err := AblationFigure(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []Figure{*fig}, nil, nil
	case "all":
		var figs []Figure
		var tabs []*Table
		for _, sub := range []string{"fig5", "fig7", "table1", "bounds", "mira", "ablation"} {
			f, t, err := Run(sub, cfg)
			if err != nil {
				return nil, nil, err
			}
			figs = append(figs, f...)
			tabs = append(tabs, t...)
		}
		return figs, tabs, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}
