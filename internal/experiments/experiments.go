// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4.3.3), plus the extension experiments documented in
// DESIGN.md. Each runner regenerates the data series of one figure using
// the paper's methodology: attribute interval [0,1000], queries drawn
// uniformly at random, issued by a random peer, averaged over Config.Queries
// runs per data point.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"armada/internal/can"
	"armada/internal/core"
	"armada/internal/dcfcan"
	"armada/internal/fissione"
	"armada/internal/naming"
	"armada/internal/pht"
	"armada/internal/skipgraph"
	"armada/internal/stats"
)

// Config parameterizes the experiment runners. Zero values take the paper's
// defaults.
type Config struct {
	// Queries per data point (paper: 1000).
	Queries int
	// Seed makes runs reproducible.
	Seed int64
	// K is the ObjectID length for FISSIONE networks.
	K int
	// CurveOrder is DCF-CAN's Hilbert curve order.
	CurveOrder uint
	// SpaceLow and SpaceHigh bound the attribute interval (paper: [0,1000]).
	SpaceLow  float64
	SpaceHigh float64
	// RangeSizes are the Figure 5/6 x-values.
	RangeSizes []int
	// NetSizes are the Figure 7/8 x-values.
	NetSizes []int
	// FixedNet is the network size for Figures 5/6 (paper: 2000).
	FixedNet int
	// FixedRange is the range size for Figures 7/8 (paper: 20).
	FixedRange int
}

// WithDefaults fills unset fields with the paper's parameters.
func (c Config) WithDefaults() Config {
	if c.Queries == 0 {
		c.Queries = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K == 0 {
		c.K = 32
	}
	if c.CurveOrder == 0 {
		c.CurveOrder = 9
	}
	if c.SpaceHigh == c.SpaceLow {
		c.SpaceLow, c.SpaceHigh = 0, 1000
	}
	if len(c.RangeSizes) == 0 {
		c.RangeSizes = []int{2, 10, 50, 100, 150, 200, 250, 300}
	}
	if len(c.NetSizes) == 0 {
		c.NetSizes = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000}
	}
	if c.FixedNet == 0 {
		c.FixedNet = 2000
	}
	if c.FixedRange == 0 {
		c.FixedRange = 20
	}
	return c
}

// Series is one named line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure is the regenerated data of one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Table is the regenerated data of one paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// pointMetrics aggregates one (network, workload) data point.
type pointMetrics struct {
	piraDelay  stats.Sample
	piraMsgs   stats.Sample
	destPeers  stats.Sample
	mesgRatio  stats.Sample
	increRatio stats.Sample
	dcfDelay   stats.Sample
	dcfMsgs    stats.Sample
}

// runPoint measures Armada (PIRA) and DCF-CAN on one data point: a network
// of netSize peers and queries of the given range size.
func runPoint(cfg Config, netSize, rangeSize int, seed int64) (*pointMetrics, error) {
	pm := &pointMetrics{}

	// Armada over FISSIONE.
	net, err := fissione.BuildRandom(cfg.K, netSize, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: build fissione: %w", err)
	}
	tree, err := naming.NewSingleTree(cfg.K, cfg.SpaceLow, cfg.SpaceHigh)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(net, tree)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	width := float64(rangeSize)
	for q := 0; q < cfg.Queries; q++ {
		lo := cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
		issuer := net.RandomPeer(rng)
		res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{lo + width})
		if err != nil {
			return nil, err
		}
		pm.piraDelay.AddInt(res.Stats.Delay)
		pm.piraMsgs.AddInt(res.Stats.Messages)
		pm.destPeers.AddInt(res.Stats.DestPeers)
		if res.Stats.DestPeers > 0 {
			pm.mesgRatio.Add(res.Stats.MesgRatio())
		}
		if res.Stats.DestPeers > 1 {
			pm.increRatio.Add(res.Stats.IncreRatio(netSize))
		}
	}

	// DCF-CAN baseline on the same workload distribution.
	canNet, err := can.BuildRandom(netSize, seed+2)
	if err != nil {
		return nil, fmt.Errorf("experiments: build can: %w", err)
	}
	scheme, err := dcfcan.New(canNet, cfg.CurveOrder, cfg.SpaceLow, cfg.SpaceHigh)
	if err != nil {
		return nil, err
	}
	rng = rand.New(rand.NewSource(seed + 3))
	for q := 0; q < cfg.Queries; q++ {
		lo := cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
		res, err := scheme.RangeQuery(canNet.RandomZone(rng), lo, lo+width)
		if err != nil {
			return nil, err
		}
		pm.dcfDelay.AddInt(res.Stats.Delay)
		pm.dcfMsgs.AddInt(res.Stats.Messages)
	}
	return pm, nil
}

// RangeSizeFigures regenerates Figures 5, 6(a) and 6(b): the impact of
// range size at a fixed network size.
func RangeSizeFigures(cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	x := make([]float64, len(cfg.RangeSizes))
	var (
		piraDelay  = make([]float64, len(cfg.RangeSizes))
		dcfDelay   = make([]float64, len(cfg.RangeSizes))
		logN       = make([]float64, len(cfg.RangeSizes))
		piraMsgs   = make([]float64, len(cfg.RangeSizes))
		dcfMsgs    = make([]float64, len(cfg.RangeSizes))
		destPeers  = make([]float64, len(cfg.RangeSizes))
		mesgRatio  = make([]float64, len(cfg.RangeSizes))
		increRatio = make([]float64, len(cfg.RangeSizes))
	)
	for i, size := range cfg.RangeSizes {
		pm, err := runPoint(cfg, cfg.FixedNet, size, cfg.Seed+int64(i)*100)
		if err != nil {
			return nil, err
		}
		x[i] = float64(size)
		piraDelay[i] = pm.piraDelay.Mean()
		dcfDelay[i] = pm.dcfDelay.Mean()
		logN[i] = math.Log2(float64(cfg.FixedNet))
		piraMsgs[i] = pm.piraMsgs.Mean()
		dcfMsgs[i] = pm.dcfMsgs.Mean()
		destPeers[i] = pm.destPeers.Mean()
		mesgRatio[i] = pm.mesgRatio.Mean()
		increRatio[i] = pm.increRatio.Mean()
	}
	return []Figure{
		{
			ID: "fig5", Title: "Query delay at different range size",
			XLabel: "Range Size", YLabel: "Delay (hops)", X: x,
			Series: []Series{{"PIRA", piraDelay}, {"DCF-CAN", dcfDelay}, {"logN", logN}},
		},
		{
			ID: "fig6a", Title: "Messages at different range size",
			XLabel: "Range Size", YLabel: "Messages", X: x,
			Series: []Series{{"PIRA", piraMsgs}, {"DCF-CAN", dcfMsgs}, {"Destpeers", destPeers}},
		},
		{
			ID: "fig6b", Title: "Message ratios at different range size",
			XLabel: "Range Size", YLabel: "Ratio", X: x,
			Series: []Series{{"MesgRatio", mesgRatio}, {"IncreRatio", increRatio}},
		},
	}, nil
}

// NetworkSizeFigures regenerates Figures 7, 8(a) and 8(b): the impact of
// network size at a fixed range size.
func NetworkSizeFigures(cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	x := make([]float64, len(cfg.NetSizes))
	var (
		piraDelay  = make([]float64, len(cfg.NetSizes))
		dcfDelay   = make([]float64, len(cfg.NetSizes))
		logN       = make([]float64, len(cfg.NetSizes))
		piraMsgs   = make([]float64, len(cfg.NetSizes))
		dcfMsgs    = make([]float64, len(cfg.NetSizes))
		destPeers  = make([]float64, len(cfg.NetSizes))
		mesgRatio  = make([]float64, len(cfg.NetSizes))
		increRatio = make([]float64, len(cfg.NetSizes))
	)
	for i, n := range cfg.NetSizes {
		pm, err := runPoint(cfg, n, cfg.FixedRange, cfg.Seed+int64(i)*1000)
		if err != nil {
			return nil, err
		}
		x[i] = float64(n)
		piraDelay[i] = pm.piraDelay.Mean()
		dcfDelay[i] = pm.dcfDelay.Mean()
		logN[i] = math.Log2(float64(n))
		piraMsgs[i] = pm.piraMsgs.Mean()
		dcfMsgs[i] = pm.dcfMsgs.Mean()
		destPeers[i] = pm.destPeers.Mean()
		mesgRatio[i] = pm.mesgRatio.Mean()
		increRatio[i] = pm.increRatio.Mean()
	}
	return []Figure{
		{
			ID: "fig7", Title: "Query delay at different network size",
			XLabel: "Network Size", YLabel: "Delay (hops)", X: x,
			Series: []Series{{"PIRA", piraDelay}, {"DCF-CAN", dcfDelay}, {"logN", logN}},
		},
		{
			ID: "fig8a", Title: "Messages at different network size",
			XLabel: "Network Size", YLabel: "Messages", X: x,
			Series: []Series{{"PIRA", piraMsgs}, {"DCF-CAN", dcfMsgs}, {"Destpeers", destPeers}},
		},
		{
			ID: "fig8b", Title: "Message ratios at different network size",
			XLabel: "Network Size", YLabel: "Ratio", X: x,
			Series: []Series{{"MesgRatio", mesgRatio}, {"IncreRatio", increRatio}},
		},
	}, nil
}

// Table1 regenerates the paper's Table 1: the published properties of each
// general range-query scheme plus measured average delays for the three
// schemes implemented here (Armada/PIRA, DCF-CAN, PHT), on a network of
// FixedNet peers with range size 50.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	const rangeSize = 50

	pm, err := runPoint(cfg, cfg.FixedNet, rangeSize, cfg.Seed)
	if err != nil {
		return nil, err
	}

	phtDelay, err := measurePHT(cfg, rangeSize)
	if err != nil {
		return nil, err
	}
	sgDelay, err := measureSkipGraph(cfg, rangeSize)
	if err != nil {
		return nil, err
	}

	logN := math.Log2(float64(cfg.FixedNet))
	f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	return &Table{
		ID: "table1",
		Title: fmt.Sprintf("Comparison of general range query schemes (measured: N=%d, range size %d, logN=%.1f)",
			cfg.FixedNet, rangeSize, logN),
		Header: []string{"Scheme", "Underlying DHT", "Degree", "Single attr", "Multi attr",
			"Published delay", "Measured avg delay", "Delay bounded"},
		Rows: [][]string{
			{"Squid", "Chord", "O(logN)", "yes", "yes", "O(h*logN)", "—", "no"},
			{"Skip Graph / SkipNet", "—", "O(logN)", "yes", "no", "O(logN+n)", f(sgDelay), "no"},
			{"SCRAP", "Skip Graph", "O(logN)", "yes", "yes", "O(logN+n)", "—", "no"},
			{"DCF-CAN", "CAN", "4", "yes", "no", "> O(N^(1/d))", f(pm.dcfDelay.Mean()), "no"},
			{"PHT", "any DHT", "4 (FISSIONE)", "yes", "yes", "O(b*logN)", f(phtDelay), "no"},
			{"Armada (this paper)", "FISSIONE", "4", "yes", "yes", "< logN", f(pm.piraDelay.Mean()), "yes"},
		},
	}, nil
}

// measureSkipGraph measures a Skip Graph's average range-query delay on a
// graph of the configured size with the paper's workload.
func measureSkipGraph(cfg Config, rangeSize int) (float64, error) {
	g, err := skipgraph.Build(cfg.FixedNet, cfg.SpaceLow, cfg.SpaceHigh, cfg.Seed+11)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	var delay stats.Sample
	width := float64(rangeSize)
	for q := 0; q < cfg.Queries; q++ {
		lo := cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
		res, err := g.RangeQuery(g.RandomNode(rng), lo, lo+width)
		if err != nil {
			return 0, err
		}
		delay.AddInt(res.Stats.Delay)
	}
	return delay.Mean(), nil
}

// measurePHT measures PHT's average range-query delay on a FISSIONE
// network of the configured size.
func measurePHT(cfg Config, rangeSize int) (float64, error) {
	net, err := fissione.BuildRandom(cfg.K, cfg.FixedNet, cfg.Seed+7)
	if err != nil {
		return 0, err
	}
	eng, err := core.New(net, nil)
	if err != nil {
		return 0, err
	}
	tree, err := pht.New(eng, 16, 8, cfg.SpaceLow, cfg.SpaceHigh, cfg.Seed+8)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	for i := 0; i < 2000; i++ {
		tree.Insert(fmt.Sprintf("obj%d", i), cfg.SpaceLow+rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow))
	}
	var delay stats.Sample
	queries := cfg.Queries / 10
	if queries < 10 {
		queries = 10
	}
	width := float64(rangeSize)
	for q := 0; q < queries; q++ {
		lo := cfg.SpaceLow + rng.Float64()*(cfg.SpaceHigh-cfg.SpaceLow-width)
		res, err := tree.RangeQuery(lo, lo+width)
		if err != nil {
			return 0, err
		}
		delay.AddInt(res.Stats.Delay)
	}
	return delay.Mean(), nil
}
