// Package session implements issuer-side reuse of descent routing state:
// a bounded LRU cache of the pruned-descent frontiers range queries
// capture (see core.Frontier), keyed by normalized query-region prefix.
// Repeated queries over a hot region find a frontier covering them and
// seed directly at the destination peers, skipping the route-to-region
// descent entirely.
//
// Correctness under churn is epoch-based, not best-effort: every entry
// records the fissione topology epoch it was captured at, lookups refuse
// entries whose epoch no longer matches the live network's (dropping them
// on sight), and a refused lookup simply means the query descends in full
// — a stale cache can cost messages, never results.
package session

import (
	"container/list"
	"sync"

	"armada/internal/core"
	"armada/internal/kautz"
	"armada/internal/obs"
)

// MaxKeyLen bounds the cache key length: region prefixes are truncated to
// this many symbols, so needle-thin distinctions between nearby hot
// ranges land in one bucket (the containment check on lookup keeps the
// sharing safe — a frontier only ever seeds queries its region covers).
const MaxKeyLen = 16

// Key returns the cache key of a query region: the normalized region
// prefix — the longest common prefix of its bounds, truncated to
// MaxKeyLen symbols.
func Key(r kautz.Region) string {
	p := r.CommonPrefix()
	if len(p) > MaxKeyLen {
		p = p[:MaxKeyLen]
	}
	return string(p)
}

// Cache is a bounded LRU of captured descent frontiers, safe for
// concurrent use (queries share it under the network's read lock).
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element

	hits   obs.Counter
	misses obs.Counter
	stale  obs.Counter // lookups that evicted an entry from an older epoch
}

// centry is one cached frontier under its key.
type centry struct {
	key string
	f   *core.Frontier
}

// NewCache creates a cache holding at most capacity frontiers (at least 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element, capacity),
	}
}

// Lookup returns a cached frontier able to seed a query over the
// cursor-clipped region need, with attribute bounds [lo, hi], at the live
// topology epoch. An entry from an older epoch is dropped on sight
// (counted as stale, and reported so the caller can attribute the forced
// descent to churn); an entry that does not cover need — by region or by
// bounds (a capture's descent pruned destinations outside its own box, so
// its entries cannot serve a wider one) — stays cached (a narrower query
// may still use it) but reports a miss.
func (c *Cache) Lookup(key string, need kautz.Region, lo, hi []float64, epoch uint64) (f *core.Frontier, ok, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return nil, false, false
	}
	en := el.Value.(*centry)
	if en.f.Epoch != epoch {
		c.removeLocked(el)
		c.stale.Inc()
		c.misses.Inc()
		return nil, false, true
	}
	if !en.f.Covers(need) || !en.f.CoversBounds(lo, hi) {
		c.misses.Inc()
		return nil, false, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return en.f, true, false
}

// Insert caches f under key, replacing any previous entry for the key and
// evicting the least recently used entry when over capacity.
func (c *Cache) Insert(key string, f *core.Frontier) {
	if f == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*centry).f = f
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&centry{key: key, f: f})
	if c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back())
	}
}

// removeLocked unlinks one element; the caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.byKey, el.Value.(*centry).key)
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits and Misses count lookups; Stale is the subset of misses that
	// evicted an entry invalidated by a topology epoch change.
	Hits   int64
	Misses int64
	Stale  int64
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int
	Capacity int
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:     c.hits.Value(),
		Misses:   c.misses.Value(),
		Stale:    c.stale.Value(),
		Entries:  c.ll.Len(),
		Capacity: c.capacity,
	}
}

// DescribeMetrics registers the cache's counters on reg.
func (c *Cache) DescribeMetrics(reg *obs.Registry) {
	reg.MustRegister("frontier_cache_hits_total", &c.hits)
	reg.MustRegister("frontier_cache_misses_total", &c.misses)
	reg.MustRegister("frontier_cache_stale_total", &c.stale)
	reg.MustRegister("frontier_cache_entries", obs.GaugeFunc(func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.ll.Len())
	}))
}
