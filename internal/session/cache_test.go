package session

import (
	"fmt"
	"testing"

	"armada/internal/core"
	"armada/internal/kautz"
)

// region builds a test region from two equal-length Kautz strings.
func region(t *testing.T, lo, hi string) kautz.Region {
	t.Helper()
	r, err := kautz.NewRegion(kautz.Str(lo), kautz.Str(hi))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func frontier(epoch uint64, r kautz.Region) *core.Frontier {
	return &core.Frontier{Epoch: epoch, Region: r}
}

func TestKeyNormalizesPrefix(t *testing.T) {
	r := region(t, "01010101", "01012020")
	if got := Key(r); got != "0101" {
		t.Errorf("Key(%v) = %q, want the common prefix %q", r, got, "0101")
	}
	// Long common prefixes truncate to MaxKeyLen.
	long := region(t, "010101010101010101010101", "010101010101010101010102")
	if got := Key(long); len(got) != MaxKeyLen {
		t.Errorf("Key of a deep region has length %d, want %d", len(got), MaxKeyLen)
	}
}

func TestCacheHitRequiresCoverage(t *testing.T) {
	c := NewCache(4)
	covered := region(t, "0102", "0121")
	c.Insert("01", frontier(1, covered))

	if _, ok, _ := c.Lookup("01", region(t, "0102", "0120"), nil, nil, 1); !ok {
		t.Error("contained region missed")
	}
	if _, ok, _ := c.Lookup("01", region(t, "0120", "0201"), nil, nil, 1); ok {
		t.Error("region beyond the entry's coverage hit")
	}
	if _, ok, _ := c.Lookup("02", region(t, "0201", "0210"), nil, nil, 1); ok {
		t.Error("unknown key hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", s)
	}
}

func TestCacheHitRequiresBoundsCoverage(t *testing.T) {
	c := NewCache(4)
	r := region(t, "0102", "0121")
	f := frontier(1, r)
	f.Lo, f.Hi = []float64{100, 10}, []float64{200, 20}
	c.Insert("01", f)

	if _, ok, _ := c.Lookup("01", r, []float64{120, 12}, []float64{180, 18}, 1); !ok {
		t.Error("bounds inside the capture's box missed")
	}
	// Same region coverage, wider second attribute: the capturing descent
	// pruned destinations outside [10, 20], so serving this would drop
	// matches.
	if _, ok, _ := c.Lookup("01", r, []float64{120, 5}, []float64{180, 18}, 1); ok {
		t.Error("bounds outside the capture's box hit")
	}
	if _, ok, _ := c.Lookup("01", r, []float64{120}, []float64{180}, 1); ok {
		t.Error("mismatched attribute count hit")
	}
}

func TestCacheStaleEpochEvicts(t *testing.T) {
	c := NewCache(4)
	r := region(t, "0102", "0121")
	c.Insert("01", frontier(1, r))
	if _, ok, stale := c.Lookup("01", r, nil, nil, 2); ok || !stale {
		t.Fatalf("stale-epoch entry: ok=%v stale=%v, want a reported stale drop", ok, stale)
	}
	s := c.Stats()
	if s.Stale != 1 || s.Entries != 0 {
		t.Errorf("stats = %+v, want the stale entry dropped on sight", s)
	}
	// A plain miss (no entry at all) is not stale.
	if _, ok, stale := c.Lookup("02", r, nil, nil, 2); ok || stale {
		t.Errorf("empty-key lookup: ok=%v stale=%v, want a plain miss", ok, stale)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	r := region(t, "0102", "0121")
	c.Insert("a", frontier(1, r))
	c.Insert("b", frontier(1, r))
	if _, ok, _ := c.Lookup("a", r, nil, nil, 1); !ok { // refresh a; b is now LRU
		t.Fatal("entry a missing")
	}
	c.Insert("c", frontier(1, r)) // evicts b
	if _, ok, _ := c.Lookup("b", r, nil, nil, 1); ok {
		t.Error("LRU entry b survived over-capacity insert")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok, _ := c.Lookup(k, r, nil, nil, 1); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	if s := c.Stats(); s.Entries != 2 || s.Capacity != 2 {
		t.Errorf("stats = %+v, want 2 entries at capacity 2", s)
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c := NewCache(2)
	r := region(t, "0102", "0121")
	old := frontier(1, r)
	c.Insert("k", old)
	repl := frontier(2, r)
	c.Insert("k", repl)
	got, ok, _ := c.Lookup("k", r, nil, nil, 2)
	if !ok || got != repl {
		t.Error("same-key insert did not replace the entry")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Errorf("replacement grew the cache: %+v", s)
	}
}

func TestCacheCapacityFloor(t *testing.T) {
	c := NewCache(0) // clamps to 1
	r := region(t, "0102", "0121")
	for i := 0; i < 5; i++ {
		c.Insert(fmt.Sprintf("k%d", i), frontier(1, r))
	}
	if s := c.Stats(); s.Entries != 1 || s.Capacity != 1 {
		t.Errorf("stats = %+v, want a single-entry cache", s)
	}
}
