// Package can implements a two-dimensional Content-Addressable Network
// (Ratnasamy et al., SIGCOMM 2001): the DHT substrate of the paper's
// DCF-CAN baseline. The coordinate space is the unit torus [0,1)²,
// partitioned into rectangular zones, one per peer. Joins split the zone
// owning a random point; zones sharing an edge are neighbors; routing is
// greedy by torus distance. With d = 2 dimensions the average degree is 2d
// = 4, matching the degree the paper grants the baseline (Section 4.3.3).
package can

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"armada/internal/hilbert"
)

// Errors returned by the network.
var (
	ErrNoSuchZone = errors.New("can: no such zone")
	ErrStuck      = errors.New("can: greedy routing stuck")
)

// Item is an object stored in a zone by the range-query layer.
type Item struct {
	Name  string
	Value float64
}

// Zone is one peer's rectangular region of the coordinate space.
type Zone struct {
	id        string
	rect      hilbert.Rect
	neighbors []string
	items     []Item
}

// ID returns the zone's identifier.
func (z *Zone) ID() string { return z.id }

// Rect returns the zone's rectangle.
func (z *Zone) Rect() hilbert.Rect { return z.rect }

// Neighbors returns the zone's neighbor identifiers in ascending order. The
// slice is owned by the zone and must not be modified.
func (z *Zone) Neighbors() []string { return z.neighbors }

// Items returns the objects stored in the zone. The slice is owned by the
// zone and must not be modified.
func (z *Zone) Items() []Item { return z.items }

// AddItem stores an object in the zone.
func (z *Zone) AddItem(it Item) { z.items = append(z.items, it) }

// Network is a CAN overlay. It is not safe for concurrent mutation.
type Network struct {
	zones map[string]*Zone
	ids   []string // sorted
	rng   *rand.Rand
	next  int
}

// New creates a network with a single zone covering the whole space.
func New(seed int64) *Network {
	n := &Network{
		zones: make(map[string]*Zone),
		rng:   rand.New(rand.NewSource(seed)),
	}
	z := &Zone{id: n.newID(), rect: hilbert.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}}
	n.zones[z.id] = z
	n.ids = []string{z.id}
	return n
}

// BuildRandom creates a network of size zones by repeatedly splitting the
// zone owning a uniformly random point, as CAN joins do.
func BuildRandom(size int, seed int64) (*Network, error) {
	n := New(seed)
	for n.Size() < size {
		x, y := n.rng.Float64(), n.rng.Float64()
		owner, err := n.ZoneAt(x, y)
		if err != nil {
			return nil, err
		}
		n.split(owner)
	}
	return n, nil
}

func (n *Network) newID() string {
	id := "z" + strconv.Itoa(n.next)
	n.next++
	return id
}

// Size returns the number of zones.
func (n *Network) Size() int { return len(n.zones) }

// Zone returns the zone with the given identifier.
func (n *Network) Zone(id string) (*Zone, bool) {
	z, ok := n.zones[id]
	return z, ok
}

// ZoneIDs returns all zone identifiers in ascending order (a copy).
func (n *Network) ZoneIDs() []string { return append([]string(nil), n.ids...) }

// RandomZone returns a zone identifier drawn from rng (or the network's
// source when nil).
func (n *Network) RandomZone(rng *rand.Rand) string {
	if rng == nil {
		rng = n.rng
	}
	return n.ids[rng.Intn(len(n.ids))]
}

// ZoneAt returns the identifier of the zone containing point (x,y).
func (n *Network) ZoneAt(x, y float64) (string, error) {
	for _, id := range n.ids {
		if n.zones[id].rect.ContainsPoint(x, y) {
			return id, nil
		}
	}
	return "", fmt.Errorf("%w: no zone contains (%v,%v)", ErrNoSuchZone, x, y)
}

// split halves the zone along its longer side; the existing zone keeps the
// lower half and a new zone takes the upper half.
func (n *Network) split(id string) {
	z := n.zones[id]
	r := z.rect
	var lower, upper hilbert.Rect
	if r.X1-r.X0 >= r.Y1-r.Y0 {
		mid := (r.X0 + r.X1) / 2
		lower = hilbert.Rect{X0: r.X0, Y0: r.Y0, X1: mid, Y1: r.Y1}
		upper = hilbert.Rect{X0: mid, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
	} else {
		mid := (r.Y0 + r.Y1) / 2
		lower = hilbert.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: mid}
		upper = hilbert.Rect{X0: r.X0, Y0: mid, X1: r.X1, Y1: r.Y1}
	}
	nz := &Zone{id: n.newID(), rect: upper}
	z.rect = lower
	n.zones[nz.id] = nz
	n.insertID(nz.id)

	// Items stay on the surviving zone: zones cannot re-derive an item's
	// coordinates from its value, so the range-query layer publishes only
	// after the network is built (as the experiments do).

	// Refresh adjacency around the split: the two children and every former
	// neighbor of the parent.
	affected := append([]string{z.id, nz.id}, z.neighbors...)
	n.refreshNeighbors(affected)
}

// refreshNeighbors recomputes the neighbor lists of the given zones.
func (n *Network) refreshNeighbors(ids []string) {
	for _, id := range ids {
		z, ok := n.zones[id]
		if !ok {
			continue
		}
		var nbs []string
		for _, otherID := range n.ids {
			if otherID == id {
				continue
			}
			if adjacentTorus(z.rect, n.zones[otherID].rect) {
				nbs = append(nbs, otherID)
			}
		}
		sort.Strings(nbs)
		z.neighbors = nbs
	}
}

// adjacentTorus reports whether two zone rectangles share an edge segment
// on the unit torus.
func adjacentTorus(a, b hilbert.Rect) bool {
	touchX := edgesTouch(a.X0, a.X1, b.X0, b.X1)
	touchY := edgesTouch(a.Y0, a.Y1, b.Y0, b.Y1)
	overlapX := intervalsOverlap(a.X0, a.X1, b.X0, b.X1)
	overlapY := intervalsOverlap(a.Y0, a.Y1, b.Y0, b.Y1)
	return (touchX && overlapY) || (touchY && overlapX)
}

// edgesTouch reports whether [a0,a1) and [b0,b1) abut on the unit circle.
func edgesTouch(a0, a1, b0, b1 float64) bool {
	return a1 == b0 || b1 == a0 || (a1 == 1 && b0 == 0) || (b1 == 1 && a0 == 0)
}

// intervalsOverlap reports whether [a0,a1) and [b0,b1) overlap with
// positive length.
func intervalsOverlap(a0, a1, b0, b1 float64) bool {
	return a0 < b1 && b0 < a1
}

// torusAxisDist returns the torus distance from coordinate t to the
// interval [lo,hi).
func torusAxisDist(t, lo, hi float64) float64 {
	if t >= lo && t < hi {
		return 0
	}
	return math.Min(torusPointDist(t, lo), torusPointDist(t, hi))
}

// torusPointDist is the distance between two coordinates on the unit
// circle.
func torusPointDist(a, b float64) float64 {
	d := math.Abs(a - b)
	return math.Min(d, 1-d)
}

// zoneDist is the squared torus distance from the closest point of rect to
// the target point.
func zoneDist(r hilbert.Rect, x, y float64) float64 {
	dx := torusAxisDist(x, r.X0, r.X1)
	dy := torusAxisDist(y, r.Y0, r.Y1)
	return dx*dx + dy*dy
}

// Route greedily forwards from the zone `from` toward the point (x,y),
// returning the destination zone and the hop count. Each hop moves to the
// neighbor whose zone is closest (by torus distance) to the target; this
// strictly decreases the distance, so routing terminates at the owner.
func (n *Network) Route(from string, x, y float64) (dest string, hops int, err error) {
	cur, ok := n.zones[from]
	if !ok {
		return "", 0, fmt.Errorf("%w: %q", ErrNoSuchZone, from)
	}
	visited := map[string]bool{from: true}
	for !cur.rect.ContainsPoint(x, y) {
		curDist := zoneDist(cur.rect, x, y)
		var best *Zone
		bestDist := math.Inf(1)
		for _, nbID := range cur.neighbors {
			nb := n.zones[nbID]
			if nb.rect.ContainsPoint(x, y) {
				best, bestDist = nb, 0
				break
			}
			if d := zoneDist(nb.rect, x, y); d < bestDist && (d < curDist || !visited[nbID]) {
				best, bestDist = nb, d
			}
		}
		if best == nil {
			return "", hops, fmt.Errorf("%w at zone %q toward (%v,%v)", ErrStuck, cur.id, x, y)
		}
		cur = best
		visited[cur.id] = true
		hops++
		if hops > 4*len(n.ids) {
			return "", hops, fmt.Errorf("%w: hop budget exhausted toward (%v,%v)", ErrStuck, x, y)
		}
	}
	return cur.id, hops, nil
}

// CheckPartition verifies that the zones tile the unit square exactly.
func (n *Network) CheckPartition() error {
	var area float64
	for _, id := range n.ids {
		r := n.zones[id].rect
		if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
			return fmt.Errorf("can: zone %q has empty rect %+v", id, r)
		}
		area += (r.X1 - r.X0) * (r.Y1 - r.Y0)
	}
	if math.Abs(area-1) > 1e-9 {
		return fmt.Errorf("can: zones cover area %v, want 1", area)
	}
	// Spot containment uniqueness on a grid.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			x, y := (float64(i)+0.5)/16, (float64(j)+0.5)/16
			owners := 0
			for _, id := range n.ids {
				if n.zones[id].rect.ContainsPoint(x, y) {
					owners++
				}
			}
			if owners != 1 {
				return fmt.Errorf("can: point (%v,%v) owned by %d zones", x, y, owners)
			}
		}
	}
	return nil
}

// CheckNeighbors verifies neighbor lists are symmetric and match geometry.
func (n *Network) CheckNeighbors() error {
	for _, id := range n.ids {
		z := n.zones[id]
		for _, nbID := range z.neighbors {
			nb, ok := n.zones[nbID]
			if !ok {
				return fmt.Errorf("can: zone %q lists missing neighbor %q", id, nbID)
			}
			if !adjacentTorus(z.rect, nb.rect) {
				return fmt.Errorf("can: zones %q and %q listed but not adjacent", id, nbID)
			}
			if !containsString(nb.neighbors, id) {
				return fmt.Errorf("can: neighbor link %q -> %q not symmetric", id, nbID)
			}
		}
	}
	return nil
}

// AvgDegree returns the mean number of neighbors per zone.
func (n *Network) AvgDegree() float64 {
	total := 0
	for _, id := range n.ids {
		total += len(n.zones[id].neighbors)
	}
	return float64(total) / float64(len(n.ids))
}

func (n *Network) insertID(id string) {
	i := sort.SearchStrings(n.ids, id)
	n.ids = append(n.ids, "")
	copy(n.ids[i+1:], n.ids[i:])
	n.ids[i] = id
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
