package can

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewSingleZone(t *testing.T) {
	n := New(1)
	if n.Size() != 1 {
		t.Fatalf("size = %d", n.Size())
	}
	id, err := n.ZoneAt(0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	z, ok := n.Zone(id)
	if !ok || z.Rect().X1 != 1 || z.Rect().Y1 != 1 {
		t.Fatalf("zone %v", z)
	}
	if err := n.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRandomPartition(t *testing.T) {
	for _, size := range []int{2, 10, 100, 500} {
		n, err := BuildRandom(size, int64(size))
		if err != nil {
			t.Fatal(err)
		}
		if n.Size() != size {
			t.Fatalf("size = %d, want %d", n.Size(), size)
		}
		if err := n.CheckPartition(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if err := n.CheckNeighbors(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

// A 2-d CAN has average degree near 2d = 4 (torus adjacency; uneven splits
// raise it somewhat).
func TestAvgDegree(t *testing.T) {
	n, err := BuildRandom(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d := n.AvgDegree(); d < 4 || d > 8 {
		t.Errorf("avg degree = %.2f, want within [4, 8]", d)
	}
}

func TestZoneAtUnique(t *testing.T) {
	n, err := BuildRandom(64, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		x, y := rng.Float64(), rng.Float64()
		id, err := n.ZoneAt(x, y)
		if err != nil {
			t.Fatal(err)
		}
		z, _ := n.Zone(id)
		if !z.Rect().ContainsPoint(x, y) {
			t.Fatalf("ZoneAt(%v,%v) = %q does not contain the point", x, y, id)
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	n, err := BuildRandom(300, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 100; i++ {
		x, y := rng.Float64(), rng.Float64()
		from := n.RandomZone(rng)
		dest, hops, err := n.Route(from, x, y)
		if err != nil {
			t.Fatalf("route from %q to (%v,%v): %v", from, x, y, err)
		}
		want, err := n.ZoneAt(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if dest != want {
			t.Fatalf("route landed at %q, want %q", dest, want)
		}
		if hops > n.Size() {
			t.Fatalf("route took %d hops in a %d-zone network", hops, n.Size())
		}
	}
}

func TestRouteFromOwnerIsFree(t *testing.T) {
	n, err := BuildRandom(50, 17)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := n.ZoneAt(0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	dest, hops, err := n.Route(owner, 0.25, 0.25)
	if err != nil || dest != owner || hops != 0 {
		t.Fatalf("self route = %q/%d/%v", dest, hops, err)
	}
}

func TestRouteUnknownZone(t *testing.T) {
	n := New(1)
	if _, _, err := n.Route("nope", 0.5, 0.5); err == nil {
		t.Error("unknown source accepted")
	}
}

// Average route length on a 2-d CAN grows on the order of sqrt(N).
func TestRouteScaling(t *testing.T) {
	avg := func(size int) float64 {
		n, err := BuildRandom(size, int64(size)*3)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(size)*3 + 1))
		total := 0
		const trials = 100
		for i := 0; i < trials; i++ {
			_, hops, err := n.Route(n.RandomZone(rng), rng.Float64(), rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		return float64(total) / trials
	}
	small, large := avg(100), avg(900)
	// sqrt(900/100) = 3: expect roughly a 3x increase; accept a wide band.
	if ratio := large / small; ratio < 1.8 || ratio > 5 {
		t.Errorf("route scaling 100->900 zones: %.2f -> %.2f (ratio %.2f), want ≈ 3",
			small, large, ratio)
	}
	if large < 0.3*math.Sqrt(900) || large > 1.5*math.Sqrt(900) {
		t.Errorf("avg hops at N=900 = %.1f, want on the order of sqrt(N)=30", large)
	}
}

func TestItems(t *testing.T) {
	n := New(23)
	id := n.ZoneIDs()[0]
	z, _ := n.Zone(id)
	z.AddItem(Item{Name: "a", Value: 1})
	z.AddItem(Item{Name: "b", Value: 2})
	if len(z.Items()) != 2 {
		t.Fatalf("items = %v", z.Items())
	}
}

func TestTorusAdjacency(t *testing.T) {
	// Zones on opposite edges of the unit square are torus neighbors.
	n, err := BuildRandom(16, 29)
	if err != nil {
		t.Fatal(err)
	}
	leftID, err := n.ZoneAt(0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rightID, err := n.ZoneAt(0.99, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	left, _ := n.Zone(leftID)
	right, _ := n.Zone(rightID)
	if left.Rect().X0 == 0 && right.Rect().X1 == 1 && leftID != rightID {
		if !containsString(left.Neighbors(), rightID) &&
			!intervalsDisjointOnY(left, right) {
			t.Errorf("edge zones %q and %q with overlapping Y should wrap-neighbor", leftID, rightID)
		}
	}
}

func intervalsDisjointOnY(a, b *Zone) bool {
	return !(a.Rect().Y0 < b.Rect().Y1 && b.Rect().Y0 < a.Rect().Y1)
}
