package naming

import (
	"math/rand"
	"testing"
	"testing/quick"

	"armada/internal/kautz"
)

func mustSingle(t *testing.T, k int, low, high float64) *Tree {
	t.Helper()
	tree, err := NewSingleTree(k, low, high)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func mustHash(t *testing.T, tree *Tree, vals ...float64) kautz.Str {
	t.Helper()
	s, err := tree.Hash(vals...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, Space{0, 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewTree(4); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewTree(4, Space{1, 1}); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := NewTree(4, Space{2, 1}); err == nil {
		t.Error("inverted space accepted")
	}
	tree, err := NewTree(4, Space{0, 1}, Space{-5, 5})
	if err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if tree.K() != 4 || tree.Attrs() != 2 {
		t.Errorf("K=%d Attrs=%d", tree.K(), tree.Attrs())
	}
}

// Figure 3 of the paper: partition tree P(2,4) over [0,1]. Attribute value
// 0.1 lies in the leaf labelled 0120.
func TestSingleHashPaperExample(t *testing.T) {
	tree := mustSingle(t, 4, 0, 1)
	if got := mustHash(t, tree, 0.1); got != "0120" {
		t.Fatalf("Single_hash(0.1) = %q, want 0120", got)
	}
	// Node U with label 0101 represents [0, 1/24] (a third of the space,
	// then three halvings).
	iv, err := tree.Subspace("0101")
	if err != nil {
		t.Fatal(err)
	}
	if iv[0].Low != 0 || diff(iv[0].High, 1.0/24) > 1e-15 {
		t.Fatalf("subspace(0101) = %+v, want [0, 1/24]", iv[0])
	}
}

// Section 4.1 example: the image of [0.1, 0.24] is the region ⟨0120, 0202⟩.
func TestSingleHashRegionPaperExample(t *testing.T) {
	tree := mustSingle(t, 4, 0, 1)
	box, err := tree.NewBox([]float64{0.1}, []float64{0.24})
	if err != nil {
		t.Fatal(err)
	}
	region, err := tree.QueryRegion(box)
	if err != nil {
		t.Fatal(err)
	}
	if region.Low != "0120" || region.High != "0202" {
		t.Fatalf("region = %v, want ⟨0120, 0202⟩", region)
	}
}

func TestSingleHashBoundaries(t *testing.T) {
	tree := mustSingle(t, 5, 0, 1000)
	min := mustHash(t, tree, 0)
	max := mustHash(t, tree, 1000)
	if min != kautz.MinExtend("", 5) {
		t.Errorf("Hash(L) = %q, want space minimum %q", min, kautz.MinExtend("", 5))
	}
	if max != kautz.MaxExtend("", 5) {
		t.Errorf("Hash(H) = %q, want space maximum %q", max, kautz.MaxExtend("", 5))
	}
	// Clamping.
	if got := mustHash(t, tree, -10); got != min {
		t.Errorf("Hash(-10) = %q, want clamp to %q", got, min)
	}
	if got := mustHash(t, tree, 2000); got != max {
		t.Errorf("Hash(2000) = %q, want clamp to %q", got, max)
	}
}

func TestHashRejectsNonFinite(t *testing.T) {
	tree := mustSingle(t, 4, 0, 1)
	for _, v := range []float64{nan(), inf(1), inf(-1)} {
		if _, err := tree.Hash(v); err == nil {
			t.Errorf("Hash(%v) accepted", v)
		}
	}
	if _, err := tree.Hash(0.5, 0.5); err == nil {
		t.Error("wrong arity accepted")
	}
}

func nan() float64 { return kindNaN }
func inf(s int) float64 {
	if s > 0 {
		return kindPosInf
	}
	return kindNegInf
}

var (
	kindNaN    = func() float64 { var z float64; return z / z }() // quiet NaN without importing math twice
	kindPosInf = func() float64 { var z float64; return 1 / z }()
	kindNegInf = func() float64 { var z float64; return -1 / z }()
)

// Single_hash is monotone: v1 ≤ v2 ⟹ F(v1) ≼ F(v2).
func TestSingleHashMonotoneQuick(t *testing.T) {
	tree, err := NewSingleTree(20, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	f := func(a, b float64) bool {
		a = normalize(a, 0, 1000)
		b = normalize(b, 0, 1000)
		if a > b {
			a, b = b, a
		}
		ha, err1 := tree.Hash(a)
		hb, err2 := tree.Hash(b)
		return err1 == nil && err2 == nil && ha <= hb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Interval preservation (Definition 2), forward direction: every value in
// [a,b] hashes into ⟨F(a), F(b)⟩; reverse direction: every leaf of the
// region holds some value of [a,b] — equivalently, each leaf's interval
// overlaps [a,b].
func TestSingleHashIntervalPreservingQuick(t *testing.T) {
	const k = 12
	tree, err := NewSingleTree(k, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	f := func(aRaw, bRaw, vRaw float64) bool {
		a := normalize(aRaw, 0, 1000)
		b := normalize(bRaw, 0, 1000)
		if a > b {
			a, b = b, a
		}
		ha, _ := tree.Hash(a)
		hb, _ := tree.Hash(b)
		region := kautz.Region{Low: ha, High: hb}

		// Forward: an in-range value lands in the region.
		v := a + normalize(vRaw, 0, 1)*(b-a)
		hv, err := tree.Hash(v)
		if err != nil || !region.Contains(hv) {
			return false
		}

		// Reverse: a sampled region member's leaf interval overlaps [a,b].
		span := kautz.Rank(hb) - kautz.Rank(ha)
		mid, err := kautz.FromRank(kautz.Rank(ha)+uint64(rng.Int63n(int64(span+1))), k)
		if err != nil {
			return false
		}
		iv, err := tree.Subspace(mid)
		if err != nil {
			return false
		}
		return iv[0].Overlaps(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Exhaustive interval preservation at small k: for every leaf, membership in
// ⟨F(a),F(b)⟩ coincides with the leaf's interval overlapping [a,b].
func TestSingleHashIntervalPreservingExhaustive(t *testing.T) {
	const k = 6
	tree, err := NewSingleTree(k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		ha, _ := tree.Hash(a)
		hb, _ := tree.Hash(b)
		region := kautz.Region{Low: ha, High: hb}
		for _, leaf := range kautz.Enumerate(k) {
			iv, err := tree.Subspace(leaf)
			if err != nil {
				t.Fatal(err)
			}
			// A leaf strictly inside (a,b) must be in the region; a leaf
			// whose interval misses [a,b] must be outside. Leaves that only
			// touch the boundary may fall either way depending on where a
			// and b sit inside their own leaves.
			strictlyInside := iv[0].Low > a && iv[0].High < b
			misses := !iv[0].Overlaps(a, b)
			if strictlyInside && !region.Contains(leaf) {
				t.Fatalf("leaf %q inside (%v,%v) but outside region %v", leaf, a, b, region)
			}
			if misses && region.Contains(leaf) && leaf != ha && leaf != hb {
				t.Fatalf("leaf %q misses [%v,%v] but inside region %v", leaf, a, b, region)
			}
		}
	}
}

// Leaf subspaces tile the attribute space in leaf order.
func TestLeafIntervalsTile(t *testing.T) {
	const k = 5
	tree := mustSingle(t, k, -10, 10)
	leaves := kautz.Enumerate(k)
	prevHigh := -10.0
	for _, leaf := range leaves {
		iv, err := tree.Subspace(leaf)
		if err != nil {
			t.Fatal(err)
		}
		if diff := iv[0].Low - prevHigh; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("leaf %q starts at %v, want %v", leaf, iv[0].Low, prevHigh)
		}
		if iv[0].High <= iv[0].Low {
			t.Fatalf("leaf %q has empty interval %+v", leaf, iv[0])
		}
		prevHigh = iv[0].High
	}
	if prevHigh != 10 {
		t.Fatalf("leaves end at %v, want 10", prevHigh)
	}
}

// Hash and Subspace are mutually consistent: the leaf returned by Hash(v)
// has an interval containing v, and the leaf's center hashes back to it.
func TestHashSubspaceRoundTripQuick(t *testing.T) {
	tree, err := NewSingleTree(16, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	f := func(raw float64) bool {
		v := normalize(raw, 0, 1000)
		leaf, err := tree.Hash(v)
		if err != nil {
			return false
		}
		iv, err := tree.Subspace(leaf)
		if err != nil || !(iv[0].Low <= v && v <= iv[0].High) {
			return false
		}
		center, err := tree.LeafCenter(leaf)
		if err != nil {
			return false
		}
		back, err := tree.Hash(center[0])
		return err == nil && back == leaf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Multiple_hash is partial-order preserving (Definition 4).
func TestMultipleHashPartialOrderQuick(t *testing.T) {
	tree, err := NewTree(18, Space{0, 100}, Space{-50, 50}, Space{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	f := func(a0, a1, a2, d0, d1, d2 float64) bool {
		lo := []float64{normalize(a0, 0, 100), normalize(a1, -50, 50), normalize(a2, 0, 1)}
		hi := []float64{
			lo[0] + normalize(d0, 0, 100-lo[0]),
			lo[1] + normalize(d1, 0, 50-lo[1]),
			lo[2] + normalize(d2, 0, 1-lo[2]),
		}
		h1, err1 := tree.Hash(lo...)
		h2, err2 := tree.Hash(hi...)
		return err1 == nil && err2 == nil && h1 <= h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Every leaf whose subspace intersects a box lies inside the box's
// ⟨LowT,HighT⟩ region (the containment MIRA relies on).
func TestBoxRegionContainsIntersectingLeaves(t *testing.T) {
	const k = 6
	tree, err := NewTree(k, Space{0, 10}, Space{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 40; trial++ {
		lo := []float64{rng.Float64() * 10, rng.Float64() * 10}
		hi := []float64{lo[0] + rng.Float64()*(10-lo[0]), lo[1] + rng.Float64()*(10-lo[1])}
		box, err := tree.NewBox(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		region, err := tree.QueryRegion(box)
		if err != nil {
			t.Fatal(err)
		}
		for _, leaf := range kautz.Enumerate(k) {
			iv, err := tree.Subspace(leaf)
			if err != nil {
				t.Fatal(err)
			}
			strictly := true
			for i := range iv {
				if !(iv[i].Low > box.Lo[i]-1e-12 && iv[i].High < box.Hi[i]+1e-12) {
					strictly = false
					break
				}
			}
			if strictly && !region.Contains(leaf) {
				t.Fatalf("leaf %q inside box but outside region %v", leaf, region)
			}
		}
	}
}

func TestIntersectsPrefix(t *testing.T) {
	tree, err := NewTree(8, Space{0, 100}, Space{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	box, err := tree.NewBox([]float64{0, 0}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// The whole space intersects.
	ok, err := tree.IntersectsPrefix("", box)
	if err != nil || !ok {
		t.Fatalf("root should intersect: %v %v", ok, err)
	}
	// The top-most first branch (attr 0 in [0, 100/3]) intersects; the last
	// (attr 0 in [200/3, 100]) does not.
	ok, err = tree.IntersectsPrefix("0", box)
	if err != nil || !ok {
		t.Fatalf("branch 0 should intersect: %v %v", ok, err)
	}
	ok, err = tree.IntersectsPrefix("2", box)
	if err != nil || ok {
		t.Fatalf("branch 2 should not intersect: %v %v", ok, err)
	}
}

func TestIntersectsPrefixMatchesSubspace(t *testing.T) {
	const k = 6
	tree, err := NewTree(k, Space{0, 1}, Space{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	box, err := tree.NewBox([]float64{0.2, 0.3}, []float64{0.4, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range kautz.Enumerate(k) {
		iv, err := tree.Subspace(leaf)
		if err != nil {
			t.Fatal(err)
		}
		want := iv[0].Overlaps(box.Lo[0], box.Hi[0]) && iv[1].Overlaps(box.Lo[1], box.Hi[1])
		got, err := tree.IntersectsPrefix(leaf, box)
		if err != nil || got != want {
			t.Fatalf("IntersectsPrefix(%q) = %v/%v, want %v", leaf, got, err, want)
		}
	}
}

func TestNewBoxValidation(t *testing.T) {
	tree, err := NewTree(4, Space{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.NewBox([]float64{0.9}, []float64{0.1}); err == nil {
		t.Error("inverted box accepted")
	}
	if _, err := tree.NewBox([]float64{0.1, 0.2}, []float64{0.3, 0.4}); err == nil {
		t.Error("wrong arity accepted")
	}
	// Clamping out-of-space bounds.
	b, err := tree.NewBox([]float64{-5}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if b.Lo[0] != 0 || b.Hi[0] != 1 {
		t.Errorf("clamped box = %+v", b)
	}
}

func TestBoxContains(t *testing.T) {
	b := Box{Lo: []float64{0, 10}, Hi: []float64{1, 20}}
	if !b.Contains([]float64{0.5, 15}) {
		t.Error("interior point rejected")
	}
	if !b.Contains([]float64{0, 10}) || !b.Contains([]float64{1, 20}) {
		t.Error("boundary points rejected")
	}
	if b.Contains([]float64{0.5, 25}) || b.Contains([]float64{-1, 15}) {
		t.Error("exterior point accepted")
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// normalize maps an arbitrary quick-generated float into [lo, hi].
func normalize(v, lo, hi float64) float64 {
	if v != v || v > 1e300 || v < -1e300 { // NaN or huge
		return lo
	}
	if v < 0 {
		v = -v
	}
	for v > hi-lo {
		v /= 2
	}
	return lo + v
}
