// Package naming implements Armada's order-preserving object naming: the
// partition tree P(2,k) of the paper's Section 4.1 and the two naming
// algorithms built on it.
//
//   - Single_hash (one attribute) is an interval-preserving surjection from
//     a real interval [L,H] onto KautzSpace(2,k): the image of any
//     subinterval [a,b] is exactly the Kautz region ⟨F(a), F(b)⟩
//     (Definition 2).
//   - Multiple_hash (m attributes) partitions the multi-attribute space onto
//     the same tree in round-robin attribute order and is partial-order
//     preserving (Definitions 3–4): ω1 ≤ ω2 componentwise implies
//     F(ω1) ≼ F(ω2).
//
// The partition tree has k+1 levels. Its root has three children; every
// other internal node has two. Edge labels ascend left to right and differ
// from the parent's incoming edge label, so leaf labels enumerate
// KautzSpace(2,k) in ascending lexicographic order. Each node evenly splits
// the subspace of its parent along one attribute: level j splits attribute
// j mod m.
package naming

import (
	"errors"
	"fmt"
	"math"

	"armada/internal/kautz"
)

// Space is the value interval [Low, High] of one attribute.
type Space struct {
	Low  float64
	High float64
}

// Width returns the length of the interval.
func (s Space) Width() float64 { return s.High - s.Low }

// Contains reports whether v lies in [Low, High].
func (s Space) Contains(v float64) bool { return v >= s.Low && v <= s.High }

// Interval is a subinterval of an attribute's space produced by the
// partition tree. Intervals at the same tree level tile their space;
// adjacent intervals share an endpoint.
type Interval struct {
	Low  float64
	High float64
}

// Overlaps reports whether the closed intervals [i.Low,i.High] and [lo,hi]
// intersect.
func (i Interval) Overlaps(lo, hi float64) bool { return i.Low <= hi && lo <= i.High }

// Errors returned by the naming tree.
var (
	ErrBadSpace  = errors.New("naming: attribute space must have Low < High")
	ErrBadK      = errors.New("naming: k must be in [1, 62]")
	ErrArity     = errors.New("naming: wrong number of attribute values")
	ErrNotFinite = errors.New("naming: attribute value must be finite")
)

// Tree is a partition tree P(2,k) over m ≥ 1 attribute spaces. A Tree is
// immutable and safe for concurrent use.
type Tree struct {
	k      int
	spaces []Space
}

// NewTree builds a partition tree of depth k over the given attribute
// spaces (one Space per attribute, in attribute order A0, A1, ...).
func NewTree(k int, spaces ...Space) (*Tree, error) {
	if k < 1 || k > kautz.MaxRankLen {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if len(spaces) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrArity)
	}
	for i, s := range spaces {
		if !(s.Low < s.High) || math.IsInf(s.Low, 0) || math.IsInf(s.High, 0) ||
			math.IsNaN(s.Low) || math.IsNaN(s.High) {
			return nil, fmt.Errorf("%w: attribute %d: [%v, %v]", ErrBadSpace, i, s.Low, s.High)
		}
	}
	cp := make([]Space, len(spaces))
	copy(cp, spaces)
	return &Tree{k: k, spaces: cp}, nil
}

// NewSingleTree builds the single-attribute tree used by Single_hash.
func NewSingleTree(k int, low, high float64) (*Tree, error) {
	return NewTree(k, Space{Low: low, High: high})
}

// K returns the depth of the tree, which is also the ObjectID length.
func (t *Tree) K() int { return t.k }

// Attrs returns the number of attributes m.
func (t *Tree) Attrs() int { return len(t.spaces) }

// Spaces returns a copy of the attribute spaces.
func (t *Tree) Spaces() []Space {
	cp := make([]Space, len(t.spaces))
	copy(cp, t.spaces)
	return cp
}

// fanout returns the number of children of a node at level j (edges from the
// root are level 0).
func fanout(j int) int {
	if j == 0 {
		return 3
	}
	return 2
}

// childSymbols returns the edge labels under a node whose incoming edge is
// prev (0 at the root), ascending.
func childSymbols(prev byte) []byte {
	switch prev {
	case 0:
		return []byte{'0', '1', '2'}
	case '0':
		return []byte{'1', '2'}
	case '1':
		return []byte{'0', '2'}
	default:
		return []byte{'0', '1'}
	}
}

// Hash maps an m-attribute value to its ObjectID: the label of the leaf
// whose subspace contains it. This is Single_hash for m = 1 and
// Multiple_hash otherwise. Values are clamped to their attribute spaces;
// non-finite values are rejected.
func (t *Tree) Hash(values ...float64) (kautz.Str, error) {
	if len(values) != len(t.spaces) {
		return "", fmt.Errorf("%w: got %d, want %d", ErrArity, len(values), len(t.spaces))
	}
	lo := make([]float64, len(values))
	hi := make([]float64, len(values))
	v := make([]float64, len(values))
	for i, s := range t.spaces {
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return "", fmt.Errorf("%w: attribute %d: %v", ErrNotFinite, i, values[i])
		}
		lo[i], hi[i] = s.Low, s.High
		v[i] = math.Min(math.Max(values[i], s.Low), s.High)
	}
	label := make([]byte, 0, t.k)
	var prev byte
	for j := 0; j < t.k; j++ {
		attr := j % len(t.spaces)
		f := fanout(j)
		idx := pieceIndex(v[attr], lo[attr], hi[attr], f)
		lo[attr], hi[attr] = pieceBounds(lo[attr], hi[attr], f, idx)
		c := childSymbols(prev)[idx]
		label = append(label, c)
		prev = c
	}
	return kautz.Str(label), nil
}

// pieceIndex returns which of f equal pieces of [lo,hi] contains v, with the
// final piece closed at hi.
func pieceIndex(v, lo, hi float64, f int) int {
	if hi <= lo {
		return 0
	}
	idx := int(float64(f) * (v - lo) / (hi - lo))
	if idx < 0 {
		idx = 0
	}
	if idx > f-1 {
		idx = f - 1
	}
	return idx
}

// pieceBounds returns the bounds of piece idx of [lo,hi] split into f equal
// pieces.
func pieceBounds(lo, hi float64, f, idx int) (float64, float64) {
	w := (hi - lo) / float64(f)
	newLo := lo + w*float64(idx)
	newHi := newLo + w
	if idx == f-1 {
		newHi = hi
	}
	return newLo, newHi
}

// Subspace returns, for each attribute, the interval represented by the
// partition tree node labelled prefix. The empty prefix denotes the root
// (the full space). Any valid Kautz string of length ≤ k is a valid node
// label.
func (t *Tree) Subspace(prefix kautz.Str) ([]Interval, error) {
	if len(prefix) > t.k {
		return nil, fmt.Errorf("%w: prefix %q longer than k=%d", ErrBadK, prefix, t.k)
	}
	if !kautz.Valid(prefix) {
		return nil, fmt.Errorf("naming: %q is not a Kautz string", prefix)
	}
	iv := make([]Interval, len(t.spaces))
	for i, s := range t.spaces {
		iv[i] = Interval{Low: s.Low, High: s.High}
	}
	var prev byte
	for j := 0; j < len(prefix); j++ {
		attr := j % len(t.spaces)
		f := fanout(j)
		idx := symbolIndex(childSymbols(prev), prefix[j])
		if idx < 0 {
			return nil, fmt.Errorf("naming: %q is not a partition tree path", prefix)
		}
		iv[attr].Low, iv[attr].High = pieceBounds(iv[attr].Low, iv[attr].High, f, idx)
		prev = prefix[j]
	}
	return iv, nil
}

func symbolIndex(symbols []byte, c byte) int {
	for i, s := range symbols {
		if s == c {
			return i
		}
	}
	return -1
}

// Box is an axis-aligned multi-attribute range query
// ⟨[Lo[0],Hi[0]], ..., [Lo[m-1],Hi[m-1]]⟩.
type Box struct {
	Lo []float64
	Hi []float64
}

// NewBox validates the query bounds against the tree's arity and spaces
// (bounds are clamped to each attribute space).
func (t *Tree) NewBox(lo, hi []float64) (Box, error) {
	if len(lo) != len(t.spaces) || len(hi) != len(t.spaces) {
		return Box{}, fmt.Errorf("%w: got %d/%d bounds, want %d", ErrArity, len(lo), len(hi), len(t.spaces))
	}
	b := Box{Lo: make([]float64, len(lo)), Hi: make([]float64, len(hi))}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) {
			return Box{}, fmt.Errorf("%w: attribute %d", ErrNotFinite, i)
		}
		if lo[i] > hi[i] {
			return Box{}, fmt.Errorf("naming: attribute %d: query low %v above high %v", i, lo[i], hi[i])
		}
		b.Lo[i] = math.Min(math.Max(lo[i], t.spaces[i].Low), t.spaces[i].High)
		b.Hi[i] = math.Min(math.Max(hi[i], t.spaces[i].Low), t.spaces[i].High)
	}
	return b, nil
}

// Contains reports whether the m-attribute point v lies in the box.
func (b Box) Contains(v []float64) bool {
	for i := range b.Lo {
		if v[i] < b.Lo[i] || v[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// IntersectsPrefix reports whether the subspace of the partition tree node
// labelled prefix intersects the box. This is MIRA's pruning predicate: a
// branch of the forward routing tree is descended only while some leaf under
// it can hold matching objects.
func (t *Tree) IntersectsPrefix(prefix kautz.Str, b Box) (bool, error) {
	iv, err := t.Subspace(prefix)
	if err != nil {
		return false, err
	}
	for i := range iv {
		if !iv[i].Overlaps(b.Lo[i], b.Hi[i]) {
			return false, nil
		}
	}
	return true, nil
}

// QueryRegion maps a range query to the Kautz region ⟨LowT, HighT⟩ where
// LowT = Hash(box.Lo) and HighT = Hash(box.Hi). For a single attribute the
// region is exactly the query's image (interval preservation); for multiple
// attributes it is a superset of the matching leaves, which MIRA narrows
// with IntersectsPrefix.
func (t *Tree) QueryRegion(b Box) (kautz.Region, error) {
	lowT, err := t.Hash(b.Lo...)
	if err != nil {
		return kautz.Region{}, err
	}
	highT, err := t.Hash(b.Hi...)
	if err != nil {
		return kautz.Region{}, err
	}
	return kautz.NewRegion(lowT, highT)
}

// LeafCenter returns the center point of the leaf labelled by the full
// length-k Kautz string s: a representative value that hashes back to s.
func (t *Tree) LeafCenter(s kautz.Str) ([]float64, error) {
	if len(s) != t.k {
		return nil, fmt.Errorf("naming: leaf label %q has length %d, want %d", s, len(s), t.k)
	}
	iv, err := t.Subspace(s)
	if err != nil {
		return nil, err
	}
	center := make([]float64, len(iv))
	for i := range iv {
		center[i] = iv[i].Low + (iv[i].High-iv[i].Low)/2
	}
	return center, nil
}
