package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
)

// routeOf builds the shortcut route a warmed table would have learned for
// the query's destination owners (ascending, as Destinations already is).
func routeOf(dests []kautz.Str) ShortcutRoute {
	r := ShortcutRoute{Targets: make([]ShortcutTarget, len(dests))}
	for i, d := range dests {
		r.Targets[i] = ShortcutTarget{Owner: d}
	}
	return r
}

// TestShortcutSeededEquivalence: a range query routed by a learned
// shortcut returns byte-identical results to the fresh descent, at one
// message and one hop per destination.
func TestShortcutSeededEquivalence(t *testing.T) {
	for _, size := range []int{40, 150} {
		eng, _ := buildSingle(t, size, 600, int64(size)+5)
		rng := rand.New(rand.NewSource(int64(size) * 17))
		ctx := context.Background()
		for trial := 0; trial < 15; trial++ {
			lo := rng.Float64() * 800
			hi := lo + 20 + rng.Float64()*100
			issuer := eng.Network().RandomPeer(rng)

			fresh, err := eng.RangeQuery(ctx, issuer, []float64{lo}, []float64{hi})
			if err != nil {
				t.Fatal(err)
			}
			seeded, err := eng.RangeQuery(ctx, issuer, []float64{lo}, []float64{hi},
				WithShortcutRoute(routeOf(fresh.Destinations)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seeded.Matches, fresh.Matches) {
				t.Fatalf("N=%d [%f,%f]: shortcut result diverged from fresh descent", size, lo, hi)
			}
			if seeded.Stats.ShortcutHits != 1 || seeded.Stats.DescentsSaved != 1 {
				t.Fatalf("stats = %+v; want ShortcutHits=1, DescentsSaved=1", seeded.Stats)
			}
			if seeded.Stats.DestPeers != fresh.Stats.DestPeers {
				t.Fatalf("shortcut reached %d destinations, fresh %d",
					seeded.Stats.DestPeers, fresh.Stats.DestPeers)
			}
			if seeded.Stats.Messages != seeded.Stats.DestPeers {
				t.Fatalf("shortcut cost %d messages over %d destinations; want one each",
					seeded.Stats.Messages, seeded.Stats.DestPeers)
			}
			if seeded.Stats.Delay != 1 {
				t.Fatalf("shortcut delay %d, want the single fan-out hop", seeded.Stats.Delay)
			}
		}
	}
}

// TestShortcutLookup: a lookup routed by its learned owner resolves in one
// message and one hop with the same owner and objects.
func TestShortcutLookup(t *testing.T) {
	eng, objs := buildSingle(t, 80, 300, 23)
	tree, err := naming.NewSingleTree(testK, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	issuer := eng.Network().RandomPeer(nil)
	oid, err := tree.Hash(objs[0].Values[0])
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.Lookup(ctx, issuer, oid)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := eng.Lookup(ctx, issuer, oid,
		WithShortcutRoute(routeOf([]kautz.Str{fresh.Owner})))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Owner != fresh.Owner || !reflect.DeepEqual(seeded.Objects, fresh.Objects) {
		t.Fatal("shortcut lookup diverged from fresh descent")
	}
	if seeded.Stats.ShortcutHits != 1 || seeded.Stats.Messages != 1 || seeded.Stats.Delay != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 message, 1 hop", seeded.Stats)
	}
}

// TestShortcutMissCostsNothing: a route the live topology refuses — an
// unknown owner, or a cover with a hole — falls back to the normal
// descent at exactly the baseline's message cost (no retry surcharge).
func TestShortcutMissCostsNothing(t *testing.T) {
	eng, _ := buildSingle(t, 100, 500, 29)
	ctx := context.Background()
	issuer := eng.Network().RandomPeer(nil)
	lo, hi := []float64{100}, []float64{700}

	fresh, err := eng.RangeQuery(ctx, issuer, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Destinations) < 3 {
		t.Fatalf("test range too narrow: %d destinations", len(fresh.Destinations))
	}
	holed := routeOf(append(append([]kautz.Str(nil),
		fresh.Destinations[0]), fresh.Destinations[2:]...))
	unknown := routeOf([]kautz.Str{"01010101"})
	for name, route := range map[string]ShortcutRoute{"holed": holed, "unknown-owner": unknown} {
		res, err := eng.RangeQuery(ctx, issuer, lo, hi, WithShortcutRoute(route))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ShortcutHits != 0 || res.Stats.DescentsSaved != 0 {
			t.Fatalf("%s route was trusted: %+v", name, res.Stats)
		}
		if res.Stats.Messages != fresh.Stats.Messages {
			t.Fatalf("%s fallback cost %d messages, plain descent %d — misses must be free",
				name, res.Stats.Messages, fresh.Stats.Messages)
		}
		if !reflect.DeepEqual(res.Matches, fresh.Matches) {
			t.Fatalf("%s fallback diverged from fresh descent", name)
		}
	}
}

// TestShortcutMIRAGuard: multi-attribute (MIRA) range queries must ignore
// shortcut routes — the descent prunes destinations with the box subspace
// predicate a region tiling cannot express.
func TestShortcutMIRAGuard(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 100, 37)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := naming.NewTree(testK, naming.Space{Low: 0, High: 100}, naming.Space{Low: 0, High: 10})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		obj := fissione.Object{Name: objName(i), Values: []float64{rng.Float64() * 100, rng.Float64() * 10}}
		oid, err := tree.Hash(obj.Values...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.PublishAt(oid, obj); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	issuer := net.RandomPeer(nil)
	lo, hi := []float64{10, 2}, []float64{60, 8}
	fresh, err := eng.RangeQuery(ctx, issuer, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := eng.RangeQuery(ctx, issuer, lo, hi,
		WithShortcutRoute(routeOf(fresh.Destinations)))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.ShortcutHits != 0 {
		t.Fatalf("MIRA query took a shortcut: %+v", seeded.Stats)
	}
	if !reflect.DeepEqual(seeded.Matches, fresh.Matches) {
		t.Fatal("MIRA fallback diverged")
	}
}

// TestShortcutReplicaServedWithoutRedirect: on a replicated network a
// shortcut-routed read addresses the issuer-chosen serving replica
// directly — ReplicaServed counts it, but Messages stays one per
// destination (the descent path pays a redirect message for the same
// serve).
func TestShortcutReplicaServedWithoutRedirect(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 80, 43)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	tree, err := naming.NewSingleTree(testK, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 400; i++ {
		v := rng.Float64() * 1000
		oid, err := tree.Hash(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.PublishAt(oid, fissione.Object{Name: objName(i), Values: []float64{v}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	issuer := net.RandomPeer(nil)
	lo, hi := []float64{200}, []float64{800}
	fresh, err := eng.RangeQuery(ctx, issuer, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	route := ShortcutRoute{Targets: make([]ShortcutTarget, len(fresh.Destinations))}
	var buf [16]*fissione.Peer
	for i, d := range fresh.Destinations {
		group := net.AppendGroupPeers(buf[:0], d)
		ids := make([]kautz.Str, len(group))
		for j, p := range group {
			ids[j] = p.ID()
		}
		route.Targets[i] = ShortcutTarget{Owner: d, Group: ids}
	}
	seeded, err := eng.RangeQuery(ctx, issuer, lo, hi,
		WithShortcutRoute(route), WithReadPolicy(ReadRoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.ShortcutHits != 1 {
		t.Fatalf("replicated shortcut refused: %+v", seeded.Stats)
	}
	// Match.Peer names the serving replica — a policy choice, not result
	// content; the objects themselves must be identical.
	strip := func(ms []Match) []Match {
		out := make([]Match, len(ms))
		for i, m := range ms {
			m.Peer = ""
			out[i] = m
		}
		return out
	}
	if !reflect.DeepEqual(strip(seeded.Matches), strip(fresh.Matches)) {
		t.Fatal("replica-served shortcut diverged from the primary descent")
	}
	if seeded.Stats.DestPeers >= 2 && seeded.Stats.ReplicaServed == 0 {
		t.Fatal("round-robin over learned groups never served from a replica")
	}
	if seeded.Stats.Messages != seeded.Stats.DestPeers {
		t.Fatalf("replica serves cost extra messages: %d over %d destinations",
			seeded.Stats.Messages, seeded.Stats.DestPeers)
	}
}
