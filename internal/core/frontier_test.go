package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"armada/internal/kautz"
)

// TestFrontierSeededEquivalence runs many random paged walks twice — every
// page a fresh descent, then every page past the first seeded from the
// captured frontier — and requires identical matches and cursors with a
// strictly lower message cost per seeded page.
func TestFrontierSeededEquivalence(t *testing.T) {
	for _, size := range []int{40, 150} {
		eng, _ := buildSingle(t, size, 600, int64(size)+3)
		rng := rand.New(rand.NewSource(int64(size) * 13))
		ctx := context.Background()
		for trial := 0; trial < 15; trial++ {
			lo := rng.Float64() * 800
			hi := lo + 50 + rng.Float64()*150
			issuer := eng.Network().RandomPeer(rng)

			first, err := eng.RangeQuery(ctx, issuer, []float64{lo}, []float64{hi},
				WithLimit(40), WithCaptureFrontier())
			if err != nil {
				t.Fatal(err)
			}
			if first.Frontier == nil {
				t.Fatal("full descent captured no frontier")
			}
			if first.Stats.DescentsSaved != 0 {
				t.Fatal("full descent claims a saved descent")
			}
			f := first.Frontier
			after := first.Next
			for page := 2; after != ""; page++ {
				fresh, err := eng.RangeQuery(ctx, issuer, []float64{lo}, []float64{hi},
					WithLimit(40), WithAfter(after))
				if err != nil {
					t.Fatal(err)
				}
				seeded, err := eng.RangeQuery(ctx, issuer, []float64{lo}, []float64{hi},
					WithLimit(40), WithAfter(after), WithFrontier(f))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seeded.Matches, fresh.Matches) || seeded.Next != fresh.Next {
					t.Fatalf("N=%d [%f,%f] page %d: seeded page diverged from fresh descent", size, lo, hi, page)
				}
				if seeded.Stats.DescentsSaved != 1 {
					t.Fatalf("page %d not accounted as seeded", page)
				}
				if seeded.Frontier != nil {
					t.Fatal("seeded page captured a new frontier")
				}
				if seeded.Stats.Messages > fresh.Stats.Messages {
					t.Fatalf("N=%d page %d: seeded cost %d messages, fresh descent %d",
						size, page, seeded.Stats.Messages, fresh.Stats.Messages)
				}
				if seeded.Stats.DestPeers != fresh.Stats.DestPeers {
					t.Fatalf("page %d: seeded reached %d destinations, fresh %d",
						page, seeded.Stats.DestPeers, fresh.Stats.DestPeers)
				}
				after = fresh.Next
				if page > 1000 {
					t.Fatal("walk does not terminate")
				}
			}
		}
	}
}

// TestFrontierStaleEpochFallsBack: a frontier captured before a topology
// change must be refused — the query descends in full and stays correct.
func TestFrontierStaleEpochFallsBack(t *testing.T) {
	eng, _ := buildSingle(t, 60, 400, 9)
	ctx := context.Background()
	issuer := eng.Network().RandomPeer(nil)
	lo, hi := []float64{100}, []float64{600}

	first, err := eng.RangeQuery(ctx, issuer, lo, hi, WithCaptureFrontier())
	if err != nil {
		t.Fatal(err)
	}
	f := first.Frontier
	if !eng.Network().ValidEpoch(f.Epoch) {
		t.Fatal("epoch moved without a topology change")
	}
	if _, err := eng.Network().Join(); err != nil {
		t.Fatal(err)
	}
	if eng.Network().ValidEpoch(f.Epoch) {
		t.Fatal("join did not bump the topology epoch")
	}
	// The issuer may still exist (joins only add); reuse it.
	again, err := eng.RangeQuery(ctx, issuer, lo, hi, WithFrontier(f), WithCaptureFrontier())
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.DescentsSaved != 0 {
		t.Error("stale frontier seeded a query")
	}
	if len(again.Matches) != len(first.Matches) {
		t.Errorf("fallback found %d matches, original %d", len(again.Matches), len(first.Matches))
	}
	if again.Frontier == nil || again.Frontier.Epoch == f.Epoch {
		t.Error("fallback did not re-capture at the new epoch")
	}
}

// TestFrontierCoversRejectsWiderQuery: a frontier must not seed a query
// whose region exceeds what it covers.
func TestFrontierCoversRejectsWiderQuery(t *testing.T) {
	eng, _ := buildSingle(t, 60, 400, 11)
	ctx := context.Background()
	issuer := eng.Network().RandomPeer(nil)

	narrow, err := eng.RangeQuery(ctx, issuer, []float64{300}, []float64{400}, WithCaptureFrontier())
	if err != nil {
		t.Fatal(err)
	}
	wide, err := eng.RangeQuery(ctx, issuer, []float64{200}, []float64{600}, WithFrontier(narrow.Frontier))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Stats.DescentsSaved != 0 {
		t.Error("a narrow frontier seeded a wider query")
	}

	// The converse is the cache's bread and butter: the wide frontier
	// seeds the narrow query with identical results.
	wideCap, err := eng.RangeQuery(ctx, issuer, []float64{200}, []float64{600}, WithCaptureFrontier())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.RangeQuery(ctx, issuer, []float64{300}, []float64{400})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := eng.RangeQuery(ctx, issuer, []float64{300}, []float64{400}, WithFrontier(wideCap.Frontier))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.DescentsSaved != 1 {
		t.Error("a covering frontier did not seed a narrower query")
	}
	if !reflect.DeepEqual(seeded.Matches, fresh.Matches) {
		t.Error("seeded narrower query diverged from the fresh descent")
	}
}

// TestFrontierEntriesClippedToOwners: captured entries carry the delivered
// region clipped to each destination's own region, so a cursor past an
// entry's High retires that peer from later pages (the message saving the
// subsystem exists for).
func TestFrontierEntriesClippedToOwners(t *testing.T) {
	eng, _ := buildSingle(t, 100, 500, 17)
	ctx := context.Background()
	issuer := eng.Network().RandomPeer(nil)
	res, err := eng.RangeQuery(ctx, issuer, []float64{0}, []float64{1000}, WithCaptureFrontier())
	if err != nil {
		t.Fatal(err)
	}
	f := res.Frontier
	if len(f.Entries) == 0 {
		t.Fatal("no entries captured")
	}
	for _, en := range f.Entries {
		own := kautz.Region{
			Low:  kautz.MinExtend(en.Peer, eng.Network().K()),
			High: kautz.MaxExtend(en.Peer, eng.Network().K()),
		}
		if en.Region.Low < own.Low || en.Region.High > own.High {
			t.Fatalf("entry for %s covers %v outside its own region %v", en.Peer, en.Region, own)
		}
	}
	// Deep cursors must shrink the fan-out: seed a page after the median
	// entry High and require fewer messages than the full destination set.
	mid := f.Entries[len(f.Entries)/2].Region.High
	seeded, err := eng.RangeQuery(ctx, issuer, []float64{0}, []float64{1000},
		WithFrontier(f), WithAfter(mid))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.DescentsSaved != 1 {
		t.Fatal("seeding refused")
	}
	if seeded.Stats.Messages >= len(f.Entries) {
		t.Errorf("cursor-clipped seeding sent %d messages over %d entries; retired peers still messaged",
			seeded.Stats.Messages, len(f.Entries))
	}
}
