// Package core implements Armada's query processing — the paper's primary
// contribution. One pruned descent of the issuer's forward routing tree
// (FRT) drives all three query types:
//
//   - PIRA (single-attribute range queries, Section 4.2): the query
//     [LowV, HighV] becomes the Kautz region ⟨LowT, HighT⟩; the region is
//     split into at most three subregions with common first symbols; each
//     descends the FRT, forwarding to an out-neighbor exactly when the
//     subregion still contains a string with the child's eventual prefix.
//   - MIRA (multi-attribute range queries, Section 5): the same descent over
//     ⟨Multiple_hash(ω1), Multiple_hash(ω2)⟩ with one extra pruning
//     predicate — a child is forwarded only while the partition-tree
//     subspace of its eventual prefix intersects the real query box Ω.
//   - Exact-match lookup (FISSIONE routing): the degenerate region ⟨T, T⟩.
//
// The descent starts at the query issuer (no preliminary DHT routing), so a
// query's delay is bounded by the issuer's identifier length: less than
// 2·log₂N hops always and less than log₂N on average — the delay-bounded
// property the paper is named for.
package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
	"armada/internal/obs"
	"armada/internal/simnet"
)

// Mode selects the execution engine for a query.
type Mode int

// Execution modes. Sync runs the deterministic single-threaded engine used
// by the experiments; Async runs one goroutine per peer. The zero Mode is
// treated as Sync.
const (
	Sync Mode = iota + 1
	Async
)

// Errors returned by the engine.
var (
	ErrNoTree      = errors.New("core: engine has no naming tree; range queries unavailable")
	ErrNoSuchPeer  = errors.New("core: issuer is not a peer")
	ErrKMismatch   = errors.New("core: naming tree depth must equal the network's ObjectID length")
	ErrBadObjectID = errors.New("core: ObjectID must be a Kautz string of the network's length k")
)

// Engine executes Armada queries over a FISSIONE network. The engine holds
// no per-query state: every query carries its own configuration, so any
// number of queries — traced or not, sync or async — may run concurrently.
// The network topology must not be mutated while a query is in flight.
type Engine struct {
	net  *fissione.Network
	tree *naming.Tree
	// rr is the round-robin read policy's cursor; shared by all queries so
	// repeated identical queries rotate through a group's replicas.
	rr atomic.Uint64
	// metrics accumulates engine-wide query cost counters; always non-nil.
	metrics *Metrics
}

// HopKind classifies one traced hop, so observers need not re-derive the
// hop's role from its remaining count.
type HopKind uint8

const (
	// HopForward is one FRT descent forward toward the destination level.
	HopForward HopKind = iota
	// HopDeliver is a delivery served by the region owner itself
	// (from == to).
	HopDeliver
	// HopRedirect is a delivery the read policy redirected from the region
	// owner (from) to a serving replica (to).
	HopRedirect
	// HopSeed is one direct issuer→destination fan-out send of a
	// frontier-seeded query.
	HopSeed
	// HopShortcut is one direct issuer→serving-peer send of a
	// shortcut-routed query (see WithShortcutRoute).
	HopShortcut
)

// TraceFunc observes one descent hop. from is the processing peer, to the
// forward's target; deliveries have remaining == 0 and report the peer
// that served the delivery as to — equal to from unless a read policy
// redirected the scan to a replica (kind HopRedirect). A trace function
// passed to an Async query must be safe for concurrent use.
type TraceFunc func(kind HopKind, from, to kautz.Str, depth, remaining int)

// Metrics are the engine's cumulative query-cost counters, shared by every
// query the engine runs. Updates are lock-free atomics folded in once per
// query (from the Stats the query computed anyway) plus one counter
// increment per scheduled overlay message, so the per-hop path stays
// allocation-free.
type Metrics struct {
	// Descents counts full FRT descents executed; Seeded counts queries
	// that skipped the descent by seeding from a captured frontier.
	Descents obs.Counter
	Seeded   obs.Counter
	// Messages and Deliveries total the per-query Stats fields of the same
	// names across all queries.
	Messages   obs.Counter
	Deliveries obs.Counter
	// Scheduled counts overlay messages scheduled by the simnet engines —
	// the raw message-pump volume, including frontier fan-outs.
	Scheduled obs.Counter
	// HopDelay is the distribution of realized per-query hop delay.
	HopDelay *obs.Histogram
}

func newMetrics() *Metrics {
	return &Metrics{HopDelay: obs.NewHistogram(1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 48)}
}

// Describe registers the engine's metrics on reg.
func (m *Metrics) Describe(reg *obs.Registry) {
	reg.MustRegister("engine_descents_total", &m.Descents)
	reg.MustRegister("engine_seeded_queries_total", &m.Seeded)
	reg.MustRegister("engine_messages_total", &m.Messages)
	reg.MustRegister("engine_deliveries_total", &m.Deliveries)
	reg.MustRegister("engine_scheduled_ops_total", &m.Scheduled)
	reg.MustRegister("engine_hop_delay", m.HopDelay)
}

// note folds one finished query's stats into the cumulative counters.
func (m *Metrics) note(s Stats, seeded bool) {
	if seeded {
		m.Seeded.Inc()
	} else {
		m.Descents.Inc()
	}
	m.Messages.Add(int64(s.Messages))
	m.Deliveries.Add(int64(s.Deliveries))
	m.HopDelay.Observe(float64(s.Delay))
}

// ReadPolicy selects which member of a region's replica group serves a
// delivery. On an unreplicated network every policy is ReadPrimary.
type ReadPolicy int

const (
	// ReadPrimary always serves from the region's owner — the zero value,
	// byte-identical to the unreplicated data path.
	ReadPrimary ReadPolicy = iota
	// ReadRoundRobin rotates deliveries through the group, spreading a hot
	// region's read load evenly.
	ReadRoundRobin
	// ReadLeastLoaded serves from the group member that has served the
	// fewest region scans so far.
	ReadLeastLoaded
)

// String names the policy for reports and errors.
func (p ReadPolicy) String() string {
	switch p {
	case ReadPrimary:
		return "primary"
	case ReadRoundRobin:
		return "round-robin"
	case ReadLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("ReadPolicy(%d)", int(p))
	}
}

// QueryConfig is the per-query execution configuration. The zero value runs
// a plain synchronous query.
type QueryConfig struct {
	// Mode selects the execution engine (zero means Sync).
	Mode Mode
	// Trace, when non-nil, observes every hop of the descent.
	Trace TraceFunc
	// OnMatch, when non-nil, receives each matching object as its
	// destination peer delivers it — before the final sorted result is
	// assembled. Under Async mode it may be called concurrently.
	OnMatch func(Match)
	// Limit, when positive, paginates the result: each destination peer
	// stops scanning once it has collected Limit matches (extending through
	// a run of equal ObjectIDs so cursors never split an ID), and the final
	// sorted result is cut the same way. RangeResult.Next then carries the
	// cursor for the following page. Range and flood queries only.
	Limit int
	// After restricts matches to ObjectIDs strictly greater than it — the
	// cursor of keyset pagination, normally the previous page's Next.
	After kautz.Str
	// RunsOnly leaves RangeResult.Matches nil and delivers the result
	// solely through RangeResult.Runs, skipping the flatten copy — for
	// callers that stream the runs into their own representation (the
	// armada layer converts runs straight into its public result type).
	RunsOnly bool
	// Policy selects the replica that serves each delivery on a replicated
	// network. The zero value (ReadPrimary) preserves the unreplicated
	// data path exactly.
	Policy ReadPolicy
	// Frontier, when non-nil, offers a captured descent frontier to seed
	// the query directly at its destination peers (see WithFrontier). It
	// is used only while valid — matching topology epoch, covering region
	// — and silently ignored otherwise.
	Frontier *Frontier
	// CaptureFrontier records a full descent's frontier into
	// RangeResult.Frontier (see WithCaptureFrontier).
	CaptureFrontier bool
	// Prepared, when non-nil, carries the query's precomputed box and
	// region (see WithPrepared), sparing RangeQuery the naming-tree
	// mapping a frontier-caching caller already performed.
	Prepared *PreparedRange
	// Shortcut, when non-nil, offers a learned shortcut route to serve the
	// query without a descent (see WithShortcutRoute). It is used only
	// after re-validation against the live topology and silently ignored
	// otherwise.
	Shortcut *ShortcutRoute
	// ScanTrace, when non-nil, observes each delivery's completed store
	// scan: the serving peer, the delivery depth, and how many matches the
	// scan collected. It complements Trace (whose deliver/redirect hops
	// fire before the scan runs) with the scan cost itself. Under Async
	// mode it may be called concurrently.
	ScanTrace func(serving kautz.Str, depth, matched int)
}

// QueryOption adjusts one query's configuration.
type QueryOption func(*QueryConfig)

// WithMode selects the execution engine for this query.
func WithMode(m Mode) QueryOption { return func(c *QueryConfig) { c.Mode = m } }

// WithTrace installs a hop observer for this query.
func WithTrace(f TraceFunc) QueryOption { return func(c *QueryConfig) { c.Trace = f } }

// WithOnMatch installs a streaming match observer for this query.
func WithOnMatch(f func(Match)) QueryOption { return func(c *QueryConfig) { c.OnMatch = f } }

// WithLimit paginates the query's result set at n matches per page (at
// ObjectID granularity: a page grows past n only to keep objects sharing
// its last ObjectID together).
func WithLimit(n int) QueryOption { return func(c *QueryConfig) { c.Limit = n } }

// WithAfter resumes a paginated query strictly after the given ObjectID.
func WithAfter(id kautz.Str) QueryOption { return func(c *QueryConfig) { c.After = id } }

// WithRunsOnly skips flattening the result into Matches; the caller reads
// RangeResult.Runs instead.
func WithRunsOnly() QueryOption { return func(c *QueryConfig) { c.RunsOnly = true } }

// WithReadPolicy selects the replica-serving policy for this query.
func WithReadPolicy(p ReadPolicy) QueryOption { return func(c *QueryConfig) { c.Policy = p } }

// WithScanTrace installs a store-scan observer for this query.
func WithScanTrace(f func(serving kautz.Str, depth, matched int)) QueryOption {
	return func(c *QueryConfig) { c.ScanTrace = f }
}

func buildQueryConfig(opts []QueryOption) QueryConfig {
	var cfg QueryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// New creates an engine. tree may be nil for an exact-match-only engine;
// otherwise its depth must equal the network's ObjectID length.
func New(net *fissione.Network, tree *naming.Tree) (*Engine, error) {
	if tree != nil && tree.K() != net.K() {
		return nil, fmt.Errorf("%w: tree k=%d, network k=%d", ErrKMismatch, tree.K(), net.K())
	}
	return &Engine{net: net, tree: tree, metrics: newMetrics()}, nil
}

// Metrics returns the engine's cumulative query-cost counters.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Tree returns the engine's naming tree (nil for exact-match-only engines).
func (e *Engine) Tree() *naming.Tree { return e.tree }

// Network returns the underlying FISSIONE network.
func (e *Engine) Network() *fissione.Network { return e.net }

// Stats are the cost metrics of one executed query, in the paper's units.
type Stats struct {
	// Delay is the number of hops until the last destination peer received
	// the query.
	Delay int
	// Messages is the total number of overlay messages the query produced.
	Messages int
	// DestPeers is the number of distinct destination peers that intersect
	// the query ("Destpeers" in Section 4.3.3).
	DestPeers int
	// Subregions is how many common-prefix subregions the query's Kautz
	// region was split into (1 to 3).
	Subregions int
	// Deliveries counts destination arrivals including any duplicates; it
	// equals DestPeers when each destination is reached exactly once.
	Deliveries int
	// ReplicaServed counts deliveries served by a replica other than the
	// region's owner (always 0 under ReadPrimary or without replication).
	// On a descent each such redirect is accounted as one extra overlay
	// message, and as one extra hop of delay for that destination; on a
	// shortcut-routed query the issuer addresses the serving replica
	// directly, so the redirect costs nothing.
	ReplicaServed int
	// DescentsSaved is 1 when the query was seeded from a captured
	// frontier instead of descending the FRT: Messages then counts one
	// direct fan-out message per surviving destination (plus replica
	// redirects), Delay is the single fan-out hop, and Subregions is 0.
	DescentsSaved int
	// ShortcutHits is 1 when the query was routed by a learned shortcut
	// route (WithShortcutRoute): the descent was replaced by one direct
	// send per destination — DescentsSaved is also 1 — and replica-served
	// deliveries landed on the chosen replica with no redirect message.
	ShortcutHits int
}

// MesgRatio is Messages/Destpeers, the paper's per-destination message
// cost.
func (s Stats) MesgRatio() float64 {
	if s.DestPeers == 0 {
		return 0
	}
	return float64(s.Messages) / float64(s.DestPeers)
}

// IncreRatio is (Messages − log₂N)/(Destpeers − 1) for a network of n
// peers: the marginal messages per additional destination, excluding the
// roughly log₂N cost of reaching the first.
func (s Stats) IncreRatio(networkSize int) float64 {
	if s.DestPeers <= 1 {
		return 0
	}
	return (float64(s.Messages) - log2(float64(networkSize))) / float64(s.DestPeers-1)
}

// Match is one object satisfying a query. Values aliases the stored
// object's value slice to keep the delivery path allocation-free; treat it
// as read-only (the armada layer copies values before handing results to
// callers).
type Match struct {
	ObjectID kautz.Str
	Name     string
	Values   []float64
	Peer     kautz.Str
}

// RangeResult is the outcome of a range query.
type RangeResult struct {
	// Matches lists the objects whose attribute values satisfy the query,
	// in ascending (ObjectID, Name) order. Nil when the query ran with
	// WithRunsOnly; read Runs instead.
	Matches []Match
	// Runs is the same result as one sorted run per delivery: each run
	// ascends (ObjectID, Name) and runs are ordered by head ObjectID with
	// pairwise disjoint ID ranges, so their concatenation equals Matches.
	Runs [][]Match
	// Destinations lists the distinct destination peers, ascending.
	Destinations []kautz.Str
	// Next is the pagination cursor: when a Limit truncated the result,
	// Next holds the highest ObjectID in Matches; executing the same query
	// with After set to it yields the following page. Empty when Matches is
	// the complete (remaining) result set.
	Next kautz.Str
	// Frontier is the captured descent frontier — non-nil only when the
	// query ran with CaptureFrontier and descended in full (a seeded query
	// captures nothing; its seed remains the valid frontier).
	Frontier *Frontier
	// Stats carries the query's cost metrics.
	Stats Stats
}

// queryMsg is the payload carried by one descent message.
type queryMsg struct {
	region kautz.Region
	h      int // remaining hops to the destination level
}

// queryState accumulates results across a query's messages; handlers may
// run concurrently in Async mode.
//
// Matches accumulate as one sorted run per delivery. Every peer owns a
// prefix region disjoint from every other peer's, and a peer's deliveries
// cover disjoint subregions, so runs never interleave: the final ordering
// is a sort of whole runs by head ObjectID plus concatenation — O(total)
// instead of O(total·log total) for the big hot-region result sets.
type queryState struct {
	mu            sync.Mutex
	box           *naming.Box
	cfg           QueryConfig
	runs          [][]Match // each ascending (ObjectID, Name); pairwise disjoint ID ranges
	nmatches      int
	dests         []kautz.Str
	frontier      []FrontierEntry // captured deliveries (cfg.CaptureFrontier only)
	truncated     bool            // some peer (or the final cut) dropped matches to a Limit
	replicaServed int             // deliveries served by a non-owner replica
	redirectMsgs  int             // replica serves that cost a redirect message (descents only)
	redirectDepth int             // deepest redirected delivery (owner depth + 1)
}

// RangeQuery executes a range query issued by the given peer: PIRA when the
// engine's naming tree has one attribute, MIRA otherwise. lo and hi carry
// one bound per attribute. Cancelling ctx aborts the descent and returns
// ctx's error.
func (e *Engine) RangeQuery(ctx context.Context, issuer kautz.Str, lo, hi []float64, opts ...QueryOption) (*RangeResult, error) {
	if e.tree == nil {
		return nil, ErrNoTree
	}
	cfg := buildQueryConfig(opts)
	var (
		box    naming.Box
		region kautz.Region
	)
	if cfg.Prepared != nil {
		box, region = cfg.Prepared.Box, cfg.Prepared.Region
	} else {
		var err error
		if box, err = e.tree.NewBox(lo, hi); err != nil {
			return nil, fmt.Errorf("core: range query bounds: %w", err)
		}
		if region, err = e.tree.QueryRegion(box); err != nil {
			return nil, fmt.Errorf("core: range query region: %w", err)
		}
	}
	region, ok := clipRegionAfter(region, cfg.After)
	if !ok {
		return &RangeResult{}, nil
	}
	if e.frontierUsable(cfg.Frontier, region, lo, hi) {
		return e.seedFromFrontier(ctx, issuer, region, &box, cfg, cfg.Frontier)
	}
	res, err := e.descend(ctx, issuer, region, &box, cfg)
	if err == nil && res.Frontier != nil {
		// Stamp the bounds the capture's box pruning ran with; reuse is
		// restricted to queries inside them (see Frontier.CoversBounds).
		res.Frontier.Lo = append([]float64(nil), lo...)
		res.Frontier.Hi = append([]float64(nil), hi...)
	}
	return res, err
}

// clipRegionAfter shrinks a paginated query's region to ⟨succ(after),
// High⟩, reporting false when nothing remains. This is what makes keyset
// pagination cheap end to end: a later page's descent prunes every FRT
// branch at or below the cursor, so it only visits the destination peers
// that still hold unread matches instead of re-walking the whole region.
func clipRegionAfter(r kautz.Region, after kautz.Str) (kautz.Region, bool) {
	if after == "" || after < r.Low {
		return r, true
	}
	if after >= r.High {
		return kautz.Region{}, false
	}
	next, ok := kautz.Succ(after)
	if !ok {
		return kautz.Region{}, false
	}
	r.Low = next
	return r, true
}

// LookupResult is the outcome of an exact-match lookup.
type LookupResult struct {
	// Owner is the peer owning the looked-up ObjectID; Served is the
	// replica that answered the delivery — equal to Owner unless a read
	// policy redirected it (or when nothing was delivered).
	Owner   kautz.Str
	Served  kautz.Str
	Objects []fissione.Object
	Stats   Stats
}

// Lookup routes from the issuer to the peer owning objectID — FISSIONE's
// exact-match query, executed as the degenerate range ⟨objectID, objectID⟩
// — and returns the objects published under it.
func (e *Engine) Lookup(ctx context.Context, issuer kautz.Str, objectID kautz.Str, opts ...QueryOption) (*LookupResult, error) {
	if len(objectID) != e.net.K() || !kautz.Valid(objectID) {
		return nil, fmt.Errorf("%w: %q", ErrBadObjectID, objectID)
	}
	region, err := kautz.NewRegion(objectID, objectID)
	if err != nil {
		return nil, err
	}
	res, err := e.descend(ctx, issuer, region, nil, buildQueryConfig(opts))
	if err != nil {
		return nil, err
	}
	out := &LookupResult{Stats: res.Stats}
	if len(res.Destinations) > 0 {
		out.Owner = res.Destinations[0]
	}
	out.Served = out.Owner
	for _, m := range res.Matches {
		out.Served = m.Peer // one delivery serves a lookup; all matches agree
		out.Objects = append(out.Objects, fissione.Object{Name: m.Name, Values: m.Values})
	}
	return out, nil
}

// descend runs the pruned FRT search from the issuer over the query region,
// additionally pruning with the box's subspace predicate when box is
// non-nil. The per-query cfg selects the execution mode and observers.
func (e *Engine) descend(ctx context.Context, issuer kautz.Str, region kautz.Region, box *naming.Box, cfg QueryConfig) (*RangeResult, error) {
	if _, ok := e.net.Peer(issuer); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, issuer)
	}
	if cfg.Shortcut != nil {
		res, ok, err := e.seedFromShortcut(ctx, issuer, region, box, cfg)
		if ok || err != nil {
			return res, err
		}
		// The route failed re-validation; fall through to the normal
		// descent with zero messages spent.
	}
	state := &queryState{box: box, cfg: cfg}
	parts := region.SplitByFirstSymbol()

	seeds := make([]simnet.Message, 0, len(parts))
	for _, part := range parts {
		comT := part.CommonPrefix()
		f := kautz.OverlapSuffixPrefix(issuer, comT)
		seeds = append(seeds, simnet.Message{
			To:      string(issuer),
			Payload: queryMsg{region: part, h: len(issuer) - f},
		})
	}

	handle := func(m simnet.Message) []simnet.Message { return e.step(state, m) }

	metrics, err := e.run(ctx, cfg, seeds, handle)
	if err != nil {
		return nil, err
	}

	res := state.result(metrics, len(parts))
	if cfg.CaptureFrontier {
		// The run has drained, so state.frontier is complete; the epoch is
		// stable for as long as the caller excludes topology mutation.
		res.Frontier = &Frontier{Epoch: e.net.Epoch(), Region: region, Entries: state.frontier}
	}
	e.metrics.note(res.Stats, false)
	return res, nil
}

// run executes one set of seed messages on the engine selected by the
// query's configuration.
func (e *Engine) run(ctx context.Context, cfg QueryConfig, seeds []simnet.Message, handle simnet.Handler) (simnet.Metrics, error) {
	handle = e.countScheduled(handle)
	var (
		metrics simnet.Metrics
		err     error
	)
	if cfg.Mode == Async {
		ids := e.net.PeerIDs()
		strIDs := make([]string, len(ids))
		for i, id := range ids {
			strIDs[i] = string(id)
		}
		metrics, err = simnet.RunAsync(ctx, strIDs, seeds, handle)
	} else {
		metrics, err = simnet.RunSync(ctx, seeds, handle)
	}
	if err != nil {
		return metrics, fmt.Errorf("core: query aborted: %w", err)
	}
	return metrics, nil
}

// countScheduled wraps a message handler to count every scheduled overlay
// message — the one per-message metric update the engine pays.
func (e *Engine) countScheduled(handle simnet.Handler) simnet.Handler {
	sched := &e.metrics.Scheduled
	return func(m simnet.Message) []simnet.Message {
		sched.Inc()
		return handle(m)
	}
}

// step processes one descent message at its destination peer and returns
// the forwards. It is safe for concurrent use.
func (e *Engine) step(state *queryState, m simnet.Message) []simnet.Message {
	peer, ok := e.net.Peer(kautz.Str(m.To))
	if !ok {
		return nil
	}
	if fm, ok := m.Payload.(frontierMsg); ok {
		// Frontier-seeded fan-out: the issuer addresses each surviving
		// destination directly; every forward is one overlay message
		// delivering at depth 1.
		fwd := make([]simnet.Message, 0, len(fm.sends))
		for _, s := range fm.sends {
			if state.cfg.Trace != nil {
				state.cfg.Trace(HopSeed, peer.ID(), s.Peer, m.Depth, 0)
			}
			fwd = append(fwd, simnet.Message{To: string(s.Peer), Payload: queryMsg{region: s.Region, h: 0}})
		}
		return fwd
	}
	if sm, ok := m.Payload.(shortcutMsg); ok {
		// Shortcut fan-out: the issuer addresses each pre-resolved serving
		// peer directly; every forward is one overlay message delivering
		// at depth 1.
		fwd := make([]simnet.Message, 0, len(sm.sends))
		for _, s := range sm.sends {
			if state.cfg.Trace != nil {
				state.cfg.Trace(HopShortcut, peer.ID(), s.serving, m.Depth, 0)
			}
			fwd = append(fwd, simnet.Message{To: string(s.serving), Payload: s})
		}
		return fwd
	}
	if ss, ok := m.Payload.(shortcutSend); ok {
		e.deliverShortcut(state, ss, m.Depth)
		return nil
	}
	qm, ok := m.Payload.(queryMsg)
	if !ok {
		return nil
	}
	if qm.h == 0 {
		e.deliver(state, peer, qm.region, m.Depth)
		return nil
	}
	fwd := make([]simnet.Message, 0, len(peer.Out()))
	for _, c := range peer.Out() {
		ep := c.Drop(qm.h - 1) // the child's eventual prefix at the destination level
		if !qm.region.ContainsPrefix(ep) {
			continue
		}
		if state.box != nil && !e.prefixIntersectsBox(ep, *state.box) {
			continue
		}
		if state.cfg.Trace != nil {
			state.cfg.Trace(HopForward, peer.ID(), c, m.Depth, qm.h-1)
		}
		fwd = append(fwd, simnet.Message{To: string(c), Payload: queryMsg{region: qm.region, h: qm.h - 1}})
	}
	return fwd
}

// prefixIntersectsBox applies MIRA's subspace predicate, truncating
// prefixes that exceed the tree depth.
func (e *Engine) prefixIntersectsBox(prefix kautz.Str, box naming.Box) bool {
	if len(prefix) > e.tree.K() {
		prefix = prefix[:e.tree.K()]
	}
	ok, err := e.tree.IntersectsPrefix(prefix, box)
	return err == nil && ok
}

// deliver records owner as a destination and collects the delivered
// region's matching objects with one ordered scan of the serving peer's
// index — O(log store + k) for k results, or O(log store + Limit) when the
// query paginates — notifying the query's OnMatch observer outside the
// state lock.
//
// On a replicated network the scan may be served by any member of the
// owner's replica group, chosen by the query's read policy. The scan is
// then clipped to the owner's own region: a replica's store also carries
// copies of neighboring regions, and without the clip those objects would
// be returned both here and at their own region's delivery. Clipping makes
// every ObjectID the responsibility of exactly one delivery, which keeps
// flood mode and paginated walks exact under replication. A redirected
// delivery costs one extra overlay message and arrives one hop later.
//
// With a Limit, the peer collects only its first Limit matches after the
// cursor (plus any run of equal ObjectIDs straddling the cut). The final
// global cut in result keeps pagination exact: a match dropped here is
// preceded by Limit collected matches with smaller ObjectIDs on this peer
// alone, so it can never belong to the current page.
func (e *Engine) deliver(state *queryState, owner *fissione.Peer, region kautz.Region, depth int) {
	// Load accounting: one delivery addressed to this owner's region,
	// whichever replica ends up serving the scan — ownership is what the
	// load controller splits and migrates.
	owner.NoteDelivery()
	serving, scan, ok := e.serveTarget(owner, region, state.cfg.Policy)
	if state.cfg.Trace != nil {
		kind := HopDeliver
		if serving != owner {
			kind = HopRedirect
		}
		state.cfg.Trace(kind, owner.ID(), serving.ID(), depth, 0)
	}
	if !ok {
		// The owner's region does not intersect the delivered region: an
		// empty delivery, recorded as a destination like an empty scan.
		state.mu.Lock()
		state.dests = append(state.dests, owner.ID())
		state.mu.Unlock()
		return
	}
	e.scanDelivery(state, owner, serving, scan, region, depth, serving != owner)
}

// scanDelivery runs one delivery's ordered scan on the serving peer and
// folds the outcome into the query state — the tail shared by descent
// deliveries (deliver) and shortcut deliveries (deliverShortcut). scan is
// the region the serving peer scans; region is the delivered region the
// frontier capture clips. redirectMsg reports whether a non-owner serve
// cost a redirect message (descents; a shortcut-routed serve is addressed
// directly and costs none).
func (e *Engine) scanDelivery(state *queryState, owner, serving *fissione.Peer, scan, region kautz.Region, depth int, redirectMsg bool) {
	var (
		collected []Match
		truncated bool
	)
	serving.ScanRegionHinted(scan, state.cfg.After, func(n int) {
		if state.cfg.Limit > 0 && n > state.cfg.Limit {
			n = state.cfg.Limit + 1 // one slot of tie headroom; appends may still grow it
		}
		if n > 0 {
			collected = make([]Match, 0, n)
		}
	}, func(so fissione.StoredObject) bool {
		if state.box != nil {
			if len(so.Object.Values) != len(state.box.Lo) || !state.box.Contains(so.Object.Values) {
				return true
			}
		}
		if state.cfg.Limit > 0 && len(collected) >= state.cfg.Limit &&
			so.ObjectID != collected[len(collected)-1].ObjectID {
			truncated = true
			return false
		}
		collected = append(collected, Match{
			ObjectID: so.ObjectID,
			Name:     so.Object.Name,
			Values:   so.Object.Values, // aliased; see Match
			Peer:     serving.ID(),
		})
		return true
	})
	state.mu.Lock()
	state.dests = append(state.dests, owner.ID())
	if state.cfg.CaptureFrontier {
		// Capture the delivery clipped to the owner's own region, so a
		// cursor moving past the entry retires the peer from later pages
		// (the raw delivered region spans many peers and would never
		// retire anyone).
		if own, ok := region.Intersect(e.ownRegion(owner.ID())); ok {
			state.frontier = append(state.frontier, FrontierEntry{Peer: owner.ID(), Region: own})
		}
	}
	if serving != owner {
		state.replicaServed++
		if redirectMsg {
			state.redirectMsgs++
			if depth+1 > state.redirectDepth {
				state.redirectDepth = depth + 1
			}
		}
	}
	if len(collected) > 0 {
		state.runs = append(state.runs, collected)
		state.nmatches += len(collected)
	}
	if truncated {
		state.truncated = true
	}
	state.mu.Unlock()
	if state.cfg.ScanTrace != nil {
		state.cfg.ScanTrace(serving.ID(), depth, len(collected))
	}
	if state.cfg.OnMatch != nil {
		for _, m := range collected {
			state.cfg.OnMatch(m)
		}
	}
}

// serveTarget resolves one delivery: the peer that will serve it (chosen
// from the owner's replica group by the read policy) and the region it
// must scan (the delivered region clipped to the owner's own region).
// Without replication it is the identity — the owner scans the delivered
// region — and everything else is skipped: an unreplicated owner stores
// nothing outside its own region, so the results are identical and the
// pre-replication hot path stays untouched, served-reads accounting
// included. ok is false when the clipped region is empty.
func (e *Engine) serveTarget(owner *fissione.Peer, region kautz.Region, pol ReadPolicy) (serving *fissione.Peer, scan kautz.Region, ok bool) {
	if e.net.Replicas() == 1 {
		return owner, region, true
	}
	id := owner.ID()
	scan, ok = region.Intersect(e.ownRegion(id))
	if !ok {
		return owner, scan, false
	}
	serving = owner
	if pol != ReadPrimary {
		var buf [16]*fissione.Peer // replication degrees are small; avoids a heap group slice per delivery
		group := e.net.AppendGroupPeers(buf[:0], id)
		switch pol {
		case ReadRoundRobin:
			serving = group[e.rr.Add(1)%uint64(len(group))]
		case ReadLeastLoaded:
			for _, p := range group[1:] {
				if p.ServedReads() < serving.ServedReads() {
					serving = p
				}
			}
		}
	}
	serving.NoteServed()
	return serving, scan, true
}

// result assembles the final RangeResult.
func (state *queryState) result(metrics simnet.Metrics, subregions int) *RangeResult {
	state.mu.Lock()
	defer state.mu.Unlock()

	// The state is dropped after assembly, so dests can be sorted and
	// deduplicated in place instead of copied.
	dests := state.dests
	slices.Sort(dests)
	unique := dests[:0]
	for i, d := range dests {
		if i == 0 || d != dests[i-1] {
			unique = append(unique, d)
		}
	}

	// Runs are internally sorted and pairwise disjoint in ObjectID range
	// (distinct peers own distinct prefix regions; one peer's deliveries
	// cover disjoint subregions), so ordering whole runs by head ObjectID
	// and concatenating yields the globally sorted result without
	// comparing individual matches.
	slices.SortFunc(state.runs, func(a, b []Match) int {
		return cmp.Compare(a[0].ObjectID, b[0].ObjectID)
	})

	// The global page cut, at run granularity. Ties cannot cross a run
	// boundary (every ObjectID lives on exactly one peer, and one peer's
	// matches for it sit contiguously in one run), so extending the cut
	// through a run of equal ObjectIDs keeps the Next cursor
	// (strictly-greater) from ever skipping or repeating an object.
	runs, total := state.runs, state.nmatches
	if limit := state.cfg.Limit; limit > 0 && total > limit {
		kept := 0
		for i, run := range runs {
			if kept+len(run) < limit {
				kept += len(run)
				continue
			}
			cut := limit - kept
			for cut < len(run) && run[cut].ObjectID == run[cut-1].ObjectID {
				cut++
			}
			if cut < len(run) || i+1 < len(runs) {
				state.truncated = true
			}
			runs = runs[:i+1]
			runs[i] = run[:cut]
			kept += cut
			break
		}
		total = kept
	}
	var next kautz.Str
	if state.truncated && len(runs) > 0 {
		last := runs[len(runs)-1]
		next = last[len(last)-1].ObjectID
	}

	var matches []Match
	if !state.cfg.RunsOnly && total > 0 {
		matches = make([]Match, 0, total)
		for _, run := range runs {
			matches = append(matches, run...)
		}
	}

	// A delivery redirected mid-descent is one extra overlay message
	// (owner → serving replica), and that destination's data arrives one
	// hop after the owner received the query. Shortcut-routed deliveries
	// address the serving replica directly and add neither.
	delay := metrics.Delay
	if state.redirectDepth > delay {
		delay = state.redirectDepth
	}
	return &RangeResult{
		Matches:      matches,
		Runs:         runs,
		Destinations: unique,
		Next:         next,
		Stats: Stats{
			Delay:         delay,
			Messages:      metrics.Messages + state.redirectMsgs,
			DestPeers:     len(unique),
			Subregions:    subregions,
			Deliveries:    len(state.dests),
			ReplicaServed: state.replicaServed,
		},
	}
}

func log2(x float64) float64 { return math.Log2(x) }
