// Package core implements Armada's query processing — the paper's primary
// contribution. One pruned descent of the issuer's forward routing tree
// (FRT) drives all three query types:
//
//   - PIRA (single-attribute range queries, Section 4.2): the query
//     [LowV, HighV] becomes the Kautz region ⟨LowT, HighT⟩; the region is
//     split into at most three subregions with common first symbols; each
//     descends the FRT, forwarding to an out-neighbor exactly when the
//     subregion still contains a string with the child's eventual prefix.
//   - MIRA (multi-attribute range queries, Section 5): the same descent over
//     ⟨Multiple_hash(ω1), Multiple_hash(ω2)⟩ with one extra pruning
//     predicate — a child is forwarded only while the partition-tree
//     subspace of its eventual prefix intersects the real query box Ω.
//   - Exact-match lookup (FISSIONE routing): the degenerate region ⟨T, T⟩.
//
// The descent starts at the query issuer (no preliminary DHT routing), so a
// query's delay is bounded by the issuer's identifier length: less than
// 2·log₂N hops always and less than log₂N on average — the delay-bounded
// property the paper is named for.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
	"armada/internal/simnet"
)

// Mode selects the execution engine for a query.
type Mode int

// Execution modes. Sync runs the deterministic single-threaded engine used
// by the experiments; Async runs one goroutine per peer. The zero Mode is
// treated as Sync.
const (
	Sync Mode = iota + 1
	Async
)

// Errors returned by the engine.
var (
	ErrNoTree      = errors.New("core: engine has no naming tree; range queries unavailable")
	ErrNoSuchPeer  = errors.New("core: issuer is not a peer")
	ErrKMismatch   = errors.New("core: naming tree depth must equal the network's ObjectID length")
	ErrBadObjectID = errors.New("core: ObjectID must be a Kautz string of the network's length k")
)

// Engine executes Armada queries over a FISSIONE network. The engine holds
// no per-query state: every query carries its own configuration, so any
// number of queries — traced or not, sync or async — may run concurrently.
// The network topology must not be mutated while a query is in flight.
type Engine struct {
	net  *fissione.Network
	tree *naming.Tree
}

// TraceFunc observes one descent hop. from is the processing peer, to the
// forward's target; deliveries report to == from with remaining == 0. A
// trace function passed to an Async query must be safe for concurrent use.
type TraceFunc func(from, to kautz.Str, depth, remaining int)

// QueryConfig is the per-query execution configuration. The zero value runs
// a plain synchronous query.
type QueryConfig struct {
	// Mode selects the execution engine (zero means Sync).
	Mode Mode
	// Trace, when non-nil, observes every hop of the descent.
	Trace TraceFunc
	// OnMatch, when non-nil, receives each matching object as its
	// destination peer delivers it — before the final sorted result is
	// assembled. Under Async mode it may be called concurrently.
	OnMatch func(Match)
}

// QueryOption adjusts one query's configuration.
type QueryOption func(*QueryConfig)

// WithMode selects the execution engine for this query.
func WithMode(m Mode) QueryOption { return func(c *QueryConfig) { c.Mode = m } }

// WithTrace installs a hop observer for this query.
func WithTrace(f TraceFunc) QueryOption { return func(c *QueryConfig) { c.Trace = f } }

// WithOnMatch installs a streaming match observer for this query.
func WithOnMatch(f func(Match)) QueryOption { return func(c *QueryConfig) { c.OnMatch = f } }

func buildQueryConfig(opts []QueryOption) QueryConfig {
	var cfg QueryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// New creates an engine. tree may be nil for an exact-match-only engine;
// otherwise its depth must equal the network's ObjectID length.
func New(net *fissione.Network, tree *naming.Tree) (*Engine, error) {
	if tree != nil && tree.K() != net.K() {
		return nil, fmt.Errorf("%w: tree k=%d, network k=%d", ErrKMismatch, tree.K(), net.K())
	}
	return &Engine{net: net, tree: tree}, nil
}

// Tree returns the engine's naming tree (nil for exact-match-only engines).
func (e *Engine) Tree() *naming.Tree { return e.tree }

// Network returns the underlying FISSIONE network.
func (e *Engine) Network() *fissione.Network { return e.net }

// Stats are the cost metrics of one executed query, in the paper's units.
type Stats struct {
	// Delay is the number of hops until the last destination peer received
	// the query.
	Delay int
	// Messages is the total number of overlay messages the query produced.
	Messages int
	// DestPeers is the number of distinct destination peers that intersect
	// the query ("Destpeers" in Section 4.3.3).
	DestPeers int
	// Subregions is how many common-prefix subregions the query's Kautz
	// region was split into (1 to 3).
	Subregions int
	// Deliveries counts destination arrivals including any duplicates; it
	// equals DestPeers when each destination is reached exactly once.
	Deliveries int
}

// MesgRatio is Messages/Destpeers, the paper's per-destination message
// cost.
func (s Stats) MesgRatio() float64 {
	if s.DestPeers == 0 {
		return 0
	}
	return float64(s.Messages) / float64(s.DestPeers)
}

// IncreRatio is (Messages − log₂N)/(Destpeers − 1) for a network of n
// peers: the marginal messages per additional destination, excluding the
// roughly log₂N cost of reaching the first.
func (s Stats) IncreRatio(networkSize int) float64 {
	if s.DestPeers <= 1 {
		return 0
	}
	return (float64(s.Messages) - log2(float64(networkSize))) / float64(s.DestPeers-1)
}

// Match is one object satisfying a query.
type Match struct {
	ObjectID kautz.Str
	Name     string
	Values   []float64
	Peer     kautz.Str
}

// RangeResult is the outcome of a range query.
type RangeResult struct {
	// Matches lists the objects whose attribute values satisfy the query,
	// in ascending (ObjectID, Name) order.
	Matches []Match
	// Destinations lists the distinct destination peers, ascending.
	Destinations []kautz.Str
	// Stats carries the query's cost metrics.
	Stats Stats
}

// queryMsg is the payload carried by one descent message.
type queryMsg struct {
	region kautz.Region
	h      int // remaining hops to the destination level
}

// queryState accumulates results across a query's messages; handlers may
// run concurrently in Async mode.
type queryState struct {
	mu      sync.Mutex
	box     *naming.Box
	cfg     QueryConfig
	matches []Match
	dests   []kautz.Str
}

// RangeQuery executes a range query issued by the given peer: PIRA when the
// engine's naming tree has one attribute, MIRA otherwise. lo and hi carry
// one bound per attribute. Cancelling ctx aborts the descent and returns
// ctx's error.
func (e *Engine) RangeQuery(ctx context.Context, issuer kautz.Str, lo, hi []float64, opts ...QueryOption) (*RangeResult, error) {
	if e.tree == nil {
		return nil, ErrNoTree
	}
	box, err := e.tree.NewBox(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("core: range query bounds: %w", err)
	}
	region, err := e.tree.QueryRegion(box)
	if err != nil {
		return nil, fmt.Errorf("core: range query region: %w", err)
	}
	return e.descend(ctx, issuer, region, &box, buildQueryConfig(opts))
}

// LookupResult is the outcome of an exact-match lookup.
type LookupResult struct {
	Owner   kautz.Str
	Objects []fissione.Object
	Stats   Stats
}

// Lookup routes from the issuer to the peer owning objectID — FISSIONE's
// exact-match query, executed as the degenerate range ⟨objectID, objectID⟩
// — and returns the objects published under it.
func (e *Engine) Lookup(ctx context.Context, issuer kautz.Str, objectID kautz.Str, opts ...QueryOption) (*LookupResult, error) {
	if len(objectID) != e.net.K() || !kautz.Valid(objectID) {
		return nil, fmt.Errorf("%w: %q", ErrBadObjectID, objectID)
	}
	region, err := kautz.NewRegion(objectID, objectID)
	if err != nil {
		return nil, err
	}
	res, err := e.descend(ctx, issuer, region, nil, buildQueryConfig(opts))
	if err != nil {
		return nil, err
	}
	out := &LookupResult{Stats: res.Stats}
	if len(res.Destinations) > 0 {
		out.Owner = res.Destinations[0]
	}
	for _, m := range res.Matches {
		out.Objects = append(out.Objects, fissione.Object{Name: m.Name, Values: m.Values})
	}
	return out, nil
}

// descend runs the pruned FRT search from the issuer over the query region,
// additionally pruning with the box's subspace predicate when box is
// non-nil. The per-query cfg selects the execution mode and observers.
func (e *Engine) descend(ctx context.Context, issuer kautz.Str, region kautz.Region, box *naming.Box, cfg QueryConfig) (*RangeResult, error) {
	if _, ok := e.net.Peer(issuer); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, issuer)
	}
	state := &queryState{box: box, cfg: cfg}
	parts := region.SplitByFirstSymbol()

	seeds := make([]simnet.Message, 0, len(parts))
	for _, part := range parts {
		comT := part.CommonPrefix()
		f := kautz.OverlapSuffixPrefix(issuer, comT)
		seeds = append(seeds, simnet.Message{
			To:      string(issuer),
			Payload: queryMsg{region: part, h: len(issuer) - f},
		})
	}

	handle := func(m simnet.Message) []simnet.Message { return e.step(state, m) }

	metrics, err := e.run(ctx, cfg, seeds, handle)
	if err != nil {
		return nil, err
	}

	return state.result(metrics, len(parts)), nil
}

// run executes one set of seed messages on the engine selected by the
// query's configuration.
func (e *Engine) run(ctx context.Context, cfg QueryConfig, seeds []simnet.Message, handle simnet.Handler) (simnet.Metrics, error) {
	var (
		metrics simnet.Metrics
		err     error
	)
	if cfg.Mode == Async {
		ids := e.net.PeerIDs()
		strIDs := make([]string, len(ids))
		for i, id := range ids {
			strIDs[i] = string(id)
		}
		metrics, err = simnet.RunAsync(ctx, strIDs, seeds, handle)
	} else {
		metrics, err = simnet.RunSync(ctx, seeds, handle)
	}
	if err != nil {
		return metrics, fmt.Errorf("core: query aborted: %w", err)
	}
	return metrics, nil
}

// step processes one descent message at its destination peer and returns
// the forwards. It is safe for concurrent use.
func (e *Engine) step(state *queryState, m simnet.Message) []simnet.Message {
	qm, ok := m.Payload.(queryMsg)
	if !ok {
		return nil
	}
	peer, ok := e.net.Peer(kautz.Str(m.To))
	if !ok {
		return nil
	}
	if qm.h == 0 {
		if state.cfg.Trace != nil {
			state.cfg.Trace(peer.ID(), peer.ID(), m.Depth, 0)
		}
		state.deliver(peer, qm.region)
		return nil
	}
	var fwd []simnet.Message
	for _, c := range peer.Out() {
		ep := c.Drop(qm.h - 1) // the child's eventual prefix at the destination level
		if !qm.region.ContainsPrefix(ep) {
			continue
		}
		if state.box != nil && !e.prefixIntersectsBox(ep, *state.box) {
			continue
		}
		if state.cfg.Trace != nil {
			state.cfg.Trace(peer.ID(), c, m.Depth, qm.h-1)
		}
		fwd = append(fwd, simnet.Message{To: string(c), Payload: queryMsg{region: qm.region, h: qm.h - 1}})
	}
	return fwd
}

// prefixIntersectsBox applies MIRA's subspace predicate, truncating
// prefixes that exceed the tree depth.
func (e *Engine) prefixIntersectsBox(prefix kautz.Str, box naming.Box) bool {
	if len(prefix) > e.tree.K() {
		prefix = prefix[:e.tree.K()]
	}
	ok, err := e.tree.IntersectsPrefix(prefix, box)
	return err == nil && ok
}

// deliver records the peer as a destination and collects its matching
// objects, notifying the query's OnMatch observer outside the state lock.
func (state *queryState) deliver(peer *fissione.Peer, region kautz.Region) {
	stored := peer.ObjectsInRegion(region)
	var delivered []Match
	state.mu.Lock()
	state.dests = append(state.dests, peer.ID())
	for _, so := range stored {
		if state.box != nil {
			if len(so.Object.Values) != len(state.box.Lo) || !state.box.Contains(so.Object.Values) {
				continue
			}
		}
		m := Match{
			ObjectID: so.ObjectID,
			Name:     so.Object.Name,
			Values:   append([]float64(nil), so.Object.Values...),
			Peer:     peer.ID(),
		}
		state.matches = append(state.matches, m)
		if state.cfg.OnMatch != nil {
			delivered = append(delivered, m)
		}
	}
	state.mu.Unlock()
	for _, m := range delivered {
		state.cfg.OnMatch(m)
	}
}

// result assembles the final RangeResult.
func (state *queryState) result(metrics simnet.Metrics, subregions int) *RangeResult {
	state.mu.Lock()
	defer state.mu.Unlock()

	dests := append([]kautz.Str(nil), state.dests...)
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	unique := dests[:0]
	for i, d := range dests {
		if i == 0 || d != dests[i-1] {
			unique = append(unique, d)
		}
	}

	matches := append([]Match(nil), state.matches...)
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].ObjectID != matches[j].ObjectID {
			return matches[i].ObjectID < matches[j].ObjectID
		}
		return matches[i].Name < matches[j].Name
	})

	return &RangeResult{
		Matches:      matches,
		Destinations: unique,
		Stats: Stats{
			Delay:      metrics.Delay,
			Messages:   metrics.Messages,
			DestPeers:  len(unique),
			Subregions: subregions,
			Deliveries: len(state.dests),
		},
	}
}

func log2(x float64) float64 { return math.Log2(x) }
