package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
)

const testK = 24

// buildSingle creates a random network with a single-attribute tree over
// [0,1000] and publishes count objects at uniform values.
func buildSingle(t *testing.T, size, count int, seed int64) (*Engine, []fissione.Object) {
	t.Helper()
	net, err := fissione.BuildRandom(testK, size, seed)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := naming.NewSingleTree(testK, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	objs := make([]fissione.Object, count)
	for i := range objs {
		v := rng.Float64() * 1000
		objs[i] = fissione.Object{Name: objName(i), Values: []float64{v}}
		oid, err := tree.Hash(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.PublishAt(oid, objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return eng, objs
}

func objName(i int) string {
	return "obj-" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i%10))
}

func TestNewValidatesK(t *testing.T) {
	net, err := fissione.New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := naming.NewSingleTree(12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, tree); err == nil {
		t.Error("mismatched k accepted")
	}
	if _, err := New(net, nil); err != nil {
		t.Errorf("nil tree rejected: %v", err)
	}
}

func TestRangeQueryRequiresTree(t *testing.T) {
	net, err := fissione.New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RangeQuery(context.Background(), "0", []float64{1}, []float64{2}); err == nil {
		t.Error("range query without tree accepted")
	}
}

func TestRangeQueryUnknownIssuer(t *testing.T) {
	eng, _ := buildSingle(t, 16, 0, 5)
	if _, err := eng.RangeQuery(context.Background(), "01010101", []float64{0}, []float64{10}); err == nil {
		t.Error("unknown issuer accepted")
	}
}

// PIRA completeness: the query returns exactly the objects a brute-force
// scan finds, for many random networks, issuers and ranges.
func TestPIRACompleteness(t *testing.T) {
	for _, size := range []int{8, 50, 200} {
		eng, objs := buildSingle(t, size, 300, int64(size))
		rng := rand.New(rand.NewSource(int64(size) * 7))
		for trial := 0; trial < 40; trial++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*(1000-lo)
			issuer := eng.Network().RandomPeer(rng)
			res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{hi})
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string]bool)
			for _, o := range objs {
				if o.Values[0] >= lo && o.Values[0] <= hi {
					want[o.Name] = true
				}
			}
			if len(res.Matches) != len(want) {
				t.Fatalf("N=%d [%f,%f]: got %d matches, want %d", size, lo, hi, len(res.Matches), len(want))
			}
			for _, m := range res.Matches {
				if !want[m.Name] {
					t.Fatalf("N=%d: unexpected match %q (value %v)", size, m.Name, m.Values)
				}
			}
		}
	}
}

// Destinations must be exactly the peers whose regions intersect the query
// region, each reached exactly once.
func TestPIRADestinationsExact(t *testing.T) {
	eng, _ := buildSingle(t, 120, 0, 77)
	rng := rand.New(rand.NewSource(78))
	tree := eng.Tree()
	for trial := 0; trial < 60; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*(1000-lo)
		box, err := tree.NewBox([]float64{lo}, []float64{hi})
		if err != nil {
			t.Fatal(err)
		}
		region, err := tree.QueryRegion(box)
		if err != nil {
			t.Fatal(err)
		}
		issuer := eng.Network().RandomPeer(rng)
		res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{hi})
		if err != nil {
			t.Fatal(err)
		}
		want := eng.Network().PeersIntersectingRegion(region)
		if len(res.Destinations) != len(want) {
			t.Fatalf("destinations %v, want %v", res.Destinations, want)
		}
		for i := range want {
			if res.Destinations[i] != want[i] {
				t.Fatalf("destinations %v, want %v", res.Destinations, want)
			}
		}
		if res.Stats.Deliveries != res.Stats.DestPeers {
			t.Fatalf("duplicate deliveries: %d deliveries for %d destinations",
				res.Stats.Deliveries, res.Stats.DestPeers)
		}
	}
}

// Section 4.3.2: the maximum query delay is below 2·log₂N hops and the
// average below log₂N, independent of range size.
func TestPIRADelayBound(t *testing.T) {
	for _, size := range []int{100, 400, 1000} {
		eng, _ := buildSingle(t, size, 0, int64(size)+3)
		rng := rand.New(rand.NewSource(int64(size) + 4))
		logN := math.Log2(float64(size))
		totalDelay := 0.0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			width := []float64{2, 20, 200, 900}[trial%4]
			lo := rng.Float64() * (1000 - width)
			issuer := eng.Network().RandomPeer(rng)
			res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{lo + width})
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.Stats.Delay) >= 2*logN {
				t.Fatalf("N=%d: delay %d ≥ 2logN = %.1f", size, res.Stats.Delay, 2*logN)
			}
			if res.Stats.Delay > len(issuer) {
				t.Fatalf("delay %d exceeds issuer ID length %d", res.Stats.Delay, len(issuer))
			}
			totalDelay += float64(res.Stats.Delay)
		}
		if avg := totalDelay / trials; avg >= logN {
			t.Errorf("N=%d: average delay %.2f ≥ logN = %.2f", size, avg, logN)
		}
	}
}

// Section 4.3.2: average message cost ≈ logN + 2n − 2. We verify the shape:
// the per-destination marginal cost (IncreRatio) stays near 2.
func TestPIRAMessageCost(t *testing.T) {
	eng, _ := buildSingle(t, 500, 0, 91)
	rng := rand.New(rand.NewSource(92))
	var sumIncre, samples float64
	for trial := 0; trial < 150; trial++ {
		lo := rng.Float64() * 900
		issuer := eng.Network().RandomPeer(rng)
		res, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{lo + 100})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DestPeers > 1 {
			sumIncre += res.Stats.IncreRatio(eng.Network().Size())
			samples++
		}
	}
	if avg := sumIncre / samples; avg < 1.0 || avg > 2.6 {
		t.Errorf("average IncreRatio = %.2f, want ≈ 2 (paper's bound)", avg)
	}
}

// A full-space query must reach every peer.
func TestPIRAFullSpaceQuery(t *testing.T) {
	eng, objs := buildSingle(t, 60, 100, 101)
	issuer := eng.Network().RandomPeer(nil)
	res, err := eng.RangeQuery(context.Background(), issuer, []float64{0}, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DestPeers != eng.Network().Size() {
		t.Fatalf("full query hit %d/%d peers", res.Stats.DestPeers, eng.Network().Size())
	}
	if len(res.Matches) != len(objs) {
		t.Fatalf("full query found %d/%d objects", len(res.Matches), len(objs))
	}
	if res.Stats.Subregions != 3 {
		t.Fatalf("full query split into %d subregions, want 3", res.Stats.Subregions)
	}
}

// A point query behaves like a lookup: exactly one destination.
func TestPIRAPointQuery(t *testing.T) {
	eng, _ := buildSingle(t, 80, 0, 103)
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 30; trial++ {
		v := rng.Float64() * 1000
		issuer := eng.Network().RandomPeer(rng)
		res, err := eng.RangeQuery(context.Background(), issuer, []float64{v}, []float64{v})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DestPeers != 1 {
			t.Fatalf("point query hit %d peers", res.Stats.DestPeers)
		}
	}
}

func TestLookup(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 150, 111)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 60; trial++ {
		oid := kautz.Hash(objName(trial), testK)
		wantOwner, err := net.OwnerOf(oid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.PublishAt(oid, fissione.Object{Name: objName(trial)}); err != nil {
			t.Fatal(err)
		}
		issuer := net.RandomPeer(rng)
		res, err := eng.Lookup(context.Background(), issuer, oid)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != wantOwner {
			t.Fatalf("lookup owner %q, want %q", res.Owner, wantOwner)
		}
		found := false
		for _, o := range res.Objects {
			if o.Name == objName(trial) {
				found = true
			}
		}
		if !found {
			t.Fatalf("lookup did not return object %q", objName(trial))
		}
		if res.Stats.Delay > len(issuer) {
			t.Fatalf("lookup delay %d > issuer length %d", res.Stats.Delay, len(issuer))
		}
		if res.Stats.DestPeers != 1 {
			t.Fatalf("lookup hit %d peers", res.Stats.DestPeers)
		}
	}
}

func TestLookupRejectsBadObjectID(t *testing.T) {
	net, err := fissione.New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Lookup(context.Background(), "0", "0101"); err == nil {
		t.Error("short ObjectID accepted")
	}
}

// Issuing a query from the peer that owns the whole region must cost zero
// messages.
func TestQueryFromOwningPeer(t *testing.T) {
	eng, _ := buildSingle(t, 100, 0, 121)
	// Find a peer and query a tiny range strictly inside its own region.
	id := eng.Network().PeerIDs()[10]
	iv, err := eng.Tree().Subspace(id)
	if err != nil {
		t.Fatal(err)
	}
	mid := (iv[0].Low + iv[0].High) / 2
	res, err := eng.RangeQuery(context.Background(), id, []float64{mid}, []float64{mid})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 || res.Stats.Delay != 0 {
		t.Fatalf("self-owned query stats = %+v, want zero cost", res.Stats)
	}
	if res.Stats.DestPeers != 1 || res.Destinations[0] != id {
		t.Fatalf("self-owned query destinations = %v", res.Destinations)
	}
}

// MIRA completeness on multi-attribute data against a brute-force oracle.
func TestMIRACompleteness(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 150, 131)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := naming.NewTree(testK, naming.Space{Low: 0, High: 100}, naming.Space{Low: 0, High: 10})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(132))
	type rec struct {
		name string
		v    [2]float64
	}
	var objs []rec
	for i := 0; i < 400; i++ {
		r := rec{name: objName(i), v: [2]float64{rng.Float64() * 100, rng.Float64() * 10}}
		objs = append(objs, r)
		oid, err := tree.Hash(r.v[0], r.v[1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.PublishAt(oid, fissione.Object{Name: r.name, Values: []float64{r.v[0], r.v[1]}}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 40; trial++ {
		lo := []float64{rng.Float64() * 100, rng.Float64() * 10}
		hi := []float64{lo[0] + rng.Float64()*(100-lo[0]), lo[1] + rng.Float64()*(10-lo[1])}
		issuer := net.RandomPeer(rng)
		res, err := eng.RangeQuery(context.Background(), issuer, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[string]bool)
		for _, o := range objs {
			if o.v[0] >= lo[0] && o.v[0] <= hi[0] && o.v[1] >= lo[1] && o.v[1] <= hi[1] {
				want[o.name] = true
			}
		}
		if len(res.Matches) != len(want) {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(res.Matches), len(want))
		}
		for _, m := range res.Matches {
			if !want[m.Name] {
				t.Fatalf("unexpected match %q", m.Name)
			}
		}
		logN := math.Log2(float64(net.Size()))
		if float64(res.Stats.Delay) >= 2*logN {
			t.Fatalf("MIRA delay %d ≥ 2logN %.1f", res.Stats.Delay, 2*logN)
		}
	}
}

// MIRA's delay is bounded like PIRA's (Section 5), and its average stays
// below logN.
func TestMIRADelayBound(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 600, 141)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := naming.NewTree(testK, naming.Space{Low: 0, High: 1}, naming.Space{Low: 0, High: 1}, naming.Space{Low: 0, High: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(142))
	logN := math.Log2(float64(net.Size()))
	total := 0.0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		lo := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		hi := []float64{
			lo[0] + rng.Float64()*(1-lo[0]),
			lo[1] + rng.Float64()*(1-lo[1]),
			lo[2] + rng.Float64()*(1-lo[2]),
		}
		issuer := net.RandomPeer(rng)
		res, err := eng.RangeQuery(context.Background(), issuer, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Stats.Delay) >= 2*logN {
			t.Fatalf("delay %d ≥ 2logN %.2f", res.Stats.Delay, 2*logN)
		}
		total += float64(res.Stats.Delay)
	}
	if avg := total / trials; avg >= logN {
		t.Errorf("average MIRA delay %.2f ≥ logN %.2f", avg, logN)
	}
}

// The async goroutine-per-peer engine returns identical results and metrics
// to the synchronous engine.
func TestAsyncMatchesSync(t *testing.T) {
	eng, _ := buildSingle(t, 200, 400, 151)
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 15; trial++ {
		lo := rng.Float64() * 800
		hi := lo + rng.Float64()*(1000-lo)
		issuer := eng.Network().RandomPeer(rng)

		syncRes, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{hi})
		if err != nil {
			t.Fatal(err)
		}
		asyncRes, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{hi}, WithMode(Async))
		if err != nil {
			t.Fatal(err)
		}
		if syncRes.Stats != asyncRes.Stats {
			t.Fatalf("stats differ: sync %+v async %+v", syncRes.Stats, asyncRes.Stats)
		}
		if len(syncRes.Matches) != len(asyncRes.Matches) {
			t.Fatalf("matches differ: %d vs %d", len(syncRes.Matches), len(asyncRes.Matches))
		}
		for i := range syncRes.Matches {
			a, b := syncRes.Matches[i], asyncRes.Matches[i]
			if a.Name != b.Name || a.ObjectID != b.ObjectID || a.Peer != b.Peer {
				t.Fatalf("match %d differs: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{Messages: 24, DestPeers: 10}
	if got := s.MesgRatio(); got != 2.4 {
		t.Errorf("MesgRatio = %v", got)
	}
	if got := (Stats{}).MesgRatio(); got != 0 {
		t.Errorf("empty MesgRatio = %v", got)
	}
	// IncreRatio with N=1024: (24 - 10) / 9.
	if got := s.IncreRatio(1024); math.Abs(got-14.0/9) > 1e-12 {
		t.Errorf("IncreRatio = %v", got)
	}
	if got := (Stats{DestPeers: 1}).IncreRatio(1024); got != 0 {
		t.Errorf("single-dest IncreRatio = %v", got)
	}
}
