package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"armada/internal/fissione"
	"armada/internal/kautz"
)

// Section 3 of the paper: FISSIONE's average routing delay is below log₂N
// and its diameter below 2·log₂N. Exact-match routing here is the
// degenerate PIRA descent, so this also pins the engine's base cost.
func TestRoutingDelay(t *testing.T) {
	for _, size := range []int{200, 1000, 4000} {
		net, err := fissione.BuildRandom(testK, size, int64(size)+211)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(size) + 212))
		logN := math.Log2(float64(size))
		total := 0.0
		const trials = 300
		for i := 0; i < trials; i++ {
			oid := kautz.Random(rng, testK)
			res, err := eng.Lookup(context.Background(), net.RandomPeer(rng), oid)
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.Stats.Delay) >= 2*logN {
				t.Fatalf("N=%d: routing delay %d ≥ 2logN %.1f", size, res.Stats.Delay, 2*logN)
			}
			total += float64(res.Stats.Delay)
		}
		if avg := total / trials; avg >= logN {
			t.Errorf("N=%d: average routing delay %.2f ≥ logN %.2f", size, avg, logN)
		}
	}
}

// Routing from every peer to a fixed object always lands on the same owner.
func TestRoutingConverges(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 80, 221)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	oid := kautz.Hash("convergence-probe", testK)
	want, err := net.OwnerOf(oid)
	if err != nil {
		t.Fatal(err)
	}
	for _, issuer := range net.PeerIDs() {
		res, err := eng.Lookup(context.Background(), issuer, oid)
		if err != nil {
			t.Fatalf("lookup from %q: %v", issuer, err)
		}
		if res.Owner != want {
			t.Fatalf("lookup from %q reached %q, want %q", issuer, res.Owner, want)
		}
	}
}

// The delay of a query equals b − f per subregion: issuing a query whose
// targets share a long suffix of the issuer's identifier must be cheaper
// than from an unrelated issuer.
func TestOverlapShortensRoutes(t *testing.T) {
	net, err := fissione.BuildRandom(testK, 500, 231)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(232))
	better, worse := 0, 0
	for i := 0; i < 200; i++ {
		issuer := net.RandomPeer(rng)
		// Object whose ID extends the issuer's own identifier: f is maximal,
		// so the route length is at most |issuer| − f = 0 extra shifts plus
		// the appended part.
		aligned := kautz.MaxExtend(issuer, testK)
		resAligned, err := eng.Lookup(context.Background(), issuer, aligned)
		if err != nil {
			t.Fatal(err)
		}
		random := kautz.Random(rng, testK)
		resRandom, err := eng.Lookup(context.Background(), issuer, random)
		if err != nil {
			t.Fatal(err)
		}
		if resAligned.Stats.Delay == 0 {
			better++
		}
		if resRandom.Stats.Delay >= resAligned.Stats.Delay {
			worse++
		}
	}
	if better != 200 {
		t.Errorf("aligned lookups free in %d/200 cases (f = b must zero the route)", better)
	}
	if worse < 190 {
		t.Errorf("random lookups at least as long as aligned in only %d/200 cases", worse)
	}
}
