package core

import (
	"context"
	"fmt"
	"sort"

	"armada/internal/kautz"
	"armada/internal/simnet"
)

// This file implements two extensions beyond the paper's evaluation:
//
//   - TopK: the top-k query named as future work in the paper's Section 6,
//     built as a pruned descent that enters the queried region from its high
//     end and stops spawning branches once k matches are known.
//   - FloodQuery: an ablation that disables PIRA's pruning predicate,
//     quantifying how much of Armada's message efficiency comes from
//     pruning rather than from the FRT shape itself.

// TopKResult is the outcome of a top-k query.
type TopKResult struct {
	// Matches holds at most k objects with the largest first-attribute
	// values within the queried range, descending.
	Matches []Match
	Stats   Stats
}

// TopK returns up to k objects with the highest attribute-0 values in
// [lo, hi], issued by the given peer. The descent walks the region's
// subregions from the high end and short-circuits once k matches have been
// collected from regions that can only hold larger values than those
// remaining; the delay bound is PIRA's. Cancelling ctx aborts the descent.
// The subregion walk is inherently sequential (each short-circuits the
// next), so top-k always runs the deterministic synchronous engine and
// ignores WithMode.
func (e *Engine) TopK(ctx context.Context, issuer kautz.Str, lo, hi []float64, k int, opts ...QueryOption) (*TopKResult, error) {
	if e.tree == nil {
		return nil, ErrNoTree
	}
	if k < 1 {
		return nil, fmt.Errorf("core: top-k needs k ≥ 1, got %d", k)
	}
	cfg := buildQueryConfig(opts)
	if cfg.Limit > 0 || cfg.After != "" {
		return nil, fmt.Errorf("core: top-k does not paginate; its result cap is k")
	}
	box, err := e.tree.NewBox(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("core: top-k bounds: %w", err)
	}
	region, err := e.tree.QueryRegion(box)
	if err != nil {
		return nil, fmt.Errorf("core: top-k region: %w", err)
	}
	if _, ok := e.net.Peer(issuer); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, issuer)
	}

	state := &queryState{box: &box, cfg: cfg}
	// Process subregions from the high end: once a subregion yields k
	// matches, lower subregions cannot contribute to the top k (the naming
	// is order-preserving, so higher regions hold higher values).
	parts := region.SplitByFirstSymbol()
	var metrics simnet.Metrics
	ran := 0
	for i := len(parts) - 1; i >= 0; i-- {
		part := parts[i]
		f := kautz.OverlapSuffixPrefix(issuer, part.CommonPrefix())
		seed := simnet.Message{To: string(issuer), Payload: queryMsg{region: part, h: len(issuer) - f}}
		m, err := simnet.RunSync(ctx, []simnet.Message{seed}, e.countScheduled(func(msg simnet.Message) []simnet.Message {
			return e.step(state, msg)
		}))
		if err != nil {
			return nil, fmt.Errorf("core: query aborted: %w", err)
		}
		metrics = simnet.MergeMetrics(metrics, m)
		ran++
		state.mu.Lock()
		enough := state.nmatches >= k
		state.mu.Unlock()
		if enough {
			break
		}
	}

	res := state.result(metrics, ran)
	e.metrics.note(res.Stats, false)
	matches := res.Matches
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Values[0] != matches[j].Values[0] {
			return matches[i].Values[0] > matches[j].Values[0]
		}
		return matches[i].Name < matches[j].Name
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return &TopKResult{Matches: matches, Stats: res.Stats}, nil
}

// FloodQuery executes the range query without PIRA's pruning predicate:
// every peer forwards to all of its out-neighbors until the destination
// level, and matching happens only at delivery. It returns the same result
// set as RangeQuery at a much higher message cost; it exists to measure the
// value of pruning and must not be used for real queries.
func (e *Engine) FloodQuery(ctx context.Context, issuer kautz.Str, lo, hi []float64, opts ...QueryOption) (*RangeResult, error) {
	if e.tree == nil {
		return nil, ErrNoTree
	}
	box, err := e.tree.NewBox(lo, hi)
	if err != nil {
		return nil, err
	}
	region, err := e.tree.QueryRegion(box)
	if err != nil {
		return nil, err
	}
	if _, ok := e.net.Peer(issuer); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, issuer)
	}
	cfg := buildQueryConfig(opts)
	region, ok := clipRegionAfter(region, cfg.After)
	if !ok {
		return &RangeResult{}, nil
	}
	state := &queryState{box: &box, cfg: cfg}
	parts := region.SplitByFirstSymbol()
	seeds := make([]simnet.Message, 0, len(parts))
	for _, part := range parts {
		f := kautz.OverlapSuffixPrefix(issuer, part.CommonPrefix())
		seeds = append(seeds, simnet.Message{
			To:      string(issuer),
			Payload: queryMsg{region: part, h: len(issuer) - f},
		})
	}
	handle := func(m simnet.Message) []simnet.Message {
		qm, ok := m.Payload.(queryMsg)
		if !ok {
			return nil
		}
		peer, ok := e.net.Peer(kautz.Str(m.To))
		if !ok {
			return nil
		}
		if qm.h == 0 {
			// Deliver only where the region predicate holds, so results and
			// destination counts stay comparable with RangeQuery.
			if qm.region.ContainsPrefix(peer.ID()) {
				e.deliver(state, peer, qm.region, m.Depth)
			}
			return nil
		}
		fwd := make([]simnet.Message, 0, len(peer.Out()))
		for _, c := range peer.Out() {
			if cfg.Trace != nil {
				cfg.Trace(HopForward, peer.ID(), c, m.Depth, qm.h-1)
			}
			fwd = append(fwd, simnet.Message{To: string(c), Payload: queryMsg{region: qm.region, h: qm.h - 1}})
		}
		return fwd
	}
	metrics, err := e.run(ctx, cfg, seeds, handle)
	if err != nil {
		return nil, err
	}
	res := state.result(metrics, len(parts))
	e.metrics.note(res.Stats, false)
	return res, nil
}
