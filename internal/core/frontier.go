package core

import (
	"context"
	"fmt"

	"armada/internal/kautz"
	"armada/internal/naming"
	"armada/internal/simnet"
)

// Descent frontiers.
//
// A range query's dominant fixed cost is the route-to-region descent:
// ~log N messages spent walking the issuer's forward routing tree before
// the first destination peer is reached. A paged walk re-pays that cost on
// every page, and a hot range re-pays it on every repetition, even though
// the destination set is identical each time. A Frontier captures the
// outcome of one descent — the destination peers and the subregion each
// one was delivered — so a later query over a covered region can seed
// itself directly at the surviving destinations: one overlay message per
// destination instead of a fresh descent.
//
// Correctness is epoch-based, never best-effort: a frontier records the
// fissione topology epoch it was captured at, and seeding is refused the
// moment the live epoch differs (any split, departure, crash or
// replication change bumps it). A refused frontier simply falls back to
// the full pruned descent — a stale frontier can cost messages, never
// results. Replica groups are re-resolved at delivery time (deliver →
// serveTarget), so read policies keep rotating replicas even on seeded
// deliveries.

// Frontier is the captured descent frontier of one range query: the
// topology epoch it was captured at, the (cursor-clipped) region the
// capture covered, and one entry per delivery. Values are immutable after
// capture; a Frontier may be shared by concurrent queries.
type Frontier struct {
	// Epoch is the fissione topology epoch at capture time. The frontier
	// seeds queries only while the network still reports the same epoch.
	Epoch uint64
	// Region is the query region the capture covered. The frontier can
	// seed any query whose (cursor-clipped) region it contains.
	Region kautz.Region
	// Lo and Hi are the attribute bounds the capturing query ran with.
	// The descent's box predicate prunes destinations outside them, so
	// the entries list only peers intersecting this box — a frontier may
	// therefore seed only queries whose bounds it contains (CoversBounds),
	// or a wider multi-attribute query would silently miss destinations
	// the capture never reached. (For single-attribute queries region
	// coverage already implies bounds coverage — the naming is
	// order-preserving — so this is belt over braces there.)
	Lo, Hi []float64
	// Entries lists the descent's deliveries: each destination peer and
	// the part of its own region the delivery covered. Entries follow
	// delivery order and may name one peer more than once (one entry per
	// delivered subregion, exactly as the descent produced them).
	Entries []FrontierEntry
}

// FrontierEntry is one captured delivery: the destination peer and the
// delivered region clipped to the peer's own region, so a cursor moving
// past the entry's High retires the peer from the walk.
type FrontierEntry struct {
	Peer   kautz.Str
	Region kautz.Region
}

// Covers reports whether the frontier's captured region contains r — the
// geometric half of seeding validity (the others are CoversBounds and the
// epoch check against the live network).
func (f *Frontier) Covers(r kautz.Region) bool {
	return f != nil && f.Region.Low <= r.Low && r.High <= f.Region.High
}

// CoversBounds reports whether the frontier's captured attribute bounds
// contain the query bounds [lo, hi] — required because the capture's
// descent pruned destinations outside its own box, so its entries cannot
// serve a wider one.
func (f *Frontier) CoversBounds(lo, hi []float64) bool {
	if f == nil || len(lo) != len(f.Lo) || len(hi) != len(f.Hi) {
		return false
	}
	for i := range lo {
		if lo[i] < f.Lo[i] || hi[i] > f.Hi[i] {
			return false
		}
	}
	return true
}

// frontierMsg is the seed payload of a frontier-seeded query: the issuer
// fans one direct message out to every surviving destination. Each fan-out
// hop is a real overlay message (the issuer addresses cached peers
// directly), counted and traced like any descent forward.
type frontierMsg struct {
	sends []FrontierEntry
}

// WithFrontier offers a captured frontier to seed this query. The engine
// uses it only when the frontier's epoch matches the network's topology
// epoch and its region covers the query's cursor-clipped region; otherwise
// the query descends in full as if no frontier were given. Range queries
// only — flood (an ablation of descent cost) and top-k ignore it.
func WithFrontier(f *Frontier) QueryOption { return func(c *QueryConfig) { c.Frontier = f } }

// WithCaptureFrontier records the descent frontier of this query into
// RangeResult.Frontier. Captures happen only on full descents: a query
// that was itself frontier-seeded returns no new frontier (the seed
// remains valid). Range queries only.
func WithCaptureFrontier() QueryOption { return func(c *QueryConfig) { c.CaptureFrontier = true } }

// PreparedRange is a range query's precomputed geometry — the box its
// bounds map to and the (unclipped) Kautz query region. RangeRegion
// produces it; WithPrepared hands it back to RangeQuery so the mapping is
// not paid twice when the caller needed the region anyway (frontier cache
// keying).
type PreparedRange struct {
	Box    naming.Box
	Region kautz.Region
}

// WithPrepared supplies RangeRegion's output to RangeQuery, skipping the
// recomputation of the query's box and region. The prepared geometry must
// come from the same bounds the query runs with.
func WithPrepared(p PreparedRange) QueryOption { return func(c *QueryConfig) { c.Prepared = &p } }

// RangeRegion maps range bounds onto their query geometry — the Kautz
// region is the key space of issuer-side frontier caching — along with
// the cursor-clipped region a query with After actually executes. ok is
// false when the cursor exhausts the region (the query's result is
// empty).
func (e *Engine) RangeRegion(lo, hi []float64, after kautz.Str) (prep PreparedRange, clipped kautz.Region, ok bool, err error) {
	if e.tree == nil {
		return PreparedRange{}, kautz.Region{}, false, ErrNoTree
	}
	prep.Box, err = e.tree.NewBox(lo, hi)
	if err != nil {
		return PreparedRange{}, kautz.Region{}, false, fmt.Errorf("core: range bounds: %w", err)
	}
	prep.Region, err = e.tree.QueryRegion(prep.Box)
	if err != nil {
		return PreparedRange{}, kautz.Region{}, false, fmt.Errorf("core: range region: %w", err)
	}
	clipped, ok = clipRegionAfter(prep.Region, after)
	return prep, clipped, ok, nil
}

// ownRegion is the namespace region peer id owns: every ObjectID it
// stores as primary lies in ⟨MinExtend(id), MaxExtend(id)⟩.
func (e *Engine) ownRegion(id kautz.Str) kautz.Region {
	return kautz.Region{Low: kautz.MinExtend(id, e.net.K()), High: kautz.MaxExtend(id, e.net.K())}
}

// frontierUsable reports whether f may seed a query over region with
// bounds [lo, hi] right now.
func (e *Engine) frontierUsable(f *Frontier, region kautz.Region, lo, hi []float64) bool {
	return f != nil && e.net.ValidEpoch(f.Epoch) && f.Covers(region) && f.CoversBounds(lo, hi)
}

// seedFromFrontier executes a range query over region by fanning out from
// the issuer directly to the frontier's surviving destinations — the
// entries whose regions still intersect the cursor-clipped region — and
// delivering there, skipping the route-to-region descent entirely. The
// result is byte-identical to a full descent's (deliveries scan the same
// clipped regions under the same box and cursor predicates); Stats differ
// only in cost: Messages is one per surviving destination (plus replica
// redirects), Delay is the single fan-out hop, Subregions is 0 (nothing
// was split) and DescentsSaved is 1.
func (e *Engine) seedFromFrontier(ctx context.Context, issuer kautz.Str, region kautz.Region, box *naming.Box, cfg QueryConfig, f *Frontier) (*RangeResult, error) {
	if _, ok := e.net.Peer(issuer); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, issuer)
	}
	sends := make([]FrontierEntry, 0, len(f.Entries))
	for _, en := range f.Entries {
		if r, ok := en.Region.Intersect(region); ok {
			sends = append(sends, FrontierEntry{Peer: en.Peer, Region: r})
		}
	}
	state := &queryState{box: box, cfg: cfg}
	seeds := []simnet.Message{{To: string(issuer), Payload: frontierMsg{sends: sends}}}
	metrics, err := e.run(ctx, cfg, seeds, func(m simnet.Message) []simnet.Message {
		return e.step(state, m)
	})
	if err != nil {
		return nil, err
	}
	res := state.result(metrics, 0)
	res.Stats.DescentsSaved = 1
	e.metrics.note(res.Stats, true)
	return res, nil
}
