package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"
)

func TestTopKReturnsHighestValues(t *testing.T) {
	eng, objs := buildSingle(t, 120, 500, 201)
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		lo := rng.Float64() * 500
		hi := lo + 100 + rng.Float64()*(1000-lo-100)
		k := 1 + rng.Intn(10)
		issuer := eng.Network().RandomPeer(rng)
		res, err := eng.TopK(context.Background(), issuer, []float64{lo}, []float64{hi}, k)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: sort in-range values descending, take k.
		var want []float64
		for _, o := range objs {
			if o.Values[0] >= lo && o.Values[0] <= hi {
				want = append(want, o.Values[0])
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if len(want) > k {
			want = want[:k]
		}
		if len(res.Matches) != len(want) {
			t.Fatalf("top-%d: got %d matches, want %d", k, len(res.Matches), len(want))
		}
		for i, m := range res.Matches {
			if m.Values[0] != want[i] {
				t.Fatalf("top-%d[%d] = %v, want %v", k, i, m.Values[0], want[i])
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	eng, _ := buildSingle(t, 16, 0, 203)
	if _, err := eng.TopK(context.Background(), eng.Network().PeerIDs()[0], []float64{0}, []float64{10}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := eng.TopK(context.Background(), "01010101010", []float64{0}, []float64{10}, 3); err == nil {
		t.Error("unknown issuer accepted")
	}
}

func TestTopKDelayBounded(t *testing.T) {
	eng, _ := buildSingle(t, 300, 600, 205)
	rng := rand.New(rand.NewSource(206))
	for trial := 0; trial < 20; trial++ {
		issuer := eng.Network().RandomPeer(rng)
		res, err := eng.TopK(context.Background(), issuer, []float64{0}, []float64{1000}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Delay > len(issuer) {
			t.Fatalf("top-k delay %d exceeds issuer length %d", res.Stats.Delay, len(issuer))
		}
	}
}

// FloodQuery returns the same results as RangeQuery but costs far more
// messages — the pruning ablation.
func TestFloodQueryMatchesRangeQuery(t *testing.T) {
	eng, _ := buildSingle(t, 150, 300, 207)
	rng := rand.New(rand.NewSource(208))
	for trial := 0; trial < 10; trial++ {
		lo := rng.Float64() * 900
		hi := lo + rng.Float64()*(1000-lo)
		issuer := eng.Network().RandomPeer(rng)
		pruned, err := eng.RangeQuery(context.Background(), issuer, []float64{lo}, []float64{hi})
		if err != nil {
			t.Fatal(err)
		}
		flooded, err := eng.FloodQuery(context.Background(), issuer, []float64{lo}, []float64{hi})
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned.Matches) != len(flooded.Matches) {
			t.Fatalf("flood found %d matches, pruned %d", len(flooded.Matches), len(pruned.Matches))
		}
		for i := range pruned.Matches {
			if pruned.Matches[i].Name != flooded.Matches[i].Name {
				t.Fatalf("match %d differs", i)
			}
		}
		if len(pruned.Destinations) != len(flooded.Destinations) {
			t.Fatalf("flood hit %d destinations, pruned %d",
				len(flooded.Destinations), len(pruned.Destinations))
		}
		if flooded.Stats.Messages < pruned.Stats.Messages {
			t.Fatalf("flood cheaper than pruned search: %d < %d",
				flooded.Stats.Messages, pruned.Stats.Messages)
		}
		if flooded.Stats.Delay != pruned.Stats.Delay {
			t.Fatalf("flood delay %d != pruned delay %d (same FRT height expected)",
				flooded.Stats.Delay, pruned.Stats.Delay)
		}
	}
}
