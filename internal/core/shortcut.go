package core

import (
	"context"

	"armada/internal/fissione"
	"armada/internal/kautz"
	"armada/internal/naming"
	"armada/internal/simnet"
)

// Shortcut routing.
//
// A frontier (frontier.go) reuses the outcome of one specific descent; a
// shortcut route reuses ownership facts learned across all of them. The
// issuer-side table (internal/shortcut) maps peer identifiers to owners
// and replica groups; when its fresh entries tile a query's region, the
// issuer addresses every destination directly — one message and one hop
// per destination, no FRT walk. Unlike frontier seeding, the serving
// replica is chosen at the issuer from the learned group, so a read
// policy costs no redirect message on a shortcut-routed query.
//
// Validation is belt over braces: the route was assembled against the
// live topology epoch under the same read lock the query runs under, and
// seedFromShortcut still re-verifies locally — every owner exists and the
// owners' own regions exactly tile the query region — before a single
// message is spent. A route that fails any check is discarded and the
// query descends in full: a stale shortcut costs zero extra messages.

// ShortcutTarget is one learned destination of a shortcut route: the
// region owner and, on a replicated network, its replica group (owner
// first; nil or single-element means the owner serves).
type ShortcutTarget struct {
	Owner kautz.Str
	Group []kautz.Str
}

// ShortcutRoute is a learned cover of a query region: targets whose own
// regions tile the (cursor-clipped) region in ascending order.
type ShortcutRoute struct {
	Targets []ShortcutTarget
}

// WithShortcutRoute offers a learned shortcut route for this query. The
// engine uses it only after re-verifying that the targets' own regions
// exactly tile the query's cursor-clipped region on the live topology;
// otherwise the query descends in full as if no route were given. Lookup
// and single-attribute (PIRA) range queries only — a MIRA descent prunes
// destinations with the box subspace predicate the table cannot express,
// and flood/top-k keep their own walks.
func WithShortcutRoute(r ShortcutRoute) QueryOption {
	return func(c *QueryConfig) { c.Shortcut = &r }
}

// shortcutMsg is the seed payload of a shortcut-routed query: the issuer
// fans one direct message out to each pre-resolved serving peer.
type shortcutMsg struct {
	sends []shortcutSend
}

// shortcutSend is one shortcut delivery: the region owner (load and
// destination accounting), the serving peer the issuer chose from the
// learned group, and the owner's slice of the query region.
type shortcutSend struct {
	owner   kautz.Str
	serving kautz.Str
	region  kautz.Region
}

// seedFromShortcut executes a query over region by fanning out from the
// issuer directly to the route's targets, skipping the descent. ok is
// false — with zero messages spent — when the route fails re-validation;
// the caller then descends normally. On success the result is
// byte-identical to a full descent's (deliveries scan the same clipped
// regions under the same box and cursor predicates); Stats differ only in
// cost: Messages is one per destination (the serving replica was chosen
// issuer-side, so redirects cost nothing), Delay is the single fan-out
// hop, Subregions is 0 and DescentsSaved and ShortcutHits are 1.
func (e *Engine) seedFromShortcut(ctx context.Context, issuer kautz.Str, region kautz.Region, box *naming.Box, cfg QueryConfig) (*RangeResult, bool, error) {
	route := cfg.Shortcut
	if len(route.Targets) == 0 {
		return nil, false, nil
	}
	if box != nil && e.tree.Attrs() > 1 {
		// MIRA prunes destinations inside the region with the box subspace
		// predicate; a region tiling would over-deliver. Descend instead.
		return nil, false, nil
	}
	sends := make([]shortcutSend, 0, len(route.Targets))
	cur := region.Low
	covered := false
	for _, t := range route.Targets {
		owner, ok := e.net.Peer(t.Owner)
		if !ok {
			return nil, false, nil
		}
		own := e.ownRegion(t.Owner)
		if cur < own.Low || own.High < cur {
			// The learned cover no longer tiles the region contiguously.
			return nil, false, nil
		}
		slice, ok := own.Intersect(region)
		if !ok {
			return nil, false, nil
		}
		sends = append(sends, shortcutSend{
			owner:   t.Owner,
			serving: e.pickServing(owner, t.Group, cfg.Policy).ID(),
			region:  slice,
		})
		if own.High >= region.High {
			covered = true
			break
		}
		next, ok := kautz.Succ(own.High)
		if !ok {
			return nil, false, nil
		}
		cur = next
	}
	if !covered {
		return nil, false, nil
	}

	state := &queryState{box: box, cfg: cfg}
	seeds := []simnet.Message{{To: string(issuer), Payload: shortcutMsg{sends: sends}}}
	metrics, err := e.run(ctx, cfg, seeds, func(m simnet.Message) []simnet.Message {
		return e.step(state, m)
	})
	if err != nil {
		return nil, true, err
	}
	res := state.result(metrics, 0)
	res.Stats.DescentsSaved = 1
	res.Stats.ShortcutHits = 1
	e.metrics.note(res.Stats, true)
	return res, true, nil
}

// pickServing chooses the replica that will serve one shortcut delivery
// from the learned group, applying the query's read policy at the issuer
// (the descent path resolves the same choice at delivery; see
// serveTarget). It falls back to the owner whenever the group cannot be
// resolved — unreplicated networks, ReadPrimary, or a learned member that
// no longer exists.
func (e *Engine) pickServing(owner *fissione.Peer, group []kautz.Str, pol ReadPolicy) *fissione.Peer {
	if e.net.Replicas() == 1 || pol == ReadPrimary || len(group) < 2 {
		return owner
	}
	var buf [16]*fissione.Peer
	peers := buf[:0]
	for _, id := range group {
		p, ok := e.net.Peer(id)
		if !ok {
			return owner
		}
		peers = append(peers, p)
	}
	serving := peers[0]
	switch pol {
	case ReadRoundRobin:
		serving = peers[e.rr.Add(1)%uint64(len(peers))]
	case ReadLeastLoaded:
		for _, p := range peers[1:] {
			if p.ServedReads() < serving.ServedReads() {
				serving = p
			}
		}
	}
	return serving
}

// deliverShortcut records one shortcut delivery: like deliver, but the
// serving replica was already chosen at the issuer and addressed
// directly, so a non-owner serve adds no redirect message and no extra
// hop. The scan region was clipped to the owner's own region at seed
// time.
func (e *Engine) deliverShortcut(state *queryState, sm shortcutSend, depth int) {
	owner, ok := e.net.Peer(sm.owner)
	if !ok {
		return // unreachable: the topology is frozen for the query's duration
	}
	owner.NoteDelivery()
	serving := owner
	if sm.serving != sm.owner {
		if p, ok := e.net.Peer(sm.serving); ok {
			serving = p
		}
	}
	if state.cfg.Trace != nil {
		kind := HopDeliver
		if serving != owner {
			kind = HopRedirect
		}
		state.cfg.Trace(kind, owner.ID(), serving.ID(), depth, 0)
	}
	if e.net.Replicas() > 1 {
		serving.NoteServed()
	}
	e.scanDelivery(state, owner, serving, sm.region, sm.region, depth, false)
}
