package armada

import (
	"fmt"
	"io"
	"math/rand"

	"armada/internal/core"
	"armada/internal/fissione"
	"armada/internal/naming"
	"armada/internal/session"
	"armada/internal/shortcut"
)

// assemble wires the armada layers — naming tree, replication, query
// engine, caches, observability, load control — around a built fissione
// overlay. NewNetwork and LoadSnapshot share it: the only difference
// between a cold build and a warm start is where the overlay comes from.
func assemble(net *fissione.Network, cfg config) (*Network, error) {
	spaces := make([]naming.Space, len(cfg.attrs))
	for i, a := range cfg.attrs {
		spaces[i] = naming.Space{Low: a.Low, High: a.High}
	}
	tree, err := naming.NewTree(net.K(), spaces...)
	if err != nil {
		return nil, fmt.Errorf("armada: naming tree: %w", err)
	}
	if cfg.replicas != net.Replicas() {
		if err := net.SetReplicas(cfg.replicas); err != nil {
			return nil, fmt.Errorf("armada: replication: %w", err)
		}
	}
	eng, err := core.New(net, tree)
	if err != nil {
		return nil, err
	}
	mode := core.Sync
	if cfg.async {
		mode = core.Async
	}
	var fcache *session.Cache
	if cfg.frontierCache > 0 {
		fcache = session.NewCache(cfg.frontierCache)
	}
	var stable *shortcut.Table
	if cfg.shortcutTable > 0 {
		stable = shortcut.NewTable(cfg.shortcutTable, net.K())
	}
	nw := &Network{
		net:    net,
		tree:   tree,
		eng:    eng,
		mode:   mode,
		fcache: fcache,
		stable: stable,
		rng:    rand.New(rand.NewSource(cfg.seed + 1)),
	}
	nw.initObs(cfg)
	if cfg.loadControl != nil {
		nw.startLoadControl(*cfg.loadControl, net.Size())
	}
	return nw, nil
}

// SaveSnapshot serializes the network's topology — identifier cover,
// routing tables, replication degree, epoch and builder rng state, but no
// stored objects — to w in a versioned binary format. LoadSnapshot
// reconstructs a byte-identical network from it in O(file) time, skipping
// the join-by-join build entirely.
func (n *Network) SaveSnapshot(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.WriteSnapshot(w)
}

// LoadSnapshot builds a network from a topology snapshot written by
// SaveSnapshot instead of growing one join by join. The snapshot defines
// the topology, so WithK and WithBalancedBuild are superseded by it; every
// other option (attributes, replication, caches, load control, seed for
// issuer selection) applies exactly as in NewNetwork. Stores come back
// empty — objects are not snapshotted.
//
// A network loaded with the same options and seed the snapshotted one was
// built with is byte-identical to it: same cover and routing tables, same
// epoch, and the same future join, publish and query behavior.
func LoadSnapshot(r io.Reader, opts ...Option) (*Network, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	net, err := fissione.LoadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("armada: load snapshot: %w", err)
	}
	return assemble(net, cfg)
}

// TopologyFingerprint returns a digest of the routing-relevant topology:
// the identifier cover, every routing table, the replication degree and
// the epoch. Two networks with equal fingerprints route identically —
// the equality check behind snapshot and batch-build verification.
func (n *Network) TopologyFingerprint() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.net.Fingerprint()
}
