package armada

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestShortcutByteIdentityUnderChurn is the shortcut table's end-to-end
// property test: two identically-seeded networks — one with a shortcut
// table, one without — are driven through the same interleaved sequence of
// publishes, warm queries, joins, leaves, crash-stops, region auto-splits
// and ownership migrations. Every query result must be byte-identical
// between the two networks at every step: epoch invalidation means a
// learned entry can go stale at any moment, and a stale shortcut may cost
// a saved descent, never results. Both networks consume their internal
// RNGs through mirrored calls only, so they stay in topological lockstep.
func TestShortcutByteIdentityUnderChurn(t *testing.T) {
	const size = 150
	base, err := NewNetwork(size, WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewNetwork(size, WithSeed(61), WithShortcutTable(256))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	publish := func(name string, v float64) {
		t.Helper()
		if err := base.Publish(name, v); err != nil {
			t.Fatal(err)
		}
		if err := fast.Publish(name, v); err != nil {
			t.Fatal(err)
		}
	}
	// compare runs q on both networks (mirrored empty-issuer draws keep the
	// RNGs in sync) and requires byte-identical results.
	compare := func(what string, q Query) *Result {
		t.Helper()
		want, err1 := base.Do(ctx, q)
		got, err2 := fast.Do(ctx, q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: base err %v, shortcut err %v", what, err1, err2)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) ||
			got.NextOffsetID != want.NextOffsetID ||
			got.Owner != want.Owner ||
			!reflect.DeepEqual(got.Destinations, want.Destinations) {
			t.Fatalf("%s: shortcut network diverged from baseline\nbase: %d objects, next %q\nfast: %d objects, next %q",
				what, len(want.Objects), want.NextOffsetID, len(got.Objects), got.NextOffsetID)
		}
		return got
	}
	audit := func(when string) {
		t.Helper()
		if err := base.Audit(); err != nil {
			t.Fatalf("base audit %s: %v", when, err)
		}
		if err := fast.Audit(); err != nil {
			t.Fatalf("shortcut audit %s: %v", when, err)
		}
	}

	// Warm ranges revisited every round — the traffic that populates the
	// table and must survive every topology change in between.
	warm := [][2]float64{{400, 460}, {430, 500}, {100, 180}, {700, 790}}
	seq := 0
	for i := 0; i < 300; i++ {
		publish(fmt.Sprintf("seed-%03d", i), float64(i%100)*10+float64(i%7))
	}

	for round := 0; round < 6; round++ {
		for i := 0; i < 40; i++ {
			seq++
			// Skew publishes toward the warm intervals so splits land there.
			publish(fmt.Sprintf("hot-%04d", seq), 400+float64(seq%100))
		}
		for _, w := range warm {
			compare(fmt.Sprintf("round %d range [%g,%g]", round, w[0], w[1]),
				NewRange([]Range{{Low: w[0], High: w[1]}}))
		}
		res := compare(fmt.Sprintf("round %d lookup", round), NewLookup(fmt.Sprintf("hot-%04d", seq)))
		hotOwner := ""
		if len(res.Objects) > 0 {
			hotOwner = res.Objects[0].Peer
		}
		// A paged walk over a warm region, page by page.
		offset := ""
		for page := 0; ; page++ {
			opts := []QueryOption{WithLimit(25)}
			if offset != "" {
				opts = append(opts, WithOffsetID(offset))
			}
			pr := compare(fmt.Sprintf("round %d page %d", round, page),
				NewRange([]Range{{Low: 380, High: 520}}, opts...))
			if pr.NextOffsetID == "" {
				break
			}
			offset = pr.NextOffsetID
		}

		// Mutate the topology between rounds, exercising every invalidation
		// path the PR 6 controller can trigger. All errors must mirror.
		mirror := func(what string, e1, e2 error) {
			t.Helper()
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("round %d %s: base err %v, shortcut err %v", round, what, e1, e2)
			}
		}
		switch round % 4 {
		case 0: // join (mirrored RNG draws yield the same new peer)
			id1, e1 := base.Join()
			id2, e2 := fast.Join()
			mirror("join", e1, e2)
			if id1 != id2 {
				t.Fatalf("round %d: networks fell out of lockstep: joined %q vs %q", round, id1, id2)
			}
		case 1: // auto-split the hot owner
			if hotOwner != "" {
				_, e1 := base.splitRegion(hotOwner)
				_, e2 := fast.splitRegion(hotOwner)
				mirror("split", e1, e2)
			}
		case 2: // migrate ownership: a cold donor leaves, the hot region splits
			if hotOwner != "" {
				donor := compare(fmt.Sprintf("round %d donor lookup", round),
					NewLookup("seed-007")).Owner
				if donor != "" && donor != hotOwner {
					_, e1 := base.migrateOwnership(donor, hotOwner)
					_, e2 := fast.migrateOwnership(donor, hotOwner)
					mirror("migrate", e1, e2)
				}
			}
		case 3: // crash-stop, then graceful leave (mirrored RandomPeer draws)
			victim1, victim2 := base.RandomPeer(), fast.RandomPeer()
			if victim1 != victim2 {
				t.Fatalf("round %d: networks fell out of lockstep: victims %q vs %q", round, victim1, victim2)
			}
			mirror("fail", base.Fail(victim1), fast.Fail(victim2))
		}
		audit(fmt.Sprintf("after round %d", round))
	}

	st, ok := fast.ShortcutTableStats()
	if !ok {
		t.Fatal("shortcut network reports no table")
	}
	if st.Hits == 0 {
		t.Fatalf("warm traffic never hit the shortcut table: %+v", st)
	}
	if st.Stale == 0 {
		t.Fatalf("six rounds of churn never staled an entry: %+v", st)
	}
}
