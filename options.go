package armada

import (
	"errors"
	"fmt"
	"time"
)

// AttributeSpace is the value interval of one object attribute.
type AttributeSpace struct {
	Low  float64
	High float64
}

// config collects construction options for a Network.
type config struct {
	k              int
	seed           int64
	attrs          []AttributeSpace
	balanced       bool
	async          bool
	replicas       int
	frontierCache  int
	shortcutTable  int
	flightRecorder int
	loadControl    *LoadControlConfig
	diagnostics    *DiagnosticsConfig
}

// Option configures NewNetwork.
type Option interface {
	apply(*config) error
}

type optionFunc func(*config) error

func (f optionFunc) apply(c *config) error { return f(c) }

// errBadOption tags option validation failures.
var errBadOption = errors.New("armada: invalid option")

// WithK sets the ObjectID length (the depth of the naming partition tree).
// It must exceed the longest peer identifier the network can grow (above
// 2·log₂N) and defaults to 32, which supports networks beyond a million
// peers.
func WithK(k int) Option {
	return optionFunc(func(c *config) error {
		if k < 2 || k > 62 {
			return fmt.Errorf("%w: k=%d outside [2, 62]", errBadOption, k)
		}
		c.k = k
		return nil
	})
}

// WithSeed fixes the pseudo-random seed used for network construction and
// default issuer selection, making runs reproducible. The default is 1.
func WithSeed(seed int64) Option {
	return optionFunc(func(c *config) error {
		c.seed = seed
		return nil
	})
}

// WithAttributes declares the attribute spaces objects are named by, in
// attribute order. One space enables single-attribute range queries
// (Single_hash/PIRA); several enable multi-attribute queries
// (Multiple_hash/MIRA). The default is a single [0, 1000] attribute, the
// paper's simulation interval.
func WithAttributes(spaces ...AttributeSpace) Option {
	return optionFunc(func(c *config) error {
		if len(spaces) == 0 {
			return fmt.Errorf("%w: no attribute spaces", errBadOption)
		}
		for i, s := range spaces {
			if !(s.Low < s.High) {
				return fmt.Errorf("%w: attribute %d space [%v, %v]", errBadOption, i, s.Low, s.High)
			}
		}
		c.attrs = append([]AttributeSpace(nil), spaces...)
		return nil
	})
}

// WithBalancedBuild grows the initial network by always splitting a
// shortest-identifier peer, yielding identifier lengths within one of each
// other. The default emulates FISSIONE's random joins (hash to a position,
// split the local length minimum there).
func WithBalancedBuild() Option {
	return optionFunc(func(c *config) error {
		c.balanced = true
		return nil
	})
}

// WithReplication stores every object on k peers — the region's owner
// plus its k−1 trie-order successors — instead of one. Publishes and
// unpublishes fan out to the whole group, crashed peers' objects are
// restored from surviving replicas during self-stabilization, and range
// deliveries can be served by any group member (see WithReadPolicy). The
// default, k = 1, is the paper's single-owner model and preserves the
// unreplicated data path exactly. Degrees are capped at 16; the effective
// degree never exceeds the network size.
func WithReplication(k int) Option {
	return optionFunc(func(c *config) error {
		if k < 1 || k > 16 {
			return fmt.Errorf("%w: replication degree %d outside [1, 16]", errBadOption, k)
		}
		c.replicas = k
		return nil
	})
}

// WithFrontierCache attaches an issuer-side frontier cache of the given
// capacity (in cached descents) to the network. Range queries then
// capture their pruned-descent frontier — the destination peers reached
// and the subregion delivered to each — into a bounded LRU keyed by
// normalized query-region prefix, and a later query whose region a cached
// frontier covers seeds directly at those peers instead of descending:
// one message per surviving destination, Stats.FrontierHits = 1. Entries
// are validated against the topology epoch, so churn silently invalidates
// them and the query falls back to a full descent — a stale cache can
// cost messages, never correctness. The default is no cache.
func WithFrontierCache(capacity int) Option {
	return optionFunc(func(c *config) error {
		if capacity < 1 {
			return fmt.Errorf("%w: frontier cache capacity %d < 1", errBadOption, capacity)
		}
		c.frontierCache = capacity
		return nil
	})
}

// WithShortcutTable attaches an issuer-side learned shortcut routing
// table of the given capacity (in learned owner entries) to the network.
// Every descent's delivery hops are learned passively — each region owner
// reached and, when replicated, its group members — and a later lookup,
// single-attribute range query or paged walk whose region the fresh
// entries tile is routed in one direct hop per destination instead of a
// ~log N descent (Stats.ShortcutHits = 1), with replica reads landing on
// the issuer-chosen replica without a redirect message. Entries are
// validated against the topology epoch and dropped on sight when stale,
// so churn costs the saved descents, never correctness. The default is no
// table.
func WithShortcutTable(capacity int) Option {
	return optionFunc(func(c *config) error {
		if capacity < 1 {
			return fmt.Errorf("%w: shortcut table capacity %d < 1", errBadOption, capacity)
		}
		c.shortcutTable = capacity
		return nil
	})
}

// WithFlightRecorder attaches a query-lifecycle flight recorder to the
// network: a bounded ring buffer retaining the last capacity structured,
// timestamped events — query start/end, every descent hop, frontier
// seeds and captures, replica redirects, deliveries, page cuts, replica
// repairs and load-controller actions. Dump it with WriteFlightTrace
// (Chrome trace-event JSON). The default is no recorder; without one,
// queries skip all per-hop event construction.
func WithFlightRecorder(capacity int) Option {
	return optionFunc(func(c *config) error {
		if capacity < 1 {
			return fmt.Errorf("%w: flight recorder capacity %d < 1", errBadOption, capacity)
		}
		c.flightRecorder = capacity
		return nil
	})
}

// DiagnosticsConfig tunes the query-diagnostics layer WithDiagnostics
// attaches.
type DiagnosticsConfig struct {
	// SlowLogCapacity bounds the slow-query ring (records retained);
	// 0 means the default of 256.
	SlowLogCapacity int
	// SlowThreshold fixes the slow-query threshold. The default, 0, is
	// adaptive: an EWMA of the observed p99 query duration, so the log
	// captures the current tail without hand-tuning — nothing is logged
	// until the first 128 queries establish it.
	SlowThreshold time.Duration
	// Objective is the SLO over the paper's delay bound: the fraction of
	// queries that must finish strictly below 2·log₂N hops. 0 means the
	// default of 0.999. The burn-rate monitor divides each window's
	// violation fraction by the remaining error budget (1 − Objective).
	Objective float64
}

// WithDiagnostics attaches the query-diagnostics layer: per-query
// critical-path breakdowns from the trace stream, a cause classifier, a
// bounded slow-query log (SlowQueries), tail-latency attribution
// (TailAttribution) and a multi-window SLO burn-rate monitor over the
// delay bound (SLOStatus). The default is no diagnostics; queries then
// skip all per-query collection.
func WithDiagnostics(dc DiagnosticsConfig) Option {
	return optionFunc(func(c *config) error {
		if dc.SlowLogCapacity < 0 {
			return fmt.Errorf("%w: slow-log capacity %d < 0", errBadOption, dc.SlowLogCapacity)
		}
		if dc.SlowThreshold < 0 {
			return fmt.Errorf("%w: slow threshold %v < 0", errBadOption, dc.SlowThreshold)
		}
		if dc.Objective < 0 || dc.Objective >= 1 {
			return fmt.Errorf("%w: SLO objective %v outside [0, 1)", errBadOption, dc.Objective)
		}
		c.diagnostics = &dc
		return nil
	})
}

// WithAsyncQueries executes queries on the goroutine-per-peer engine
// instead of the deterministic synchronous engine. Results and metrics are
// identical; the asynchronous engine exists to demonstrate and test the
// algorithms' locality under real concurrency.
func WithAsyncQueries() Option {
	return optionFunc(func(c *config) error {
		c.async = true
		return nil
	})
}

func buildConfig(opts []Option) (config, error) {
	c := config{
		k:        32,
		seed:     1,
		attrs:    []AttributeSpace{{Low: 0, High: 1000}},
		replicas: 1,
	}
	for _, o := range opts {
		if err := o.apply(&c); err != nil {
			return config{}, err
		}
	}
	return c, nil
}
