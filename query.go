package armada

import (
	"fmt"
	"time"
)

// QueryKind identifies the query algorithm a Query requests.
type QueryKind int

// Query kinds. The zero kind is inferred by Do: KindLookup when Name is
// set, KindTopK when K is set, KindRange otherwise.
const (
	// KindLookup is an exact-match lookup of a name (FISSIONE routing).
	KindLookup QueryKind = iota + 1
	// KindRange is a range query: PIRA over one attribute, MIRA over
	// several.
	KindRange
	// KindTopK returns the K objects with the largest first-attribute
	// values inside the ranges.
	KindTopK
	// KindFlood is the unpruned FRT flood — an ablation that returns the
	// same results as KindRange at a much higher message cost. It exists
	// to measure the value of pruning; do not use it for real queries.
	KindFlood
)

// String names the kind for errors and logs.
func (k QueryKind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindRange:
		return "range"
	case KindTopK:
		return "top-k"
	case KindFlood:
		return "flood"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// ReadPolicy selects which member of a replica group serves each delivery
// of a query on a replicated network (see WithReplication). On an
// unreplicated network every policy behaves like ReadPrimary.
type ReadPolicy int

const (
	// ReadDefault uses the network's default: round-robin when the network
	// replicates, primary-only otherwise.
	ReadDefault ReadPolicy = iota
	// ReadPrimary always serves from the region's owner, exactly like an
	// unreplicated network.
	ReadPrimary
	// ReadRoundRobin rotates deliveries through each region's replica
	// group, spreading hot-region read load.
	ReadRoundRobin
	// ReadLeastLoaded serves each delivery from the group member that has
	// served the fewest scans so far.
	ReadLeastLoaded
)

// String names the policy.
func (p ReadPolicy) String() string {
	switch p {
	case ReadDefault:
		return "default"
	case ReadPrimary:
		return "primary"
	case ReadRoundRobin:
		return "round-robin"
	case ReadLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("ReadPolicy(%d)", int(p))
	}
}

// Hop is one observed overlay message of a traced query.
type Hop struct {
	// From is the peer that processed the message; To is the forward's
	// target. A delivery (the query reaching a destination peer) has
	// Remaining == 0; its To names the replica that served it — equal to
	// From unless a read policy redirected the scan.
	From, To string
	// Depth is the hop count from the issuer; Remaining is the number of
	// hops left to the destination level of the forward routing tree.
	Depth, Remaining int
}

// Query is one self-contained query request, executed by Network.Do or
// Network.Stream. A Query holds no references into the network, so the same
// value may be executed any number of times, concurrently, on any network.
//
// Build one with NewLookup or NewRange plus options, or fill the fields
// directly.
type Query struct {
	// Kind selects the algorithm. Zero is inferred: KindLookup when Name
	// is set, KindTopK when K is set, KindRange otherwise.
	Kind QueryKind
	// Name is the exact-match target (KindLookup only): the lookup routes
	// to Kautz_hash(Name), where PublishExact stores value-less objects.
	Name string
	// Values is the exact-match target as an attribute-value point
	// (KindLookup with an empty Name): the lookup routes to the ObjectID
	// the order-preserving naming assigns to these values — where Publish
	// stores its objects — and returns every object published under it.
	Values []float64
	// Ranges carries one queried interval per configured attribute
	// (all kinds except KindLookup).
	Ranges []Range
	// Issuer is the peer the query starts from; empty means a uniformly
	// random peer.
	Issuer string
	// K is the result limit for KindTopK.
	K int
	// Limit, when positive, paginates a range or flood query: the result
	// carries at most Limit objects (extending through objects sharing the
	// final ObjectID, so a page never splits an ID) and NextOffsetID holds
	// the cursor for the following page. Destination peers then scan only
	// O(log store + Limit) of their index instead of materializing the
	// whole region.
	Limit int
	// OffsetID resumes a paginated query: only objects with ObjectID
	// strictly greater than it match. Pass a previous Result's
	// NextOffsetID.
	OffsetID string
	// ReadPolicy selects the replica serving each delivery on a replicated
	// network. Zero (ReadDefault) means the network's default.
	ReadPolicy ReadPolicy
	// Trace, when non-nil, observes every overlay message of the query.
	// Queries on an async network may invoke it concurrently.
	Trace func(Hop)
	// QueueWait reports how long the caller held this query in a dispatch
	// queue before executing it. It never changes execution; on a network
	// built WithDiagnostics the classifier uses it to separate queued-up
	// operations (queue-wait) from genuinely slow ones, and slow-query
	// records carry it. The workload runner's open-loop dispatcher stamps
	// it automatically.
	QueueWait time.Duration
}

// QueryOption adjusts one Query.
type QueryOption func(*Query)

// WithIssuer makes the query start from the identified peer instead of a
// random one.
func WithIssuer(id string) QueryOption { return func(q *Query) { q.Issuer = id } }

// WithTrace installs a hop observer on the query. Queries on an async
// network may invoke fn concurrently.
func WithTrace(fn func(Hop)) QueryOption { return func(q *Query) { q.Trace = fn } }

// WithTopK turns a range query into a top-k query returning at most k
// objects with the largest first-attribute values.
func WithTopK(k int) QueryOption {
	return func(q *Query) {
		q.Kind = KindTopK
		q.K = k
	}
}

// WithFlood turns a range query into the unpruned flood ablation.
func WithFlood() QueryOption { return func(q *Query) { q.Kind = KindFlood } }

// WithLimit paginates a range or flood query at n objects per page. The
// page may exceed n only to keep objects sharing its last ObjectID
// together, so the NextOffsetID cursor never skips or repeats an object.
func WithLimit(n int) QueryOption { return func(q *Query) { q.Limit = n } }

// WithOffsetID resumes a paginated query strictly after the given
// ObjectID — normally the previous page's Result.NextOffsetID.
func WithOffsetID(id string) QueryOption { return func(q *Query) { q.OffsetID = id } }

// WithReadPolicy selects the replica-serving policy for this query on a
// replicated network (no effect without WithReplication).
func WithReadPolicy(p ReadPolicy) QueryOption { return func(q *Query) { q.ReadPolicy = p } }

// WithQueueWait reports the caller-measured dispatch-queue wait to the
// diagnostics layer (see Query.QueueWait). It never changes execution.
func WithQueueWait(d time.Duration) QueryOption { return func(q *Query) { q.QueueWait = d } }

// NewLookup builds an exact-match lookup query for name.
func NewLookup(name string, opts ...QueryOption) Query {
	q := Query{Kind: KindLookup, Name: name}
	for _, o := range opts {
		o(&q)
	}
	return q
}

// NewValueLookup builds an exact-match lookup for the ObjectID the
// order-preserving naming assigns to the given attribute values (one per
// configured attribute) — the way to look up objects stored by Publish,
// which are keyed by their values, not their names.
func NewValueLookup(values []float64, opts ...QueryOption) Query {
	q := Query{Kind: KindLookup, Values: append([]float64(nil), values...)}
	for _, o := range opts {
		o(&q)
	}
	return q
}

// NewRange builds a range query, one Range per configured attribute.
// Single-attribute queries run PIRA; multi-attribute queries run MIRA.
// Options may retarget the kind (WithTopK, WithFlood).
func NewRange(ranges []Range, opts ...QueryOption) Query {
	q := Query{Kind: KindRange, Ranges: append([]Range(nil), ranges...)}
	for _, o := range opts {
		o(&q)
	}
	return q
}

// kind resolves the effective kind of the query.
func (q Query) kind() QueryKind {
	if q.Kind != 0 {
		return q.Kind
	}
	if q.Name != "" || len(q.Values) > 0 {
		return KindLookup
	}
	if q.K > 0 {
		return KindTopK
	}
	return KindRange
}
