package armada

import (
	"errors"
	"math/rand"
	"testing"
)

func TestFailLosesOnlyCrashedData(t *testing.T) {
	net, err := NewNetwork(80, WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 160; i++ {
		if err := net.Publish(objName(i), float64(i*6)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := net.RangeQuery(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	victim := net.RandomPeer()
	if err := net.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("invariants broken after crash: %v", err)
	}
	after, err := net.RangeQuery(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lost := len(before.Objects) - len(after.Objects)
	if lost < 0 {
		t.Fatalf("objects appeared after crash: %d -> %d", len(before.Objects), len(after.Objects))
	}
	// Everything that survived must be found; only the victim's share may
	// be missing.
	surviving := make(map[string]bool, len(after.Objects))
	for _, o := range after.Objects {
		surviving[o.Name] = true
	}
	for _, o := range before.Objects {
		if o.Peer != victim && !surviving[o.Name] {
			t.Fatalf("object %q (on %q, not the victim %q) vanished", o.Name, o.Peer, victim)
		}
	}
}

func TestFailValidation(t *testing.T) {
	net, err := NewNetwork(3, WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Fail("0"); !errors.Is(err, ErrTooSmall) {
		t.Errorf("fail below 3 peers error = %v", err)
	}
	if err := net.Fail("nope"); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("fail unknown peer error = %v", err)
	}
}

func TestTraceQueryRecordsDescent(t *testing.T) {
	net, err := NewNetwork(120, WithSeed(45))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := net.Publish(objName(i), float64(i*16)); err != nil {
			t.Fatal(err)
		}
	}
	issuer := net.PeerIDs()[5]
	res, hops, err := net.TraceQuery(issuer, Range{Low: 200, High: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) == 0 {
		t.Fatal("trace recorded no hops")
	}
	forwards, deliveries := 0, 0
	for _, h := range hops {
		if h.From == h.To && h.Remaining == 0 {
			deliveries++
			continue
		}
		forwards++
		if h.Depth < 0 || h.Depth > res.Stats.Delay {
			t.Fatalf("hop depth %d outside [0, %d]", h.Depth, res.Stats.Delay)
		}
	}
	if forwards != res.Stats.Messages {
		t.Fatalf("trace recorded %d forwards, stats say %d messages", forwards, res.Stats.Messages)
	}
	if deliveries != res.Stats.DestPeers {
		t.Fatalf("trace recorded %d deliveries, stats say %d destinations", deliveries, res.Stats.DestPeers)
	}
	// The first hop always originates at the issuer.
	if hops[0].From != issuer {
		t.Fatalf("first hop from %q, want issuer %q", hops[0].From, issuer)
	}
}

func TestCrashStormWithQueries(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(47))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(48))
	for i := 0; i < 30; i++ {
		if err := net.Fail(net.PeerIDs()[rng.Intn(net.Size())]); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
		if _, err := net.RangeQuery(0, 100); err != nil {
			t.Fatalf("query after crash %d: %v", i, err)
		}
	}
	if net.Size() != 70 {
		t.Fatalf("size = %d, want 70", net.Size())
	}
	if err := net.Audit(); err != nil {
		t.Fatal(err)
	}
}
