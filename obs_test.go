package armada

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"

	"armada/internal/obs"
)

// publishSpread stores n objects evenly across the attribute space so
// range queries have something to deliver.
func publishSpread(t *testing.T, net *Network, n int) {
	t.Helper()
	pubs := make([]Publication, n)
	for i := range pubs {
		pubs[i] = Publication{
			Name:   "obs-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26%10)) + string(rune('0'+i%10)),
			Values: []float64{float64(i%1000) + 0.5},
		}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsPopulated(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(5), WithFrontierCache(16))
	if err != nil {
		t.Fatal(err)
	}
	publishSpread(t, net, 300)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		lo := float64(i * 50)
		if _, err := net.Do(ctx, NewRange([]Range{{Low: lo, High: lo + 100}})); err != nil {
			t.Fatal(err)
		}
	}
	mv := net.MetricValues()
	for _, name := range []string{
		"engine_descents_total", "engine_messages_total", "engine_deliveries_total",
		"engine_scheduled_ops_total", "query_delay_vs_bound_count",
	} {
		if mv[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, mv[name])
		}
	}
	if v := mv["delay_bound_violations"]; v != 0 {
		t.Errorf("delay_bound_violations = %d, want 0", v)
	}
	if _, ok := mv["peers"]; ok {
		t.Error("CounterValues must exclude the peers gauge (interval deltas)")
	}
	// The same repeated query must hit the frontier cache and show there.
	for i := 0; i < 3; i++ {
		if _, err := net.Do(ctx, NewRange([]Range{{Low: 100, High: 200}})); err != nil {
			t.Fatal(err)
		}
	}
	if hits := net.MetricValues()["frontier_cache_hits_total"]; hits == 0 {
		t.Error("frontier_cache_hits_total = 0 after repeated identical ranges")
	}

	var sb strings.Builder
	if err := net.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE engine_messages_total counter",
		"# TYPE peers gauge",
		"# TYPE engine_hop_delay histogram",
		"engine_hop_delay_bucket{le=\"+Inf\"}",
		"peers 100",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

func TestNoRecorderByDefault(t *testing.T) {
	net, err := NewNetwork(50, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if net.FlightRecorderEnabled() {
		t.Error("FlightRecorderEnabled on a default network")
	}
	if err := net.WriteFlightTrace(&strings.Builder{}); !errors.Is(err, ErrNoRecorder) {
		t.Errorf("WriteFlightTrace error = %v, want ErrNoRecorder", err)
	}
}

// TestFlightRecorderLifecycle drives one full query lifecycle — descent,
// delivery, page cut — through the recorder and round-trips the dump
// through the Chrome trace-event exporter.
func TestFlightRecorderLifecycle(t *testing.T) {
	net, err := NewNetwork(100, WithSeed(7), WithFlightRecorder(4096))
	if err != nil {
		t.Fatal(err)
	}
	if !net.FlightRecorderEnabled() {
		t.Fatal("FlightRecorderEnabled = false")
	}
	publishSpread(t, net, 400)
	ctx := context.Background()
	res, err := net.Do(ctx, NewRange([]Range{{Low: 0, High: 900}}, WithLimit(50)))
	if err != nil {
		t.Fatal(err)
	}
	if res.NextOffsetID == "" {
		t.Fatal("want a paged result (non-empty NextOffsetID) to exercise the page cut")
	}

	events := net.obs.flight.Events()
	byKind := map[obs.EventKind]int{}
	var qid uint64
	for _, ev := range events {
		byKind[ev.Kind]++
		if ev.Kind == obs.EvQueryStart {
			qid = ev.QID
		}
	}
	for _, kind := range []obs.EventKind{
		obs.EvQueryStart, obs.EvDescentStep, obs.EvDeliver, obs.EvPageCut, obs.EvQueryEnd,
	} {
		if byKind[kind] == 0 {
			t.Errorf("no %v event recorded", kind)
		}
	}
	for _, ev := range events {
		if ev.QID != qid {
			t.Errorf("event %v carries QID %d, want %d (one query ran)", ev.Kind, ev.QID, qid)
		}
	}
	if got := net.MetricValues()["flight_recorder_events_total"]; got != int64(len(events)) {
		t.Errorf("flight_recorder_events_total = %d, want %d", got, len(events))
	}

	var sb strings.Builder
	if err := net.WriteFlightTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Cat  string          `json:"cat"`
			ID   string          `json:"id"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	if len(dump.TraceEvents) != len(events) {
		t.Fatalf("trace exports %d events, recorder holds %d", len(dump.TraceEvents), len(events))
	}
	wantID := strconv.FormatUint(qid, 10)
	var begins, ends, hops, cuts int
	for _, te := range dump.TraceEvents {
		switch {
		case te.Ph == "b" && te.Name == "query":
			begins++
			if te.ID != wantID {
				t.Errorf("span begin id = %q, want %q", te.ID, wantID)
			}
		case te.Ph == "e" && te.Name == "query":
			ends++
		case te.Cat == "hop":
			hops++
		case te.Name == "page-cut":
			cuts++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("query span begin/end = %d/%d, want 1/1", begins, ends)
	}
	if hops == 0 || cuts != 1 {
		t.Errorf("hops = %d (want > 0), page cuts = %d (want 1)", hops, cuts)
	}
}

// TestFlightRecorderControlEvents checks that topology-side activity —
// replica repair after a crash — lands in the recorder.
func TestFlightRecorderControlEvents(t *testing.T) {
	net, err := NewNetwork(60, WithSeed(9), WithReplication(2), WithFlightRecorder(4096))
	if err != nil {
		t.Fatal(err)
	}
	publishSpread(t, net, 200)
	// One crash may hit a peer owning nothing; a handful cannot all miss a
	// 200-object store.
	for i := 0; i < 8; i++ {
		if err := net.Fail(net.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	var repairs int
	for _, ev := range net.obs.flight.Events() {
		if ev.Kind == obs.EvRepair {
			repairs++
			if ev.V1 <= 0 {
				t.Errorf("repair event with %d copied objects", ev.V1)
			}
		}
	}
	if repairs == 0 {
		t.Error("no repair events after crashes on a replicated network")
	}
	if got, want := net.MetricValues()["fissione_repairs_total"], int64(repairs); got != want {
		t.Errorf("fissione_repairs_total = %d, recorder saw %d", got, want)
	}
}

// TestDelayBoundConformance asserts the paper's theorem end to end: no
// query ever reaches 2·log₂N hops, at several sizes.
func TestDelayBoundConformance(t *testing.T) {
	ctx := context.Background()
	for _, peers := range []int{50, 200} {
		net, err := NewNetwork(peers, WithSeed(int64(peers)))
		if err != nil {
			t.Fatal(err)
		}
		publishSpread(t, net, 300)
		for i := 0; i < 30; i++ {
			lo := float64((i * 37) % 900)
			if _, err := net.Do(ctx, NewRange([]Range{{Low: lo, High: lo + 80}})); err != nil {
				t.Fatal(err)
			}
		}
		mv := net.MetricValues()
		if mv["query_delay_vs_bound_count"] == 0 {
			t.Fatalf("peers=%d: conformance histogram empty", peers)
		}
		if v := mv["delay_bound_violations"]; v != 0 {
			t.Errorf("peers=%d: delay_bound_violations = %d, want 0", peers, v)
		}
	}
}
