package armada

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// buildQueryNet returns a populated single-attribute network for query
// tests.
func buildQueryNet(t *testing.T, peers, objects int, opts ...Option) *Network {
	t.Helper()
	net, err := NewNetwork(peers, append([]Option{WithSeed(61)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	pubs := make([]Publication, objects)
	for i := range pubs {
		pubs[i] = Publication{Name: objName(i), Values: []float64{float64(i) * 1000 / float64(objects)}}
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDoKindInference(t *testing.T) {
	net := buildQueryNet(t, 60, 100)
	// A zero-kind query with a name is a lookup.
	if err := net.PublishExact("doc.txt"); err != nil {
		t.Fatal(err)
	}
	res, err := net.Do(context.Background(), Query{Name: "doc.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner == "" {
		t.Fatal("inferred lookup returned no owner")
	}
	// A zero-kind query with ranges is a range query.
	res, err = net.Do(context.Background(), Query{Ranges: []Range{{Low: 0, High: 1000}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DestPeers != net.Size() {
		t.Fatalf("inferred range query hit %d/%d peers", res.Stats.DestPeers, net.Size())
	}
	// A zero-kind query with K set is a top-k query, not an unbounded range.
	res, err = net.Do(context.Background(), Query{Ranges: []Range{{Low: 0, High: 1000}}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 4 {
		t.Fatalf("inferred top-k returned %d objects, want 4", len(res.Objects))
	}
}

func TestDoValidation(t *testing.T) {
	net := buildQueryNet(t, 20, 0)
	cases := []Query{
		{Kind: KindLookup}, // lookup without a name
		{Kind: KindTopK, Ranges: []Range{{Low: 0, High: 10}}},     // top-k without K
		{Kind: QueryKind(99), Ranges: []Range{{Low: 0, High: 1}}}, // unknown kind
	}
	for _, q := range cases {
		if _, err := net.Do(context.Background(), q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("kind %v: err = %v, want ErrBadQuery", q.Kind, err)
		}
	}
	if _, err := net.Do(context.Background(), NewRange([]Range{{0, 1}, {0, 1}})); !errors.Is(err, ErrBadArity) {
		t.Errorf("extra range err = %v, want ErrBadArity", err)
	}
	if _, err := net.Do(context.Background(), NewRange([]Range{{0, 1}}, WithIssuer("nope"))); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("unknown issuer err = %v, want ErrNoSuchPeer", err)
	}
}

// Every deprecated wrapper must return exactly what its Do form returns.
func TestWrappersEquivalentToDo(t *testing.T) {
	net := buildQueryNet(t, 150, 200)
	issuer := net.PeerIDs()[3]
	ctx := context.Background()

	t.Run("RangeQueryFrom", func(t *testing.T) {
		legacy, err := net.RangeQueryFrom(issuer, Range{Low: 100, High: 600})
		if err != nil {
			t.Fatal(err)
		}
		unified, err := net.Do(ctx, NewRange([]Range{{Low: 100, High: 600}}, WithIssuer(issuer)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, unified) {
			t.Fatalf("results differ:\nlegacy  %+v\nunified %+v", legacy, unified)
		}
	})

	t.Run("LookupFrom", func(t *testing.T) {
		if err := net.PublishExact("paper.pdf"); err != nil {
			t.Fatal(err)
		}
		legacy, err := net.LookupFrom(issuer, "paper.pdf")
		if err != nil {
			t.Fatal(err)
		}
		unified, err := net.Do(ctx, NewLookup("paper.pdf", WithIssuer(issuer)))
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Owner != unified.Owner || !reflect.DeepEqual(legacy.Objects, unified.Objects) ||
			legacy.Stats != unified.Stats {
			t.Fatalf("results differ:\nlegacy  %+v\nunified %+v", legacy, unified)
		}
	})

	t.Run("TraceQuery", func(t *testing.T) {
		legacy, legacyHops, err := net.TraceQuery(issuer, Range{Low: 200, High: 400})
		if err != nil {
			t.Fatal(err)
		}
		var hops []Hop
		unified, err := net.Do(ctx, NewRange([]Range{{Low: 200, High: 400}},
			WithIssuer(issuer), WithTrace(func(h Hop) { hops = append(hops, h) })))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, unified) {
			t.Fatalf("results differ:\nlegacy  %+v\nunified %+v", legacy, unified)
		}
		if !reflect.DeepEqual(legacyHops, hops) {
			t.Fatalf("hops differ: %d legacy vs %d unified", len(legacyHops), len(hops))
		}
	})

	// MultiRangeQuery and TopK pick a random issuer, so only their
	// issuer-independent outputs (result set, destinations) are comparable.
	t.Run("TopK", func(t *testing.T) {
		legacy, err := net.TopK(7, Range{Low: 0, High: 1000})
		if err != nil {
			t.Fatal(err)
		}
		unified, err := net.Do(ctx, NewRange([]Range{{Low: 0, High: 1000}}, WithTopK(7)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy.Objects, unified.Objects) {
			t.Fatalf("top-k objects differ:\nlegacy  %+v\nunified %+v", legacy.Objects, unified.Objects)
		}
	})

	t.Run("MultiRangeQuery", func(t *testing.T) {
		mnet, err := NewNetwork(100, WithSeed(63), WithAttributes(
			AttributeSpace{Low: 0, High: 10}, AttributeSpace{Low: 0, High: 10}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := mnet.Publish(objName(i), float64(i%10), float64(i/10)); err != nil {
				t.Fatal(err)
			}
		}
		ranges := []Range{{Low: 2, High: 8}, {Low: 1, High: 4}}
		legacy, err := mnet.MultiRangeQuery(ranges...)
		if err != nil {
			t.Fatal(err)
		}
		unified, err := mnet.Do(ctx, NewRange(ranges))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy.Objects, unified.Objects) ||
			!reflect.DeepEqual(legacy.Destinations, unified.Destinations) {
			t.Fatalf("results differ:\nlegacy  %+v\nunified %+v", legacy, unified)
		}
	})
}

// The flood ablation is reachable through the unified API and returns the
// same result set as the pruned search.
func TestDoFloodMatchesRange(t *testing.T) {
	net := buildQueryNet(t, 100, 150)
	issuer := net.PeerIDs()[0]
	ranges := []Range{{Low: 250, High: 750}}
	pruned, err := net.Do(context.Background(), NewRange(ranges, WithIssuer(issuer)))
	if err != nil {
		t.Fatal(err)
	}
	flooded, err := net.Do(context.Background(), NewRange(ranges, WithIssuer(issuer), WithFlood()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pruned.Objects, flooded.Objects) {
		t.Fatalf("flood objects diverge: %d vs %d", len(flooded.Objects), len(pruned.Objects))
	}
	if flooded.Stats.Messages < pruned.Stats.Messages {
		t.Fatalf("flood cheaper than pruned: %d < %d", flooded.Stats.Messages, pruned.Stats.Messages)
	}
}

// The flood ablation honors WithTrace like the pruned search: forwards
// equal Stats.Messages, deliveries equal Stats.DestPeers.
func TestDoFloodTraced(t *testing.T) {
	net := buildQueryNet(t, 80, 100)
	var mu sync.Mutex
	forwards, deliveries := 0, 0
	res, err := net.Do(context.Background(), NewRange([]Range{{Low: 100, High: 400}},
		WithIssuer(net.PeerIDs()[0]), WithFlood(),
		WithTrace(func(h Hop) {
			mu.Lock()
			defer mu.Unlock()
			if h.From == h.To && h.Remaining == 0 {
				deliveries++
			} else {
				forwards++
			}
		})))
	if err != nil {
		t.Fatal(err)
	}
	if forwards != res.Stats.Messages {
		t.Fatalf("flood trace saw %d forwards, stats say %d messages", forwards, res.Stats.Messages)
	}
	if deliveries != res.Stats.DestPeers {
		t.Fatalf("flood trace saw %d deliveries, stats say %d destinations", deliveries, res.Stats.DestPeers)
	}
}

// Mutating the network from inside a Stream loop must not deadlock: the
// descent never blocks on the consumer, so the read lock is released
// independently of the loop body.
func TestStreamLoopBodyMayMutate(t *testing.T) {
	net := buildQueryNet(t, 80, 200)
	published := 0
	for o, err := range net.Stream(context.Background(), NewRange([]Range{{Low: 0, High: 1000}})) {
		if err != nil {
			t.Fatal(err)
		}
		if published < 3 {
			if err := net.Publish("echo-"+o.Name, 999); err != nil {
				t.Fatal(err)
			}
			published++
		}
	}
	if published != 3 {
		t.Fatalf("published %d objects from inside the loop", published)
	}
}

// Cancelling the context mid-descent aborts the query with ctx's error.
func TestDoCancellationMidQuery(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"sync", nil},
		{"async", []Option{WithAsyncQueries()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			net := buildQueryNet(t, 200, 100, mode.opts...)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var cancelOnce sync.Once
			q := NewRange([]Range{{Low: 0, High: 1000}},
				WithIssuer(net.PeerIDs()[0]),
				// Cancel from inside the descent, after the first hop.
				WithTrace(func(Hop) { cancelOnce.Do(cancel) }),
			)
			if _, err := net.Do(ctx, q); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

func TestDoPreCancelledContext(t *testing.T) {
	net := buildQueryNet(t, 50, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.Do(ctx, NewRange([]Range{{Low: 0, High: 1000}})); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Do is safe for heavy concurrent use — plain, traced and streamed queries
// all running together under -race.
func TestConcurrentDo(t *testing.T) {
	net := buildQueryNet(t, 120, 200)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				lo := float64((g*100 + i*30) % 800)
				switch g % 4 {
				case 0: // plain range query, random issuer
					res, err := net.Do(ctx, NewRange([]Range{{Low: lo, High: lo + 150}}))
					if err != nil {
						errs <- err
						return
					}
					if res.Stats.DestPeers == 0 {
						errs <- errors.New("query reached no peers")
						return
					}
				case 1: // traced query — per-query tracing must not serialize
					var mu sync.Mutex
					hops := 0
					res, err := net.Do(ctx, NewRange([]Range{{Low: lo, High: lo + 150}},
						WithTrace(func(Hop) { mu.Lock(); hops++; mu.Unlock() })))
					if err != nil {
						errs <- err
						return
					}
					mu.Lock()
					h := hops
					mu.Unlock()
					if h < res.Stats.Messages {
						errs <- fmt.Errorf("trace saw %d hops for %d messages", h, res.Stats.Messages)
						return
					}
				case 2: // top-k
					if _, err := net.Do(ctx, NewRange([]Range{{Low: 0, High: 1000}}, WithTopK(3))); err != nil {
						errs <- err
						return
					}
				case 3: // streaming
					for _, err := range net.Stream(ctx, NewRange([]Range{{Low: lo, High: lo + 150}})) {
						if err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Stream yields exactly Do's result set, in delivery order.
func TestStreamMatchesDo(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"sync", nil},
		{"async", []Option{WithAsyncQueries()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			net := buildQueryNet(t, 100, 300, mode.opts...)
			q := NewRange([]Range{{Low: 100, High: 700}}, WithIssuer(net.PeerIDs()[1]))
			res, err := net.Do(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string]bool, len(res.Objects))
			for _, o := range res.Objects {
				want[o.Name] = true
			}
			got := make(map[string]bool)
			for o, err := range net.Stream(context.Background(), q) {
				if err != nil {
					t.Fatal(err)
				}
				if got[o.Name] {
					t.Fatalf("object %q streamed twice", o.Name)
				}
				got[o.Name] = true
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stream yielded %d objects, Do returned %d", len(got), len(want))
			}
		})
	}
}

// Breaking out of a Stream loop cancels the underlying query cleanly.
func TestStreamEarlyBreak(t *testing.T) {
	net := buildQueryNet(t, 100, 300)
	seen := 0
	for _, err := range net.Stream(context.Background(), NewRange([]Range{{Low: 0, High: 1000}})) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 2 {
			break
		}
	}
	if seen != 2 {
		t.Fatalf("saw %d objects, want 2", seen)
	}
	// The network must remain fully usable afterwards.
	if _, err := net.Do(context.Background(), NewRange([]Range{{Low: 0, High: 1000}})); err != nil {
		t.Fatal(err)
	}
}

// Breaking on an object yielded after the descent already finished (the
// final drain) must not hang waiting for the query goroutine.
func TestStreamBreakAfterCompletion(t *testing.T) {
	net := buildQueryNet(t, 80, 120)
	res, err := net.Do(context.Background(), NewRange([]Range{{Low: 0, High: 1000}}))
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Objects)
	for trial := 0; trial < 20; trial++ {
		seen := 0
		for _, err := range net.Stream(context.Background(), NewRange([]Range{{Low: 0, High: 1000}})) {
			if err != nil {
				t.Fatal(err)
			}
			seen++
			if seen == total { // the last object: the descent has finished
				break
			}
		}
	}
}

func TestStreamLookupAndErrors(t *testing.T) {
	net := buildQueryNet(t, 60, 0)
	if err := net.PublishExact("blob"); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for o, err := range net.Stream(context.Background(), NewLookup("blob")) {
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, o.Name)
	}
	if len(names) != 1 || names[0] != "blob" {
		t.Fatalf("stream lookup yielded %v", names)
	}
	// Top-k cannot stream.
	for _, err := range net.Stream(context.Background(), NewRange([]Range{{0, 1}}, WithTopK(2))) {
		if !errors.Is(err, ErrBadQuery) {
			t.Fatalf("top-k stream err = %v, want ErrBadQuery", err)
		}
	}
	// Query errors surface through the iterator.
	sawErr := false
	for _, err := range net.Stream(context.Background(), NewRange(nil)) {
		if err != nil {
			sawErr = true
			if !errors.Is(err, ErrBadArity) {
				t.Fatalf("stream err = %v, want ErrBadArity", err)
			}
		}
	}
	if !sawErr {
		t.Fatal("bad-arity stream yielded no error")
	}
}

func TestPublishBatch(t *testing.T) {
	net, err := NewNetwork(50, WithSeed(67))
	if err != nil {
		t.Fatal(err)
	}
	pubs := []Publication{
		{Name: "a", Values: []float64{100}},
		{Name: "b", Values: []float64{200}},
		{Name: "c", Values: []float64{300}},
	}
	if err := net.PublishBatch(pubs); err != nil {
		t.Fatal(err)
	}
	res, err := net.Do(context.Background(), NewRange([]Range{{Low: 50, High: 250}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 2 {
		t.Fatalf("batch query found %v", res.Objects)
	}
	// A bad publication aborts the batch with its index; earlier objects
	// stay published.
	err = net.PublishBatch([]Publication{
		{Name: "d", Values: []float64{400}},
		{Name: "bad", Values: []float64{1, 2}},
	})
	if !errors.Is(err, ErrBadArity) {
		t.Fatalf("bad batch err = %v", err)
	}
	res, err = net.Do(context.Background(), NewRange([]Range{{Low: 350, High: 450}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 1 || res.Objects[0].Name != "d" {
		t.Fatalf("partial batch state = %v", res.Objects)
	}
}

// RandomPeer must not block behind in-flight queries (it used to take the
// write lock).
func TestRandomPeerConcurrentWithQueries(t *testing.T) {
	net := buildQueryNet(t, 100, 100)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if net.RandomPeer() == "" {
					t.Error("empty peer id")
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := net.Do(context.Background(), NewRange([]Range{{Low: 0, High: 500}})); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestQueryKindString(t *testing.T) {
	for k, want := range map[QueryKind]string{
		KindLookup: "lookup", KindRange: "range", KindTopK: "top-k",
		KindFlood: "flood", QueryKind(42): "QueryKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("QueryKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
